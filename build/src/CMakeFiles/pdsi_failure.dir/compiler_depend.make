# Empty compiler generated dependencies file for pdsi_failure.
# This may be replaced when dependencies are built.
