file(REMOVE_RECURSE
  "libpdsi_failure.a"
)
