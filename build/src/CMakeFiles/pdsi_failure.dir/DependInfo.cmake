
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdsi/failure/checkpoint_sim.cc" "src/CMakeFiles/pdsi_failure.dir/pdsi/failure/checkpoint_sim.cc.o" "gcc" "src/CMakeFiles/pdsi_failure.dir/pdsi/failure/checkpoint_sim.cc.o.d"
  "/root/repo/src/pdsi/failure/model.cc" "src/CMakeFiles/pdsi_failure.dir/pdsi/failure/model.cc.o" "gcc" "src/CMakeFiles/pdsi_failure.dir/pdsi/failure/model.cc.o.d"
  "/root/repo/src/pdsi/failure/trace.cc" "src/CMakeFiles/pdsi_failure.dir/pdsi/failure/trace.cc.o" "gcc" "src/CMakeFiles/pdsi_failure.dir/pdsi/failure/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
