file(REMOVE_RECURSE
  "CMakeFiles/pdsi_failure.dir/pdsi/failure/checkpoint_sim.cc.o"
  "CMakeFiles/pdsi_failure.dir/pdsi/failure/checkpoint_sim.cc.o.d"
  "CMakeFiles/pdsi_failure.dir/pdsi/failure/model.cc.o"
  "CMakeFiles/pdsi_failure.dir/pdsi/failure/model.cc.o.d"
  "CMakeFiles/pdsi_failure.dir/pdsi/failure/trace.cc.o"
  "CMakeFiles/pdsi_failure.dir/pdsi/failure/trace.cc.o.d"
  "libpdsi_failure.a"
  "libpdsi_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
