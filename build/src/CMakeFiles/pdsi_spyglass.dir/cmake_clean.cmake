file(REMOVE_RECURSE
  "CMakeFiles/pdsi_spyglass.dir/pdsi/spyglass/spyglass.cc.o"
  "CMakeFiles/pdsi_spyglass.dir/pdsi/spyglass/spyglass.cc.o.d"
  "libpdsi_spyglass.a"
  "libpdsi_spyglass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_spyglass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
