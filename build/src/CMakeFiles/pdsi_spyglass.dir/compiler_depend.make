# Empty compiler generated dependencies file for pdsi_spyglass.
# This may be replaced when dependencies are built.
