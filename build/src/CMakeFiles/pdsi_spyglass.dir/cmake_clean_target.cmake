file(REMOVE_RECURSE
  "libpdsi_spyglass.a"
)
