# Empty dependencies file for pdsi_scalatrace.
# This may be replaced when dependencies are built.
