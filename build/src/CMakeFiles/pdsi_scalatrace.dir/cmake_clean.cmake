file(REMOVE_RECURSE
  "CMakeFiles/pdsi_scalatrace.dir/pdsi/scalatrace/scalatrace.cc.o"
  "CMakeFiles/pdsi_scalatrace.dir/pdsi/scalatrace/scalatrace.cc.o.d"
  "libpdsi_scalatrace.a"
  "libpdsi_scalatrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_scalatrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
