file(REMOVE_RECURSE
  "libpdsi_scalatrace.a"
)
