file(REMOVE_RECURSE
  "libpdsi_argon.a"
)
