file(REMOVE_RECURSE
  "CMakeFiles/pdsi_argon.dir/pdsi/argon/argon.cc.o"
  "CMakeFiles/pdsi_argon.dir/pdsi/argon/argon.cc.o.d"
  "libpdsi_argon.a"
  "libpdsi_argon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_argon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
