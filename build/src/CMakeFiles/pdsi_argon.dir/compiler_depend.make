# Empty compiler generated dependencies file for pdsi_argon.
# This may be replaced when dependencies are built.
