file(REMOVE_RECURSE
  "libpdsi_archive.a"
)
