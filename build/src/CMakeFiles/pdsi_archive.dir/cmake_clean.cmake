file(REMOVE_RECURSE
  "CMakeFiles/pdsi_archive.dir/pdsi/archive/archive.cc.o"
  "CMakeFiles/pdsi_archive.dir/pdsi/archive/archive.cc.o.d"
  "libpdsi_archive.a"
  "libpdsi_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
