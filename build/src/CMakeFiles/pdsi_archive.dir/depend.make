# Empty dependencies file for pdsi_archive.
# This may be replaced when dependencies are built.
