file(REMOVE_RECURSE
  "libpdsi_security.a"
)
