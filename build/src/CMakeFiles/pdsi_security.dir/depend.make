# Empty dependencies file for pdsi_security.
# This may be replaced when dependencies are built.
