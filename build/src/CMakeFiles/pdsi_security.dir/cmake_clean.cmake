file(REMOVE_RECURSE
  "CMakeFiles/pdsi_security.dir/pdsi/security/maat.cc.o"
  "CMakeFiles/pdsi_security.dir/pdsi/security/maat.cc.o.d"
  "libpdsi_security.a"
  "libpdsi_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
