file(REMOVE_RECURSE
  "CMakeFiles/pdsi_diagnosis.dir/pdsi/diagnosis/diagnosis.cc.o"
  "CMakeFiles/pdsi_diagnosis.dir/pdsi/diagnosis/diagnosis.cc.o.d"
  "libpdsi_diagnosis.a"
  "libpdsi_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
