# Empty compiler generated dependencies file for pdsi_diagnosis.
# This may be replaced when dependencies are built.
