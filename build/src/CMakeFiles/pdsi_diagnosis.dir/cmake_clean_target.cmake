file(REMOVE_RECURSE
  "libpdsi_diagnosis.a"
)
