# Empty dependencies file for pdsi_mpix.
# This may be replaced when dependencies are built.
