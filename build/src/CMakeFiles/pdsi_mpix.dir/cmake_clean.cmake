file(REMOVE_RECURSE
  "CMakeFiles/pdsi_mpix.dir/pdsi/mpix/mpix.cc.o"
  "CMakeFiles/pdsi_mpix.dir/pdsi/mpix/mpix.cc.o.d"
  "libpdsi_mpix.a"
  "libpdsi_mpix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_mpix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
