file(REMOVE_RECURSE
  "libpdsi_mpix.a"
)
