file(REMOVE_RECURSE
  "CMakeFiles/pdsi_workload.dir/pdsi/workload/driver.cc.o"
  "CMakeFiles/pdsi_workload.dir/pdsi/workload/driver.cc.o.d"
  "CMakeFiles/pdsi_workload.dir/pdsi/workload/patterns.cc.o"
  "CMakeFiles/pdsi_workload.dir/pdsi/workload/patterns.cc.o.d"
  "libpdsi_workload.a"
  "libpdsi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
