# Empty dependencies file for pdsi_workload.
# This may be replaced when dependencies are built.
