file(REMOVE_RECURSE
  "libpdsi_workload.a"
)
