file(REMOVE_RECURSE
  "libpdsi_dsfs.a"
)
