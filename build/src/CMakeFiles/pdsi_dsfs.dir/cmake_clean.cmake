file(REMOVE_RECURSE
  "CMakeFiles/pdsi_dsfs.dir/pdsi/dsfs/dsfs.cc.o"
  "CMakeFiles/pdsi_dsfs.dir/pdsi/dsfs/dsfs.cc.o.d"
  "libpdsi_dsfs.a"
  "libpdsi_dsfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_dsfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
