# Empty dependencies file for pdsi_dsfs.
# This may be replaced when dependencies are built.
