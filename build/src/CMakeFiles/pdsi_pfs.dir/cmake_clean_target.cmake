file(REMOVE_RECURSE
  "libpdsi_pfs.a"
)
