
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdsi/pfs/client.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/client.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/client.cc.o.d"
  "/root/repo/src/pdsi/pfs/cluster.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/cluster.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/cluster.cc.o.d"
  "/root/repo/src/pdsi/pfs/config.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/config.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/config.cc.o.d"
  "/root/repo/src/pdsi/pfs/mds.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/mds.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/mds.cc.o.d"
  "/root/repo/src/pdsi/pfs/oss.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/oss.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/oss.cc.o.d"
  "/root/repo/src/pdsi/pfs/placement.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/placement.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/placement.cc.o.d"
  "/root/repo/src/pdsi/pfs/sparse_buffer.cc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/sparse_buffer.cc.o" "gcc" "src/CMakeFiles/pdsi_pfs.dir/pdsi/pfs/sparse_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdsi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdsi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdsi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
