file(REMOVE_RECURSE
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/client.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/client.cc.o.d"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/cluster.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/cluster.cc.o.d"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/config.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/config.cc.o.d"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/mds.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/mds.cc.o.d"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/oss.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/oss.cc.o.d"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/placement.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/placement.cc.o.d"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/sparse_buffer.cc.o"
  "CMakeFiles/pdsi_pfs.dir/pdsi/pfs/sparse_buffer.cc.o.d"
  "libpdsi_pfs.a"
  "libpdsi_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
