# Empty dependencies file for pdsi_pfs.
# This may be replaced when dependencies are built.
