file(REMOVE_RECURSE
  "CMakeFiles/pdsi_pergamum.dir/pdsi/pergamum/pergamum.cc.o"
  "CMakeFiles/pdsi_pergamum.dir/pdsi/pergamum/pergamum.cc.o.d"
  "libpdsi_pergamum.a"
  "libpdsi_pergamum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_pergamum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
