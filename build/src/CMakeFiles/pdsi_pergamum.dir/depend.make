# Empty dependencies file for pdsi_pergamum.
# This may be replaced when dependencies are built.
