file(REMOVE_RECURSE
  "libpdsi_pergamum.a"
)
