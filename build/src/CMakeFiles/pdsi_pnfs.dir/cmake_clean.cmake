file(REMOVE_RECURSE
  "CMakeFiles/pdsi_pnfs.dir/pdsi/pnfs/pnfs.cc.o"
  "CMakeFiles/pdsi_pnfs.dir/pdsi/pnfs/pnfs.cc.o.d"
  "libpdsi_pnfs.a"
  "libpdsi_pnfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_pnfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
