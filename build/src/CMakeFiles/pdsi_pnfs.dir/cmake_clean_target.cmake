file(REMOVE_RECURSE
  "libpdsi_pnfs.a"
)
