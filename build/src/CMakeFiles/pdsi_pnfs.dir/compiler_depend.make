# Empty compiler generated dependencies file for pdsi_pnfs.
# This may be replaced when dependencies are built.
