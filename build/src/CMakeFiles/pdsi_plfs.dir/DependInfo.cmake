
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdsi/plfs/container.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/container.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/container.cc.o.d"
  "/root/repo/src/pdsi/plfs/index.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/index.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/index.cc.o.d"
  "/root/repo/src/pdsi/plfs/mem_backend.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/mem_backend.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/mem_backend.cc.o.d"
  "/root/repo/src/pdsi/plfs/pfs_backend.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/pfs_backend.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/pfs_backend.cc.o.d"
  "/root/repo/src/pdsi/plfs/plfs.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/plfs.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/plfs.cc.o.d"
  "/root/repo/src/pdsi/plfs/posix_backend.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/posix_backend.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/posix_backend.cc.o.d"
  "/root/repo/src/pdsi/plfs/reader.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/reader.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/reader.cc.o.d"
  "/root/repo/src/pdsi/plfs/smallfile.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/smallfile.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/smallfile.cc.o.d"
  "/root/repo/src/pdsi/plfs/writer.cc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/writer.cc.o" "gcc" "src/CMakeFiles/pdsi_plfs.dir/pdsi/plfs/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdsi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdsi_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdsi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdsi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
