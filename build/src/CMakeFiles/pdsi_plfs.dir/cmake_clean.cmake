file(REMOVE_RECURSE
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/container.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/container.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/index.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/index.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/mem_backend.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/mem_backend.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/pfs_backend.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/pfs_backend.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/plfs.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/plfs.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/posix_backend.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/posix_backend.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/reader.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/reader.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/smallfile.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/smallfile.cc.o.d"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/writer.cc.o"
  "CMakeFiles/pdsi_plfs.dir/pdsi/plfs/writer.cc.o.d"
  "libpdsi_plfs.a"
  "libpdsi_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
