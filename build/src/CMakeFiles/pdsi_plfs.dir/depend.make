# Empty dependencies file for pdsi_plfs.
# This may be replaced when dependencies are built.
