file(REMOVE_RECURSE
  "libpdsi_plfs.a"
)
