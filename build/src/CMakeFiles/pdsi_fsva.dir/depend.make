# Empty dependencies file for pdsi_fsva.
# This may be replaced when dependencies are built.
