file(REMOVE_RECURSE
  "libpdsi_fsva.a"
)
