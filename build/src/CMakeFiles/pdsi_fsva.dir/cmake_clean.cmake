file(REMOVE_RECURSE
  "CMakeFiles/pdsi_fsva.dir/pdsi/fsva/fsva.cc.o"
  "CMakeFiles/pdsi_fsva.dir/pdsi/fsva/fsva.cc.o.d"
  "libpdsi_fsva.a"
  "libpdsi_fsva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_fsva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
