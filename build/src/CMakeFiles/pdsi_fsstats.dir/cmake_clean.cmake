file(REMOVE_RECURSE
  "CMakeFiles/pdsi_fsstats.dir/pdsi/fsstats/fsstats.cc.o"
  "CMakeFiles/pdsi_fsstats.dir/pdsi/fsstats/fsstats.cc.o.d"
  "libpdsi_fsstats.a"
  "libpdsi_fsstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_fsstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
