# Empty dependencies file for pdsi_fsstats.
# This may be replaced when dependencies are built.
