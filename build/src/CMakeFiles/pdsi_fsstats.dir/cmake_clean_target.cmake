file(REMOVE_RECURSE
  "libpdsi_fsstats.a"
)
