# Empty compiler generated dependencies file for pdsi_huffman.
# This may be replaced when dependencies are built.
