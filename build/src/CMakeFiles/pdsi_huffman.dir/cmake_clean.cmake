file(REMOVE_RECURSE
  "CMakeFiles/pdsi_huffman.dir/pdsi/huffman/huffman.cc.o"
  "CMakeFiles/pdsi_huffman.dir/pdsi/huffman/huffman.cc.o.d"
  "libpdsi_huffman.a"
  "libpdsi_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
