file(REMOVE_RECURSE
  "libpdsi_huffman.a"
)
