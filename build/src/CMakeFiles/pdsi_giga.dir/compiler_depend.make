# Empty compiler generated dependencies file for pdsi_giga.
# This may be replaced when dependencies are built.
