file(REMOVE_RECURSE
  "libpdsi_giga.a"
)
