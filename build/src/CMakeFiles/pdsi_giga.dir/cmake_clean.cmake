file(REMOVE_RECURSE
  "CMakeFiles/pdsi_giga.dir/pdsi/giga/giga.cc.o"
  "CMakeFiles/pdsi_giga.dir/pdsi/giga/giga.cc.o.d"
  "libpdsi_giga.a"
  "libpdsi_giga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_giga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
