# Empty compiler generated dependencies file for pdsi_common.
# This may be replaced when dependencies are built.
