
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdsi/common/bytes.cc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/bytes.cc.o" "gcc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/bytes.cc.o.d"
  "/root/repo/src/pdsi/common/result.cc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/result.cc.o" "gcc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/result.cc.o.d"
  "/root/repo/src/pdsi/common/rng.cc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/rng.cc.o" "gcc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/rng.cc.o.d"
  "/root/repo/src/pdsi/common/stats.cc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/stats.cc.o" "gcc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/stats.cc.o.d"
  "/root/repo/src/pdsi/common/table.cc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/table.cc.o" "gcc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/table.cc.o.d"
  "/root/repo/src/pdsi/common/units.cc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/units.cc.o" "gcc" "src/CMakeFiles/pdsi_common.dir/pdsi/common/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
