file(REMOVE_RECURSE
  "libpdsi_common.a"
)
