file(REMOVE_RECURSE
  "CMakeFiles/pdsi_common.dir/pdsi/common/bytes.cc.o"
  "CMakeFiles/pdsi_common.dir/pdsi/common/bytes.cc.o.d"
  "CMakeFiles/pdsi_common.dir/pdsi/common/result.cc.o"
  "CMakeFiles/pdsi_common.dir/pdsi/common/result.cc.o.d"
  "CMakeFiles/pdsi_common.dir/pdsi/common/rng.cc.o"
  "CMakeFiles/pdsi_common.dir/pdsi/common/rng.cc.o.d"
  "CMakeFiles/pdsi_common.dir/pdsi/common/stats.cc.o"
  "CMakeFiles/pdsi_common.dir/pdsi/common/stats.cc.o.d"
  "CMakeFiles/pdsi_common.dir/pdsi/common/table.cc.o"
  "CMakeFiles/pdsi_common.dir/pdsi/common/table.cc.o.d"
  "CMakeFiles/pdsi_common.dir/pdsi/common/units.cc.o"
  "CMakeFiles/pdsi_common.dir/pdsi/common/units.cc.o.d"
  "libpdsi_common.a"
  "libpdsi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
