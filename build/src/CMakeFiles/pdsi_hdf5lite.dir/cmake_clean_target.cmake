file(REMOVE_RECURSE
  "libpdsi_hdf5lite.a"
)
