# Empty compiler generated dependencies file for pdsi_hdf5lite.
# This may be replaced when dependencies are built.
