file(REMOVE_RECURSE
  "CMakeFiles/pdsi_hdf5lite.dir/pdsi/hdf5lite/hdf5lite.cc.o"
  "CMakeFiles/pdsi_hdf5lite.dir/pdsi/hdf5lite/hdf5lite.cc.o.d"
  "libpdsi_hdf5lite.a"
  "libpdsi_hdf5lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_hdf5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
