file(REMOVE_RECURSE
  "libpdsi_storage.a"
)
