file(REMOVE_RECURSE
  "CMakeFiles/pdsi_storage.dir/pdsi/storage/device_catalog.cc.o"
  "CMakeFiles/pdsi_storage.dir/pdsi/storage/device_catalog.cc.o.d"
  "CMakeFiles/pdsi_storage.dir/pdsi/storage/disk_model.cc.o"
  "CMakeFiles/pdsi_storage.dir/pdsi/storage/disk_model.cc.o.d"
  "CMakeFiles/pdsi_storage.dir/pdsi/storage/ssd_model.cc.o"
  "CMakeFiles/pdsi_storage.dir/pdsi/storage/ssd_model.cc.o.d"
  "libpdsi_storage.a"
  "libpdsi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
