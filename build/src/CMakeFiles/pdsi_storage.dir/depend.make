# Empty dependencies file for pdsi_storage.
# This may be replaced when dependencies are built.
