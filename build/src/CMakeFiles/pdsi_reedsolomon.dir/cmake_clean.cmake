file(REMOVE_RECURSE
  "CMakeFiles/pdsi_reedsolomon.dir/pdsi/reedsolomon/reedsolomon.cc.o"
  "CMakeFiles/pdsi_reedsolomon.dir/pdsi/reedsolomon/reedsolomon.cc.o.d"
  "libpdsi_reedsolomon.a"
  "libpdsi_reedsolomon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_reedsolomon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
