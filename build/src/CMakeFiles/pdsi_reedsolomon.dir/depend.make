# Empty dependencies file for pdsi_reedsolomon.
# This may be replaced when dependencies are built.
