file(REMOVE_RECURSE
  "libpdsi_reedsolomon.a"
)
