# Empty compiler generated dependencies file for pdsi_incast.
# This may be replaced when dependencies are built.
