file(REMOVE_RECURSE
  "libpdsi_incast.a"
)
