file(REMOVE_RECURSE
  "CMakeFiles/pdsi_incast.dir/pdsi/incast/incast.cc.o"
  "CMakeFiles/pdsi_incast.dir/pdsi/incast/incast.cc.o.d"
  "libpdsi_incast.a"
  "libpdsi_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
