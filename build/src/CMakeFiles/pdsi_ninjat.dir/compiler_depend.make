# Empty compiler generated dependencies file for pdsi_ninjat.
# This may be replaced when dependencies are built.
