file(REMOVE_RECURSE
  "CMakeFiles/pdsi_ninjat.dir/pdsi/ninjat/ninjat.cc.o"
  "CMakeFiles/pdsi_ninjat.dir/pdsi/ninjat/ninjat.cc.o.d"
  "libpdsi_ninjat.a"
  "libpdsi_ninjat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_ninjat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
