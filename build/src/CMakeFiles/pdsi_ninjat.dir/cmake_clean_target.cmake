file(REMOVE_RECURSE
  "libpdsi_ninjat.a"
)
