file(REMOVE_RECURSE
  "libpdsi_sim.a"
)
