# Empty compiler generated dependencies file for pdsi_sim.
# This may be replaced when dependencies are built.
