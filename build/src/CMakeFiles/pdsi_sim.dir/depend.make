# Empty dependencies file for pdsi_sim.
# This may be replaced when dependencies are built.
