file(REMOVE_RECURSE
  "CMakeFiles/pdsi_sim.dir/pdsi/sim/event_queue.cc.o"
  "CMakeFiles/pdsi_sim.dir/pdsi/sim/event_queue.cc.o.d"
  "CMakeFiles/pdsi_sim.dir/pdsi/sim/virtual_time.cc.o"
  "CMakeFiles/pdsi_sim.dir/pdsi/sim/virtual_time.cc.o.d"
  "libpdsi_sim.a"
  "libpdsi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdsi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
