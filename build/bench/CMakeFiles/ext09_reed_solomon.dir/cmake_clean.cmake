file(REMOVE_RECURSE
  "CMakeFiles/ext09_reed_solomon.dir/ext09_reed_solomon.cc.o"
  "CMakeFiles/ext09_reed_solomon.dir/ext09_reed_solomon.cc.o.d"
  "ext09_reed_solomon"
  "ext09_reed_solomon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext09_reed_solomon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
