# Empty compiler generated dependencies file for ext09_reed_solomon.
# This may be replaced when dependencies are built.
