file(REMOVE_RECURSE
  "CMakeFiles/fig11_flash_microbench.dir/fig11_flash_microbench.cc.o"
  "CMakeFiles/fig11_flash_microbench.dir/fig11_flash_microbench.cc.o.d"
  "fig11_flash_microbench"
  "fig11_flash_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_flash_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
