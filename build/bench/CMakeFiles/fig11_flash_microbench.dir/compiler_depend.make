# Empty compiler generated dependencies file for fig11_flash_microbench.
# This may be replaced when dependencies are built.
