file(REMOVE_RECURSE
  "CMakeFiles/fig07_giga_scaling.dir/fig07_giga_scaling.cc.o"
  "CMakeFiles/fig07_giga_scaling.dir/fig07_giga_scaling.cc.o.d"
  "fig07_giga_scaling"
  "fig07_giga_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_giga_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
