# Empty dependencies file for fig07_giga_scaling.
# This may be replaced when dependencies are built.
