file(REMOVE_RECURSE
  "CMakeFiles/fig10_argon_insulation.dir/fig10_argon_insulation.cc.o"
  "CMakeFiles/fig10_argon_insulation.dir/fig10_argon_insulation.cc.o.d"
  "fig10_argon_insulation"
  "fig10_argon_insulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_argon_insulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
