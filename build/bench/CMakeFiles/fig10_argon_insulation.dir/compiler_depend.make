# Empty compiler generated dependencies file for fig10_argon_insulation.
# This may be replaced when dependencies are built.
