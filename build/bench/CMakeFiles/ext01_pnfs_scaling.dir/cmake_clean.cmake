file(REMOVE_RECURSE
  "CMakeFiles/ext01_pnfs_scaling.dir/ext01_pnfs_scaling.cc.o"
  "CMakeFiles/ext01_pnfs_scaling.dir/ext01_pnfs_scaling.cc.o.d"
  "ext01_pnfs_scaling"
  "ext01_pnfs_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext01_pnfs_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
