# Empty dependencies file for ext01_pnfs_scaling.
# This may be replaced when dependencies are built.
