# Empty compiler generated dependencies file for micro_giga_lookup.
# This may be replaced when dependencies are built.
