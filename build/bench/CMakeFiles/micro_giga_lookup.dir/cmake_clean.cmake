file(REMOVE_RECURSE
  "CMakeFiles/micro_giga_lookup.dir/micro_giga_lookup.cc.o"
  "CMakeFiles/micro_giga_lookup.dir/micro_giga_lookup.cc.o.d"
  "micro_giga_lookup"
  "micro_giga_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_giga_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
