file(REMOVE_RECURSE
  "CMakeFiles/fig09_incast.dir/fig09_incast.cc.o"
  "CMakeFiles/fig09_incast.dir/fig09_incast.cc.o.d"
  "fig09_incast"
  "fig09_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
