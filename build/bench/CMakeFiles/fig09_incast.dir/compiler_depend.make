# Empty compiler generated dependencies file for fig09_incast.
# This may be replaced when dependencies are built.
