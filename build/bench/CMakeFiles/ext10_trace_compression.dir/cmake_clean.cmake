file(REMOVE_RECURSE
  "CMakeFiles/ext10_trace_compression.dir/ext10_trace_compression.cc.o"
  "CMakeFiles/ext10_trace_compression.dir/ext10_trace_compression.cc.o.d"
  "ext10_trace_compression"
  "ext10_trace_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext10_trace_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
