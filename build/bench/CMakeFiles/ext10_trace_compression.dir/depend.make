# Empty dependencies file for ext10_trace_compression.
# This may be replaced when dependencies are built.
