file(REMOVE_RECURSE
  "CMakeFiles/fig02_s3d_checkpoint.dir/fig02_s3d_checkpoint.cc.o"
  "CMakeFiles/fig02_s3d_checkpoint.dir/fig02_s3d_checkpoint.cc.o.d"
  "fig02_s3d_checkpoint"
  "fig02_s3d_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_s3d_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
