# Empty dependencies file for fig02_s3d_checkpoint.
# This may be replaced when dependencies are built.
