# Empty dependencies file for fig05_app_utilization.
# This may be replaced when dependencies are built.
