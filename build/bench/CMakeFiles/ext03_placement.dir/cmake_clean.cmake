file(REMOVE_RECURSE
  "CMakeFiles/ext03_placement.dir/ext03_placement.cc.o"
  "CMakeFiles/ext03_placement.dir/ext03_placement.cc.o.d"
  "ext03_placement"
  "ext03_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext03_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
