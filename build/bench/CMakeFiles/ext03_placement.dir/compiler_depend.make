# Empty compiler generated dependencies file for ext03_placement.
# This may be replaced when dependencies are built.
