file(REMOVE_RECURSE
  "CMakeFiles/ext07_checkpoint_compression.dir/ext07_checkpoint_compression.cc.o"
  "CMakeFiles/ext07_checkpoint_compression.dir/ext07_checkpoint_compression.cc.o.d"
  "ext07_checkpoint_compression"
  "ext07_checkpoint_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext07_checkpoint_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
