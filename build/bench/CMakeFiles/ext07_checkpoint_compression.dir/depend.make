# Empty dependencies file for ext07_checkpoint_compression.
# This may be replaced when dependencies are built.
