# Empty compiler generated dependencies file for fig08_plfs_speedup.
# This may be replaced when dependencies are built.
