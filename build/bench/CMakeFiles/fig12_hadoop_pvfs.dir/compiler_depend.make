# Empty compiler generated dependencies file for fig12_hadoop_pvfs.
# This may be replaced when dependencies are built.
