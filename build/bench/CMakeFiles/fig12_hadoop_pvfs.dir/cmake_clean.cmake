file(REMOVE_RECURSE
  "CMakeFiles/fig12_hadoop_pvfs.dir/fig12_hadoop_pvfs.cc.o"
  "CMakeFiles/fig12_hadoop_pvfs.dir/fig12_hadoop_pvfs.cc.o.d"
  "fig12_hadoop_pvfs"
  "fig12_hadoop_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hadoop_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
