# Empty compiler generated dependencies file for ext08_archival_power.
# This may be replaced when dependencies are built.
