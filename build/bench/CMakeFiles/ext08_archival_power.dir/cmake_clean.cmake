file(REMOVE_RECURSE
  "CMakeFiles/ext08_archival_power.dir/ext08_archival_power.cc.o"
  "CMakeFiles/ext08_archival_power.dir/ext08_archival_power.cc.o.d"
  "ext08_archival_power"
  "ext08_archival_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext08_archival_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
