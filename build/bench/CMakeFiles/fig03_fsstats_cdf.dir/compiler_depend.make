# Empty compiler generated dependencies file for fig03_fsstats_cdf.
# This may be replaced when dependencies are built.
