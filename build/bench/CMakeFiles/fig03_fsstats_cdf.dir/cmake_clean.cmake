file(REMOVE_RECURSE
  "CMakeFiles/fig03_fsstats_cdf.dir/fig03_fsstats_cdf.cc.o"
  "CMakeFiles/fig03_fsstats_cdf.dir/fig03_fsstats_cdf.cc.o.d"
  "fig03_fsstats_cdf"
  "fig03_fsstats_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fsstats_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
