file(REMOVE_RECURSE
  "CMakeFiles/fig15_ninjat_render.dir/fig15_ninjat_render.cc.o"
  "CMakeFiles/fig15_ninjat_render.dir/fig15_ninjat_render.cc.o.d"
  "fig15_ninjat_render"
  "fig15_ninjat_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ninjat_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
