# Empty dependencies file for fig15_ninjat_render.
# This may be replaced when dependencies are built.
