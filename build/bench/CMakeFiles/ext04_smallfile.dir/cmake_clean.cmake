file(REMOVE_RECURSE
  "CMakeFiles/ext04_smallfile.dir/ext04_smallfile.cc.o"
  "CMakeFiles/ext04_smallfile.dir/ext04_smallfile.cc.o.d"
  "ext04_smallfile"
  "ext04_smallfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext04_smallfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
