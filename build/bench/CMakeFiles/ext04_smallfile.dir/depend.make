# Empty dependencies file for ext04_smallfile.
# This may be replaced when dependencies are built.
