# Empty dependencies file for ext11_security_overhead.
# This may be replaced when dependencies are built.
