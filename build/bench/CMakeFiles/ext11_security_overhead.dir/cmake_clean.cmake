file(REMOVE_RECURSE
  "CMakeFiles/ext11_security_overhead.dir/ext11_security_overhead.cc.o"
  "CMakeFiles/ext11_security_overhead.dir/ext11_security_overhead.cc.o.d"
  "ext11_security_overhead"
  "ext11_security_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext11_security_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
