# Empty dependencies file for fig04_mtti_projection.
# This may be replaced when dependencies are built.
