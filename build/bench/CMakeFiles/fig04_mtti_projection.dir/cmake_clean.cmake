file(REMOVE_RECURSE
  "CMakeFiles/fig04_mtti_projection.dir/fig04_mtti_projection.cc.o"
  "CMakeFiles/fig04_mtti_projection.dir/fig04_mtti_projection.cc.o.d"
  "fig04_mtti_projection"
  "fig04_mtti_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_mtti_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
