# Empty dependencies file for ext06_spyglass_search.
# This may be replaced when dependencies are built.
