file(REMOVE_RECURSE
  "CMakeFiles/ext06_spyglass_search.dir/ext06_spyglass_search.cc.o"
  "CMakeFiles/ext06_spyglass_search.dir/ext06_spyglass_search.cc.o.d"
  "ext06_spyglass_search"
  "ext06_spyglass_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext06_spyglass_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
