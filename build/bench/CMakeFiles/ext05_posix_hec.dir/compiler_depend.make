# Empty compiler generated dependencies file for ext05_posix_hec.
# This may be replaced when dependencies are built.
