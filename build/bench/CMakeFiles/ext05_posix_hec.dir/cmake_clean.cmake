file(REMOVE_RECURSE
  "CMakeFiles/ext05_posix_hec.dir/ext05_posix_hec.cc.o"
  "CMakeFiles/ext05_posix_hec.dir/ext05_posix_hec.cc.o.d"
  "ext05_posix_hec"
  "ext05_posix_hec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext05_posix_hec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
