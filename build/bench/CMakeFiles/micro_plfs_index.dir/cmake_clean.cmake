file(REMOVE_RECURSE
  "CMakeFiles/micro_plfs_index.dir/micro_plfs_index.cc.o"
  "CMakeFiles/micro_plfs_index.dir/micro_plfs_index.cc.o.d"
  "micro_plfs_index"
  "micro_plfs_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_plfs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
