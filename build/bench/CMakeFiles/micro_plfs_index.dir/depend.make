# Empty dependencies file for micro_plfs_index.
# This may be replaced when dependencies are built.
