file(REMOVE_RECURSE
  "CMakeFiles/tab01_flash_devices.dir/tab01_flash_devices.cc.o"
  "CMakeFiles/tab01_flash_devices.dir/tab01_flash_devices.cc.o.d"
  "tab01_flash_devices"
  "tab01_flash_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_flash_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
