# Empty compiler generated dependencies file for tab01_flash_devices.
# This may be replaced when dependencies are built.
