file(REMOVE_RECURSE
  "CMakeFiles/tab03_diagnosis_accuracy.dir/tab03_diagnosis_accuracy.cc.o"
  "CMakeFiles/tab03_diagnosis_accuracy.dir/tab03_diagnosis_accuracy.cc.o.d"
  "tab03_diagnosis_accuracy"
  "tab03_diagnosis_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_diagnosis_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
