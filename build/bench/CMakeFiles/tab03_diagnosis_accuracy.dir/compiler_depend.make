# Empty compiler generated dependencies file for tab03_diagnosis_accuracy.
# This may be replaced when dependencies are built.
