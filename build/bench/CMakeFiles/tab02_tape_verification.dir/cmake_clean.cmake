file(REMOVE_RECURSE
  "CMakeFiles/tab02_tape_verification.dir/tab02_tape_verification.cc.o"
  "CMakeFiles/tab02_tape_verification.dir/tab02_tape_verification.cc.o.d"
  "tab02_tape_verification"
  "tab02_tape_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_tape_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
