# Empty compiler generated dependencies file for tab02_tape_verification.
# This may be replaced when dependencies are built.
