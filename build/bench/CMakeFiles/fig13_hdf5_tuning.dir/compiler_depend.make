# Empty compiler generated dependencies file for fig13_hdf5_tuning.
# This may be replaced when dependencies are built.
