file(REMOVE_RECURSE
  "CMakeFiles/ext02_fsva_overhead.dir/ext02_fsva_overhead.cc.o"
  "CMakeFiles/ext02_fsva_overhead.dir/ext02_fsva_overhead.cc.o.d"
  "ext02_fsva_overhead"
  "ext02_fsva_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext02_fsva_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
