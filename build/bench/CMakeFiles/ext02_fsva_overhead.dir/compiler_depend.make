# Empty compiler generated dependencies file for ext02_fsva_overhead.
# This may be replaced when dependencies are built.
