# Empty compiler generated dependencies file for micro_storage_models.
# This may be replaced when dependencies are built.
