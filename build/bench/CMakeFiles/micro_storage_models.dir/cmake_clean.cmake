file(REMOVE_RECURSE
  "CMakeFiles/micro_storage_models.dir/micro_storage_models.cc.o"
  "CMakeFiles/micro_storage_models.dir/micro_storage_models.cc.o.d"
  "micro_storage_models"
  "micro_storage_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_storage_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
