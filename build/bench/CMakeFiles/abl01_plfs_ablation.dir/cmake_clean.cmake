file(REMOVE_RECURSE
  "CMakeFiles/abl01_plfs_ablation.dir/abl01_plfs_ablation.cc.o"
  "CMakeFiles/abl01_plfs_ablation.dir/abl01_plfs_ablation.cc.o.d"
  "abl01_plfs_ablation"
  "abl01_plfs_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_plfs_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
