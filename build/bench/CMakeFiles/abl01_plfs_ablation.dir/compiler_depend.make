# Empty compiler generated dependencies file for abl01_plfs_ablation.
# This may be replaced when dependencies are built.
