file(REMOVE_RECURSE
  "CMakeFiles/fig14_flash_degradation.dir/fig14_flash_degradation.cc.o"
  "CMakeFiles/fig14_flash_degradation.dir/fig14_flash_degradation.cc.o.d"
  "fig14_flash_degradation"
  "fig14_flash_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_flash_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
