# Empty dependencies file for fig14_flash_degradation.
# This may be replaced when dependencies are built.
