# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/plfs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/ninjat_test[1]_include.cmake")
include("/root/repo/build/tests/giga_test[1]_include.cmake")
include("/root/repo/build/tests/incast_test[1]_include.cmake")
include("/root/repo/build/tests/argon_test[1]_include.cmake")
include("/root/repo/build/tests/fsstats_test[1]_include.cmake")
include("/root/repo/build/tests/dsfs_test[1]_include.cmake")
include("/root/repo/build/tests/diagnosis_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/mpix_test[1]_include.cmake")
include("/root/repo/build/tests/pnfs_fsva_test[1]_include.cmake")
include("/root/repo/build/tests/smallfile_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/spyglass_test[1]_include.cmake")
include("/root/repo/build/tests/huffman_test[1]_include.cmake")
include("/root/repo/build/tests/pergamum_test[1]_include.cmake")
include("/root/repo/build/tests/reedsolomon_test[1]_include.cmake")
include("/root/repo/build/tests/scalatrace_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/hdf5lite_test[1]_include.cmake")
