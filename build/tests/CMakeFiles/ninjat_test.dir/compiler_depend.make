# Empty compiler generated dependencies file for ninjat_test.
# This may be replaced when dependencies are built.
