file(REMOVE_RECURSE
  "CMakeFiles/ninjat_test.dir/ninjat_test.cc.o"
  "CMakeFiles/ninjat_test.dir/ninjat_test.cc.o.d"
  "ninjat_test"
  "ninjat_test.pdb"
  "ninjat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ninjat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
