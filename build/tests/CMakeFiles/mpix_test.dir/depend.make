# Empty dependencies file for mpix_test.
# This may be replaced when dependencies are built.
