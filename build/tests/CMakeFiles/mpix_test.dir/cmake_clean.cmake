file(REMOVE_RECURSE
  "CMakeFiles/mpix_test.dir/mpix_test.cc.o"
  "CMakeFiles/mpix_test.dir/mpix_test.cc.o.d"
  "mpix_test"
  "mpix_test.pdb"
  "mpix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
