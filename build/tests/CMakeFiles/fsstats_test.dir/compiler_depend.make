# Empty compiler generated dependencies file for fsstats_test.
# This may be replaced when dependencies are built.
