file(REMOVE_RECURSE
  "CMakeFiles/fsstats_test.dir/fsstats_test.cc.o"
  "CMakeFiles/fsstats_test.dir/fsstats_test.cc.o.d"
  "fsstats_test"
  "fsstats_test.pdb"
  "fsstats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsstats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
