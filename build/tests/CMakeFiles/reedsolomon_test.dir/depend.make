# Empty dependencies file for reedsolomon_test.
# This may be replaced when dependencies are built.
