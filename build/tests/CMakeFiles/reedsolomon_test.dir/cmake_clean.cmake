file(REMOVE_RECURSE
  "CMakeFiles/reedsolomon_test.dir/reedsolomon_test.cc.o"
  "CMakeFiles/reedsolomon_test.dir/reedsolomon_test.cc.o.d"
  "reedsolomon_test"
  "reedsolomon_test.pdb"
  "reedsolomon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reedsolomon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
