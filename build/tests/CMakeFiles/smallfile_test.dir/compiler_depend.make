# Empty compiler generated dependencies file for smallfile_test.
# This may be replaced when dependencies are built.
