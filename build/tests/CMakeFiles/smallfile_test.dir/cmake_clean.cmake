file(REMOVE_RECURSE
  "CMakeFiles/smallfile_test.dir/smallfile_test.cc.o"
  "CMakeFiles/smallfile_test.dir/smallfile_test.cc.o.d"
  "smallfile_test"
  "smallfile_test.pdb"
  "smallfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smallfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
