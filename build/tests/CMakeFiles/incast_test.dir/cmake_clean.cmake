file(REMOVE_RECURSE
  "CMakeFiles/incast_test.dir/incast_test.cc.o"
  "CMakeFiles/incast_test.dir/incast_test.cc.o.d"
  "incast_test"
  "incast_test.pdb"
  "incast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
