# Empty compiler generated dependencies file for incast_test.
# This may be replaced when dependencies are built.
