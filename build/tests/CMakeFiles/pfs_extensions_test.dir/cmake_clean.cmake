file(REMOVE_RECURSE
  "CMakeFiles/pfs_extensions_test.dir/pfs_extensions_test.cc.o"
  "CMakeFiles/pfs_extensions_test.dir/pfs_extensions_test.cc.o.d"
  "pfs_extensions_test"
  "pfs_extensions_test.pdb"
  "pfs_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
