# Empty dependencies file for pfs_extensions_test.
# This may be replaced when dependencies are built.
