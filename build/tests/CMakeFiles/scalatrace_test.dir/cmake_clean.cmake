file(REMOVE_RECURSE
  "CMakeFiles/scalatrace_test.dir/scalatrace_test.cc.o"
  "CMakeFiles/scalatrace_test.dir/scalatrace_test.cc.o.d"
  "scalatrace_test"
  "scalatrace_test.pdb"
  "scalatrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalatrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
