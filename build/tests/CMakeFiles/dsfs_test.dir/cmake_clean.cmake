file(REMOVE_RECURSE
  "CMakeFiles/dsfs_test.dir/dsfs_test.cc.o"
  "CMakeFiles/dsfs_test.dir/dsfs_test.cc.o.d"
  "dsfs_test"
  "dsfs_test.pdb"
  "dsfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
