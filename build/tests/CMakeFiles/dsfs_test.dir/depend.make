# Empty dependencies file for dsfs_test.
# This may be replaced when dependencies are built.
