file(REMOVE_RECURSE
  "CMakeFiles/pergamum_test.dir/pergamum_test.cc.o"
  "CMakeFiles/pergamum_test.dir/pergamum_test.cc.o.d"
  "pergamum_test"
  "pergamum_test.pdb"
  "pergamum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pergamum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
