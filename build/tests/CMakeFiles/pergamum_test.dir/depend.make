# Empty dependencies file for pergamum_test.
# This may be replaced when dependencies are built.
