file(REMOVE_RECURSE
  "CMakeFiles/giga_test.dir/giga_test.cc.o"
  "CMakeFiles/giga_test.dir/giga_test.cc.o.d"
  "giga_test"
  "giga_test.pdb"
  "giga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
