# Empty dependencies file for giga_test.
# This may be replaced when dependencies are built.
