file(REMOVE_RECURSE
  "CMakeFiles/spyglass_test.dir/spyglass_test.cc.o"
  "CMakeFiles/spyglass_test.dir/spyglass_test.cc.o.d"
  "spyglass_test"
  "spyglass_test.pdb"
  "spyglass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spyglass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
