# Empty compiler generated dependencies file for spyglass_test.
# This may be replaced when dependencies are built.
