file(REMOVE_RECURSE
  "CMakeFiles/pnfs_fsva_test.dir/pnfs_fsva_test.cc.o"
  "CMakeFiles/pnfs_fsva_test.dir/pnfs_fsva_test.cc.o.d"
  "pnfs_fsva_test"
  "pnfs_fsva_test.pdb"
  "pnfs_fsva_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnfs_fsva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
