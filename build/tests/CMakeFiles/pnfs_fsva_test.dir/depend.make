# Empty dependencies file for pnfs_fsva_test.
# This may be replaced when dependencies are built.
