# Empty dependencies file for argon_test.
# This may be replaced when dependencies are built.
