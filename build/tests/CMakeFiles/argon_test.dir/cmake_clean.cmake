file(REMOVE_RECURSE
  "CMakeFiles/argon_test.dir/argon_test.cc.o"
  "CMakeFiles/argon_test.dir/argon_test.cc.o.d"
  "argon_test"
  "argon_test.pdb"
  "argon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
