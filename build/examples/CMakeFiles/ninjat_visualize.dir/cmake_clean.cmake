file(REMOVE_RECURSE
  "CMakeFiles/ninjat_visualize.dir/ninjat_visualize.cpp.o"
  "CMakeFiles/ninjat_visualize.dir/ninjat_visualize.cpp.o.d"
  "ninjat_visualize"
  "ninjat_visualize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ninjat_visualize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
