# Empty compiler generated dependencies file for ninjat_visualize.
# This may be replaced when dependencies are built.
