# Empty dependencies file for giga_directory.
# This may be replaced when dependencies are built.
