file(REMOVE_RECURSE
  "CMakeFiles/giga_directory.dir/giga_directory.cpp.o"
  "CMakeFiles/giga_directory.dir/giga_directory.cpp.o.d"
  "giga_directory"
  "giga_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giga_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
