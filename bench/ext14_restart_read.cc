// Extension — the N-to-1 restart read problem (the paper's §index
// scalability discussion): opening a PLFS container costs an N-way index
// merge, so restart time grows with writer ranks even when the data read
// is tiny. Two mitigations measured here against the cold merge:
//
//   1. flatten/compaction — plfs::FlattenIndex resolves the merge once
//      and drops a single pattern-compressed `index.flat` into the
//      container; later opens load it instead of N raw droppings;
//   2. container index cache — repeated opens in one address space (a
//      FUSE daemon, an I/O forwarding node) share the merged snapshot,
//      paying only the fingerprint stat pass.
//
// The sweep runs ranks x records on the virtual-time PFS and reports the
// open cost of each path plus speedups; a final MemBackend section pins
// the parallel k-way index merge byte-identical to the serial merge.
// Uncompressed indexes model the worst case the flatten targets (the
// compression ablation itself lives in abl01). --smoke shrinks the sweep;
// BENCH_ lines stay present and parseable.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/flat_index.h"
#include "pdsi/plfs/index.h"
#include "pdsi/plfs/index_cache.h"
#include "pdsi/plfs/pfs_backend.h"
#include "pdsi/plfs/plfs.h"

using namespace pdsi;

namespace {

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

struct OpenCost {
  double seconds = 0.0;
  std::uint64_t index_bytes = 0;
  std::uint64_t check = 0;  ///< hash of the first bytes, for cross-path sanity
};

// Virtual-time cost of one Reader::Open (plus a small verification read,
// excluded from the timing).
OpenCost MeasureOpen(plfs::Backend& backend, const std::string& path,
                     const plfs::Options& options) {
  OpenCost out;
  const double t0 = backend.now();
  auto reader = plfs::Reader::Open(backend, path, options);
  out.seconds = backend.now() - t0;
  if (!reader.ok()) return out;
  out.index_bytes = (*reader)->index_bytes_read();
  Bytes head(std::min<std::uint64_t>(64 * KiB, (*reader)->size()));
  if ((*reader)->read(0, head).ok()) out.check = HashBytes(head);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Restart read: index flatten/compaction and container "
                "index cache vs the cold N-way merge",
                "PLFS's per-rank index droppings make the N-to-1 restart "
                "open scale with writer ranks; compacting or caching the "
                "merged index removes the per-open merge");
  const bool smoke = SmokeFlag(argc, argv);
  bench::JsonReport json("ext14_restart_read");
  // --trace <path>: the largest sweep row is traced (index_merge,
  // index_flatten and index_cache_hit spans over the pfs tracks).
  bench::BenchObs trace(bench::TraceFlag(argc, argv),
                        bench::ProfileFlag(argc, argv), "ext14_restart_read");

  PrintBanner(std::cout, "N-to-1 checkpoint, then restart opens: cold merge "
                         "vs index.flat vs cached snapshot (virtual time)");
  const std::vector<std::uint32_t> rank_counts =
      smoke ? std::vector<std::uint32_t>{4, 8}
            : std::vector<std::uint32_t>{4, 8, 16, 32};
  const std::vector<std::uint32_t> record_counts =
      smoke ? std::vector<std::uint32_t>{32} : std::vector<std::uint32_t>{64, 256};
  const std::uint64_t kRec = 8 * KiB;

  Table t({"ranks", "records", "entries", "cold open", "flat open",
           "cached open", "flat x", "cached x"});
  const std::uint32_t trace_ranks = rank_counts.back();
  const std::uint32_t trace_records = record_counts.back();
  for (const std::uint32_t ranks : rank_counts) {
    for (const std::uint32_t records : record_counts) {
      // Fresh virtual cluster per configuration; every phase below runs
      // on client 0's clock, and only deltas are reported.
      sim::VirtualScheduler sched(1);
      pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(8);
      pfs::PfsCluster cluster(cfg, sched);
      auto backend = plfs::MakePfsBackend(cluster, 0);
      const bool traced = ranks == trace_ranks && records == trace_records;
      obs::Context* obs = traced ? trace.ctx() : nullptr;

      // Write phase: N-1 strided checkpoint, uncompressed index records —
      // ranks x records entries for the cold merge to chew through.
      plfs::WriteClock wclock{0};
      plfs::Options wopt;
      wopt.index_compression = false;
      for (std::uint32_t rank = 0; rank < ranks; ++rank) {
        auto w = plfs::Writer::Open(*backend, "/ckpt", rank, wopt, wclock);
        for (std::uint32_t k = 0; k < records; ++k) {
          const std::uint64_t off =
              (static_cast<std::uint64_t>(k) * ranks + rank) * kRec;
          (*w)->write(off, MakePattern(rank, off, kRec));
        }
        (*w)->close();
      }

      plfs::Options cold_opt;
      cold_opt.use_flat_index = false;
      cold_opt.obs = obs;
      const OpenCost cold = MeasureOpen(*backend, "/ckpt", cold_opt);

      plfs::Options flat_opt;
      flat_opt.obs = obs;
      if (!plfs::FlattenIndex(*backend, "/ckpt", flat_opt).ok()) {
        std::cerr << "flatten failed\n";
        return 1;
      }
      const OpenCost flat = MeasureOpen(*backend, "/ckpt", flat_opt);

      plfs::IndexCache cache(8);
      plfs::Options cached_opt;
      cached_opt.index_cache = &cache;
      cached_opt.obs = obs;
      (void)MeasureOpen(*backend, "/ckpt", cached_opt);  // populate (miss)
      const OpenCost cached = MeasureOpen(*backend, "/ckpt", cached_opt);

      if (flat.check != cold.check || cached.check != cold.check ||
          cache.hits() != 1) {
        std::cerr << "restart paths disagree at ranks=" << ranks << "\n";
        return 1;
      }
      const double flat_x = cold.seconds / flat.seconds;
      const double cached_x = cold.seconds / cached.seconds;
      t.row({std::to_string(ranks), std::to_string(records),
             std::to_string(ranks * records),
             FormatDuration(cold.seconds), FormatDuration(flat.seconds),
             FormatDuration(cached.seconds),
             FormatDouble(flat_x, 1) + "x", FormatDouble(cached_x, 1) + "x"});
      json.num("ranks", ranks)
          .num("records_per_rank", records)
          .num("index_entries", static_cast<double>(ranks) * records)
          .num("cold_open_s", cold.seconds)
          .num("cold_index_bytes", static_cast<double>(cold.index_bytes))
          .num("flat_open_s", flat.seconds)
          .num("flat_index_bytes", static_cast<double>(flat.index_bytes))
          .num("cached_open_s", cached.seconds)
          .num("flat_speedup", flat_x)
          .num("cached_speedup", cached_x);
      json.emit();
    }
  }
  t.print(std::cout);
  bench::Note("the cold merge pays per-dropping metadata and index reads, "
              "so its cost grows with ranks; the flat index is one read of "
              "a pattern-compressed file and the cached open only restats "
              "the droppings to validate its fingerprint — both speedups "
              "widen as ranks grow");

  // ---- parallel merge: byte-identical to serial ---------------------------
  PrintBanner(std::cout, "Parallel index merge (MemBackend): k-way merge "
                         "must reproduce the serial merge exactly");
  {
    plfs::Plfs fs(plfs::MakeMemBackend(), [] {
      plfs::Options o;
      o.index_compression = false;
      return o;
    }());
    constexpr std::uint32_t kRanks = 8;
    constexpr std::uint32_t kRecords = 200;
    for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
      auto w = fs.open_write("/f", rank);
      for (std::uint32_t k = 0; k < kRecords; ++k) {
        // Overlapping strides so merge order decides winners.
        const std::uint64_t off = (static_cast<std::uint64_t>(k) * kRanks +
                                   (rank + k) % kRanks) * 1000;
        (*w)->write(off, MakePattern(rank, off, 1500));
      }
      (*w)->close();
    }
    plfs::Options serial;
    serial.index_read_threads = 1;
    plfs::Options parallel;
    parallel.index_read_threads = 4;
    auto rs = plfs::Reader::Open(fs.backend(), "/f", serial);
    auto rp = plfs::Reader::Open(fs.backend(), "/f", parallel);
    if (!rs.ok() || !rp.ok()) {
      std::cerr << "merge open failed\n";
      return 1;
    }
    Bytes bs((*rs)->size());
    Bytes bp((*rp)->size());
    (*rs)->read(0, bs);
    (*rp)->read(0, bp);
    const bool identical =
        SerializeEntries((*rs)->raw_entries()) ==
            SerializeEntries((*rp)->raw_entries()) &&
        HashBytes(bs) == HashBytes(bp);
    Table t2({"metric", "value"});
    t2.row({"raw entries", std::to_string((*rs)->raw_entries().size())});
    t2.row({"merge threads", "1 vs 4"});
    t2.row({"byte-identical", identical ? "yes" : "NO"});
    t2.print(std::cout);
    json.str("mode", "parallel_merge")
        .num("entries", static_cast<double>((*rs)->raw_entries().size()))
        .num("identical", identical ? 1.0 : 0.0);
    json.emit();
    if (!identical) return 1;
  }
  bench::Note("no wall-clock numbers for the thread sweep on purpose: real "
              "threads are nondeterministic, so the gated claim is equality, "
              "not speed");
  return 0;
}
