// Extension — SSD burst-buffer tier in front of the parallel file system
// (§4.2.6 flash study + the Fig. 2/5 checkpoint workload).
//
// Three regimes of pdsi::bb, all on virtual time:
//   1. absorb — the N-1 strided checkpoint pattern lands on flash instead
//      of seek-bound OSS disks; the drain rewrites it sequentially;
//   2. overlap — the Fig. 5 checkpoint simulator with the absorb/drain
//      split: utilisation uplift grows with drain bandwidth until the
//      drain hides inside the compute interval;
//   3. backpressure — an undersized buffer against a slow PFS degrades
//      ingest to drain speed via watermark stalls instead of failing.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "pdsi/bb/burst_buffer.h"
#include "pdsi/bb/drain_target.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/storage/device_catalog.h"

using namespace pdsi;

namespace {

// Issues the N-1 strided checkpoint: `ranks` writers, `chunk`-byte
// records interleaved rank-major, each writer on its own clock (min-clock
// issue order keeps arrivals FIFO).
template <typename WriteFn>
double StridedCheckpointTime(std::uint32_t ranks, std::uint64_t chunk,
                             std::uint64_t per_rank, WriteFn&& write) {
  std::vector<double> clock(ranks, 0.0);
  std::vector<std::uint64_t> next(ranks, 0);
  const std::uint64_t records = per_rank / chunk;
  double end = 0.0;
  while (true) {
    std::uint32_t r = ranks;
    for (std::uint32_t i = 0; i < ranks; ++i) {
      if (next[i] < records && (r == ranks || clock[i] < clock[r])) r = i;
    }
    if (r == ranks) break;
    const std::uint64_t off = (next[r] * ranks + r) * chunk;
    clock[r] = write(off, chunk, clock[r]);
    end = std::max(end, clock[r]);
    ++next[r];
  }
  return end;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Burst buffer: flash staging tier for defensive checkpoints",
                "§4.2.6 flash + Figs. 2/5: the machine idles until the last "
                "checkpoint byte is durable; staging on flash shrinks that "
                "window to the absorb time");
  bench::JsonReport json("ext12_burst_buffer");
  // --trace <path>: part 1's buffer traces onto the bb.* tracks and one
  // part-2 checkpoint sim (the fastest drain) onto the ckpt.* tracks; the
  // other runs stay untraced so each track holds a single unambiguous run.
  // --profile aggregates the traced runs into a BENCH_ profile line.
  bench::BenchObs trace(bench::TraceFlag(argc, argv),
                        bench::ProfileFlag(argc, argv), "ext12_burst_buffer");

  // ---- 1. absorb bandwidth vs direct-to-PFS --------------------------------
  PrintBanner(std::cout, "N-1 strided checkpoint: direct PFS vs flash absorb");
  constexpr std::uint32_t kRanks = 8;
  constexpr std::uint64_t kChunk = 47 * KiB;   // unaligned, LANL-app-like
  constexpr std::uint64_t kPerRank = 16 * MiB;
  const std::uint64_t total = kRanks * (kPerRank / kChunk) * kChunk;

  sim::VirtualScheduler direct_sched(1);
  pfs::PfsCluster direct_cluster(pfs::PfsConfig{}, direct_sched);
  auto direct_target = bb::MakePfsDrainTarget(direct_cluster);
  const double direct_time = StridedCheckpointTime(
      kRanks, kChunk, kPerRank,
      [&](std::uint64_t off, std::uint64_t len, double now) {
        return direct_target->drain(1, off, len, now);
      });

  sim::VirtualScheduler bb_sched(1);
  pfs::PfsCluster bb_cluster(pfs::PfsConfig{}, bb_sched);
  auto bb_target = bb::MakePfsDrainTarget(bb_cluster);
  bb::BbParams bp;
  bp.ssd = storage::FlashDevice("fusionio-iodrive-duo");
  bp.ssd.capacity_bytes = 512 * MiB;
  bb::BurstBuffer buf(bp, *bb_target, trace.ctx());
  const double absorb_time = StridedCheckpointTime(
      kRanks, kChunk, kPerRank,
      [&](std::uint64_t off, std::uint64_t len, double now) {
        return buf.write(1, off, len, now);
      });
  const double durable_time = buf.flush(absorb_time);

  const double direct_bw = static_cast<double>(total) / direct_time;
  const double absorb_bw = static_cast<double>(total) / absorb_time;
  Table t1({"path", "application blocked", "bandwidth", "durable at"});
  t1.row({"direct to PFS", FormatDuration(direct_time), FormatRate(direct_bw),
          FormatDuration(direct_time)});
  t1.row({"burst buffer (" + bp.ssd.name + ")", FormatDuration(absorb_time),
          FormatRate(absorb_bw), FormatDuration(durable_time)});
  t1.print(std::cout);
  bench::Note("absorb speedup " + FormatDouble(absorb_bw / direct_bw, 1) +
              "x; the drain rewrites the strided mess as " +
              FormatBytes(static_cast<double>(buf.params().drain_unit)) +
              " sequential units, so even the durable point beats the "
              "direct write; staging-log write amplification " +
              FormatDouble(buf.ssd().stats().write_amplification(), 3));
  json.num("direct_bw_mbs", direct_bw / 1e6)
      .num("absorb_bw_mbs", absorb_bw / 1e6)
      .num("absorb_speedup", absorb_bw / direct_bw)
      .num("durable_seconds", durable_time)
      .num("direct_seconds", direct_time)
      .num("staging_write_amplification", buf.ssd().stats().write_amplification());
  json.emit();

  // ---- 2. utilisation uplift vs drain overlap ------------------------------
  PrintBanner(std::cout, "Fig. 5 checkpoint sim with absorb/drain split "
                         "(1h interval, 5min direct checkpoint, 30s absorb, "
                         "24h MTTI)");
  failure::CheckpointSimParams base;
  base.work_seconds = 60 * kDay;
  base.interval = kHour;
  base.checkpoint_seconds = 5 * kMinute;
  base.mtti_seconds = 24 * kHour;
  Rng rng(2026);
  const auto direct = failure::SimulateCheckpointing(base, rng);

  Table t2({"drain time", "utilisation", "uplift", "stall", "lost drains"});
  t2.row({"direct (no BB)",
          FormatDouble(100.0 * direct.utilization, 1) + "%", "--", "--", "--"});
  json.str("mode", "direct").num("utilization", direct.utilization);
  json.emit();
  for (double drain : {4 * kHour, 2 * kHour, kHour, 30 * kMinute,
                       10 * kMinute, kMinute}) {
    failure::CheckpointSimParams p = base;
    p.bb_absorb_seconds = 30.0;
    p.bb_drain_seconds = drain;
    if (drain == kMinute) p.obs = trace.ctx();
    Rng r(2026);
    const auto res = failure::SimulateCheckpointing(p, r);
    t2.row({FormatDuration(drain),
            FormatDouble(100.0 * res.utilization, 1) + "%",
            FormatDouble(res.utilization / direct.utilization, 2) + "x",
            FormatDuration(res.stall_seconds),
            std::to_string(res.lost_drains)});
    json.str("mode", "bb")
        .num("drain_seconds", drain)
        .num("utilization", res.utilization)
        .num("uplift", res.utilization / direct.utilization)
        .num("stall_seconds", res.stall_seconds)
        .num("lost_drains", static_cast<double>(res.lost_drains));
    json.emit();
  }
  t2.print(std::cout);
  bench::Note("uplift grows as the drain shrinks and plateaus once it fits "
              "inside the compute interval (further drain bandwidth buys "
              "nothing); drains slower than the interval stall the next "
              "absorb (single staging slot) and leave long windows where a "
              "failure loses the in-flight checkpoint");

  // ---- 3. backpressure regime ---------------------------------------------
  PrintBanner(std::cout, "undersized buffer vs slow PFS: watermark backpressure");
  bb::BbParams small;
  small.ssd = storage::FlashDevice("fusionio-iodrive-duo");
  small.ssd.capacity_bytes = 64 * MiB;
  small.high_watermark = 0.50;
  small.low_watermark = 0.25;
  bb::FixedRateDrainTarget slow_pfs(25e6);
  bb::BurstBuffer pressured(small, slow_pfs);
  double t = 0.0;
  const std::uint64_t burst = 256 * MiB;
  for (std::uint64_t off = 0; off < burst; off += MiB) {
    t = pressured.write(1, off, MiB, t);
  }
  const auto& s = pressured.stats();
  Table t3({"metric", "value"});
  t3.row({"burst written", FormatBytes(static_cast<double>(burst))});
  t3.row({"buffer capacity", FormatBytes(static_cast<double>(small.ssd.capacity_bytes))});
  t3.row({"effective ingest", FormatRate(static_cast<double>(burst) / t)});
  t3.row({"ingest stalls", std::to_string(s.ingest_stalls)});
  t3.row({"stall time", FormatDuration(s.stall_seconds)});
  t3.row({"flash absorb time", FormatDuration(s.absorb_seconds)});
  t3.print(std::cout);
  bench::Note("a checkpoint 4x the buffer degrades to drain speed through "
              "stalls — hysteresis between the watermarks keeps the drain "
              "streaming in large units instead of thrashing");
  json.str("mode", "backpressure")
      .num("ingest_stalls", static_cast<double>(s.ingest_stalls))
      .num("stall_seconds", s.stall_seconds)
      .num("effective_ingest_mbs", static_cast<double>(burst) / t / 1e6);
  json.emit();
  return 0;
}
