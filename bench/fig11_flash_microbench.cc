// Fig. 11 — flash vs disk microbenchmarks (WISH'09 / §4.2.6 findings).
//
// Paper findings reproduced here:
//  1) flash bandwidths beat disks, especially for reads;
//  2) random-read throughput is phenomenally higher than disk (~100 IOPS);
//  3) random writes are much slower than random reads, worse below 4 KB;
//  4) sustained random writing collapses once the pre-erased pool is
//     depleted — roughly 10x;
//  5) idle time (grooming) restores the pool.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/storage/device_catalog.h"

using namespace pdsi;
using storage::SsdModel;
using storage::SsdParams;

int main() {
  bench::Header("Fig. 11: flash vs disk microbenchmarks",
                "random reads >> disk; random writes << random reads "
                "(worse < 4KB); sustained random write ~10x collapse");

  // (1)-(3): request-size sweep on the X25-M era device vs disk.
  {
    PrintBanner(std::cout, "request-size sweep (fresh Intel X25-M vs SATA disk)");
    Table t({"size", "flash rand read", "flash rand write", "disk rand read",
             "write/read ratio"});
    storage::DiskModel disk(storage::ReferenceSataDisk());
    for (std::uint64_t size : {std::uint64_t{512}, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB,
                               256 * KiB}) {
      SsdModel ssd(storage::FlashDevice("intel-x25m"));
      Rng rng(11);
      const std::uint64_t span = ssd.params().capacity_bytes - size;
      double tr = 0, tw = 0, td = 0;
      constexpr int kOps = 1500;
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t off = rng.below(span / size) * size;
        tr += ssd.read(off, size);
        tw += ssd.write(off, size);
        td += disk.access(1, rng.below(400ull * GiB / size) * size, size);
      }
      t.row({FormatBytes(static_cast<double>(size)),
             FormatCount(kOps / tr) + "/s", FormatCount(kOps / tw) + "/s",
             FormatCount(kOps / td) + "/s", FormatDouble(tr / tw, 2)});
    }
    t.print(std::cout);
  }

  // (4)+(5): sustained random-write timeline with an idle recovery window.
  {
    PrintBanner(std::cout,
                "sustained 4K random writes (low-OP device), 10k-op windows");
    SsdParams params;
    params.name = "lowop-mlc";
    params.capacity_bytes = 512 * MiB;
    params.over_provision = 0.07;
    params.channels = 8;
    params.read_page_us = 25;
    params.program_page_us = 200;
    params.cmd_overhead_us = 20;
    params.gc_low_watermark = 0.02;
    SsdModel ssd(params);
    Rng rng(13);
    const std::uint64_t pages = params.capacity_bytes / 4096;

    Table t({"window", "KIOPS", "vs fresh", "free pool", "cum. WA"});
    double fresh = 0.0;
    for (int w = 0; w < 16; ++w) {
      if (w == 12) {
        ssd.idle(120.0);
        t.row({"-- 120 s idle (grooming) --", "", "",
               FormatDouble(100.0 * ssd.free_fraction(), 1) + "%", ""});
      }
      double tt = 0.0;
      constexpr int kOps = 10000;
      for (int i = 0; i < kOps; ++i) tt += ssd.write(rng.below(pages) * 4096, 4096);
      const double kiops = kOps / tt / 1e3;
      if (w == 0) fresh = kiops;
      t.row({std::to_string(w), FormatDouble(kiops, 1),
             FormatDouble(kiops / fresh, 2) + "x",
             FormatDouble(100.0 * ssd.free_fraction(), 1) + "%",
             FormatDouble(ssd.stats().write_amplification(), 2)});
    }
    t.print(std::cout);
  }
  bench::Note("shape check: KIOPS collapse by >= ~4-10x after the pool "
              "depletes; grooming restores a burst of fresh performance.");
  return 0;
}
