// Fig. 2 — S3D checkpoint I/O time under weak scaling.
//
// Paper (PDSI/PERI collaboration): (a) measured time for 10 timesteps +
// 1 checkpoint of the c2h4 problem at increasing core counts — checkpoint
// I/O time grows with scale while compute per rank is constant (weak
// scaling); (b) predicted time spent checkpointing in a 12-hour run.
// S3D's quoted pathology: 1% of runtime in I/O at 512 cores but 30% at
// 16,000 cores.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/config.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;

int main() {
  bench::Header("Fig. 2: S3D checkpoint time, weak scaling (c2h4-like)",
                "I/O share of runtime grows from ~1% at 512 cores toward "
                "~30% at 16K cores; 12-hour-run projection");

  // Weak scaling: per-rank state constant, shared N-1 segmented restart
  // dump (S3D Fortran I/O). The simulated cluster keeps 8 OSS as ranks
  // grow — exactly the imbalance the paper highlights.
  const auto cfg = pfs::PfsConfig::LustreLike(8);
  constexpr std::uint64_t kPerRankBytes = 4 * MiB;
  constexpr std::uint64_t kRecord = 128 * KiB + 64;
  constexpr double kComputePerStep = 30.0;  // seconds between checkpoints
  constexpr int kStepsPerCheckpoint = 10;

  Table t({"ranks", "ckpt time", "ckpt bw", "10-step+1-ckpt", "io share",
           "12h ckpt hours"});
  for (std::uint32_t ranks : {16u, 32u, 64u, 128u, 256u}) {
    workload::CheckpointSpec spec;
    spec.pattern = workload::Pattern::n1_segmented;
    spec.ranks = ranks;
    spec.record_bytes = kRecord;
    spec.records_per_rank =
        static_cast<std::uint32_t>(kPerRankBytes / kRecord) + 1;

    const auto r = workload::RunDirectCheckpoint(cfg, spec);
    const double compute = kComputePerStep * kStepsPerCheckpoint;
    const double share = r.seconds / (r.seconds + compute);
    // 12-hour run: checkpoints every kStepsPerCheckpoint steps.
    const double ckpt_hours = 12.0 * share;
    t.row({std::to_string(ranks), FormatDuration(r.seconds),
           FormatRate(r.bandwidth()), FormatDuration(r.seconds + compute),
           FormatDouble(100.0 * share, 1) + "%",
           FormatDouble(ckpt_hours, 2)});
  }
  t.print(std::cout);
  bench::Note("shape check: with storage fixed at 8 OSS, checkpoint time "
              "grows ~linearly with ranks under weak scaling, so the I/O "
              "share climbs from a few percent toward tens of percent — "
              "the S3D trend the paper reports.");
  return 0;
}
