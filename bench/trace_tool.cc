// trace_tool — offline analysis of compact traces.
//
// Reads the canonical compact trace format (what `<bench> --trace
// out.trace` writes, or `Tracer::write_compact`) and answers "where did
// the time go" without a GUI:
//
//   trace_tool <trace> --profile          span stats + per-track breakdown
//   trace_tool <trace> --critical-path    the chain that set the makespan
//   trace_tool <trace> --profile --json   the same, machine-readable
//   trace_tool <trace> --check <model>    audit the consist ops against a
//                                         claimed consistency model
//
// Output is byte-stable for a given input file (fixed formatting, sorted
// keys, deterministic tie-breaks), so profiles can be golden-tested the
// same way the traces themselves are. --check exits 0 on a clean trace
// and 1 on the first (deterministic) violation, so any committed trace
// can be audited standalone in CI.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/obs/critical_path.h"
#include "pdsi/obs/profile.h"

using namespace pdsi;

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace-file> [--profile] [--critical-path] [--json]"
               " [--top N] [--bins N] [--check <model>]\n"
               "  <trace-file> is the compact format written by"
               " `<bench> --trace <path>` (non-.json path)\n"
               "  <model> is one of posix|session|commit|mpiio\n"
               "  with no mode flags, --profile and --critical-path both run\n";
  return 2;
}

int CheckTrace(const std::vector<obs::AnalysisEvent>& events,
               consist::ConsistencyModel model) {
  const consist::CheckResult res = consist::CheckConsistency(events, model);
  std::cout << "check: model=" << consist::ConsistencyModelName(model)
            << " writes=" << res.stats.writes << " reads=" << res.stats.reads
            << " content_checks=" << res.stats.content_checks
            << " composite_skips=" << res.stats.composite_skips
            << " conflict_pairs=" << res.stats.conflict_pairs << "\n";
  if (res.clean) {
    std::cout << "check: CLEAN\n";
    return 0;
  }
  std::cout << "check: VIOLATION " << consist::FormatViolation(res.first, events)
            << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool profile = false, critical = false, json = false;
  bool check = false;
  consist::ConsistencyModel model = consist::ConsistencyModel::posix;
  std::size_t top_k = 10, bins = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--profile") {
      profile = true;
    } else if (a == "--critical-path") {
      critical = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--check" && i + 1 < argc) {
      if (!consist::ParseConsistencyModel(argv[++i], &model)) return Usage(argv[0]);
      check = true;
    } else if (a == "--top" && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--bins" && i + 1 < argc) {
      bins = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (!a.empty() && a[0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = a;
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);
  if (!profile && !critical && !check) profile = critical = true;

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_tool: cannot open " << path << "\n";
    return 1;
  }
  std::vector<obs::AnalysisEvent> events;
  std::string error;
  if (!obs::ParseCompactTrace(in, &events, &error)) {
    std::cerr << "trace_tool: " << path << ": " << error << "\n";
    return 1;
  }

  if (check) {
    const int rc = CheckTrace(events, model);
    if (!profile && !critical) return rc;
    if (rc != 0) return rc;
    std::cout << "\n";
  }
  if (profile) {
    obs::ProfileOptions opts;
    opts.timeline_bins = bins;
    const obs::Profile p = obs::Profile::Build(events, opts);
    if (json) {
      p.write_json(std::cout);
    } else {
      p.write_text(std::cout);
    }
  }
  if (critical) {
    const obs::CriticalPathResult cp = obs::ExtractCriticalPath(events);
    if (json) {
      cp.write_json(std::cout, top_k);
    } else {
      if (profile) std::cout << "\n";
      cp.write_text(std::cout, top_k);
    }
  }
  return 0;
}
