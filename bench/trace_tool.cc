// trace_tool — offline analysis of compact traces.
//
// Reads the canonical compact trace format (what `<bench> --trace
// out.trace` writes, or `Tracer::write_compact`) and answers "where did
// the time go" without a GUI:
//
//   trace_tool <trace> --profile          span stats + per-track breakdown
//   trace_tool <trace> --critical-path    the chain that set the makespan
//   trace_tool <trace> --profile --json   the same, machine-readable
//
// Output is byte-stable for a given input file (fixed formatting, sorted
// keys, deterministic tie-breaks), so profiles can be golden-tested the
// same way the traces themselves are.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pdsi/obs/critical_path.h"
#include "pdsi/obs/profile.h"

using namespace pdsi;

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace-file> [--profile] [--critical-path] [--json]"
               " [--top N] [--bins N]\n"
               "  <trace-file> is the compact format written by"
               " `<bench> --trace <path>` (non-.json path)\n"
               "  with neither --profile nor --critical-path, both run\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool profile = false, critical = false, json = false;
  std::size_t top_k = 10, bins = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--profile") {
      profile = true;
    } else if (a == "--critical-path") {
      critical = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--top" && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--bins" && i + 1 < argc) {
      bins = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (!a.empty() && a[0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = a;
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);
  if (!profile && !critical) profile = critical = true;

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_tool: cannot open " << path << "\n";
    return 1;
  }
  std::vector<obs::AnalysisEvent> events;
  std::string error;
  if (!obs::ParseCompactTrace(in, &events, &error)) {
    std::cerr << "trace_tool: " << path << ": " << error << "\n";
    return 1;
  }

  if (profile) {
    obs::ProfileOptions opts;
    opts.timeline_bins = bins;
    const obs::Profile p = obs::Profile::Build(events, opts);
    if (json) {
      p.write_json(std::cout);
    } else {
      p.write_text(std::cout);
    }
  }
  if (critical) {
    const obs::CriticalPathResult cp = obs::ExtractCriticalPath(events);
    if (json) {
      cp.write_json(std::cout, top_k);
    } else {
      if (profile) std::cout << "\n";
      cp.write_text(std::cout, top_k);
    }
  }
  return 0;
}
