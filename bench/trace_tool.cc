// trace_tool — offline analysis of compact traces.
//
// Reads the canonical compact trace format (what `<bench> --trace
// out.trace` writes, or `Tracer::write_compact`) and answers "where did
// the time go" without a GUI:
//
//   trace_tool <trace> --profile          span stats + per-track breakdown
//   trace_tool <trace> --critical-path    the chain that set the makespan
//   trace_tool <trace> --profile --json   the same, machine-readable
//   trace_tool <trace> --check <model>    audit the consist ops against a
//                                         claimed consistency model
//   trace_tool <trace> --monitor          replay the live monitoring sinks
//                                         (watermarks, EWMA anomalies,
//                                         rpc_req breakdowns) over the trace
//
// Output is byte-stable for a given input file (fixed formatting, sorted
// keys, deterministic tie-breaks), so profiles can be golden-tested the
// same way the traces themselves are. --check exits 0 on a clean trace
// and 1 on the first (deterministic) violation, so any committed trace
// can be audited standalone in CI.
//
// --monitor --check <model> additionally runs BOTH consistency passes —
// the batch checker and the incremental ConsistencyMonitor — and prints
// each verdict plus an agreement line: exit 0 when both are clean, 1
// when both flag the same first violation, 2 when they disagree (a
// monitor/checker parity bug worth failing CI over).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <algorithm>

#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/consist/monitor.h"
#include "pdsi/obs/critical_path.h"
#include "pdsi/obs/monitor.h"
#include "pdsi/obs/profile.h"

using namespace pdsi;

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace-file> [--profile] [--critical-path] [--json]"
               " [--top N] [--bins N] [--check <model>] [--monitor]\n"
               "  <trace-file> is the compact format written by"
               " `<bench> --trace <path>` (non-.json path)\n"
               "  <model> is one of posix|session|commit|mpiio\n"
               "  with no mode flags, --profile and --critical-path both run\n"
               "  --monitor replays the streaming sinks; with --check it also"
               " compares the batch checker against the online monitor\n";
  return 2;
}

int CheckTrace(const std::vector<obs::AnalysisEvent>& events,
               consist::ConsistencyModel model) {
  const consist::CheckResult res = consist::CheckConsistency(events, model);
  std::cout << "check: model=" << consist::ConsistencyModelName(model)
            << " writes=" << res.stats.writes << " reads=" << res.stats.reads
            << " content_checks=" << res.stats.content_checks
            << " composite_skips=" << res.stats.composite_skips
            << " conflict_pairs=" << res.stats.conflict_pairs << "\n";
  if (res.clean) {
    std::cout << "check: CLEAN\n";
    return 0;
  }
  std::cout << "check: VIOLATION " << consist::FormatViolation(res.first, events)
            << "\n";
  return 1;
}

/// Replays the streaming sinks over the parsed trace. With `check`,
/// also runs the batch checker next to the online ConsistencyMonitor
/// and prints an agreement verdict (the replay half of the online/
/// offline equivalence, runnable against any committed trace).
int MonitorTrace(const std::vector<obs::AnalysisEvent>& events, bool check,
                 consist::ConsistencyModel model) {
  obs::WatermarkSink water;
  obs::EwmaAnomalySink ewma;
  obs::RequestBreakdownSink breakdown;
  consist::ConsistencyMonitor mon(model);
  std::vector<obs::MonitorSink*> sinks{&water, &ewma, &breakdown};
  if (check) sinks.push_back(&mon);
  obs::ReplayEvents(events, sinks);

  std::cout << "monitor: events=" << events.size() << "\n";
  water.write_report(std::cout);
  if (!breakdown.requests().empty()) {
    std::cout << "monitor: requests=" << breakdown.requests().size()
              << " exact=" << (breakdown.exact() ? "y" : "n") << "\n";
    breakdown.write_table(std::cout);
  }
  std::vector<obs::Alarm> alarms;
  for (const auto& a : water.alarms()) alarms.push_back(a);
  for (const auto& a : ewma.alarms()) alarms.push_back(a);
  if (check && !mon.clean()) alarms.push_back(mon.alarm());
  std::stable_sort(alarms.begin(), alarms.end(),
                   [](const obs::Alarm& a, const obs::Alarm& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.key < b.key;
                   });
  for (const auto& a : alarms) std::cout << obs::FormatAlarm(a) << "\n";
  std::cout << "monitor: alarms=" << alarms.size() << "\n";
  if (!check) return 0;

  const consist::CheckResult batch = consist::CheckConsistency(events, model);
  std::cout << "monitor-check: model=" << consist::ConsistencyModelName(model)
            << " peak_retained=" << mon.peak_retained() << "\n";
  std::cout << "monitor-check: batch=";
  if (batch.clean) {
    std::cout << "CLEAN\n";
  } else {
    std::cout << "VIOLATION " << consist::FormatViolation(batch.first, events)
              << "\n";
  }
  std::cout << "monitor-check: online=";
  if (mon.clean()) {
    std::cout << "CLEAN\n";
  } else {
    std::cout << "VIOLATION " << consist::FormatViolation(mon.first(), events)
              << "\n";
  }
  const bool agree =
      batch.clean == mon.clean() &&
      (batch.clean || (batch.first.kind == mon.first().kind &&
                       batch.first.op_a == mon.first().op_a &&
                       batch.first.op_b == mon.first().op_b &&
                       batch.first.detail == mon.first().detail));
  if (!agree) {
    std::cout << "monitor-check: MISMATCH\n";
    return 2;
  }
  std::cout << "monitor-check: AGREE\n";
  return batch.clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool profile = false, critical = false, json = false;
  bool check = false, monitor = false;
  consist::ConsistencyModel model = consist::ConsistencyModel::posix;
  std::size_t top_k = 10, bins = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--profile") {
      profile = true;
    } else if (a == "--critical-path") {
      critical = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--check" && i + 1 < argc) {
      if (!consist::ParseConsistencyModel(argv[++i], &model)) return Usage(argv[0]);
      check = true;
    } else if (a == "--monitor") {
      monitor = true;
    } else if (a == "--top" && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (a == "--bins" && i + 1 < argc) {
      bins = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (!a.empty() && a[0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = a;
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);
  if (!profile && !critical && !check && !monitor) profile = critical = true;

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_tool: cannot open " << path << "\n";
    return 1;
  }
  std::vector<obs::AnalysisEvent> events;
  std::string error;
  if (!obs::ParseCompactTrace(in, &events, &error)) {
    std::cerr << "trace_tool: " << path << ": " << error << "\n";
    return 1;
  }

  if (monitor) {
    const int rc = MonitorTrace(events, check, model);
    if (!profile && !critical) return rc;
    if (rc != 0) return rc;
    std::cout << "\n";
  } else if (check) {
    const int rc = CheckTrace(events, model);
    if (!profile && !critical) return rc;
    if (rc != 0) return rc;
    std::cout << "\n";
  }
  if (profile) {
    obs::ProfileOptions opts;
    opts.timeline_bins = bins;
    const obs::Profile p = obs::Profile::Build(events, opts);
    if (json) {
      p.write_json(std::cout);
    } else {
      p.write_text(std::cout);
    }
  }
  if (critical) {
    const obs::CriticalPathResult cp = obs::ExtractCriticalPath(events);
    if (json) {
      cp.write_json(std::cout, top_k);
    } else {
      if (profile) std::cout << "\n";
      cp.write_text(std::cout, top_k);
    }
  }
  return 0;
}
