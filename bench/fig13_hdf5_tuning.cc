// Fig. 13 — cumulative HDF5 optimisation benefits for Chombo and GCRM.
//
// Paper (NERSC + The HDF Group): incremental application of collective
// buffering, stripe alignment and metadata coalescing raised parallel
// HDF5 bandwidth by up to 33x, approaching the file system's achievable
// peak. Bars stack per optimisation; both applications benefit.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/hdf5lite/hdf5lite.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;
using hdf5lite::H5Options;

int main() {
  bench::Header("Fig. 13: cumulative HDF5 tuning (Chombo & GCRM)",
                "baseline -> +collective buffering -> +alignment -> "
                "+metadata coalescing; up to ~33x, nearing fs peak");

  const auto cfg = pfs::PfsConfig::LustreLike(8);
  constexpr std::uint32_t kRanks = 64;

  struct Level {
    const char* label;
    H5Options opt;
  };
  std::vector<Level> levels;
  {
    H5Options o;
    levels.push_back({"baseline (independent I/O)", o});
    o.metadata_coalescing = true;
    levels.push_back({"+ metadata coalescing", o});
    o.collective_buffering = true;
    levels.push_back({"+ collective buffering", o});
    o.align_to_stripe = true;
    levels.push_back({"+ stripe alignment", o});
  }

  // "Peak filesystem bandwidth" in the figure's sense: aggregate media
  // streaming rate of the server disks.
  const double peak = cfg.num_oss * cfg.disk.seq_bw_bytes;
  std::cout << "aggregate media peak on this substrate: " << FormatRate(peak)
            << "\n";

  for (const auto& spec : {hdf5lite::ChomboSpec(kRanks), hdf5lite::GcrmSpec(kRanks)}) {
    PrintBanner(std::cout, spec.name + " (" + std::to_string(kRanks) + " ranks, " +
                               FormatBytes(static_cast<double>(spec.total_bytes())) + ")");
    Table t({"configuration", "bandwidth", "speedup", "% of peak"});
    double base = 0.0;
    for (const auto& lvl : levels) {
      const auto r = hdf5lite::RunDump(cfg, spec, lvl.opt);
      if (base == 0.0) base = r.bandwidth();
      t.row({lvl.label, FormatRate(r.bandwidth()),
             FormatDouble(r.bandwidth() / base, 1) + "x",
             FormatDouble(100.0 * r.bandwidth() / peak, 1) + "%"});
    }
    t.print(std::cout);
  }
  bench::Note("shape check: each optimisation adds; the fully-tuned "
              "configuration approaches the N-N peak; the irregular AMR "
              "case starts lower and gains more.");
  return 0;
}
