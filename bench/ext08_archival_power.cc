// Extension — power-managed disk archives (§4.2.4; Pergamum line).
//
// Paper: disk-based archives with aggressive spin-down beat tape on
// access latency at tape-like power, data placement decides how many
// spindles each retrieval session wakes, more devices can
// counterintuitively save power, and at very low rates placement stops
// mattering because standby power dominates.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pergamum/pergamum.h"

using namespace pdsi;
using namespace pdsi::pergamum;

int main() {
  bench::Header("Archival storage power management",
                "semantic grouping lets spindles sleep; more disks can "
                "save power; placement stops mattering at low rates");

  {
    PrintBanner(std::cout, "placement x retrieval rate (16 disks, 24 h)");
    Table t({"bursts/hour", "placement", "energy (Wh)", "avg power (W)",
             "spin-ups", "mean latency", "disks spinning"});
    for (double rate : {0.05, 1.0, 6.0, 30.0}) {
      for (Placement pl : {Placement::grouped, Placement::scattered}) {
        ArchiveParams p;
        p.placement = pl;
        p.burst_rate_per_hour = rate;
        const auto r = RunArchive(p);
        t.row({FormatDouble(rate, 2), std::string(PlacementName(pl)),
               FormatDouble(r.energy_wh, 1),
               FormatDouble(r.average_power_w(p.duration_hours), 2),
               std::to_string(r.spinups), FormatDuration(r.mean_latency_s),
               FormatDouble(r.mean_disks_spinning, 2)});
      }
    }
    t.print(std::cout);
  }

  {
    PrintBanner(std::cout,
                "more (smaller) devices at equal capacity, 30 bursts/hour");
    Table t({"fleet", "energy (Wh)", "avg power (W)", "spin-ups",
             "mean latency", "disks spinning"});
    struct Fleet {
      const char* label;
      std::uint32_t disks;
      DiskPower power;
    };
    DiskPower big;                      // 3.5" nearline
    DiskPower small;                    // 2.5" low-power
    small.active_w = 2.5;
    small.standby_w = 0.15;
    small.spinup_j = 35.0;
    small.spinup_s = 5.0;
    const Fleet fleets[] = {
        {"4 x 3.5-inch (8 W)", 4, big},
        {"8 x 2.5-inch (2.5 W)", 8, small},
        {"16 x 2.5-inch (2.5 W)", 16, small},
        {"64 x 2.5-inch (2.5 W)", 64, small},
    };
    for (const auto& fl : fleets) {
      ArchiveParams p;
      p.placement = Placement::grouped;
      p.disks = fl.disks;
      p.power = fl.power;
      p.burst_rate_per_hour = 30.0;
      const auto r = RunArchive(p);
      t.row({fl.label, FormatDouble(r.energy_wh, 1),
             FormatDouble(r.average_power_w(p.duration_hours), 2),
             std::to_string(r.spinups), FormatDuration(r.mean_latency_s),
             FormatDouble(r.mean_disks_spinning, 2)});
    }
    t.print(std::cout);
  }
  bench::Note("shape check: grouped beats scattered except at the lowest "
              "rate (rows converge there); quadrupling the device count "
              "with right-provisioned spindles CUTS energy — the 'more "
              "devices may save power' finding — until standby floor "
              "grows back (64-disk row).");
  return 0;
}
