// Fig. 5 — effective application utilisation under checkpoint-restart.
//
// Paper: for balanced machines, Young/Daly-optimal checkpointing drives
// effective utilisation below 50% before ~2014; storage bandwidth that
// only grows at the per-disk trend (20%/yr) is far worse; yearly 25-50%
// checkpoint compression "makes the problem go away". Also: the disk
// count needed for balanced bandwidth grows ~67%/yr (cost blow-up).
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/failure/model.h"

using namespace pdsi;
using failure::StorageScenario;

int main() {
  bench::Header("Fig. 5: effective utilisation vs year",
                "utilisation crosses under 50% before ~2014 (balanced, "
                "conservative chip growth)");

  failure::UtilizationModelParams params;
  params.mtti.chip_doubling_months = 30.0;  // paper's concern case
  failure::UtilizationModel model(params);

  PrintBanner(std::cout, "analytic projection (Young-optimal interval)");
  Table t({"year", "MTTI", "ckpt(balanced)", "util(balanced)",
           "util(disk-trend)", "util(compress)"});
  for (int year = 2008; year <= 2020; ++year) {
    const double y = year;
    t.row({std::to_string(year),
           FormatDuration(model.mtti().mtti_seconds(y)),
           FormatDuration(model.checkpoint_seconds(y, StorageScenario::balanced)),
           FormatDouble(100.0 * model.utilization(y, StorageScenario::balanced), 1) + "%",
           FormatDouble(100.0 * model.utilization(y, StorageScenario::disk_trend), 1) + "%",
           FormatDouble(100.0 * model.utilization(y, StorageScenario::compression), 1) + "%"});
  }
  t.print(std::cout);

  for (auto s : {StorageScenario::balanced, StorageScenario::disk_trend,
                 StorageScenario::compression}) {
    const double y = model.year_crossing_below(0.5, s);
    std::cout << "50% crossing, " << failure::StorageScenarioName(s) << ": "
              << (y > 2030.0 ? "not before 2030" : FormatDouble(y, 2)) << "\n";
  }

  // Process pairs: the report's escape hatch once checkpointing drops
  // under 50%.
  PrintBanner(std::cout, "process pairs vs checkpoint-restart (balanced storage)");
  {
    Table p({"year", "checkpoint-restart", "process pairs", "winner"});
    for (int year : {2008, 2010, 2012, 2014, 2016}) {
      const double cr = model.utilization(year, StorageScenario::balanced);
      const double pp = model.pairs_utilization(year, StorageScenario::balanced);
      p.row({std::to_string(year), FormatDouble(100.0 * cr, 1) + "%",
             FormatDouble(100.0 * pp, 1) + "%",
             cr >= pp ? "checkpointing" : "process pairs"});
    }
    p.print(std::cout);
    std::cout << "pairs overtake checkpointing in "
              << FormatDouble(model.year_pairs_win(StorageScenario::balanced), 2)
              << " (paper: once utilisation heads under 50%, running two "
                 "copies becomes the better deal)\n";
  }

  // Cross-check the analytic curve with the event-driven simulator.
  PrintBanner(std::cout, "event-driven validation (selected years)");
  Table v({"year", "analytic util", "simulated util", "failures"});
  Rng rng(7);
  for (int year : {2008, 2012, 2016}) {
    const double y = year;
    const double delta =
        model.checkpoint_seconds(y, StorageScenario::balanced);
    const double mtti = model.mtti().mtti_seconds(y);
    failure::CheckpointSimParams sp;
    sp.checkpoint_seconds = delta;
    sp.restart_seconds = 2.0 * delta;
    sp.mtti_seconds = mtti;
    sp.interval = failure::YoungOptimalInterval(delta, mtti);
    sp.work_seconds = 2000.0 * sp.interval;
    const auto sim = failure::SimulateCheckpointing(sp, rng);
    v.row({std::to_string(year),
           FormatDouble(100.0 * model.utilization(y, StorageScenario::balanced), 1) + "%",
           FormatDouble(100.0 * sim.utilization, 1) + "%",
           std::to_string(sim.failures)});
  }
  v.print(std::cout);

  // Cost side: disks needed for balanced bandwidth (+100%/yr) when a
  // disk's own bandwidth grows 20%/yr => disk count grows ~67%/yr.
  PrintBanner(std::cout, "disk count for balanced bandwidth");
  Table d({"year", "relative bw needed", "relative disks", "growth/yr"});
  double prev = 1.0;
  for (int year = 2008; year <= 2016; year += 2) {
    const double years = year - 2008.0;
    const double bw = std::pow(2.0, years);
    const double disks = bw / std::pow(1.2, years);
    d.row({std::to_string(year), FormatDouble(bw, 0) + "x",
           FormatDouble(disks, 1) + "x",
           year == 2008 ? "-"
                        : FormatDouble(100.0 * (std::pow(disks / prev, 0.5) - 1.0), 0) + "%"});
    prev = disks;
  }
  d.print(std::cout);
  bench::Note("paper: disk count growing ~67%/yr makes balanced storage "
              "cost untenable; compression column shows the escape hatch.");
  return 0;
}
