// Ablation — PLFS design choices (§1.1 extension list, SC09 design).
//
// Axes exercised on a fixed N-1 strided checkpoint:
//  * index buffering (one index write per sync vs per record),
//  * index pattern compression (strided runs -> single records),
//  * delayed-write batching ("burst buffer" style write-behind),
//  * hostdir fan-out (metadata pressure of container creation).
// Also reports the read-back (restart) phase, where index size and merge
// cost show up.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;
using plfs::Options;

int main() {
  bench::Header("Ablation: PLFS design choices",
                "index buffering & compression, write batching, hostdir "
                "fan-out; N-1 strided 48 ranks x 8 KiB x 256");

  const auto cfg = pfs::PfsConfig::LustreLike(8);
  workload::CheckpointSpec spec{workload::Pattern::n1_strided, 48,
                                8 * KiB, 256};

  struct Variant {
    const char* label;
    Options opt;
  };
  std::vector<Variant> variants;
  {
    Options base;
    variants.push_back({"plfs defaults", base});
    Options v = base;
    v.index_buffering = false;
    variants.push_back({"- index buffering (write per record)", v});
    v = base;
    v.index_compression = false;
    variants.push_back({"- index compression", v});
    v = base;
    v.write_buffer_bytes = 4 * MiB;
    variants.push_back({"+ 4 MiB write-behind batching", v});
    v = base;
    v.num_hostdirs = 1;
    variants.push_back({"hostdir fan-out = 1", v});
    v = base;
    v.num_hostdirs = 48;
    variants.push_back({"hostdir fan-out = 48", v});
  }

  PrintBanner(std::cout, "write phase");
  Table t({"variant", "checkpoint", "bandwidth", "vs default"});
  double base_seconds = 0.0;
  for (const auto& v : variants) {
    const auto r = workload::RunPlfsCheckpoint(cfg, spec, v.opt);
    if (base_seconds == 0.0) base_seconds = r.seconds;
    t.row({v.label, FormatDuration(r.seconds), FormatRate(r.bandwidth()),
           FormatDouble(base_seconds / r.seconds, 2) + "x"});
  }
  t.print(std::cout);

  PrintBanner(std::cout, "read-back (restart) phase: compression effect");
  Table r({"variant", "write", "restart read", "restart bw"});
  for (const char* which : {"compressed", "uncompressed"}) {
    Options opt;
    opt.index_compression = std::string(which) == "compressed";
    const auto rt = workload::RunPlfsRoundTrip(cfg, spec, opt);
    r.row({std::string("index ") + which, FormatDuration(rt.write.seconds),
           FormatDuration(rt.read.seconds), FormatRate(rt.read.bandwidth())});
  }
  r.print(std::cout);
  bench::Note("shape check: per-record index writes hurt most; "
              "compression matters on the restart path (index volume); "
              "fan-out=1 serialises container creation on one directory.");
  return 0;
}
