// Extension — tunable consistency models (pdsi::consist): the throughput
// a parallel file system buys back per consistency relaxation, after
// Wang et al.'s POSIX / session / commit / MPI-IO hierarchy
// (arXiv 2402.14105). Two workload families, each swept over all four
// models, with and without an active fault plan:
//
//   1. N clients strided over one shared file under whole-file locking —
//      the pathological case: POSIX serialises every write through the
//      lock manager (revocation per alternating writer), session trades
//      the lock charges for open/close publishes, commit for one sync
//      publish, MPI-IO for the amortised collective sync. Records are
//      byte-disjoint so relaxation never changes the bytes, only the
//      coordination cost.
//   2. File-per-process checkpoint+readback — the control: with no
//      sharing there is nothing to relax, and all four models run the
//      identical op sequence in identical virtual time.
//
// Every run is audited: the recorded consist trace is fed to the
// ConsistencyChecker for the model the run claims, every byte read is
// verified against the written pattern, and the sweep asserts throughput
// is monotonically non-decreasing as the model relaxes. Any violation
// fails the bench (exit 1), so CI cannot ship a relaxation that lies.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/fault/fault.h"
#include "pdsi/obs/obs.h"
#include "pdsi/obs/profile.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

using namespace pdsi;

namespace {

constexpr std::uint64_t kRec = 64 * KiB;  // one lock unit per record

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

struct SweepParams {
  bool shared = true;  ///< strided shared file vs file-per-process
  bool faulty = false; ///< active fault plan (slow disks + dropped RPCs)
  int ranks = 8;
  int rounds = 12;
};

struct RunResult {
  double makespan_s = 0.0;
  double mbs = 0.0;
  double lock_wait_s = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t lock_conflicts = 0;
  std::uint64_t lock_skips = 0;
  std::uint64_t publishes = 0;
  std::uint64_t retries = 0;
  bool bytes_ok = false;
  consist::CheckResult check;
  std::string first_violation;
};

std::uint32_t Tag(int ranks, int round, int rank) {
  return static_cast<std::uint32_t>(1000 + round * ranks + rank);
}

/// One model × one workload family, on a fresh cluster with its own
/// tracer/registry. The timed window covers create/open through the last
/// barrier (shared) or last readback (fpp); teardown closes land in the
/// trace (the checker sees them) but not in the makespan.
RunResult RunOne(consist::ConsistencyModel model, const SweepParams& p,
                 const std::string& trace_path) {
  obs::Registry reg;
  obs::Tracer tracer;
  obs::Context ctx;
  ctx.tracer = &tracer;
  ctx.registry = &reg;

  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.consistency = model;
  cfg.record_consist_ops = true;
  // The shared-file family runs under the degenerate whole-file lock —
  // the serialisation the relaxed models exist to avoid. Records stay
  // byte-disjoint, so the checker's POSIX conflict scan stays quiet.
  if (p.shared) cfg.locking = pfs::LockProtocol::whole_file;

  // Seed chosen so the 4-server draw actually degrades a disk; crashes
  // stay off so every op eventually succeeds and the trace stays clean.
  fault::FaultPlan plan;
  plan.seed = 99;
  if (p.faulty) {
    plan.slow_disk_prob = 0.25;
    plan.slow_disk_factor = 3.0;
    plan.rpc_drop_prob = 0.02;
  }

  sim::VirtualScheduler sched(static_cast<std::size_t>(p.ranks));
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  fault::FaultInjector inj(plan, cfg.num_oss, &ctx);
  if (p.faulty) cluster.set_fault(&inj);

  const bool session = model == consist::ConsistencyModel::session;
  const bool commit = model == consist::ConsistencyModel::commit;
  const bool mpiio = model == consist::ConsistencyModel::mpiio;

  std::vector<std::size_t> ids;
  for (int r = 0; r < p.ranks; ++r) ids.push_back(static_cast<std::size_t>(r));
  sim::VirtualBarrier barrier(sched, ids);

  std::vector<double> ends(static_cast<std::size_t>(p.ranks), 0.0);
  std::atomic<bool> ok{true};

  std::vector<std::thread> threads;
  for (int r = 0; r < p.ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, static_cast<std::size_t>(r));
      pfs::FileHandle fh = -1;
      if (p.shared) {
        if (r == 0) {
          fh = *client.create("/shared");
          if (session) client.close(fh);
          barrier.arrive(static_cast<std::size_t>(r));
        } else {
          barrier.arrive(static_cast<std::size_t>(r));
          if (!session) fh = *client.open("/shared");
        }
        for (int k = 0; k < p.rounds; ++k) {
          const std::uint64_t woff =
              static_cast<std::uint64_t>(k * p.ranks + r) * kRec;
          if (session) fh = *client.open("/shared");
          if (!client.write(fh, woff, MakePattern(Tag(p.ranks, k, r), woff, kRec))
                   .ok()) {
            ok = false;
          }
          if (session) {
            if (!client.close(fh).ok()) ok = false;
          } else if (commit || mpiio) {
            if (!client.fsync(fh).ok()) ok = false;
          }
          barrier.arrive(static_cast<std::size_t>(r));
          const int tgt = (r + 1 + k) % p.ranks;
          const std::uint64_t roff =
              static_cast<std::uint64_t>(k * p.ranks + tgt) * kRec;
          if (session) fh = *client.open("/shared");
          if (mpiio) {
            if (!client.fsync(fh).ok()) ok = false;
          }
          Bytes out(kRec);
          auto n = client.read(fh, roff, out);
          if (!n.ok() || *n != kRec ||
              FindPatternMismatch(Tag(p.ranks, k, tgt), roff, out) !=
                  kNoMismatch) {
            ok = false;
          }
          if (session) client.close(fh);
          barrier.arrive(static_cast<std::size_t>(r));
        }
        ends[static_cast<std::size_t>(r)] = client.now();
        if (!session && fh >= 0) client.close(fh);
      } else {
        // File-per-process: the identical op sequence under every model —
        // no cross-client visibility is needed, so no publishes either.
        fh = *client.create("/ckpt." + std::to_string(r));
        for (int k = 0; k < p.rounds; ++k) {
          const std::uint64_t off = static_cast<std::uint64_t>(k) * kRec;
          if (!client.write(fh, off, MakePattern(Tag(p.ranks, k, r), off, kRec))
                   .ok()) {
            ok = false;
          }
          Bytes out(kRec);
          auto n = client.read(fh, off, out);
          if (!n.ok() || *n != kRec ||
              FindPatternMismatch(Tag(p.ranks, k, r), off, out) !=
                  kNoMismatch) {
            ok = false;
          }
        }
        ends[static_cast<std::size_t>(r)] = client.now();
        client.close(fh);
      }
      sched.finish(static_cast<std::size_t>(r));
    });
  }
  for (auto& t : threads) t.join();

  RunResult res;
  res.bytes = 2 * static_cast<std::uint64_t>(p.ranks) *
              static_cast<std::uint64_t>(p.rounds) * kRec;
  res.makespan_s = *std::max_element(ends.begin(), ends.end());
  res.mbs = static_cast<double>(res.bytes) / res.makespan_s / 1e6;
  res.bytes_ok = ok.load();
  res.lock_conflicts = reg.counter("pfs.lock_conflicts").value();
  res.lock_skips = reg.counter("consist.lock_skips").value();
  res.publishes = reg.counter("mds.publishes").value();
  res.retries = inj.retries();

  const auto events = obs::CollectEvents(tracer);
  for (const auto& e : events) {
    if (e.is_span() && e.name == "lock_wait") res.lock_wait_s += e.dur;
  }
  res.check = consist::CheckConsistency(events, model);
  if (!res.check.clean) {
    res.first_violation = consist::FormatViolation(res.check.first, events);
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      tracer.write_compact(out);
      std::cout << "trace: wrote " << tracer.size() << " events to "
                << trace_path << " (audit with `trace_tool " << trace_path
                << " --check " << consist::ConsistencyModelName(model)
                << "`)\n";
    } else {
      std::cerr << "trace: cannot open " << trace_path << "\n";
    }
  }
  return res;
}

/// Sweeps the four models over one workload family and reports one BENCH
/// row per model plus a summary row (monotonicity + relaxation speedup).
bool SweepScenario(const std::string& name, const SweepParams& p,
                   bench::JsonReport& json, const std::string& trace_base) {
  PrintBanner(std::cout, "scenario: " + name + " (" + std::to_string(p.ranks) +
                             " ranks x " + std::to_string(p.rounds) +
                             " rounds)");
  Table tbl({"model", "throughput", "makespan", "lock wait", "conflicts",
             "publishes", "retries", "checker"});
  std::vector<RunResult> runs;
  bool all_clean = true;
  for (consist::ConsistencyModel m : consist::kAllConsistencyModels) {
    const std::string mname(consist::ConsistencyModelName(m));
    const std::string tpath =
        trace_base.empty() ? "" : trace_base + "." + name + "." + mname + ".trace";
    RunResult res = RunOne(m, p, tpath);
    const bool run_ok = res.check.clean && res.bytes_ok;
    all_clean = all_clean && run_ok;
    tbl.row({mname, FormatRate(res.mbs * 1e6), FormatDuration(res.makespan_s),
             FormatDuration(res.lock_wait_s), FormatCount(res.lock_conflicts),
             FormatCount(res.publishes), FormatCount(res.retries),
             run_ok ? "clean" : "VIOLATION"});
    if (!res.check.clean) {
      std::cout << "checker: " << mname << ": " << res.first_violation << "\n";
    }
    if (!res.bytes_ok) {
      std::cout << "verify: " << mname << ": read bytes did not match the "
                << "written pattern\n";
    }
    json.str("scenario", name)
        .str("model", mname)
        .num("mbs", res.mbs)
        .num("makespan_s", res.makespan_s)
        .num("lock_wait_s", res.lock_wait_s)
        .num("lock_conflicts", static_cast<double>(res.lock_conflicts))
        .num("lock_skips", static_cast<double>(res.lock_skips))
        .num("publishes", static_cast<double>(res.publishes))
        .num("retries", static_cast<double>(res.retries))
        .num("checked_reads", static_cast<double>(res.check.stats.content_checks))
        .num("clean", run_ok ? 1.0 : 0.0);
    json.emit();
    runs.push_back(std::move(res));
  }
  tbl.print(std::cout);

  // The acceptance shape: relaxing the model never loses throughput.
  // (The fpp control runs the identical op stream, so its four makespans
  // are bit-identical and the comparison degenerates to equality.)
  bool monotone = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].mbs + 1e-9 * runs[i - 1].mbs < runs[i - 1].mbs) monotone = false;
  }
  const double speedup = runs.back().mbs / runs.front().mbs;
  const double reclaimed = runs.front().lock_wait_s - runs.back().lock_wait_s;
  std::cout << "relaxation: " << FormatDouble(speedup, 2)
            << "x mpiio-vs-posix, " << FormatDuration(reclaimed)
            << " of lock wait reclaimed, throughput "
            << (monotone ? "monotone non-decreasing" : "NOT MONOTONE") << "\n";
  json.str("scenario", name)
      .str("model", "summary")
      .num("monotone", monotone ? 1.0 : 0.0)
      .num("relax_speedup", speedup)
      .num("lock_wait_reclaimed_s", reclaimed)
      .num("all_clean", all_clean ? 1.0 : 0.0);
  json.emit();
  return all_clean && monotone;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFlag(argc, argv);
  bench::Header("Consistency-model throughput sweep (pdsi::consist)",
                "POSIX -> session -> commit -> MPI-IO relaxation reclaims "
                "lock-manager time on shared files (arXiv 2402.14105); every "
                "run is audited clean by the trace-driven checker");
  const std::string trace_base = bench::TraceFlag(argc, argv);
  bench::JsonReport json("ext16_consistency");

  SweepParams p;
  p.ranks = smoke ? 4 : 8;
  p.rounds = smoke ? 4 : 12;

  bool ok = true;
  p.shared = true;
  p.faulty = false;
  ok = SweepScenario("shared_nofault", p, json, trace_base) && ok;
  p.faulty = true;
  ok = SweepScenario("shared_fault", p, json, trace_base) && ok;
  p.shared = false;
  p.faulty = false;
  ok = SweepScenario("fpp_nofault", p, json, trace_base) && ok;
  p.faulty = true;
  ok = SweepScenario("fpp_fault", p, json, trace_base) && ok;

  bench::Note("shape check: shared-file POSIX pays the whole-file lock "
              "chain; session converts it to open/close publishes, commit "
              "to one sync publish, mpiio to the amortised collective "
              "fraction — strictly cheaper in that order. File-per-process "
              "is the control: no sharing, identical op stream, identical "
              "virtual time under all four models.");
  if (!ok) {
    std::cerr << "ext16_consistency: FAILED (checker violation or "
                 "non-monotone relaxation)\n";
    return 1;
  }
  return 0;
}
