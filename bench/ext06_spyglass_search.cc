// Extension — partitioned metadata search (§4.2.2 Content Indexing).
//
// Paper: "our approach is 10-1000 times faster than existing database
// systems at metadata search ... failures in a portion of the index only
// require that portion to be rebuilt, avoiding a scan of the entire file
// system." Wall-clock comparison of the partitioned index vs a
// full-scan baseline over a half-million-record crawl.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/spyglass/spyglass.h"

using namespace pdsi;
using namespace pdsi::spyglass;

namespace {

double TimeIt(const std::function<std::size_t()>& fn, int reps,
              std::size_t* results) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t total = 0;
  for (int i = 0; i < reps; ++i) total += fn();
  const auto t1 = std::chrono::steady_clock::now();
  *results = total / reps;
  return std::chrono::duration<double>(t1 - t0).count() / reps;
}

}  // namespace

int main() {
  bench::Header("Metadata search: partitioned index vs full scan",
                "10-1000x faster than DBMS scans; partial rebuild after "
                "index corruption");

  constexpr std::size_t kFiles = 500000;
  auto crawl = SyntheticCrawl(kFiles, 128, 256, 48, 2009);
  ScanBaseline baseline(crawl);
  SpyglassIndex index(crawl, {20000});
  std::cout << "crawl: " << FormatCount(static_cast<double>(kFiles))
            << " records, " << index.partition_count() << " partitions\n";

  struct NamedQuery {
    const char* label;
    Query q;
  };
  std::vector<NamedQuery> queries;
  {
    Query q;
    q.owner = crawl[999].owner;
    queries.push_back({"files of one user", q});
    q.extension = crawl[999].extension;
    queries.push_back({"one user's files of one type", q});
    Query r;
    r.extension = crawl[5].extension;
    r.min_size = 8 << 20;
    queries.push_back({"big files of one type", r});
    Query s;
    s.min_mtime = 360.0 * 86400;  // touched in the last ~5 days
    queries.push_back({"recently modified (any type)", s});
  }

  Table t({"query", "matches", "scan", "spyglass", "speedup",
           "partitions skipped"});
  for (const auto& nq : queries) {
    std::size_t scan_n = 0, idx_n = 0;
    const double scan_s =
        TimeIt([&] { return baseline.search(nq.q).size(); }, 5, &scan_n);
    const double idx_s =
        TimeIt([&] { return index.search(nq.q).size(); }, 5, &idx_n);
    t.row({nq.label, FormatCount(static_cast<double>(idx_n)),
           FormatDuration(scan_s), FormatDuration(idx_s),
           FormatDouble(scan_s / idx_s, 0) + "x",
           std::to_string(index.last_skipped()) + "/" +
               std::to_string(index.partition_count())});
  }
  t.print(std::cout);

  PrintBanner(std::cout, "index repair");
  SpyglassIndex damaged(crawl, {20000});
  const std::size_t partial = damaged.rebuild_partition(7, crawl);
  Table r({"strategy", "records rescanned", "fraction of namespace"});
  r.row({"partial rebuild (one partition)", FormatCount(static_cast<double>(partial)),
         FormatDouble(100.0 * partial / kFiles, 2) + "%"});
  r.row({"full rebuild (DBMS-style)", FormatCount(static_cast<double>(kFiles)),
         "100%"});
  r.print(std::cout);
  bench::Note("shape check: selective queries land in the 10-1000x band; "
              "the unselective recency query gains least (summaries only "
              "prune by max mtime).");
  return 0;
}
