// Table 1 — performance characteristics of the five flash devices
// (NERSC FLASH I/O evaluation).
//
// Paper: peak read/write bandwidth and 4K random IOPS for two SATA and
// three PCIe devices, measured with iozone. This harness runs the same
// sweeps against the FTL models and prints the same rows.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/storage/device_catalog.h"

using namespace pdsi;
using storage::SsdModel;
using storage::SsdParams;

namespace {

struct Row {
  double read_bw, write_bw, read_kiops, write_kiops;
};

Row Measure(const SsdParams& params) {
  Row row{};
  Rng rng(42);
  {
    SsdModel ssd(params);
    const std::uint64_t total = params.capacity_bytes / 2;
    double tw = 0, tr = 0;
    for (std::uint64_t off = 0; off < total; off += 1 * MiB) tw += ssd.write(off, 1 * MiB);
    for (std::uint64_t off = 0; off < total; off += 1 * MiB) tr += ssd.read(off, 1 * MiB);
    row.write_bw = static_cast<double>(total) / tw;
    row.read_bw = static_cast<double>(total) / tr;
  }
  {
    SsdModel ssd(params);
    const std::uint64_t pages = params.capacity_bytes / 4096;
    double tr = 0, tw = 0;
    constexpr int kOps = 4000;
    for (int i = 0; i < kOps; ++i) tr += ssd.read(rng.below(pages) * 4096, 4096);
    for (int i = 0; i < kOps; ++i) tw += ssd.write(rng.below(pages) * 4096, 4096);
    row.read_kiops = kOps / tr / 1e3;
    row.write_kiops = kOps / tw / 1e3;
  }
  return row;
}

}  // namespace

int main() {
  bench::Header("Table 1: flash device characteristics",
                "X25-M 200/100 MB/s 19.1/1.49 KIOPS; Colossus 200/200 "
                "5.21/1.85; ioDrive Duo 800/690 107/111; RamSan-20 "
                "700/675 143/156; tachION 1200/1200 156/118");

  // Paper numbers for side-by-side comparison, in catalog order.
  const struct {
    double rbw, wbw, riops, wiops;
  } paper[] = {{200, 100, 19.1, 1.49},
               {200, 200, 5.21, 1.85},
               {800, 690, 107, 111},
               {700, 675, 143, 156},
               {1200, 1200, 156, 118}};

  Table t({"device", "read MB/s", "(paper)", "write MB/s", "(paper)",
           "4K read KIOPS", "(paper)", "4K write KIOPS", "(paper)"});
  int i = 0;
  for (const auto& params : storage::AllFlashDevices()) {
    const Row r = Measure(params);
    t.row({params.name, FormatDouble(r.read_bw / 1e6, 0),
           FormatDouble(paper[i].rbw, 0), FormatDouble(r.write_bw / 1e6, 0),
           FormatDouble(paper[i].wbw, 0), FormatDouble(r.read_kiops, 1),
           FormatDouble(paper[i].riops, 1), FormatDouble(r.write_kiops, 2),
           FormatDouble(paper[i].wiops, 2)});
    ++i;
  }
  t.print(std::cout);

  // The reference spinning disk for contrast (~80 MB/s, ~90 IOPS).
  storage::DiskModel disk(storage::ReferenceSataDisk());
  Rng rng(7);
  double t_seq = 0, t_rand = 0;
  for (int i2 = 0; i2 < 100; ++i2) t_seq += disk.access(1, i2 * MiB, 1 * MiB);
  for (int i2 = 0; i2 < 500; ++i2) {
    t_rand += disk.access(1, rng.below(disk.params().capacity_bytes / 4096) * 4096, 4096);
  }
  std::cout << "reference SATA disk: " << FormatRate(100.0 * MiB / t_seq)
            << " streaming, " << FormatDouble(500 / t_rand, 0)
            << " random IOPS\n";
  bench::Note("shape check: model rates within ~15% of the table; flash "
              "random reads are orders of magnitude above disk; SATA-era "
              "random writes are far below their reads.");
  return 0;
}
