// §4.2.6 — diagnosis accuracy on a 20-server PVFS-like cluster.
//
// Paper: "at least 66% correct identification of a server suffering
// under an injected fault and essentially no falsely indicated servers"
// (iozone workload, injected hog / blocked-resource faults). Runs many
// trials per fault kind with varying seeds and fault locations.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/diagnosis/diagnosis.h"

using namespace pdsi;
using diagnosis::ExperimentParams;
using diagnosis::FaultKind;

int main() {
  bench::Header("Table: fault diagnosis accuracy (20-server cluster)",
                ">= 66% correct identification, ~0 false indictments");

  constexpr int kTrials = 8;
  Table t({"fault", "trials", "detected", "correct", "false alarms",
           "median windows-to-detect"});
  int healthy_false = 0;
  for (FaultKind kind : {FaultKind::disk_hog, FaultKind::network_loss,
                         FaultKind::cpu_hog, FaultKind::none}) {
    int detected = 0, correct = 0, false_alarm = 0;
    std::vector<double> latencies;
    for (int trial = 0; trial < kTrials; ++trial) {
      ExperimentParams p;
      p.servers = 20;
      p.clients = 16;
      p.windows = 20;
      p.fault = kind;
      p.faulty_server = static_cast<std::uint32_t>((trial * 7 + 3) % p.servers);
      p.severity = 3.0 + trial % 3;
      p.seed = 1000 + trial;
      const auto r = diagnosis::RunDiagnosisExperiment(p);
      detected += r.any_indictment;
      correct += r.correct;
      false_alarm += r.false_alarm;
      if (r.correct) latencies.push_back(r.windows_to_detect);
    }
    if (kind == FaultKind::none) healthy_false = detected;
    t.row({std::string(diagnosis::FaultKindName(kind)), std::to_string(kTrials),
           std::to_string(detected), std::to_string(correct),
           std::to_string(false_alarm),
           latencies.empty() ? "-" : FormatDouble(Percentile(latencies, 0.5), 1)});
  }
  t.print(std::cout);
  bench::Note("shape check: correct >= 2/3 of trials per fault kind; the "
              "healthy row (fault=none) shows " +
              std::to_string(healthy_false) + " false indictments.");
  return 0;
}
