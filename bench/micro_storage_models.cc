// Microbenchmarks: the storage service-time models themselves. These sit
// on the hot path of every simulated I/O, so their cost bounds how large
// a simulated system the harness can afford.
//
// Two outputs: google-benchmark wall-clock timings (how expensive the
// models are to evaluate) and BENCH_ JSON lines holding the models'
// *virtual-time* answers for a fixed op sequence — those are
// deterministic, so bench_diff can gate them byte-for-byte in CI.
// `--models-only` emits just the JSON (the CI mode); any other arguments
// are handed to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/rng.h"
#include "pdsi/storage/device_catalog.h"

using namespace pdsi;
using namespace pdsi::storage;

namespace {

void BM_DiskAccessSequential(benchmark::State& state) {
  DiskModel d(ReferenceSataDisk());
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.access(1, off, 65536));
    off += 65536;
  }
}
BENCHMARK(BM_DiskAccessSequential);

void BM_DiskAccessRandom(benchmark::State& state) {
  DiskModel d(ReferenceSataDisk());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.access(1, rng.below(1ull << 38), 4096));
  }
}
BENCHMARK(BM_DiskAccessRandom);

void BM_SsdSequentialWrite(benchmark::State& state) {
  SsdParams p = FlashDevice("fusionio-iodrive-duo");
  p.capacity_bytes = 256ull << 20;
  SsdModel ssd(p);
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.write(off % (p.capacity_bytes - 65536), 65536));
    off += 65536;
  }
  state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_SsdSequentialWrite);

void BM_SsdRandomWriteSteadyState(benchmark::State& state) {
  SsdParams p = FlashDevice("fusionio-iodrive-duo");
  p.capacity_bytes = 64ull << 20;
  SsdModel ssd(p);
  Rng rng(2);
  const std::uint64_t pages = p.capacity_bytes / 4096;
  // Pre-fill so GC is active during measurement.
  for (std::uint64_t i = 0; i < pages * 2; ++i) {
    ssd.write(rng.below(pages) * 4096, 4096);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.write(rng.below(pages) * 4096, 4096));
  }
}
BENCHMARK(BM_SsdRandomWriteSteadyState);

/// Fixed op sequences through each model; the summed service times are
/// pure functions of the parameters, so the emitted row is byte-stable.
void EmitModelAnswers() {
  bench::JsonReport json("micro_storage_models");
  constexpr int kOps = 1024;

  DiskModel seq(ReferenceSataDisk());
  double disk_seq_s = 0.0;
  for (int i = 0; i < kOps; ++i) {
    disk_seq_s += seq.access(1, static_cast<std::uint64_t>(i) * 65536, 65536);
  }

  DiskModel rnd(ReferenceSataDisk());
  Rng disk_rng(1);
  double disk_rand_s = 0.0;
  for (int i = 0; i < kOps; ++i) {
    disk_rand_s += rnd.access(1, disk_rng.below(1ull << 38), 4096);
  }

  SsdParams sp = FlashDevice("fusionio-iodrive-duo");
  sp.capacity_bytes = 256ull << 20;
  SsdModel ssd_seq(sp);
  double ssd_seq_write_s = 0.0;
  for (int i = 0; i < kOps; ++i) {
    ssd_seq_write_s += ssd_seq.write(static_cast<std::uint64_t>(i) * 65536, 65536);
  }

  SsdParams rp = FlashDevice("fusionio-iodrive-duo");
  rp.capacity_bytes = 64ull << 20;
  SsdModel ssd_rand(rp);
  Rng ssd_rng(2);
  const std::uint64_t pages = rp.capacity_bytes / 4096;
  for (std::uint64_t i = 0; i < pages * 2; ++i) {
    ssd_rand.write(ssd_rng.below(pages) * 4096, 4096);
  }
  double ssd_rand_steady_s = 0.0;
  for (int i = 0; i < kOps; ++i) {
    ssd_rand_steady_s += ssd_rand.write(ssd_rng.below(pages) * 4096, 4096);
  }

  json.num("ops", kOps)
      .num("disk_seq_s", disk_seq_s)
      .num("disk_rand_s", disk_rand_s)
      .num("ssd_seq_write_s", ssd_seq_write_s)
      .num("ssd_rand_steady_s", ssd_rand_steady_s)
      .num("ssd_write_amp", ssd_rand.stats().write_amplification());
  json.emit();
}

}  // namespace

int main(int argc, char** argv) {
  bool models_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--models-only") == 0) models_only = true;
  }
  EmitModelAnswers();
  if (models_only) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
