// Microbenchmarks: the storage service-time models themselves. These sit
// on the hot path of every simulated I/O, so their cost bounds how large
// a simulated system the harness can afford.
#include <benchmark/benchmark.h>

#include "pdsi/common/rng.h"
#include "pdsi/storage/device_catalog.h"

using namespace pdsi;
using namespace pdsi::storage;

namespace {

void BM_DiskAccessSequential(benchmark::State& state) {
  DiskModel d(ReferenceSataDisk());
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.access(1, off, 65536));
    off += 65536;
  }
}
BENCHMARK(BM_DiskAccessSequential);

void BM_DiskAccessRandom(benchmark::State& state) {
  DiskModel d(ReferenceSataDisk());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.access(1, rng.below(1ull << 38), 4096));
  }
}
BENCHMARK(BM_DiskAccessRandom);

void BM_SsdSequentialWrite(benchmark::State& state) {
  SsdParams p = FlashDevice("fusionio-iodrive-duo");
  p.capacity_bytes = 256ull << 20;
  SsdModel ssd(p);
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.write(off % (p.capacity_bytes - 65536), 65536));
    off += 65536;
  }
  state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_SsdSequentialWrite);

void BM_SsdRandomWriteSteadyState(benchmark::State& state) {
  SsdParams p = FlashDevice("fusionio-iodrive-duo");
  p.capacity_bytes = 64ull << 20;
  SsdModel ssd(p);
  Rng rng(2);
  const std::uint64_t pages = p.capacity_bytes / 4096;
  // Pre-fill so GC is active during measurement.
  for (std::uint64_t i = 0; i < pages * 2; ++i) {
    ssd.write(rng.below(pages) * 4096, 4096);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.write(rng.below(pages) * 4096, 4096));
  }
}
BENCHMARK(BM_SsdRandomWriteSteadyState);

}  // namespace
