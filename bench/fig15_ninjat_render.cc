// Fig. 15 — Ninjat visualisations of concurrent writes to a shared file.
//
// Paper: traces captured by PLFS from an anonymous LANL application show
// an N-1 strided pattern; the left image plots each write at (time,
// offset) coloured by rank, the right image wraps the file into a
// rectangle coloured by writer. This bench regenerates both views from a
// simulated trace and prints the ASCII file map (PPMs land in --out-dir,
// defaulting to the directory holding the binary).
#include <iostream>

#include "bench_util.h"
#include "pdsi/ninjat/ninjat.h"
#include "pdsi/pfs/config.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;

int main(int argc, char** argv) {
  bench::Header("Fig. 15: Ninjat views of an N-1 strided checkpoint",
                "strided interleaving visible as repeating rank stripes");
  const std::string out_dir = bench::OutDirFlag(argc, argv);

  workload::CheckpointSpec spec;
  spec.pattern = workload::Pattern::n1_strided;
  spec.ranks = 8;
  spec.record_bytes = 47 * KiB;
  spec.records_per_rank = 16;

  workload::WriteTrace trace;
  workload::RunDirectCheckpoint(pfs::PfsConfig::PanFsLike(4), spec, &trace);
  std::cout << "trace: " << trace.size() << " writes, "
            << FormatBytes(static_cast<double>(spec.total_bytes())) << " total\n";

  const auto time_offset = ninjat::RenderTimeOffset(trace, {800, 400});
  const auto file_map = ninjat::RenderFileMap(trace, spec.total_bytes(), {512, 256});
  const std::string to = out_dir + "/fig15_time_offset.ppm";
  const std::string fm = out_dir + "/fig15_file_map.ppm";
  const bool ppm_ok = time_offset.write_ppm(to).ok() && file_map.write_ppm(fm).ok();
  std::cout << "PPM output: " << (ppm_ok ? to + ", " + fm : "FAILED") << "\n";

  PrintBanner(std::cout, "file map (one char per region, letter = rank)");
  std::cout << ninjat::AsciiFileMap(trace, spec.total_bytes(), 64, 16);
  bench::Note("shape check: rows repeat abcdefgh... — each rank's records "
              "interleave through the whole file (N-1 strided signature).");
  return 0;
}
