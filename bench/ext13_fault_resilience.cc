// Extension — fault resilience: the simulator meets the failure regime
// the PDSI report is about (component failures dominate petascale
// behaviour; Fig. 4 MTTI projection).
//
// Three studies of pdsi::fault, all on virtual time and byte-reproducible:
//   1. goodput vs fault rate — the N-1 strided checkpoint through the
//      full PfsClient stack while OSS crashes and dropped RPCs trigger
//      client timeout/backoff retries;
//   2. degraded restart read — a PLFS container read back with one OSS
//      down: plfs::Reader reports zero-filled holes plus an error count
//      instead of aborting the restart;
//   3. coupled checkpoint model — failure::CheckpointSim driven by the
//      injector's actual crash schedule instead of the analytic Weibull
//      process, against the analytic run at the same MTTI.
//
// --smoke shrinks every sweep for the CI lane; BENCH_ lines stay present
// and parseable.
#include <algorithm>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/fault/fault.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/pfs_backend.h"
#include "pdsi/plfs/reader.h"
#include "pdsi/plfs/writer.h"

using namespace pdsi;

namespace {

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

struct CheckpointRun {
  double seconds = 0.0;
  std::uint64_t bytes_ok = 0;
  std::uint64_t write_errors = 0;
};

// N-1 strided checkpoint through the full client stack (locks, striping,
// retry path). Failed writes are counted and skipped — the application
// keeps going, so goodput is successful bytes over wall time.
CheckpointRun RunFaultyCheckpoint(pfs::PfsCluster& cluster, std::uint32_t ranks,
                                  std::uint64_t record, std::uint32_t records) {
  sim::VirtualScheduler& sched = cluster.scheduler();
  std::vector<std::size_t> all(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) all[r] = r;
  sim::VirtualBarrier barrier(sched, all);

  CheckpointRun out;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      pfs::FileHandle fh{};
      if (r == 0) {
        fh = *client.create("/ckpt");
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        fh = *client.open("/ckpt");
      }
      std::uint64_t ok_bytes = 0;
      std::uint64_t errors = 0;
      for (std::uint32_t i = 0; i < records; ++i) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(i) * ranks + r) * record;
        Bytes data(record);  // contents irrelevant in timing mode
        if (client.write(fh, off, data).ok()) {
          ok_bytes += record;
        } else {
          ++errors;
        }
      }
      client.close(fh);  // may fail if a server is down; the rank is done
      barrier.arrive(r);
      {
        std::lock_guard<std::mutex> lk(mu);
        out.seconds = std::max(out.seconds, client.now());
        out.bytes_ok += ok_bytes;
        out.write_errors += errors;
      }
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Fault resilience: injected OSS crashes, dropped RPCs, "
                "degraded restart reads",
                "Fig. 4 MTTI projection: at petascale the storage system is "
                "always partially failed; clients must retry, fail over, and "
                "restart from what survives");
  const bool smoke = SmokeFlag(argc, argv);
  bench::JsonReport json("ext13_fault_resilience");
  // --trace <path>: the mtbf=30s sweep row is traced (fault.* retry spans
  // interleaved with the oss/rank tracks); other rows stay untraced so
  // each track holds a single unambiguous run.
  bench::BenchObs trace(bench::TraceFlag(argc, argv),
                        bench::ProfileFlag(argc, argv),
                        "ext13_fault_resilience");

  // ---- 1. goodput vs fault rate -------------------------------------------
  PrintBanner(std::cout, "N-1 strided checkpoint vs injected faults "
                         "(timeout + exponential-backoff retries)");
  const std::uint32_t kRanks = smoke ? 4 : 8;
  const std::uint64_t kRecord = 47 * KiB;
  const std::uint32_t kRecords = smoke ? 8 : 24;

  // The whole checkpoint lasts well under a second of virtual time, so the
  // crash process is scaled to that window (a petascale hour compressed):
  // MTBF a handful of checkpoint-lengths, restart a large fraction of the
  // client's total retry budget (~160 ms) so some writes ride out a crash
  // and some exhaust their retries and fail.
  struct SweepPoint {
    const char* label;
    double mtbf_s;
    double restart_s;
    double drop_prob;
    bool traced;
    bool in_smoke;
  };
  std::vector<SweepPoint> sweep = {
      {"fault-free", 0.0, 0.0, 0.0, false, true},
      {"crash mtbf 1s", 1.0, 0.2, 0.0, false, false},
      {"crash mtbf 0.3s", 0.3, 0.2, 0.0, true, true},
      {"drop 0.1%", 0.0, 0.0, 1e-3, false, false},
      {"drop 2%", 0.0, 0.0, 2e-2, false, true},
  };
  if (smoke) {
    std::vector<SweepPoint> kept;
    for (const SweepPoint& pt : sweep) {
      if (pt.in_smoke) kept.push_back(pt);
    }
    sweep = kept;
  }

  Table t1({"faults", "wall", "goodput", "errors", "retries", "failovers"});
  double clean_goodput = 0.0;
  for (const SweepPoint& pt : sweep) {
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.oss_mtbf_s = pt.mtbf_s;
    plan.oss_restart_s = pt.restart_s;
    plan.rpc_drop_prob = pt.drop_prob;
    plan.horizon_s = 60.0;  // generous slack past the run's virtual end

    obs::Context* ctx = pt.traced ? trace.ctx() : nullptr;
    sim::VirtualScheduler sched(kRanks);
    pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
    cfg.store_data = false;
    pfs::PfsCluster cluster(cfg, sched, nullptr, ctx);
    fault::FaultInjector inj(plan, cluster.num_oss(), ctx);
    cluster.set_fault(&inj);

    const CheckpointRun run = RunFaultyCheckpoint(cluster, kRanks, kRecord, kRecords);
    const double goodput = static_cast<double>(run.bytes_ok) / run.seconds;
    if (!plan.active()) clean_goodput = goodput;
    t1.row({pt.label, FormatDuration(run.seconds), FormatRate(goodput),
            std::to_string(run.write_errors), std::to_string(inj.retries()),
            std::to_string(inj.failovers())});
    json.str("mode", "sweep")
        .str("faults", pt.label)
        .num("oss_mtbf_s", pt.mtbf_s)
        .num("rpc_drop_prob", pt.drop_prob)
        .num("wall_seconds", run.seconds)
        .num("goodput_mbs", goodput / 1e6)
        .num("write_errors", static_cast<double>(run.write_errors))
        .num("retries", static_cast<double>(inj.retries()))
        .num("dropped_rpcs", static_cast<double>(inj.dropped_rpcs()))
        .num("failovers", static_cast<double>(inj.failovers()))
        .num("crashes", static_cast<double>(inj.crash_count()));
    json.emit();
  }
  t1.print(std::cout);
  bench::Note("the fault-free row is byte-identical to a build without the "
              "fault layer (zero plan = zero behavioural change at " +
              FormatRate(clean_goodput) + "); crash windows turn into timed-out "
              "writes and lost goodput, dropped RPCs into cheap retries");

  // ---- 2. degraded restart read -------------------------------------------
  PrintBanner(std::cout, "PLFS restart read with one OSS down "
                         "(degraded_reads: holes + error count, no abort)");
  {
    sim::VirtualScheduler sched(1);
    pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(8);
    pfs::PfsCluster cluster(cfg, sched);
    auto backend = plfs::MakePfsBackend(cluster, 0);
    plfs::WriteClock wclock{0};
    plfs::Options wopt;

    // Two ranks, disjoint halves of the logical file, 64 KiB records.
    const std::uint64_t kHalf = smoke ? 512 * KiB : 2 * MiB;
    const std::uint64_t kRec = 64 * KiB;
    for (std::uint32_t rank = 0; rank < 2; ++rank) {
      auto w = plfs::Writer::Open(*backend, "/restart", rank, wopt, wclock);
      const std::uint64_t base = rank * kHalf;
      Bytes rec(kRec, 0xAB);
      for (std::uint64_t o = 0; o < kHalf; o += kRec) (*w)->write(base + o, rec);
      (*w)->close();
    }

    // Map each rank's data dropping onto servers so we can crash a server
    // that holds rank 1's log but not rank 0's (partial loss, not total).
    pfs::PfsClient lister(cluster, 0);
    std::vector<std::vector<std::uint32_t>> data_servers(2);
    auto top = lister.readdir("/restart");
    for (const auto& name : *top) {
      if (name.rfind("hostdir.", 0) != 0) continue;
      const std::string hostdir = "/restart/" + name;
      const auto entries = lister.readdir(hostdir);
      for (const auto& e : *entries) {
        if (e.rfind("data.", 0) != 0) continue;
        const std::uint32_t rank = static_cast<std::uint32_t>(
            std::stoul(e.substr(5)));
        auto inode = cluster.mds().lookup(hostdir + "/" + e);
        const std::uint64_t stripes =
            (inode->size + cfg.stripe_unit - 1) / cfg.stripe_unit;
        for (std::uint64_t s = 0; s < stripes; ++s) {
          data_servers[rank].push_back(cluster.placement().server_for(
              inode->file_id, s, cluster.num_oss()));
        }
      }
    }
    std::uint32_t victim = cluster.num_oss();
    for (std::uint32_t s : data_servers[1]) {
      if (std::find(data_servers[0].begin(), data_servers[0].end(), s) ==
          data_servers[0].end()) {
        victim = s;
        break;
      }
    }
    // Placement is deterministic, so this only triggers if the two logs
    // happen to share every server — degrade both rather than neither.
    if (victim == cluster.num_oss()) victim = data_servers[1].front();

    // Build the global index while the cluster is healthy (a degraded
    // *build* is unit-tested; here the restart loses a data server after
    // the index merge), then crash the victim for good.
    plfs::Options ropt;
    ropt.degraded_reads = true;
    auto reader = plfs::Reader::Open(*backend, "/restart", ropt);
    fault::FaultPlan fp;
    fp.read_failover = false;  // single-copy: reads must fail through
    fault::FaultInjector inj(fp, cluster.num_oss());
    inj.force_down(victim, 0.0, 1e18);
    cluster.set_fault(&inj);

    Bytes out(2 * kHalf);
    auto n = (*reader)->read(0, out);
    const std::uint64_t zeros = static_cast<std::uint64_t>(
        std::count(out.begin(), out.end(), static_cast<std::uint8_t>(0)));
    Table t2({"metric", "value"});
    t2.row({"logical bytes", FormatBytes(static_cast<double>(out.size()))});
    t2.row({"returned", n.ok() ? FormatBytes(static_cast<double>(*n)) : "error"});
    t2.row({"zero-filled (lost)", FormatBytes(static_cast<double>(zeros))});
    t2.row({"read errors", std::to_string((*reader)->read_errors())});
    t2.print(std::cout);
    bench::Note("the restart keeps " +
                FormatDouble(100.0 * static_cast<double>(out.size() - zeros) /
                                 static_cast<double>(out.size()), 1) +
                "% of the checkpoint instead of aborting; without "
                "degraded_reads the same read returns EIO");
    json.str("mode", "degraded_read")
        .num("bytes", static_cast<double>(out.size()))
        .num("returned", n.ok() ? static_cast<double>(*n) : -1.0)
        .num("zero_bytes", static_cast<double>(zeros))
        .num("read_errors", static_cast<double>((*reader)->read_errors()))
        .num("survived_fraction",
             static_cast<double>(out.size() - zeros) /
                 static_cast<double>(out.size()));
    json.emit();
  }

  // ---- 3. checkpoint sim on the injected schedule --------------------------
  PrintBanner(std::cout, "Fig. 5 checkpoint sim: analytic Weibull vs the "
                         "injector's actual crash schedule (same MTTI)");
  {
    fault::FaultPlan mplan;
    mplan.seed = 11;
    mplan.oss_mtbf_s = 24 * kHour;  // the whole machine as one component
    mplan.oss_restart_s = 10 * kMinute;
    mplan.horizon_s = 365 * kDay;
    fault::FaultInjector machine(mplan, 1);
    const std::vector<double> schedule = machine.interrupt_times();

    failure::CheckpointSimParams p;
    p.work_seconds = (smoke ? 10 : 60) * kDay;
    p.interval = kHour;
    p.checkpoint_seconds = 5 * kMinute;
    p.restart_seconds = 10 * kMinute;
    p.mtti_seconds = 24 * kHour;

    Rng ra(2026);
    const auto analytic = failure::SimulateCheckpointing(p, ra);
    p.interrupts = &schedule;
    Rng ri(2026);
    const auto injected = failure::SimulateCheckpointing(p, ri);
    Rng ri2(2026);
    const auto injected2 = failure::SimulateCheckpointing(p, ri2);

    Table t3({"failure source", "failures", "utilisation", "wall"});
    t3.row({"analytic Weibull", std::to_string(analytic.failures),
            FormatDouble(100.0 * analytic.utilization, 1) + "%",
            FormatDuration(analytic.wall_seconds)});
    t3.row({"injected schedule", std::to_string(injected.failures),
            FormatDouble(100.0 * injected.utilization, 1) + "%",
            FormatDuration(injected.wall_seconds)});
    t3.print(std::cout);
    bench::Note("same MTTI, two draws of the same process: the injected "
                "schedule couples lost work to faults the rest of the "
                "simulator actually experienced; rerunning the schedule is "
                "bit-stable (" +
                std::string(injected.wall_seconds == injected2.wall_seconds
                                ? "verified"
                                : "VIOLATED") +
                ")");
    json.str("mode", "ckpt_sim")
        .str("source", "analytic")
        .num("failures", static_cast<double>(analytic.failures))
        .num("utilization", analytic.utilization)
        .num("wall_seconds", analytic.wall_seconds);
    json.emit();
    json.str("mode", "ckpt_sim")
        .str("source", "injected")
        .num("failures", static_cast<double>(injected.failures))
        .num("utilization", injected.utilization)
        .num("wall_seconds", injected.wall_seconds)
        .num("deterministic",
             injected.wall_seconds == injected2.wall_seconds ? 1.0 : 0.0);
    json.emit();
  }
  return 0;
}
