// Extension — Reed-Solomon coding for extended RAID / DiskReduce
// (Curry IPDPS'08 & PDSW'08; Fan PDSW'09).
//
// SNL: arbitrary-dimension Reed-Solomon beyond RAID-6 (their GPU hit
// hundreds of MB/s); CMU DiskReduce: replace 3x replication in DISC
// storage with erasure codes to reclaim capacity. Reports encode and
// reconstruct throughput across geometries plus the storage-overhead
// comparison that motivates DiskReduce.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/reedsolomon/reedsolomon.h"

using namespace pdsi;
using namespace pdsi::reedsolomon;

int main() {
  bench::Header("Reed-Solomon erasure coding (extended RAID / DiskReduce)",
                "arbitrary parity counts; erasure codes reclaim the "
                "capacity 3x replication burns");

  PrintBanner(std::cout, "throughput by geometry (16 MiB of data per run)");
  Table t({"k+m", "tolerates", "overhead", "encode", "reconstruct(m lost)"});
  bench::JsonReport json("ext09_reed_solomon");
  Rng rng(17);
  for (const auto& [k, m] : {std::pair<int, int>{4, 2}, {6, 3}, {10, 4},
                            {12, 2}, {17, 3}}) {
    ReedSolomon rs(k, m);
    const std::size_t shard = (16 * MiB) / k;
    std::vector<Bytes> data(k, Bytes(shard));
    for (auto& s : data) {
      for (auto& b : s) b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto e0 = std::chrono::steady_clock::now();
    auto parity = rs.encode(data);
    const auto e1 = std::chrono::steady_clock::now();

    std::vector<Bytes> shards = data;
    shards.insert(shards.end(), parity.begin(), parity.end());
    for (int i = 0; i < m; ++i) shards[i].clear();  // lose m data shards
    const auto r0 = std::chrono::steady_clock::now();
    rs.reconstruct(shards);
    const auto r1 = std::chrono::steady_clock::now();
    bool ok = true;
    for (int i = 0; i < k; ++i) ok &= shards[i] == data[i];
    if (!ok) {
      std::cerr << "RECONSTRUCTION MISMATCH\n";
      return 1;
    }
    const double enc_s = std::chrono::duration<double>(e1 - e0).count();
    const double rec_s = std::chrono::duration<double>(r1 - r0).count();
    t.row({std::to_string(k) + "+" + std::to_string(m),
           std::to_string(m) + " losses",
           FormatDouble(100.0 * m / k, 0) + "%",
           FormatRate(16.0 * MiB / enc_s), FormatRate(16.0 * MiB / rec_s)});

    // Machine row for bench_diff: deterministic fields only (parity
    // content fingerprint and round-trip outcome), never wall rates.
    std::uint64_t parity_hash = 0;
    for (const auto& shard : parity) {
      parity_hash = parity_hash * 1000003 + HashBytes(shard);
    }
    json.num("k", k)
        .num("m", m)
        .num("shard_bytes", static_cast<double>(shard))
        .num("overhead_pct", 100.0 * m / k)
        .num("parity_hash32", static_cast<double>(parity_hash & 0xffffffffu))
        .num("recon_ok", ok ? 1.0 : 0.0);
    json.emit();
  }
  t.print(std::cout);

  PrintBanner(std::cout, "DiskReduce: capacity to store 1 PB durably");
  Table d({"scheme", "raw capacity needed", "overhead", "tolerates"});
  d.row({"3x replication (HDFS default)", "3.00 PB", "200%", "2 losses"});
  d.row({"RS(6,3)", "1.50 PB", "50%", "3 losses"});
  d.row({"RS(10,4)", "1.40 PB", "40%", "4 losses"});
  d.row({"RS(12,2) (RAID-6-like)", "1.17 PB", "17%", "2 losses"});
  d.print(std::cout);
  bench::Note("shape check: encode cost grows with m (parity rows) and "
              "reconstruct with erasure count; erasure coding halves the "
              "raw capacity of replication at equal-or-better tolerance "
              "(the DiskReduce argument).");
  return 0;
}
