// Fig. 10 — Argon performance insulation for shared storage.
//
// Paper: a job doing many small accesses cannot degrade a sequential job
// beyond its share plus a small guard band (typically < 10% of the
// share); on striped multi-server storage, unsynchronised slices make
// things worse than no insulation for the synchronised client, while
// co-scheduled slices deliver ~90% of the best case.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "pdsi/argon/argon.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"

using namespace pdsi;
using argon::ArgonParams;
using argon::JobKind;
using argon::JobSpec;
using argon::Scheduler;

namespace {

JobSpec Streamer() {
  JobSpec j;
  j.kind = JobKind::streamer;
  j.chunk_bytes = 512 * KiB;
  return j;
}

JobSpec Scanner() {
  JobSpec j;
  j.kind = JobKind::scanner;
  j.outstanding_per_server = 8;
  j.request_bytes = 16 * KiB;
  return j;
}

ArgonParams Config(std::uint32_t servers, Scheduler sched, bool cosched) {
  ArgonParams p;
  p.servers = servers;
  p.scheduler = sched;
  p.coscheduled = cosched;
  p.quantum_s = 0.2;
  p.duration_s = 30.0;
  p.jobs = {Streamer(), Scanner()};
  return p;
}

void Report(Table& t, const std::string& label, const ArgonParams& p) {
  const auto shared = argon::RunArgon(p);
  const auto stream_alone = argon::RunAlone(p, Streamer());
  const auto scan_alone = argon::RunAlone(p, Scanner());
  const double fs = shared.jobs[0].throughput / stream_alone.throughput;
  const double fc = shared.jobs[1].throughput / scan_alone.throughput;
  t.row({label, FormatRate(shared.jobs[0].throughput),
         FormatDouble(100.0 * fs, 1) + "%",
         FormatRate(shared.jobs[1].throughput),
         FormatDouble(100.0 * fc, 1) + "%",
         FormatDouble(100.0 * std::min(fs, fc) / 0.5, 1) + "%"});
}

}  // namespace

int main() {
  bench::Header("Fig. 10: Argon insulation, streamer + scanner sharing storage",
                "time-slicing holds each job near its share (guard band "
                "<10%); co-scheduled slices across striped servers ~90% "
                "of best case, unsynchronised slices much worse");

  {
    PrintBanner(std::cout, "single server");
    Table t({"scheduler", "streamer", "share-of-alone", "scanner",
             "share-of-alone", "min share vs fair(50%)"});
    Report(t, "fifo (uninsulated)", Config(1, Scheduler::fifo, true));
    Report(t, "argon timeslice", Config(1, Scheduler::timeslice, true));
    t.print(std::cout);
  }
  {
    PrintBanner(std::cout, "4 striped servers (client waits on slowest)");
    Table t({"scheduler", "streamer", "share-of-alone", "scanner",
             "share-of-alone", "min share vs fair(50%)"});
    Report(t, "fifo (uninsulated)", Config(4, Scheduler::fifo, true));
    Report(t, "slices, unsynchronised", Config(4, Scheduler::timeslice, false));
    Report(t, "slices, co-scheduled", Config(4, Scheduler::timeslice, true));
    t.print(std::cout);
  }

  bench::Note("shape check: fifo starves the streamer; unsynchronised "
              "slices are worse than co-scheduled for the striped "
              "streamer; co-scheduled min-share approaches its fair 50%.");
  return 0;
}
