// Extension — scalable security overhead (§4.2.4; Maat, Leung SC'07).
//
// Paper: capability-based authentication over object storage costs "at
// most 6-7% on workloads with shared files and shared disks, with
// typical overheads averaging 1-2%". Runs checkpoint workloads with
// per-request capability verification charged at the OSS and reports the
// slowdown; functional token semantics live in src/pdsi/security.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;

int main() {
  bench::Header("Maat security: per-I/O capability verification overhead",
                "at most 6-7% on shared-file workloads, typically 1-2%");

  // A symmetric-crypto verify on mid-2000s server silicon: ~10-20 us.
  constexpr double kVerify = 15e-6;

  struct Case {
    const char* label;
    workload::CheckpointSpec spec;
  };
  const std::vector<Case> cases = {
      {"shared file, small strided records (worst case)",
       {workload::Pattern::n1_strided, 32, 16 * KiB, 64}},
      {"shared file, medium records",
       {workload::Pattern::n1_strided, 32, 128 * KiB, 32}},
      {"file per process, large streams (typical)",
       {workload::Pattern::nn, 32, 1 * MiB, 24}},
  };

  Table t({"workload", "insecure", "secure", "overhead"});
  for (const auto& c : cases) {
    auto cfg = pfs::PfsConfig::PanFsLike(8);
    const auto base = workload::RunDirectCheckpoint(cfg, c.spec);
    cfg.security_verify_s = kVerify;
    const auto secured = workload::RunDirectCheckpoint(cfg, c.spec);
    t.row({c.label, FormatDuration(base.seconds), FormatDuration(secured.seconds),
           FormatDouble(100.0 * (secured.seconds / base.seconds - 1.0), 2) + "%"});
  }
  t.print(std::cout);
  bench::Note("shape check: overhead peaks on small shared-file records "
              "(most requests per byte) and stays within the paper's "
              "6-7% ceiling; streaming workloads sit at ~1-2%.");
  return 0;
}
