// Extension — POSIX HEC extensions (§2.2).
//
// The report's standardisation effort proposed HPC-friendly POSIX
// additions. Two are modelled here:
//  * layout query (the extension the report says was accepted): an
//    application that asks for the file's stripe/lock geometry can align
//    its writes and avoid lock sharing and read-modify-write entirely;
//  * group open: N ranks opening one shared file cost one metadata
//    operation instead of N.
#include <iostream>
#include <mutex>
#include <thread>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

using namespace pdsi;

namespace {

/// N ranks write a shared file; with layout knowledge each rank rounds
/// its record up to the lock unit, eliminating neighbour conflicts.
double RunSharedWrite(bool layout_aware, std::uint32_t ranks) {
  pfs::PfsConfig cfg = pfs::PfsConfig::GpfsLike(8);
  cfg.store_data = false;
  sim::VirtualScheduler sched(ranks);
  pfs::PfsCluster cluster(cfg, sched);
  std::vector<std::size_t> all(ranks);
  for (std::uint32_t i = 0; i < ranks; ++i) all[i] = i;
  sim::VirtualBarrier barrier(sched, all);

  constexpr std::uint64_t kRecord = 200 * KiB + 77;  // unaligned by nature
  constexpr int kSteps = 32;
  std::mutex mu;
  double finish = 0.0;
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      pfs::FileHandle fh;
      if (r == 0) {
        fh = *client.create("/shared");
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        fh = *client.open("/shared");
      }
      std::uint64_t slot = kRecord;  // without layout: natural packing
      if (layout_aware) {
        auto info = client.layout("/shared");
        // Round each rank's slot up to the lock unit so no two ranks
        // ever share a token.
        slot = (kRecord + info->lock_unit - 1) / info->lock_unit *
               info->lock_unit;
      }
      Bytes payload(kRecord);
      for (int k = 0; k < kSteps; ++k) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(k) * ranks + r) * slot;
        client.write(fh, off, payload);
      }
      client.close(fh);
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, client.now());
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
  return finish;
}

/// N ranks open one file: N opens vs one group open.
double RunOpenStorm(bool group, std::uint32_t ranks, int files) {
  pfs::PfsConfig cfg = pfs::PfsConfig::LustreLike(4);
  cfg.store_data = false;
  sim::VirtualScheduler sched(ranks);
  pfs::PfsCluster cluster(cfg, sched);
  {
    sim::VirtualScheduler setup(1);
    // Pre-create the target files through a setup cluster? No — create
    // them through rank 0's client in virtual time before the storm.
  }
  std::vector<std::size_t> all(ranks);
  for (std::uint32_t i = 0; i < ranks; ++i) all[i] = i;
  sim::VirtualBarrier barrier(sched, all);
  std::mutex mu;
  double finish = 0.0, start = 0.0;
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      if (r == 0) {
        for (int f = 0; f < files; ++f) {
          auto fh = client.create("/f" + std::to_string(f));
          client.close(*fh);
        }
      }
      const double t0 = barrier.arrive(r);
      if (r == 0) start = t0;
      for (int f = 0; f < files; ++f) {
        const std::string path = "/f" + std::to_string(f);
        auto fh = group ? client.open_group(path, ranks) : client.open(path);
        client.close(*fh);
      }
      const double t1 = barrier.arrive(r);
      if (r == 0) {
        std::lock_guard<std::mutex> lk(mu);
        finish = t1;
      }
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
  return finish - start;
}

}  // namespace

int main() {
  bench::Header("POSIX HEC extensions: layout query + group open",
                "layout-aware alignment removes shared-file lock/RMW "
                "conflicts; group open amortises the metadata storm");

  {
    PrintBanner(std::cout, "layout-query-driven alignment (64 ranks, gpfs-like)");
    Table t({"mode", "checkpoint time", "speedup"});
    const double naive = RunSharedWrite(false, 64);
    const double aware = RunSharedWrite(true, 64);
    t.row({"natural (packed, unaligned)", FormatDuration(naive), "1.0x"});
    t.row({"layout-aligned slots", FormatDuration(aware),
           FormatDouble(naive / aware, 1) + "x"});
    t.print(std::cout);
  }

  {
    PrintBanner(std::cout, "shared-file open storm (128 ranks x 64 files)");
    Table t({"mode", "open phase", "speedup"});
    const double individual = RunOpenStorm(false, 128, 64);
    const double grouped = RunOpenStorm(true, 128, 64);
    t.row({"per-rank open()", FormatDuration(individual), "1.0x"});
    t.row({"group open extension", FormatDuration(grouped),
           FormatDouble(individual / grouped, 1) + "x"});
    t.print(std::cout);
  }
  bench::Note("shape check: alignment wins a solid factor on lock-heavy "
              "personalities; group open approaches ranks-fold metadata "
              "savings (the ANL/SDM POSIX-extension test results the "
              "report cites).");
  return 0;
}
