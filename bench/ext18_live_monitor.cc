// Extension — the live monitoring layer (pdsi::obs sinks + the
// incremental consistency monitor): what an online observer can tell an
// operator about a running petascale client, at zero cost to anyone not
// watching. Two scenarios:
//
//   1. incast_slo — one pipelined client fanning small appends over one
//      file per server (the Fig. 9 geometry) against a seeded RPC-drop
//      fault plan. A live subscription (SLO quantile alarms, EWMA
//      anomaly detection, OSS queue watermarks, per-request breakdowns)
//      is pumped at the fsync drain points; the rpc_req causal spans
//      attribute every request's latency to queue/stall/retry/wire/
//      service exactly (the five parts sum bit-for-bit to the total).
//      The run is repeated bare (no subscriber: the makespan must be
//      identical — zero observer effect) and with a capped tracer (the
//      stored trace drops events but the sinks must see the full
//      stream and report byte-identical results).
//
//   2. missing_fsync_audit — a commit-consistency run where the writer
//      forgets its fsync: the reader observes content no recorded
//      publish edge justifies, a deterministic unpublished_read. The
//      *online* ConsistencyMonitor, subscribed to the live tracer,
//      reports the identical first violation as the batch checker,
//      surfaced as a monitor alarm; the control run with the fsync
//      audits clean through both passes. The buggy trace is written out
//      so CI can replay the same agreement through
//      `trace_tool <trace> --monitor --check commit`.
//
// Everything is virtual-time deterministic: alarms, breakdown tables
// and watermark reports are byte-stable run to run.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/consist/monitor.h"
#include "pdsi/fault/fault.h"
#include "pdsi/obs/monitor.h"
#include "pdsi/obs/obs.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/sim/virtual_time.h"

using namespace pdsi;

namespace {

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

struct Shape {
  int servers = 8;        ///< incast fan-out width (one file per server)
  int rounds = 48;        ///< appends per file
  int phases = 4;         ///< fsync drain points (subscriber pump sites)
  std::size_t cap = 256;  ///< stored-event cap for the capped-tracer run
};

// ---------------------------------------------------------------------------
// Scenario 1: pipelined incast under faults, with and without a watcher.

enum class Mode { bare, live, capped };

struct SloRun {
  double makespan_s = 0.0;
  std::uint64_t dropped = 0;   ///< events evicted from the stored trace
  std::uint64_t retries = 0;
  bool verify_ok = true;
  // Monitor outputs (empty/zero in bare mode).
  std::size_t requests = 0;
  bool exact_ok = true;
  std::size_t slo_alarms = 0;
  std::size_t anomaly_alarms = 0;
  std::size_t watermark_alarms = 0;
  double queue_s = 0.0, stall_s = 0.0, retry_s = 0.0, wire_s = 0.0;
  double service_s = 0.0, total_s = 0.0;
  std::string alarm_log;         ///< merged FormatAlarm lines
  std::string watermark_report;  ///< WatermarkSink::write_report
  std::string breakdown_table;   ///< RequestBreakdownSink::write_table
};

SloRun RunIncastSlo(Mode mode, const Shape& sh) {
  obs::Registry reg;
  obs::Tracer tr;
  if (mode == Mode::capped) tr.set_max_events(sh.cap);
  obs::Context ctx{&tr, &reg};
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PvfsLike(
      static_cast<std::uint32_t>(sh.servers));
  cfg.rpc_window = 8;
  cfg.rpc_batch = 4;
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.rpc_drop_prob = 0.10;
  fault::FaultInjector inj(plan, static_cast<std::uint32_t>(sh.servers), &ctx);
  cluster.set_fault(&inj);
  pfs::PfsClient client(cluster, 0);

  // The sinks: a p90 SLO on the request end-to-end latency (retry
  // penalties blow well past 2 ms), an EWMA band on the same key, a
  // queue-depth watermark on the OSS tracks, and the exact breakdowns.
  obs::SloSink slo({{"rpc:rpc_req", 2e-3, 0.9, 1.0, 8, 0.05}});
  obs::EwmaSpec espec;
  espec.keys = {"rpc:rpc_req"};
  espec.warmup = 16;
  espec.min_abs_s = 1e-3;
  espec.cooldown_s = 0.05;
  obs::EwmaAnomalySink ewma(espec);
  obs::WatermarkSpec wspec;
  wspec.cats = {"oss"};
  wspec.depth_limit = 6;
  wspec.cooldown_s = 0.01;
  obs::WatermarkSink wm(wspec);
  obs::RequestBreakdownSink breakdown;
  if (mode != Mode::bare) {
    tr.subscribe(&slo);
    tr.subscribe(&ewma);
    tr.subscribe(&wm);
    tr.subscribe(&breakdown);
  }

  SloRun res;
  const std::uint64_t rec = 4 * KiB;
  std::vector<pfs::FileHandle> fhs;
  for (int f = 0; f < sh.servers; ++f) {
    auto fh = client.create("/fan" + std::to_string(f));
    if (!fh.ok()) res.verify_ok = false;
    fhs.push_back(fh.ok() ? *fh : -1);
  }
  const int per_phase = sh.rounds / sh.phases;
  for (int ph = 0; ph < sh.phases; ++ph) {
    for (int k = ph * per_phase; k < (ph + 1) * per_phase; ++k) {
      for (int f = 0; f < sh.servers; ++f) {
        const std::uint64_t off = static_cast<std::uint64_t>(k) * rec;
        const std::uint32_t tag = static_cast<std::uint32_t>(700 + f);
        if (!client.write(fhs[static_cast<std::size_t>(f)], off,
                          MakePattern(tag, off, rec))
                 .ok()) {
          res.verify_ok = false;
        }
      }
    }
    for (int f = 0; f < sh.servers; ++f) {
      if (!client.fsync(fhs[static_cast<std::size_t>(f)]).ok()) {
        res.verify_ok = false;
      }
    }
    // The fsync drain is a safe pump point: every event at or before
    // `now` has been appended, so delivery preserves canonical order.
    if (mode != Mode::bare) tr.pump_subscribers(client.now());
  }
  Bytes out(rec);
  auto n = client.read(fhs[0], 0, out);
  if (!n.ok() || *n != rec || FindPatternMismatch(700, 0, out) != kNoMismatch) {
    res.verify_ok = false;
  }
  for (int f = 0; f < sh.servers; ++f) {
    if (!client.close(fhs[static_cast<std::size_t>(f)]).ok()) {
      res.verify_ok = false;
    }
  }
  res.makespan_s = client.now();
  sched.finish(0);
  if (mode != Mode::bare) tr.flush_subscribers(client.now());

  res.dropped = tr.dropped_events();
  res.retries = inj.retries();
  if (mode == Mode::bare) return res;

  res.requests = breakdown.requests().size();
  res.exact_ok = breakdown.exact();
  res.slo_alarms = slo.alarms().size();
  res.anomaly_alarms = ewma.alarms().size();
  res.watermark_alarms = wm.alarms().size();
  for (const auto& b : breakdown.requests()) {
    res.queue_s += b.queue_s;
    res.stall_s += b.stall_s;
    res.retry_s += b.retry_s;
    res.wire_s += b.wire_s;
    res.service_s += b.service_s;
    res.total_s += b.total_s;
  }
  std::vector<obs::Alarm> alarms;
  for (const auto& a : slo.alarms()) alarms.push_back(a);
  for (const auto& a : ewma.alarms()) alarms.push_back(a);
  for (const auto& a : wm.alarms()) alarms.push_back(a);
  std::stable_sort(alarms.begin(), alarms.end(),
                   [](const obs::Alarm& a, const obs::Alarm& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.key < b.key;
                   });
  std::ostringstream alog;
  for (const auto& a : alarms) alog << obs::FormatAlarm(a) << "\n";
  res.alarm_log = alog.str();
  std::ostringstream wrep;
  wm.write_report(wrep);
  res.watermark_report = wrep.str();
  std::ostringstream btab;
  breakdown.write_table(btab, 8);
  res.breakdown_table = btab.str();
  return res;
}

bool ScenarioIncastSlo(const Shape& sh, bench::JsonReport& json) {
  PrintBanner(std::cout, "scenario: incast_slo (pipelined client + faults)");
  const SloRun live = RunIncastSlo(Mode::live, sh);
  const SloRun bare = RunIncastSlo(Mode::bare, sh);
  const SloRun capped = RunIncastSlo(Mode::capped, sh);

  std::cout << "slowest requests (queue/stall/retry/wire/service sum "
               "exactly to total):\n"
            << live.breakdown_table;
  std::cout << live.watermark_report;
  std::cout << live.alarm_log;
  std::cout << "alarms: slo=" << live.slo_alarms
            << " anomaly=" << live.anomaly_alarms
            << " watermark=" << live.watermark_alarms << "\n";

  const bool observer_zero = bare.makespan_s == live.makespan_s;
  const bool cap_identical = capped.alarm_log == live.alarm_log &&
                             capped.watermark_report == live.watermark_report &&
                             capped.breakdown_table == live.breakdown_table &&
                             capped.requests == live.requests;
  const bool cap_bites = capped.dropped > 0 && live.dropped == 0;
  std::cout << "observer effect: bare makespan "
            << (observer_zero ? "identical" : "DIVERGED") << " ("
            << FormatDuration(bare.makespan_s) << ")\n";
  std::cout << "capped tracer: dropped " << capped.dropped
            << " stored events, monitor results "
            << (cap_identical ? "identical" : "DIVERGED") << "\n";

  json.str("scenario", "incast_slo")
      .num("makespan_s", live.makespan_s)
      .num("requests", static_cast<double>(live.requests))
      .num("retries", static_cast<double>(live.retries))
      .num("slo_alarms", static_cast<double>(live.slo_alarms))
      .num("anomaly_alarms", static_cast<double>(live.anomaly_alarms))
      .num("watermark_alarms", static_cast<double>(live.watermark_alarms))
      .num("queue_s", live.queue_s)
      .num("stall_s", live.stall_s)
      .num("retry_s", live.retry_s)
      .num("wire_s", live.wire_s)
      .num("service_s", live.service_s)
      .num("req_total_s", live.total_s)
      .num("exact_ok", live.exact_ok ? 1.0 : 0.0)
      .num("observer_zero", observer_zero ? 1.0 : 0.0)
      .num("cap_identical", cap_identical && cap_bites ? 1.0 : 0.0)
      .num("capped_dropped", static_cast<double>(capped.dropped))
      .num("verify_ok",
           live.verify_ok && bare.verify_ok && capped.verify_ok ? 1.0 : 0.0)
      .emit();

  return live.verify_ok && bare.verify_ok && capped.verify_ok &&
         live.exact_ok && observer_zero && cap_identical && cap_bites &&
         live.slo_alarms > 0 && live.requests > 0;
}

// ---------------------------------------------------------------------------
// Scenario 2: the missing fsync, caught online.

struct AuditRun {
  bool io_ok = true;
  bool batch_clean = true;
  bool live_clean = true;
  bool agree = false;  ///< online monitor == batch checker, op pair and all
  std::size_t events = 0;
  std::size_t peak_retained = 0;
  std::string batch_verdict;   ///< formatted first violation (when any)
  std::string online_verdict;
  std::string alarm;           ///< the monitor alarm line (when violating)
  std::string trace;           ///< compact trace, for the CI replay
};

/// One writer, one reader, commit-model visibility, synchronous client
/// with consist recording. `with_fsync` is the one-line difference
/// between the correct program and the bug the monitor exists to catch:
/// commit mode publishes at fsync, and the buggy writer closes without
/// one, so the reader observes content no recorded publish edge
/// justifies — a deterministic unpublished_read.
AuditRun RunCommitAudit(bool with_fsync) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  sim::VirtualScheduler sched(2);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.consistency = consist::ConsistencyModel::commit;
  cfg.record_consist_ops = true;  // requires the synchronous client
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  sim::VirtualBarrier barrier(sched, {0, 1});

  // The live monitor watches the run as it happens.
  consist::ConsistencyMonitor live(consist::ConsistencyModel::commit);
  tr.subscribe(&live);

  AuditRun res;
  const std::uint64_t rec = 16 * KiB;
  std::thread writer([&] {
    pfs::PfsClient c(cluster, 0);
    auto fh = c.create("/audit");
    if (!fh.ok()) res.io_ok = false;
    if (!c.write(*fh, 0, MakePattern(900, 0, rec)).ok()) res.io_ok = false;
    if (with_fsync && !c.fsync(*fh).ok()) res.io_ok = false;
    if (!c.close(*fh).ok()) res.io_ok = false;
    barrier.arrive(0);
    sched.finish(0);
  });
  std::thread reader([&] {
    barrier.arrive(1);
    pfs::PfsClient c(cluster, 1);
    auto fh = c.open("/audit");
    if (!fh.ok()) res.io_ok = false;
    Bytes out(rec);
    auto n = c.read(*fh, 0, out);
    if (!n.ok() || *n != rec) res.io_ok = false;
    if (!c.close(*fh).ok()) res.io_ok = false;
    sched.finish(1);
  });
  writer.join();
  reader.join();
  tr.flush_subscribers(0.0);

  const auto events = obs::CollectEvents(tr);
  const auto batch =
      consist::CheckConsistency(events, consist::ConsistencyModel::commit);
  res.events = events.size();
  res.batch_clean = batch.clean;
  res.live_clean = live.clean();
  res.agree = batch.clean == live.clean() &&
              (batch.clean || (batch.first.kind == live.first().kind &&
                               batch.first.op_a == live.first().op_a &&
                               batch.first.op_b == live.first().op_b &&
                               batch.first.detail == live.first().detail));
  res.peak_retained = live.peak_retained();
  if (!batch.clean) {
    res.batch_verdict = consist::FormatViolation(batch.first, events);
  }
  if (!live.clean()) {
    res.online_verdict = consist::FormatViolation(live.first(), events);
    res.alarm = obs::FormatAlarm(live.alarm());
  }
  std::ostringstream os;
  tr.write_compact(os);
  res.trace = os.str();
  return res;
}

bool ScenarioMissingFsyncAudit(const std::string& trace_base,
                               bench::JsonReport& json) {
  PrintBanner(std::cout, "scenario: missing_fsync_audit (commit model)");
  const AuditRun buggy = RunCommitAudit(/*with_fsync=*/false);
  const AuditRun fixed = RunCommitAudit(/*with_fsync=*/true);

  std::cout << "with fsync:    batch "
            << (fixed.batch_clean ? "CLEAN" : "VIOLATION " + fixed.batch_verdict)
            << ", online " << (fixed.live_clean ? "CLEAN" : "VIOLATION")
            << "\n";
  std::cout << "missing fsync: batch "
            << (buggy.batch_clean ? "CLEAN" : "VIOLATION " + buggy.batch_verdict)
            << "\n";
  std::cout << "missing fsync: online "
            << (buggy.live_clean ? "CLEAN" : "VIOLATION " + buggy.online_verdict)
            << "\n";
  if (!buggy.alarm.empty()) std::cout << buggy.alarm << "\n";
  std::cout << "online/batch agreement: "
            << (buggy.agree && fixed.agree ? "AGREE" : "MISMATCH")
            << " (peak retained " << buggy.peak_retained << " ops over "
            << buggy.events << " events)\n";

  if (!trace_base.empty()) {
    const std::string path = trace_base + ".audit.trace";
    std::ofstream out(path);
    if (out) {
      out << buggy.trace;
      std::cout << "trace: wrote the missing-fsync run to " << path
                << " (replay with `trace_tool " << path
                << " --monitor --check commit`)\n";
    } else {
      std::cerr << "trace: cannot open " << path << "\n";
    }
  }

  json.str("scenario", "missing_fsync_audit")
      .num("events", static_cast<double>(buggy.events))
      .num("buggy_clean", buggy.batch_clean ? 1.0 : 0.0)
      .num("fixed_clean", fixed.batch_clean ? 1.0 : 0.0)
      .num("online_agree", buggy.agree && fixed.agree ? 1.0 : 0.0)
      .num("peak_retained", static_cast<double>(buggy.peak_retained))
      .num("verify_ok", buggy.io_ok && fixed.io_ok ? 1.0 : 0.0)
      .emit();

  return buggy.io_ok && fixed.io_ok && buggy.agree && fixed.agree &&
         !buggy.batch_clean && !buggy.live_clean && fixed.batch_clean &&
         fixed.live_clean;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFlag(argc, argv);
  bench::Header(
      "Live monitoring: SLO/anomaly alarms, exact request breakdowns, and "
      "the online consistency monitor (pdsi::obs + pdsi::consist)",
      "an operator can watch a petascale client in flight — per-request "
      "causal latency attribution, deterministic alarms, and streaming "
      "consistency auditing — at zero cost to runs nobody watches");
  const std::string trace_base = bench::TraceFlag(argc, argv);
  bench::JsonReport json("ext18_live_monitor");

  Shape shape;
  if (smoke) {
    shape.servers = 4;
    shape.rounds = 12;
    shape.phases = 2;
    shape.cap = 48;
  }

  bool ok = true;
  ok = ScenarioIncastSlo(shape, json) && ok;
  ok = ScenarioMissingFsyncAudit(trace_base, json) && ok;

  bench::Note(
      "shape check: retry penalties dominate the slowest requests (the "
      "SLO and EWMA alarms name the same culprits the breakdown table "
      "shows as retry-heavy); the missing-fsync run flags a deterministic "
      "unpublished read — online and batch passes naming the identical op "
      "pair — while the control run with the fsync audits clean.");
  if (!ok) {
    std::cerr << "ext18_live_monitor: FAILED (a monitor invariant did not "
                 "hold)\n";
    return 1;
  }
  return 0;
}
