// Microbenchmarks: GIGA+ client addressing — the per-operation cost every
// file create/lookup pays (hashing the name, walking the bitmap).
#include <benchmark/benchmark.h>

#include "pdsi/giga/giga.h"

using namespace pdsi::giga;

namespace {

void BM_HashName(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashName("checkpoint.file." + std::to_string(i++)));
  }
}
BENCHMARK(BM_HashName);

void BM_BitmapPartitionFor(benchmark::State& state) {
  // A directory grown to `partitions` via in-order splits.
  const std::uint32_t partitions = static_cast<std::uint32_t>(state.range(0));
  Bitmap b;
  for (std::uint32_t p = 1; p < partitions; ++p) b.set(p);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    benchmark::DoNotOptimize(b.partition_for(h));
  }
}
BENCHMARK(BM_BitmapPartitionFor)->Arg(8)->Arg(64)->Arg(1024)->Arg(65536);

void BM_BitmapMerge(benchmark::State& state) {
  Bitmap big;
  for (std::uint32_t p = 0; p < 4096; p += 3) big.set(p);
  for (auto _ : state) {
    Bitmap fresh;
    fresh.merge(big);
    benchmark::DoNotOptimize(fresh.highest());
  }
}
BENCHMARK(BM_BitmapMerge);

}  // namespace
