// Extension — PLFS small-file packing (§1.1 item 7).
//
// Paper extension list: "pack small files into a smaller number of bigger
// containers." Creating one backend file per tiny logical file hammers
// the metadata server; packing turns N creates into 2 per writer plus
// sequential log appends. Compares direct per-file creation on the
// simulated PFS against small-file containers.
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/pfs_backend.h"
#include "pdsi/plfs/smallfile.h"

using namespace pdsi;

namespace {

double RunDirect(std::uint32_t clients, int files_per_client,
                 std::uint64_t file_bytes) {
  pfs::PfsConfig cfg = pfs::PfsConfig::LustreLike(8);
  cfg.store_data = false;
  sim::VirtualScheduler sched(clients);
  pfs::PfsCluster cluster(cfg, sched);
  std::vector<std::thread> threads;
  std::mutex mu;
  double finish = 0.0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pfs::PfsClient client(cluster, c);
      Bytes payload(file_bytes);
      for (int f = 0; f < files_per_client; ++f) {
        auto fh = client.create("/out/f" + std::to_string(c) + "_" +
                                std::to_string(f));
        if (c == 0 && f == 0) {
          // First create fails (no /out); make it then.
        }
        if (!fh.ok()) {
          client.mkdir("/out");
          fh = client.create("/out/f" + std::to_string(c) + "_" +
                             std::to_string(f));
        }
        client.write(*fh, 0, payload);
        client.close(*fh);
      }
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, client.now());
      sched.finish(c);
    });
  }
  for (auto& t : threads) t.join();
  return finish;
}

double RunPacked(std::uint32_t clients, int files_per_client,
                 std::uint64_t file_bytes) {
  pfs::PfsConfig cfg = pfs::PfsConfig::LustreLike(8);
  cfg.store_data = false;
  sim::VirtualScheduler sched(clients);
  pfs::PfsCluster cluster(cfg, sched);
  plfs::WriteClock clock{1};
  std::vector<std::thread> threads;
  std::mutex mu;
  double finish = 0.0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto backend = plfs::MakePfsBackend(cluster, c);
      auto w = plfs::SmallFileWriter::Open(*backend, "/pack", c, clock);
      Bytes payload(file_bytes);
      for (int f = 0; f < files_per_client; ++f) {
        (*w)->put("f" + std::to_string(c) + "_" + std::to_string(f), payload);
      }
      (*w)->close();
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, sched.now(c));
      sched.finish(c);
    });
  }
  for (auto& t : threads) t.join();
  return finish;
}

}  // namespace

int main() {
  bench::Header("Small-file packing vs per-file creation",
                "packing tiny files into containers removes the per-file "
                "metadata cost (create storms become log appends)");

  constexpr std::uint32_t kClients = 16;
  Table t({"file size", "files", "direct create+write", "packed", "speedup",
           "files/s packed"});
  for (std::uint64_t size : {1 * KiB, 8 * KiB, 64 * KiB}) {
    constexpr int kPerClient = 256;
    const double direct = RunDirect(kClients, kPerClient, size);
    const double packed = RunPacked(kClients, kPerClient, size);
    const double total_files = kClients * kPerClient;
    t.row({FormatBytes(static_cast<double>(size)),
           FormatCount(total_files), FormatDuration(direct),
           FormatDuration(packed), FormatDouble(direct / packed, 1) + "x",
           FormatCount(total_files / packed)});
  }
  t.print(std::cout);
  bench::Note("shape check: speedup largest for the smallest files (pure "
              "metadata) and shrinks as data volume starts to dominate.");
  return 0;
}
