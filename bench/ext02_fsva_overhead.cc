// Extension — File System Virtual Appliance overhead (Fig. 6 / §4.2.1).
//
// Paper: moving the PFS client into a VM costs an inter-VM hop per VFS
// operation; "with shared memory tricks common in virtual machines, we
// hope that this need not slow down applications significantly." Prices
// the three mount options over the evaluation workload mixes.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/fsva/fsva.h"

using namespace pdsi;

int main() {
  bench::Header("FSVA: VM-hosted file system client overhead",
                "hypercall-per-message hurts metadata-heavy loads; "
                "shared-memory rings keep slowdown to a few percent");

  fsva::CostModel model;
  Table t({"workload", "native", "hypercall", "slowdown", "shared rings",
           "slowdown"});
  for (const auto& w : fsva::PaperWorkloads()) {
    t.row({w.name,
           FormatDuration(fsva::WorkloadSeconds(model, fsva::Mount::native, w)),
           FormatDuration(
               fsva::WorkloadSeconds(model, fsva::Mount::fsva_hypercall, w)),
           FormatDouble(fsva::Slowdown(model, fsva::Mount::fsva_hypercall, w), 3) + "x",
           FormatDuration(
               fsva::WorkloadSeconds(model, fsva::Mount::fsva_shared_ring, w)),
           FormatDouble(fsva::Slowdown(model, fsva::Mount::fsva_shared_ring, w), 3) + "x"});
  }
  t.print(std::cout);

  PrintBanner(std::cout, "without zero-copy page grants (data copied between VMs)");
  fsva::CostModel copies = model;
  copies.zero_copy_grants = false;
  Table c({"workload", "shared rings + copy", "slowdown"});
  for (const auto& w : fsva::PaperWorkloads()) {
    c.row({w.name,
           FormatDuration(
               fsva::WorkloadSeconds(copies, fsva::Mount::fsva_shared_ring, w)),
           FormatDouble(fsva::Slowdown(copies, fsva::Mount::fsva_shared_ring, w), 3) + "x"});
  }
  c.print(std::cout);
  bench::Note("shape check: shared rings stay within ~5% everywhere; the "
              "hypercall variant is visibly worse on the metadata-heavy "
              "mix; dropping zero-copy mainly taxes streaming writes.");
  return 0;
}
