// Extension — data placement strategy comparison (§4.2.3 "Parallel
// Layout"; Molina-Estolano's simulator study).
//
// Paper: trace-driven simulation compared the placement strategies of
// Ceph (pseudo-random hashing), PanFS (per-file RAID groups) and PVFS
// (round-robin striping) under different workloads, to improve
// workload-specific placement and load balancing. Here the same three
// strategies run identical workloads on the simulated substrate and we
// report completion time plus per-server load imbalance.
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

using namespace pdsi;

namespace {

struct RunStats {
  double seconds;
  double imbalance;  ///< max/mean per-server disk busy time
};

template <typename Body>
RunStats RunWorkload(std::unique_ptr<pfs::PlacementStrategy> placement,
                     std::uint32_t clients, Body body) {
  pfs::PfsConfig cfg = pfs::PfsConfig::PvfsLike(8);
  cfg.store_data = false;
  sim::VirtualScheduler sched(clients);
  pfs::PfsCluster cluster(cfg, sched, std::move(placement));
  std::vector<std::thread> threads;
  std::mutex mu;
  double finish = 0.0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pfs::PfsClient client(cluster, c);
      body(client, c);
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, client.now());
      sched.finish(c);
    });
  }
  for (auto& t : threads) t.join();

  OnlineStats busy;
  double max_busy = 0.0;
  for (std::uint32_t s = 0; s < cluster.num_oss(); ++s) {
    const double b = cluster.oss(s).disk_busy_seconds();
    busy.add(b);
    max_busy = std::max(max_busy, b);
  }
  return {finish, busy.mean() > 0 ? max_busy / busy.mean() : 1.0};
}

}  // namespace

int main() {
  bench::Header("Placement strategies: round-robin (PVFS) vs hashed (Ceph) "
                "vs RAID-group (PanFS)",
                "strategy choice shifts load balance and completion time "
                "per workload");

  struct Strategy {
    const char* name;
    std::unique_ptr<pfs::PlacementStrategy> (*make)();
  };
  const auto raid3 = [] { return pfs::MakeRaidGroupPlacement(3); };
  const std::vector<Strategy> strategies = {
      {"round-robin (PVFS)", pfs::MakeRoundRobinPlacement},
      {"hashed (Ceph/CRUSH)", pfs::MakeHashedPlacement},
      {"raid-group(3) (PanFS)", +raid3},
  };

  {
    PrintBanner(std::cout, "one big shared checkpoint (16 clients, N-1 segmented)");
    Table t({"strategy", "completion", "disk imbalance (max/mean)"});
    for (const auto& s : strategies) {
      auto r = RunWorkload(s.make(), 16, [](pfs::PfsClient& client, std::uint32_t c) {
        pfs::FileHandle fh;
        if (c == 0) {
          fh = *client.create("/big");
        } else {
          while (true) {
            auto open = client.open("/big");
            if (open.ok()) {
              fh = *open;
              break;
            }
          }
        }
        Bytes chunk(1 * MiB);
        for (int k = 0; k < 32; ++k) {
          client.write(fh, (static_cast<std::uint64_t>(c) * 32 + k) * chunk.size(),
                       chunk);
        }
        client.close(fh);
      });
      t.row({s.name, FormatDuration(r.seconds), FormatDouble(r.imbalance, 2)});
    }
    t.print(std::cout);
  }

  {
    PrintBanner(std::cout, "many small files (16 clients x 64 files x 256 KiB)");
    Table t({"strategy", "completion", "disk imbalance (max/mean)"});
    for (const auto& s : strategies) {
      auto r = RunWorkload(s.make(), 16, [](pfs::PfsClient& client, std::uint32_t c) {
        Bytes chunk(256 * KiB);
        for (int f = 0; f < 64; ++f) {
          auto fh = client.create("/small." + std::to_string(c) + "." +
                                  std::to_string(f));
          client.write(*fh, 0, chunk);
          client.close(*fh);
        }
      });
      t.row({s.name, FormatDuration(r.seconds), FormatDouble(r.imbalance, 2)});
    }
    t.print(std::cout);
  }

  {
    PrintBanner(std::cout, "skewed file sizes (few huge, many tiny)");
    Table t({"strategy", "completion", "disk imbalance (max/mean)"});
    for (const auto& s : strategies) {
      auto r = RunWorkload(s.make(), 16, [](pfs::PfsClient& client, std::uint32_t c) {
        if (c < 2) {
          auto fh = client.create("/huge." + std::to_string(c));
          Bytes chunk(1 * MiB);
          for (int k = 0; k < 96; ++k) {
            client.write(*fh, static_cast<std::uint64_t>(k) * chunk.size(), chunk);
          }
          client.close(*fh);
        } else {
          Bytes chunk(128 * KiB);
          for (int f = 0; f < 32; ++f) {
            auto fh = client.create("/tiny." + std::to_string(c) + "." +
                                    std::to_string(f));
            client.write(*fh, 0, chunk);
            client.close(*fh);
          }
        }
      });
      t.row({s.name, FormatDuration(r.seconds), FormatDouble(r.imbalance, 2)});
    }
    t.print(std::cout);
  }
  bench::Note("shape check: round-robin balances the single big file "
              "perfectly; RAID grouping concentrates it on 3 servers; "
              "hashing wins nothing on one file but balances many files "
              "without coordination.");
  return 0;
}
