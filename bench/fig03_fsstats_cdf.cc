// Fig. 3 — CDF of file sizes across eleven non-archival file systems.
//
// Paper (Dayal-08 survey): across production HEC file systems, small
// files dominate by count (medians KiB-to-MiB, spread wide between
// sites) while capacity is held by a small population of huge files.
// Prints the per-site CDF sampled at the canonical size points plus
// summary statistics per file system.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/fsstats/fsstats.h"

using namespace pdsi;

int main() {
  bench::Header("Fig. 3: file-size CDFs, eleven production file systems",
                "medians KiB-MiB with wide inter-site spread; bytes "
                "concentrated in the huge-file tail");

  Rng rng(2008);
  const std::vector<std::uint64_t> points = {
      512,      4 * KiB,   32 * KiB,  256 * KiB,
      2 * MiB,  16 * MiB,  128 * MiB, 1 * GiB};

  Table t({"file system", "files", "total", "<=512B", "<=4K", "<=32K",
           "<=256K", "<=2M", "<=16M", "<=128M", "<=1G", "median"});
  for (const auto& pop : fsstats::Fig3Populations()) {
    const auto survey = fsstats::GeneratePopulation(pop, rng);
    std::vector<std::string> row{
        survey.name, FormatCount(static_cast<double>(survey.file_count())),
        FormatBytes(static_cast<double>(survey.total_bytes()))};
    for (std::uint64_t p : points) {
      row.push_back(FormatDouble(100.0 * survey.fraction_below(p), 1));
    }
    const auto cdf = survey.size_cdf();
    double median = 0;
    for (const auto& pt : cdf) {
      if (pt.fraction >= 0.5) {
        median = pt.value;
        break;
      }
    }
    row.push_back(FormatBytes(median));
    t.row(std::move(row));
  }
  t.print(std::cout);

  PrintBanner(std::cout, "where the bytes live (capacity CDF, lanl-scratch1)");
  {
    const auto survey =
        fsstats::GeneratePopulation(fsstats::Fig3Populations()[0], rng);
    const auto bytes_cdf = survey.bytes_by_size_cdf();
    Table t2({"file size <=", "% of files", "% of bytes"});
    for (std::uint64_t p : points) {
      t2.row({FormatBytes(static_cast<double>(p)),
              FormatDouble(100.0 * survey.fraction_below(p), 1),
              FormatDouble(100.0 * CdfAt(bytes_cdf, static_cast<double>(p)), 1)});
    }
    t2.print(std::cout);
  }
  bench::Note("shape check: count-CDF reaches ~90% by a few MiB while the "
              "byte-CDF is still in single digits there.");
  return 0;
}
