// Extension — on-the-fly checkpoint compression (§1.1 item 3, §5.6.1,
// Fig. 5's compression scenario).
//
// Measures the real Huffman codec's throughput and ratio on synthetic
// checkpoint state (SNL's student project reported ~250 MB/s block
// Huffman compression with ~2x faster decompression), then folds the
// measured ratio into the Fig. 5 utilisation model to show how much
// exascale runway compression buys.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/model.h"
#include "pdsi/huffman/huffman.h"

using namespace pdsi;

int main() {
  bench::Header("Checkpoint compression: block Huffman codec",
                "block Huffman + byte-plane delta filter; Fig. 5: better "
                "compression each year defers the utilisation wall");

  PrintBanner(std::cout, "codec throughput & ratio (64 MiB checkpoints)");
  Table t({"noise fraction", "ratio", "compress", "decompress",
           "decomp/comp"});
  for (double noise : {0.0, 0.05, 0.2, 0.5}) {
    const Bytes ckpt = huffman::SyntheticCheckpoint(64 * MiB, noise, 7);
    const auto c0 = std::chrono::steady_clock::now();
    const Bytes compressed = huffman::Compress(ckpt, 1 << 20, 8, true);
    const auto c1 = std::chrono::steady_clock::now();
    const Bytes back = huffman::Decompress(compressed);
    const auto c2 = std::chrono::steady_clock::now();
    if (back != ckpt) {
      std::cerr << "ROUND TRIP FAILED\n";
      return 1;
    }
    const double cs = std::chrono::duration<double>(c1 - c0).count();
    const double ds = std::chrono::duration<double>(c2 - c1).count();
    t.row({FormatDouble(noise, 2),
           FormatDouble(static_cast<double>(ckpt.size()) / compressed.size(), 2) + "x",
           FormatRate(ckpt.size() / cs), FormatRate(ckpt.size() / ds),
           FormatDouble(cs / ds, 2) + "x"});
  }
  t.print(std::cout);

  PrintBanner(std::cout, "effect on the Fig. 5 utilisation wall");
  const Bytes ckpt = huffman::SyntheticCheckpoint(16 * MiB, 0.05, 7);
  const double ratio = static_cast<double>(ckpt.size()) /
                       huffman::Compress(ckpt, 1 << 20, 8, true).size();
  failure::UtilizationModelParams params;
  params.mtti.chip_doubling_months = 30.0;
  Table u({"scenario", "2014 utilisation", "50% crossing"});
  {
    failure::UtilizationModel model(params);
    u.row({"no compression",
           FormatDouble(100.0 * model.utilization(2014, failure::StorageScenario::balanced), 1) + "%",
           FormatDouble(model.year_crossing_below(0.5, failure::StorageScenario::balanced), 2)});
  }
  {
    // One-time codec ratio applied to the checkpoint volume.
    failure::UtilizationModelParams once = params;
    once.base_checkpoint_seconds /= ratio;
    failure::UtilizationModel model(once);
    u.row({"measured codec ratio (" + FormatDouble(ratio, 2) + "x), one-time",
           FormatDouble(100.0 * model.utilization(2014, failure::StorageScenario::balanced), 1) + "%",
           FormatDouble(model.year_crossing_below(0.5, failure::StorageScenario::balanced), 2)});
  }
  {
    failure::UtilizationModel model(params);
    u.row({"paper scenario: +30%/yr compression",
           FormatDouble(100.0 * model.utilization(2014, failure::StorageScenario::compression), 1) + "%",
           FormatDouble(model.year_crossing_below(0.5, failure::StorageScenario::compression), 2)});
  }
  u.print(std::cout);
  bench::Note("shape check: ratio falls as the incompressible fraction "
              "rises; a one-time ratio shifts the utilisation wall by "
              "~log2(ratio) years, while compounding yearly gains defer "
              "it indefinitely — the paper's 'problem goes away' case. "
              "(SNL's GPU implementation reached ~250 MB/s; this CPU "
              "codec is single-threaded.)");
  return 0;
}
