// Shared helpers for the per-figure benchmark harnesses: consistent
// banners and paper-vs-measured reporting so bench output can be pasted
// straight into EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <string>

#include "pdsi/common/table.h"

namespace pdsi::bench {

inline void Header(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "==========================================================\n"
            << experiment << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==========================================================\n";
}

inline void Note(const std::string& text) { std::cout << "note: " << text << "\n"; }

}  // namespace pdsi::bench
