// Shared helpers for the per-figure benchmark harnesses: consistent
// banners and paper-vs-measured reporting so bench output can be pasted
// straight into EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "pdsi/common/table.h"
#include "pdsi/obs/obs.h"
#include "pdsi/obs/profile.h"

namespace pdsi::bench {

inline void Header(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "==========================================================\n"
            << experiment << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==========================================================\n";
}

inline void Note(const std::string& text) { std::cout << "note: " << text << "\n"; }

/// Machine-readable mirror of the table output: each emit() prints one
/// line of the form
///
///   BENCH_<bench>.json {"key": value, ...}
///
/// so the perf trajectory can be tracked across PRs with
/// `grep '^BENCH_' | cut -d' ' -f2-`. Keys insert in call order; values
/// are JSON numbers or strings (non-finite numbers are emitted as
/// strings, since JSON has no inf/nan).
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  JsonReport& num(const std::string& key, double v) {
    if (!std::isfinite(v)) return str(key, v > 0 ? "inf" : (v < 0 ? "-inf" : "nan"));
    std::ostringstream os;
    os.precision(12);
    os << v;
    add(key, os.str());
    return *this;
  }

  JsonReport& str(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      switch (c) {
        case '"': quoted += "\\\""; break;
        case '\\': quoted += "\\\\"; break;
        case '\n': quoted += "\\n"; break;
        case '\r': quoted += "\\r"; break;
        case '\t': quoted += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            quoted += buf;
          } else {
            quoted += c;
          }
      }
    }
    quoted += '"';
    add(key, quoted);
    return *this;
  }

  /// Prints the line and clears the fields for the next row.
  void emit(std::ostream& os = std::cout) {
    os << "BENCH_" << bench_ << ".json {" << fields_ << "}\n";
    fields_.clear();
  }

 private:
  void add(const std::string& key, const std::string& json_value) {
    if (!fields_.empty()) fields_ += ", ";
    fields_ += "\"" + key + "\": " + json_value;
  }

  std::string bench_;
  std::string fields_;
};

/// Parses `--trace <path>` / `--trace=<path>` out of argv; returns the
/// path or "" when absent (tracing stays disabled, the default). Paths
/// ending in `.json` export the Chrome trace_event format; anything else
/// gets the canonical compact text format (the `trace_tool` input).
inline std::string TraceFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) return argv[i + 1];
    if (a.rfind("--trace=", 0) == 0) return a.substr(8);
  }
  return "";
}

/// `--profile`: after the run, aggregate the trace into a profile and
/// print it as one byte-stable `BENCH_<bench>_profile.json` line (works
/// with or without `--trace`).
inline bool ProfileFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--profile") return true;
  }
  return false;
}

/// Parses `--out-dir <dir>` / `--out-dir=<dir>` for benches that write
/// render artifacts (PPMs). Defaults to the directory holding the
/// binary — under build/ for a standard configure — so running a bench
/// from the repo root no longer litters the source tree.
inline std::string OutDirFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out-dir" && i + 1 < argc) return argv[i + 1];
    if (a.rfind("--out-dir=", 0) == 0) return a.substr(10);
  }
  const std::string exe = argc > 0 ? argv[0] : "";
  const std::size_t slash = exe.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : exe.substr(0, slash);
}

/// Per-bench observability bundle: owns a Registry + Tracer and hands a
/// Context to instrumented code, or stays inert (ctx() == nullptr, the
/// zero-overhead path) when constructed with an empty path and profiling
/// off. On destruction writes the trace to the path (Chrome trace_event
/// JSON for `.json` paths, the canonical compact format otherwise) and,
/// when profiling, one BENCH_<bench>_profile.json summary line.
class BenchObs {
 public:
  explicit BenchObs(std::string path, bool profile = false,
                    std::string bench = "")
      : path_(std::move(path)), profile_(profile), bench_(std::move(bench)) {
    if (!path_.empty() || profile_) {
      state_ = std::make_unique<State>();
      state_->ctx.tracer = &state_->tracer;
      state_->ctx.registry = &state_->registry;
      state_->tracer.bind_drop_counter(
          &state_->registry.counter("obs.dropped_events"));
    }
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  ~BenchObs() {
    if (!state_) return;
    if (!path_.empty()) {
      std::ofstream out(path_);
      if (!out) {
        std::cerr << "trace: cannot open " << path_ << "\n";
      } else {
        const bool chrome =
            path_.size() >= 5 && path_.rfind(".json") == path_.size() - 5;
        if (chrome) {
          state_->tracer.write_chrome(out);
        } else {
          state_->tracer.write_compact(out);
        }
        std::cout << "trace: wrote " << state_->tracer.size() << " events to "
                  << path_
                  << (chrome ? " (open in chrome://tracing or ui.perfetto.dev)"
                             : " (compact; analyse with bench/trace_tool)")
                  << "\n";
      }
    }
    if (profile_) {
      const auto events = obs::CollectEvents(state_->tracer);
      const obs::Profile prof = obs::Profile::Build(events);
      std::cout << "BENCH_" << (bench_.empty() ? "bench" : bench_)
                << "_profile.json {";
      prof.write_summary_fields(std::cout);
      std::cout << "}\n";
    }
  }

  /// Null when tracing is disabled — pass straight through to the
  /// instrumented constructors.
  obs::Context* ctx() { return state_ ? &state_->ctx : nullptr; }
  obs::Tracer* tracer() { return state_ ? &state_->tracer : nullptr; }
  obs::Registry* registry() { return state_ ? &state_->registry : nullptr; }

 private:
  struct State {
    obs::Registry registry;
    obs::Tracer tracer;
    obs::Context ctx;
  };
  std::string path_;
  bool profile_ = false;
  std::string bench_;
  std::unique_ptr<State> state_;
};

}  // namespace pdsi::bench
