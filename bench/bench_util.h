// Shared helpers for the per-figure benchmark harnesses: consistent
// banners and paper-vs-measured reporting so bench output can be pasted
// straight into EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>

#include "pdsi/common/table.h"

namespace pdsi::bench {

inline void Header(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "==========================================================\n"
            << experiment << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==========================================================\n";
}

inline void Note(const std::string& text) { std::cout << "note: " << text << "\n"; }

/// Machine-readable mirror of the table output: each emit() prints one
/// line of the form
///
///   BENCH_<bench>.json {"key": value, ...}
///
/// so the perf trajectory can be tracked across PRs with
/// `grep '^BENCH_' | cut -d' ' -f2-`. Keys insert in call order; values
/// are JSON numbers or strings (non-finite numbers are emitted as
/// strings, since JSON has no inf/nan).
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  JsonReport& num(const std::string& key, double v) {
    if (!std::isfinite(v)) return str(key, v > 0 ? "inf" : (v < 0 ? "-inf" : "nan"));
    std::ostringstream os;
    os.precision(12);
    os << v;
    add(key, os.str());
    return *this;
  }

  JsonReport& str(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    add(key, quoted);
    return *this;
  }

  /// Prints the line and clears the fields for the next row.
  void emit(std::ostream& os = std::cout) {
    os << "BENCH_" << bench_ << ".json {" << fields_ << "}\n";
    fields_.clear();
  }

 private:
  void add(const std::string& key, const std::string& json_value) {
    if (!fields_.empty()) fields_ += ", ";
    fields_ += "\"" + key + "\": " + json_value;
  }

  std::string bench_;
  std::string fields_;
};

}  // namespace pdsi::bench
