// Fig. 7 — GIGA+ directory create throughput vs number of servers.
//
// Paper: GIGA+ (UCAR Metarates-style create storm into one huge
// directory) scales file-creates/sec with metadata servers because
// partitions split without synchronisation and clients correct stale
// addressing lazily; a conventional single metadata server is flat.
#include <iostream>
#include <mutex>
#include <thread>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/giga/giga.h"

using namespace pdsi;

namespace {

struct RunResult {
  double creates_per_second;        ///< whole run, including growth phase
  double steady_creates_per_second; ///< second half (directory fully split)
  std::uint64_t splits;
  std::uint64_t partitions;
  std::uint64_t stale_retries;
};

RunResult RunMetarates(std::uint32_t servers, int clients, int per_client) {
  giga::GigaParams p;
  p.num_servers = servers;
  p.split_threshold = 800;
  p.server_op_s = 200e-6;
  giga::GigaDirectory dir(p);
  sim::VirtualScheduler sched(clients);
  std::vector<std::thread> threads;
  std::mutex mu;
  double finish = 0.0;
  double half = 0.0;  // latest time any client crossed its midpoint
  std::uint64_t retries = 0;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      giga::GigaClient client(dir, sched, c);
      double my_half = 0.0;
      for (int i = 0; i < per_client; ++i) {
        client.create("f" + std::to_string(c) + "_" + std::to_string(i));
        if (i == per_client / 2) my_half = sched.now(c);
      }
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, sched.now(c));
      half = std::max(half, my_half);
      retries += client.stale_retries();
      sched.finish(c);
    });
  }
  for (auto& t : threads) t.join();
  RunResult r;
  r.creates_per_second = clients * per_client / finish;
  r.steady_creates_per_second =
      clients * (per_client - per_client / 2 - 1) / (finish - half);
  r.splits = dir.splits();
  r.partitions = dir.partitions();
  r.stale_retries = retries;
  return r;
}

}  // namespace

int main() {
  bench::Header("Fig. 7: GIGA+ create scaling (Metarates-style storm)",
                "creates/sec grows near-linearly with servers; client "
                "addressing corrections stay rare");

  constexpr int kClients = 64;
  constexpr int kPerClient = 400;
  Table t({"servers", "creates/s", "steady creates/s", "steady scaling",
           "splits", "partitions", "stale retries", "retries/op"});
  double base = 0.0;
  for (std::uint32_t servers : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto r = RunMetarates(servers, kClients, kPerClient);
    if (servers == 1) base = r.steady_creates_per_second;
    t.row({std::to_string(servers), FormatCount(r.creates_per_second),
           FormatCount(r.steady_creates_per_second),
           FormatDouble(r.steady_creates_per_second / base, 2) + "x",
           std::to_string(r.splits), std::to_string(r.partitions),
           std::to_string(r.stale_retries),
           FormatDouble(static_cast<double>(r.stale_retries) /
                            (kClients * kPerClient), 4)});
  }
  t.print(std::cout);
  bench::Note("shape check: near-linear scaling until the 64 clients "
              "saturate; retries bounded by split count, not op count.");
  return 0;
}
