// Fig. 8 — PLFS checkpoint speedups on SciDAC applications.
//
// Paper: "order of magnitude speedup to the Chombo benchmark and two
// orders of magnitude to the FLASH benchmark. Moreover, LANL production
// applications see speedups of 5X to 28X"; demonstrated on PanFS, Lustre
// and GPFS. Here every paper app model runs on all three file-system
// personalities, directly vs through PLFS.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/config.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;

int main(int argc, char** argv) {
  bench::Header("Fig. 8: PLFS vs direct N-1 checkpoint bandwidth",
                "Chombo ~10x, FLASH ~100x, LANL apps 5-28x; gains on "
                "PanFS, Lustre and GPFS alike");
  // With --trace <path>, the first (PanFS-like, Chombo) *direct* run of
  // the app table is traced — the N-1 lock-convoy case the profile and
  // critical path explain; one run per file keeps its tracks unambiguous.
  // --profile additionally aggregates that run into a BENCH_ profile line.
  bench::BenchObs trace(bench::TraceFlag(argc, argv),
                        bench::ProfileFlag(argc, argv), "fig08_plfs_speedup");
  bench::JsonReport json("fig08_plfs_speedup");
  bool traced = false;

  constexpr std::uint32_t kRanks = 64;
  const std::vector<pfs::PfsConfig> systems = {
      pfs::PfsConfig::PanFsLike(8),
      pfs::PfsConfig::LustreLike(8),
      pfs::PfsConfig::GpfsLike(8),
  };

  for (const auto& cfg : systems) {
    PrintBanner(std::cout, cfg.name + " (" + std::to_string(cfg.num_oss) +
                               " OSS, " + std::to_string(kRanks) + " ranks)");
    Table t({"app", "pattern", "record", "direct", "plfs", "speedup",
             "paper"});
    for (const auto& app : workload::PaperApps(kRanks)) {
      obs::Context* ctx = traced ? nullptr : trace.ctx();
      traced = traced || ctx != nullptr;
      const auto direct =
          workload::RunDirectCheckpoint(cfg, app.spec, nullptr, ctx);
      const auto plfs = workload::RunPlfsCheckpoint(cfg, app.spec);
      t.row({app.name, std::string(workload::PatternName(app.spec.pattern)),
             FormatBytes(static_cast<double>(app.spec.record_bytes)),
             FormatRate(direct.bandwidth()), FormatRate(plfs.bandwidth()),
             FormatDouble(direct.seconds / plfs.seconds, 1) + "x",
             "~" + FormatDouble(app.paper_speedup, 0) + "x"});
      json.str("system", cfg.name)
          .str("app", app.name)
          .num("direct_mbs", direct.bandwidth() / 1e6)
          .num("plfs_mbs", plfs.bandwidth() / 1e6)
          .num("speedup", direct.seconds / plfs.seconds);
      json.emit();
    }
    t.print(std::cout);
  }

  // Speedup vs scale on one app model: with the server count fixed, both
  // paths are disk-array-bound and the ratio is roughly scale-invariant;
  // the absolute time saved per checkpoint grows linearly with ranks.
  PrintBanner(std::cout, "speedup vs rank count (LANL-app-A on panfs-like)");
  {
    Table t({"ranks", "direct", "plfs", "speedup"});
    for (std::uint32_t ranks : {16u, 32u, 64u, 128u}) {
      workload::CheckpointSpec spec{workload::Pattern::n1_strided, ranks,
                                    47 * KiB, 64};
      const auto cfg = pfs::PfsConfig::PanFsLike(8);
      const auto direct = workload::RunDirectCheckpoint(cfg, spec);
      const auto plfs = workload::RunPlfsCheckpoint(cfg, spec);
      t.row({std::to_string(ranks), FormatRate(direct.bandwidth()),
             FormatRate(plfs.bandwidth()),
             FormatDouble(direct.seconds / plfs.seconds, 1) + "x"});
      json.str("scale_app", "lanl-app-a")
          .num("ranks", static_cast<double>(ranks))
          .num("speedup", direct.seconds / plfs.seconds);
      json.emit();
    }
    t.print(std::cout);
  }

  bench::Note(
      "shape check: FLASH-like tiny records gain the most, larger-record "
      "apps gain less, N-1 segmented (S3D) gains least; ordering should "
      "match the paper even though absolute MB/s reflects the simulated "
      "substrate. Mid-size-record speedups are compressed ~2-4x against the "
      "paper's production numbers (thousands of ranks, hundreds of OSS); "
      "see EXPERIMENTS.md.");
  return 0;
}
