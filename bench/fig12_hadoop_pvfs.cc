// Fig. 12 — Hadoop-on-PVFS vs Hadoop-on-HDFS (grep workload).
//
// Paper: the simplest PVFS shim ran a large text search more than twice
// as slowly as native HDFS; tuning the shim's readahead produced a large
// improvement; exposing the replica layout to Hadoop's load balancer
// (PVFS already publishes it via extended attributes) reaches parity.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/dsfs/dsfs.h"

using namespace pdsi;

int main() {
  bench::Header("Fig. 12: distributed grep, HDFS vs PVFS-shim variants",
                "naive shim > 2x slower; readahead tuning recovers most; "
                "layout exposure reaches parity");

  constexpr std::uint32_t kNodes = 16;
  struct Config {
    const char* label;
    dsfs::GrepJobParams params;
  };
  const std::vector<Config> configs = {
      {"hadoop-on-hdfs (native)", dsfs::NativeHdfs(kNodes)},
      {"hadoop-on-pvfs, naive shim", dsfs::NaivePvfsShim(kNodes)},
      {"+ shim readahead", dsfs::ReadaheadPvfsShim(kNodes)},
      {"+ layout exposure", dsfs::LayoutExposedPvfsShim(kNodes)},
  };

  Table t({"configuration", "runtime", "vs native", "aggregate bw",
           "local tasks", "remote tasks"});
  double native = 0.0;
  for (const auto& c : configs) {
    auto p = c.params;
    p.blocks = 256;
    const auto r = dsfs::RunGrepJob(p);
    if (native == 0.0) native = r.runtime_s;
    t.row({c.label, FormatDuration(r.runtime_s),
           FormatDouble(r.runtime_s / native, 2) + "x",
           FormatRate(r.aggregate_bandwidth()),
           std::to_string(r.local_tasks), std::to_string(r.remote_tasks)});
  }
  t.print(std::cout);
  bench::Note("shape check: 1.0x -> >2x -> intermediate -> ~1.0x, with the "
              "local-task count explaining the final step.");
  return 0;
}
