// Fig. 9 — TCP incast goodput collapse and the fine-grained-RTO fix.
//
// Paper: synchronized reads from up to 47 senders to one 1GE client
// collapse goodput (200 ms minimum RTO idles the link after full-window
// losses); lowering the minimum RTO to ~1 ms restores throughput, and at
// 10GE scale (hundreds to thousands of senders) the retransmission
// timeout also needs randomisation to desynchronise senders.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/incast/incast.h"

using namespace pdsi;

namespace {

void Sweep(const char* title, const char* link, double link_bw,
           std::uint32_t buffer_pkts, std::uint64_t sru,
           const std::vector<std::uint32_t>& senders) {
  PrintBanner(std::cout, title);
  Table t({"senders", "rto=200ms", "timeouts", "rto=1ms", "rto=1ms+rand",
           "timeouts(rand)"});
  bench::JsonReport json("fig09_incast");
  double peak_coarse = 0.0, floor_coarse = 1e300;
  double floor_fine = 1e300, floor_rand = 1e300;
  for (std::uint32_t n : senders) {
    incast::IncastParams p;
    p.senders = n;
    p.sru_bytes = sru;
    p.blocks = 4;
    p.link_bw_bytes = link_bw;
    p.buffer_packets = buffer_pkts;

    p.min_rto_s = 0.2;
    p.rto_jitter = 0.0;
    const auto coarse = incast::SimulateIncast(p);

    p.min_rto_s = 1e-3;
    const auto fine = incast::SimulateIncast(p);

    p.rto_jitter = 0.5;
    const auto fine_rand = incast::SimulateIncast(p);

    t.row({std::to_string(n), FormatRate(coarse.goodput_bytes),
           std::to_string(coarse.timeouts), FormatRate(fine.goodput_bytes),
           FormatRate(fine_rand.goodput_bytes),
           std::to_string(fine_rand.timeouts)});

    peak_coarse = std::max(peak_coarse, coarse.goodput_bytes);
    floor_coarse = std::min(floor_coarse, coarse.goodput_bytes);
    floor_fine = std::min(floor_fine, fine.goodput_bytes);
    floor_rand = std::min(floor_rand, fine_rand.goodput_bytes);

    json.str("link", link)
        .num("senders", n)
        .num("coarse_mbs", coarse.goodput_bytes / 1e6)
        .num("coarse_timeouts", static_cast<double>(coarse.timeouts))
        .num("fine_mbs", fine.goodput_bytes / 1e6)
        .num("rand_mbs", fine_rand.goodput_bytes / 1e6)
        .num("rand_timeouts", static_cast<double>(fine_rand.timeouts))
        .emit();
  }
  t.print(std::cout);
  json.str("link", link)
      .str("row", "summary")
      .num("peak_coarse_mbs", peak_coarse / 1e6)
      .num("floor_coarse_mbs", floor_coarse / 1e6)
      .num("collapse_x", peak_coarse / floor_coarse)
      .num("fine_floor_mbs", floor_fine / 1e6)
      .num("rand_floor_mbs", floor_rand / 1e6)
      .emit();
}

}  // namespace

int main() {
  bench::Header("Fig. 9: incast goodput vs number of senders",
                "1GE: collapse by ~10x past a handful of senders with "
                "200 ms RTO-min; 1 ms RTO-min restores goodput. 10GE/many "
                "senders additionally needs RTO randomisation.");

  Sweep("1GE client link, 64-packet port buffer, SRU 256 KiB",
        "1ge", 125e6, 64, 256 * 1024,
        {2, 4, 8, 12, 16, 24, 32, 40, 47});

  Sweep("10GE client link, 256-packet port buffer, SRU 32 KiB",
        "10ge", 1250e6, 256, 32 * 1024,
        {16, 64, 128, 256, 512, 1024, 2048});

  bench::Note("shape check: 1GE collapse onset within ~8-16 senders; "
              "fine-grained RTO holds goodput near line rate; at 10GE "
              "scale the randomised column dominates the plain 1 ms one.");
  return 0;
}
