// Fig. 14 — sustained random-write IOPS degradation for the five flash
// devices (2010 NERSC follow-up).
//
// Paper: 4K blocks written randomly over 90% of each device for an hour;
// behaviour differs by device, governed by how much spare flash each has
// for grooming and by its translation layer: the newer PCIe devices
// sustain good rates for significant periods while low-spare devices
// degrade. Device capacities here are scaled down (see device_catalog),
// which shortens the honeymoon but preserves steady-state levels, so the
// timeline is in written-fraction-of-device rather than wall hours.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/storage/device_catalog.h"

using namespace pdsi;
using storage::SsdModel;

int main() {
  bench::Header("Fig. 14: sustained 4K random-write IOPS over time",
                "per-device degradation curves; spare-rich PCIe devices "
                "hold up, low-spare devices collapse");

  const auto devices = storage::AllFlashDevices();
  std::vector<SsdModel> models;
  std::vector<Rng> rngs;
  for (const auto& p : devices) {
    models.emplace_back(p);
    rngs.emplace_back(101 + models.size());
  }

  // Windows sized as a fraction of device capacity so devices of
  // different (scaled) sizes progress comparably.
  Table t({"written/capacity", devices[0].name, devices[1].name,
           devices[2].name, devices[3].name, devices[4].name});
  std::vector<double> fresh(devices.size(), 0.0);
  for (int w = 0; w < 14; ++w) {
    std::vector<std::string> row{FormatDouble(0.25 * (w + 1), 2) + "x"};
    for (std::size_t d = 0; d < devices.size(); ++d) {
      SsdModel& ssd = models[d];
      const std::uint64_t span_pages =
          ssd.params().capacity_bytes * 9 / 10 / 4096;
      const int ops = static_cast<int>(span_pages / 4);  // 0.25 capacity
      double tt = 0.0;
      for (int i = 0; i < ops; ++i) {
        tt += ssd.write(rngs[d].below(span_pages) * 4096, 4096);
      }
      const double kiops = ops / tt / 1e3;
      if (w == 0) fresh[d] = kiops;
      row.push_back(FormatDouble(kiops, 1) + " (" +
                    FormatDouble(kiops / fresh[d], 2) + "x)");
    }
    t.row(std::move(row));
  }
  t.print(std::cout);

  PrintBanner(std::cout, "steady-state summary");
  Table s({"device", "over-provision", "steady KIOPS", "fresh KIOPS",
           "retention", "write amp"});
  for (std::size_t d = 0; d < devices.size(); ++d) {
    SsdModel& ssd = models[d];
    const std::uint64_t span_pages = ssd.params().capacity_bytes * 9 / 10 / 4096;
    double tt = 0.0;
    const int ops = 20000;
    for (int i = 0; i < ops; ++i) {
      tt += ssd.write(rngs[d].below(span_pages) * 4096, 4096);
    }
    const double kiops = ops / tt / 1e3;
    s.row({devices[d].name,
           FormatDouble(100.0 * devices[d].over_provision, 0) + "%",
           FormatDouble(kiops, 1), FormatDouble(fresh[d], 1),
           FormatDouble(100.0 * kiops / fresh[d], 0) + "%",
           FormatDouble(ssd.stats().write_amplification(), 2)});
  }
  s.print(std::cout);
  bench::Note("shape check: high-OP PCIe devices retain most of their "
              "fresh rate; the 7%-OP SATA devices degrade hardest.");
  return 0;
}
