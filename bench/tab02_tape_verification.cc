// §5.2.3 — NERSC tape media verification campaign.
//
// Paper: 23,820 cartridges (T10KA/9940B/9840A, up to 12 years old) read
// end to end; 13 tapes had unreadable data (99.945% probability of
// reading 100% of a tape); the worst tapes took 3-5 reads to yield their
// data; the single-pass appliance is a useful first check but not
// conclusive.
#include <iostream>

#include "bench_util.h"
#include "pdsi/archive/archive.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"

using namespace pdsi;

int main() {
  bench::Header("Table: tape media verification (NERSC migration)",
                "99.945% full-read probability; worst tapes need 3-5 reads");

  Rng rng(20090601);
  const auto mix = archive::NerscMediaMix();
  const auto library = archive::BuildLibrary(mix, rng);

  {
    Table t({"media", "count", "capacity", "age"});
    for (const auto& m : mix) {
      t.row({m.name, std::to_string(m.count),
             FormatDouble(m.capacity_gb, 0) + " GB",
             FormatDouble(m.age_years, 0) + " yr"});
    }
    t.print(std::cout);
  }

  archive::VerificationPolicy policy;
  const auto r = archive::RunVerification(library, mix, policy, rng);

  PrintBanner(std::cout, "campaign outcome");
  Table t({"metric", "value", "paper"});
  t.row({"tapes read", std::to_string(r.tapes), "23,820"});
  t.row({"appliance suspects (1 pass)", std::to_string(r.appliance_suspects), "-"});
  t.row({"recovered by rereads", std::to_string(r.recovered_with_retries), "-"});
  t.row({"unreadable tapes", std::to_string(r.unreadable), "13"});
  t.row({"full-read probability",
         FormatDouble(100.0 * r.full_read_probability(), 3) + "%", "99.945%"});

  std::uint32_t hist[8] = {0};
  for (auto p : r.passes_needed) hist[std::min<std::uint32_t>(p, 7)]++;
  for (std::uint32_t p = 2; p <= 6; ++p) {
    if (hist[p]) {
      t.row({"suspects needing " + std::to_string(p) + " reads",
             std::to_string(hist[p]), p >= 3 ? "worst: 3-5 reads" : "-"});
    }
  }
  t.print(std::cout);
  bench::Note("shape check: unreadable count near 13/23,820 and a reread "
              "tail reaching 3-5 passes.");
  return 0;
}
