// Fig. 4 — interrupts linear in chip count; MTTI projection to exascale.
//
// Paper: best simple model has interrupts linear in the number of
// processor chips (~0.1/chip/year optimistic); with top500 aggregate
// speed doubling yearly and per-chip speed doubling every 18-30 months,
// mean time to interrupt "may drop to as little as a few minutes as we
// approach the exascale era."
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/model.h"
#include "pdsi/failure/trace.h"

using namespace pdsi;

int main() {
  bench::Header("Fig. 4: MTTI vs system growth",
                "interrupts linear in #chips; MTTI falls to minutes near "
                "exascale (baseline 1 PF in 2008, 0.1 int/chip/yr)");

  // Part 1: linearity check against generated traces of growing systems.
  PrintBanner(std::cout, "interrupts vs chips (5-year synthetic traces)");
  {
    Table t({"nodes", "chips", "events/5yr", "events per chip-yr"});
    Rng rng(42);
    std::vector<double> xs, ys;
    for (std::uint32_t nodes : {256u, 512u, 1024u, 2048u, 4096u}) {
      failure::SystemTraceParams p;
      p.nodes = nodes;
      p.years = 5.0;
      p.ageing_per_year = 1.0;
      p.burst_probability = 0.0;
      auto trace = failure::GenerateTrace(p, rng);
      const double chips = nodes * p.chips_per_node;
      xs.push_back(chips);
      ys.push_back(static_cast<double>(trace.size()));
      t.row({std::to_string(nodes), FormatCount(chips),
             std::to_string(trace.size()),
             FormatDouble(static_cast<double>(trace.size()) / chips / p.years, 3)});
    }
    t.print(std::cout);
    const auto fit = FitLinear(xs, ys);
    std::cout << "linear fit: events = " << FormatDouble(fit.intercept, 1)
              << " + " << FormatDouble(fit.slope, 3) << " * chips,  r^2 = "
              << FormatDouble(fit.r2, 4) << "\n";
  }

  // Part 2: the projection grid (per-chip doubling 18/24/30 months).
  PrintBanner(std::cout, "projected MTTI by year");
  Table t({"year", "system", "chips(18mo)", "MTTI(18mo)", "MTTI(24mo)",
           "MTTI(30mo)"});
  std::vector<failure::MttiModel> models;
  for (double months : {18.0, 24.0, 30.0}) {
    failure::MttiModelParams p;
    p.chip_doubling_months = months;
    models.emplace_back(p);
  }
  for (int year = 2008; year <= 2020; year += 2) {
    const double y = year;
    t.row({std::to_string(year),
           FormatDouble(models[0].system_pflops(y), 0) + " PF",
           FormatCount(models[0].chips(y)),
           FormatDuration(models[0].mtti_seconds(y)),
           FormatDuration(models[1].mtti_seconds(y)),
           FormatDuration(models[2].mtti_seconds(y))});
  }
  t.print(std::cout);
  bench::Note("shape check: MTTI at ~2018-2020 (exascale) should reach "
              "minutes for the slower per-chip growth columns.");
  return 0;
}
