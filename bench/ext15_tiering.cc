// Extension — policy-driven storage tiering (pdsi::tier): the PDSI
// pipeline (burst-buffer flash -> parallel FS -> erasure-coded archive)
// behind one TierEngine, exercised in the three situations the tiering
// literature cares about:
//
//   1. checkpoint drain racing analysis reads — a checkpoint drains from
//      flash to the warm servers while analysis reads hit the same
//      servers; the collision shows up as read latency, and with
//      --trace the tier/oss tracks make the critical path explicit;
//   2. tier crash with parity rebuild — an archived dataset loses
//      devices, reads degrade to on-the-fly reconstruction, rebuild()
//      re-protects, and the bytes are verified identical throughout;
//   3. capacity pressure forcing archive demotion — the warm watermark
//      demotes coldest-first into the object store and the archived
//      generation reads back intact.
//
// Everything is virtual-time and byte-reproducible; --smoke shrinks the
// data sizes for the CI lane while keeping every BENCH_ line present.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/storage/device_catalog.h"
#include "pdsi/tier/policy.h"
#include "pdsi/tier/tier_engine.h"

using namespace pdsi;

namespace {

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// A fresh three-tier stack per scenario: 4 warm servers, a staging
/// flash device, and an 8+2 archive shelf.
struct Stack {
  Stack(std::uint64_t flash, std::uint64_t warm, obs::Context* ctx)
      : sched(1), cluster(pfs::PfsConfig::PanFsLike(4), sched, nullptr, ctx) {
    tier::TierEngineParams p;
    p.bb.ssd = storage::FlashDevice("fusionio-iodrive-duo");
    p.bb.ssd.capacity_bytes = flash;
    p.warm_capacity_bytes = warm;
    engine = std::make_unique<tier::TierEngine>(p, cluster, ctx);
  }
  ~Stack() { sched.finish(0); }

  sim::VirtualScheduler sched;
  pfs::PfsCluster cluster;
  std::unique_ptr<tier::TierEngine> engine;
};

/// Writes `name` in 8 MiB strides and returns the last completion.
double WriteObject(tier::TierEngine& e, const std::string& name,
                   std::uint32_t seed, std::uint64_t size, double t) {
  const std::uint64_t stride = std::min<std::uint64_t>(size, 8 * MiB);
  for (std::uint64_t off = 0; off < size; off += stride) {
    const std::uint64_t n = std::min(stride, size - off);
    t = *e.write(name, off, MakePattern(seed, off, n), t);
  }
  return t;
}

bool VerifyObject(tier::TierEngine& e, const std::string& name,
                  std::uint32_t seed, std::uint64_t size, double* t) {
  Bytes buf(size);
  auto r = e.read(name, 0, buf, *t);
  if (!r.ok()) return false;
  *t = std::max(*t, *r);
  return FindPatternMismatch(seed, 0, buf) == kNoMismatch;
}

// -- Scenario 1: checkpoint drain racing analysis reads ---------------------

void ScenarioDrainRace(bench::JsonReport& json, obs::Context* ctx, bool smoke) {
  PrintBanner(std::cout, "scenario 1: checkpoint drain vs analysis reads");
  const std::uint64_t kAnalysisObj = (smoke ? 4 : 32) * MiB;
  const int kAnalysisCount = 4;
  const std::uint64_t kCkptObj = (smoke ? 8 : 64) * MiB;
  const int kCkptCount = 4;

  Stack s(4 * GiB, 16 * GiB, ctx);
  tier::TierEngine& e = *s.engine;

  // The analysis working set lives on the warm tier (pinned: a shared
  // dataset, not checkpoint traffic).
  double t = 0.0;
  for (int i = 0; i < kAnalysisCount; ++i) {
    e.pin("analysis" + std::to_string(i), tier::kWarmTier);
    t = WriteObject(e, "analysis" + std::to_string(i),
                    static_cast<std::uint32_t>(100 + i), kAnalysisObj, t);
  }
  const double t_loaded = t;

  // Checkpoint: ingest into flash; the background drain immediately
  // starts pushing the same warm servers the analysis reads need.
  double absorb_done = t_loaded;
  for (int i = 0; i < kCkptCount; ++i) {
    absorb_done = WriteObject(e, "ckpt" + std::to_string(i),
                              static_cast<std::uint32_t>(i), kCkptObj,
                              absorb_done);
  }
  const double absorb_s = absorb_done - t_loaded;

  // Analysis reads issued while the drain is in flight.
  Bytes buf(kAnalysisObj);
  double racing_lat = 0.0;
  for (int i = 0; i < kAnalysisCount; ++i) {
    const double issue = absorb_done + i * 0.01;
    auto r = e.read("analysis" + std::to_string(i), 0, buf, issue);
    racing_lat += *r - issue;
  }
  racing_lat /= kAnalysisCount;

  const double drain_done = e.flush(absorb_done + kAnalysisCount * 0.01);
  const double drain_s = drain_done - t_loaded;

  // The same reads on a quiet warm tier.
  double quiet_lat = 0.0;
  for (int i = 0; i < kAnalysisCount; ++i) {
    const double issue = drain_done + 1.0 + i * 0.01;
    auto r = e.read("analysis" + std::to_string(i), 0, buf, issue);
    quiet_lat += *r - issue;
  }
  quiet_lat /= kAnalysisCount;

  const std::uint64_t ckpt_bytes = kCkptObj * kCkptCount;
  Table tbl({"metric", "value"});
  tbl.row({"checkpoint absorb", FormatRate(static_cast<double>(ckpt_bytes) / absorb_s)});
  tbl.row({"durable (drain) time", FormatDuration(drain_s)});
  tbl.row({"analysis read latency (racing drain)", FormatDuration(racing_lat)});
  tbl.row({"analysis read latency (quiet)", FormatDuration(quiet_lat)});
  tbl.row({"slowdown under drain", FormatDouble(racing_lat / quiet_lat, 2) + "x"});
  tbl.print(std::cout);

  json.str("scenario", "drain_race")
      .num("ckpt_bytes", static_cast<double>(ckpt_bytes))
      .num("absorb_s", absorb_s)
      .num("drain_s", drain_s)
      .num("racing_read_s", racing_lat)
      .num("quiet_read_s", quiet_lat)
      .num("read_slowdown", racing_lat / quiet_lat)
      .num("warm_hits", static_cast<double>(e.stats().warm_hits))
      .num("hot_hits", static_cast<double>(e.stats().hot_hits));
  json.emit();
}

// -- Scenario 2: tier crash + rebuild from parity ---------------------------

void ScenarioCrashRebuild(bench::JsonReport& json, obs::Context* ctx, bool smoke) {
  PrintBanner(std::cout, "scenario 2: archive device loss, degraded reads, rebuild");
  const std::uint64_t kObj = (smoke ? 8 : 64) * MiB;

  Stack s(1 * GiB, 8 * GiB, ctx);
  tier::TierEngine& e = *s.engine;
  e.pin("dataset", tier::kColdTier);
  double t = WriteObject(e, "dataset", 7, kObj, 0.0);
  t = e.flush(t);  // pin-to-cold: archived at the barrier

  double t0 = t + 1.0;
  const bool ok_healthy = VerifyObject(e, "dataset", 7, kObj, &t0);
  const double healthy_read_s = t0 - (t + 1.0);

  // Lose two devices: real shard bytes are destroyed, within parity.
  e.store().fail_device(1);
  e.store().fail_device(6);
  const std::uint64_t lost = e.store().lost_shards();

  double t1 = t0 + 1.0;
  const bool ok_degraded = VerifyObject(e, "dataset", 7, kObj, &t1);
  const double degraded_read_s = t1 - (t0 + 1.0);

  auto rb = e.rebuild(t1 + 1.0);
  const double rebuild_s = *rb - (t1 + 1.0);

  double t2 = *rb + 1.0;
  const bool ok_rebuilt = VerifyObject(e, "dataset", 7, kObj, &t2);
  const double rebuilt_read_s = t2 - (*rb + 1.0);

  const bool identical = ok_healthy && ok_degraded && ok_rebuilt;
  Table tbl({"metric", "value"});
  tbl.row({"healthy read", FormatDuration(healthy_read_s)});
  tbl.row({"degraded read (2 devices lost)", FormatDuration(degraded_read_s)});
  tbl.row({"degraded penalty", FormatDouble(degraded_read_s / healthy_read_s, 2) + "x"});
  tbl.row({"lost shards", FormatCount(lost)});
  tbl.row({"rebuild-from-parity", FormatDuration(rebuild_s)});
  tbl.row({"read after rebuild", FormatDuration(rebuilt_read_s)});
  tbl.row({"bytes identical across all phases", identical ? "yes" : "NO"});
  tbl.print(std::cout);

  json.str("scenario", "crash_rebuild")
      .num("object_bytes", static_cast<double>(kObj))
      .num("healthy_read_s", healthy_read_s)
      .num("degraded_read_s", degraded_read_s)
      .num("degraded_penalty", degraded_read_s / healthy_read_s)
      .num("lost_shards", static_cast<double>(lost))
      .num("rebuild_s", rebuild_s)
      .num("rebuilt_shards", static_cast<double>(e.store().stats().rebuilt_shards))
      .num("rebuilt_read_s", rebuilt_read_s)
      .num("degraded_gets", static_cast<double>(e.store().stats().degraded_gets))
      .num("identical", identical ? 1.0 : 0.0);
  json.emit();
}

// -- Scenario 3: capacity pressure forcing archive demotion -----------------

void ScenarioCapacityPressure(bench::JsonReport& json, obs::Context* ctx,
                              bool smoke) {
  PrintBanner(std::cout, "scenario 3: warm watermark demotes to the archive");
  const std::uint64_t kGen = (smoke ? 4 : 16) * MiB;
  const int kGens = 6;
  // Warm budget fits ~4 generations; the high watermark fires during the
  // later flushes and sheds the oldest generations to the object store.
  Stack s(1 * GiB, 4 * kGen + kGen / 2, ctx);
  tier::TierEngine& e = *s.engine;

  double t = 0.0;
  for (int g = 0; g < kGens; ++g) {
    t = WriteObject(e, "gen" + std::to_string(g),
                    static_cast<std::uint32_t>(g), kGen, t + 1.0);
    t = e.flush(t);
  }

  const auto& st = e.stats();
  const double warm_frac = e.usage(tier::kWarmTier).frac();

  // The oldest generation is archive-only now; read it back and verify.
  const int cold_tier = e.resident_tier("gen0");
  double t0 = t + 1.0;
  const bool identical = VerifyObject(e, "gen0", 0, kGen, &t0);
  const double cold_read_s = t0 - (t + 1.0);

  Table tbl({"metric", "value"});
  tbl.row({"generations written", FormatCount(kGens)});
  tbl.row({"demotions", FormatCount(st.demotions)});
  tbl.row({"bytes demoted", FormatBytes(st.demoted_bytes)});
  tbl.row({"warm occupancy after", FormatDouble(100.0 * warm_frac, 1) + "%"});
  tbl.row({"archived gen0 read", FormatDuration(cold_read_s)});
  tbl.row({"gen0 bytes identical", identical ? "yes" : "NO"});
  tbl.print(std::cout);

  json.str("scenario", "capacity_pressure")
      .num("gen_bytes", static_cast<double>(kGen))
      .num("generations", kGens)
      .num("demotions", static_cast<double>(st.demotions))
      .num("demoted_bytes", static_cast<double>(st.demoted_bytes))
      .num("warm_frac", warm_frac)
      .num("gen0_tier", cold_tier)
      .num("cold_read_s", cold_read_s)
      .num("identical", identical ? 1.0 : 0.0);
  json.emit();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFlag(argc, argv);
  bench::Header("Policy-driven storage tiering (pdsi::tier)",
                "flash staging, PFS warm tier and an 8+2 erasure-coded "
                "archive behind one engine; drains, demotions and rebuilds "
                "under policy control");
  bench::BenchObs trace(bench::TraceFlag(argc, argv),
                        bench::ProfileFlag(argc, argv), "ext15_tiering");
  bench::JsonReport json("ext15_tiering");

  ScenarioDrainRace(json, trace.ctx(), smoke);
  ScenarioCrashRebuild(json, trace.ctx(), smoke);
  ScenarioCapacityPressure(json, trace.ctx(), smoke);

  bench::Note("shape check: analysis reads slow down while the drain holds "
              "the warm servers; archive loss within parity degrades but "
              "never corrupts (bytes verified identical before and after "
              "rebuild); watermark pressure demotes coldest generations "
              "first and they read back intact from k survivors.");
  return 0;
}
