// bench_diff — regression gate over BENCH_*.json lines.
//
//   bench_diff <baseline-file> <current-file> --tol <spec-file>
//   bench_diff --self-test
//
// Both inputs are raw bench output; only lines of the form
// `BENCH_<name>.json {...}` are read (the JsonReport / --profile
// contract). Rows pair up positionally per bench name, and every numeric
// key present in both rows is checked against the tolerance spec:
//
//   # key  direction  rel_tol
//   speedup        higher  0.40
//   durable_seconds lower  0.40
//   lock_wait_s    either  0.60
//
// `higher` means bigger is better (regression when current falls more
// than rel_tol below baseline), `lower` the reverse, `either` bounds
// relative drift both ways. Keys without a spec entry are reported but
// not gated, so adding metrics never breaks CI. A bench name present in
// the baseline but absent from the current run is a failure (the gate
// must notice silently dropped coverage); new benches in the current run
// are fine. Exit 0 = pass, 1 = regression, 2 = usage/parse error.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string bench;
  std::vector<std::pair<std::string, double>> nums;  // insertion order
  const double* find(const std::string& key) const {
    for (const auto& [k, v] : nums) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Parses the flat JSON object JsonReport emits: string values are
// skipped (they name modes/apps and are matched positionally), numeric
// values are collected. Returns false on malformed input.
bool ParseFlatObject(const std::string& s, Row* row) {
  std::size_t i = 0;
  auto ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  };
  auto quoted = [&](std::string* out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out->push_back(s[i++]);
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  };
  ws();
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  ws();
  if (i < s.size() && s[i] == '}') return true;
  while (true) {
    ws();
    std::string key;
    if (!quoted(&key)) return false;
    ws();
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == '"') {
      std::string ignored;
      if (!quoted(&ignored)) return false;
    } else {
      const char* start = s.c_str() + i;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end == start) return false;
      i += static_cast<std::size_t>(end - start);
      row->nums.emplace_back(key, v);
    }
    ws();
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') return true;
    return false;
  }
}

bool CollectRows(std::istream& in, std::vector<Row>* rows, std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.rfind("BENCH_", 0) != 0) continue;
    const std::size_t mark = line.find(".json ");
    if (mark == std::string::npos) continue;
    Row row;
    row.bench = line.substr(6, mark - 6);
    if (!ParseFlatObject(line.substr(mark + 6), &row)) {
      *error = "line " + std::to_string(lineno) + ": malformed BENCH_ json";
      return false;
    }
    rows->push_back(std::move(row));
  }
  return true;
}

struct TolRule {
  enum Dir { kHigher, kLower, kEither } dir = kEither;
  double rel = 0.0;
};

bool ParseSpec(std::istream& in, std::map<std::string, TolRule>* spec,
               std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key, dir;
    double rel = 0.0;
    if (!(ls >> key)) continue;  // blank/comment line
    if (!(ls >> dir >> rel) || rel < 0.0) {
      *error = "spec line " + std::to_string(lineno) +
               ": expected `<key> <higher|lower|either> <rel_tol>`";
      return false;
    }
    TolRule rule;
    if (dir == "higher") {
      rule.dir = TolRule::kHigher;
    } else if (dir == "lower") {
      rule.dir = TolRule::kLower;
    } else if (dir == "either") {
      rule.dir = TolRule::kEither;
    } else {
      *error = "spec line " + std::to_string(lineno) + ": bad direction `" +
               dir + "`";
      return false;
    }
    rule.rel = rel;
    (*spec)[key] = rule;
  }
  return true;
}

struct DiffResult {
  std::vector<std::string> regressions;
  std::size_t checked = 0;
  std::size_t unchecked = 0;
};

DiffResult Compare(const std::vector<Row>& baseline,
                   const std::vector<Row>& current,
                   const std::map<std::string, TolRule>& spec) {
  DiffResult out;
  // Positional pairing per bench name.
  std::map<std::string, std::vector<const Row*>> cur_by_bench;
  for (const Row& r : current) cur_by_bench[r.bench].push_back(&r);
  std::map<std::string, std::size_t> next_index;
  for (const Row& base : baseline) {
    auto it = cur_by_bench.find(base.bench);
    const std::size_t idx = next_index[base.bench]++;
    if (it == cur_by_bench.end() || idx >= it->second.size()) {
      out.regressions.push_back(base.bench + "[" + std::to_string(idx) +
                                "]: row missing from current run");
      continue;
    }
    const Row& cur = *it->second[idx];
    for (const auto& [key, bval] : base.nums) {
      const double* cval = cur.find(key);
      if (cval == nullptr) {
        out.regressions.push_back(base.bench + "[" + std::to_string(idx) +
                                  "]." + key + ": missing from current run");
        continue;
      }
      const auto rule = spec.find(key);
      if (rule == spec.end()) {
        ++out.unchecked;
        continue;
      }
      ++out.checked;
      const double b = bval, c = *cval;
      const double scale = std::fabs(b) > 0.0 ? std::fabs(b) : 1.0;
      const double tol = rule->second.rel;
      bool bad = false;
      switch (rule->second.dir) {
        case TolRule::kHigher: bad = c < b - tol * scale; break;
        case TolRule::kLower: bad = c > b + tol * scale; break;
        case TolRule::kEither: bad = std::fabs(c - b) > tol * scale; break;
      }
      if (bad) {
        std::ostringstream msg;
        msg.precision(9);
        msg << base.bench << "[" << idx << "]." << key << ": baseline " << b
            << " -> current " << c << " (rel tol " << tol << ", "
            << (rule->second.dir == TolRule::kHigher
                    ? "higher-is-better"
                    : rule->second.dir == TolRule::kLower ? "lower-is-better"
                                                          : "either") << ")";
        out.regressions.push_back(msg.str());
      }
    }
  }
  return out;
}

int SelfTest() {
  // Synthetic run: one throughput-style metric and one duration-style
  // metric. The "slow" current run halves the bandwidth and doubles the
  // duration — both must be flagged; the identical run must pass; and a
  // within-tolerance wiggle must pass.
  const std::string baseline =
      "noise line\n"
      "BENCH_synthetic.json {\"mode\": \"x\", \"bw_mbs\": 100, "
      "\"elapsed_s\": 10}\n";
  const std::string same = baseline;
  const std::string slow =
      "BENCH_synthetic.json {\"mode\": \"x\", \"bw_mbs\": 50, "
      "\"elapsed_s\": 20}\n";
  const std::string wiggle =
      "BENCH_synthetic.json {\"mode\": \"x\", \"bw_mbs\": 92, "
      "\"elapsed_s\": 10.8}\n";
  const std::string spec_text =
      "bw_mbs higher 0.25\n"
      "elapsed_s lower 0.25\n";

  auto rows = [](const std::string& text) {
    std::istringstream in(text);
    std::vector<Row> r;
    std::string err;
    if (!CollectRows(in, &r, &err)) {
      std::cerr << "self-test: parse failed: " << err << "\n";
      std::exit(1);
    }
    return r;
  };
  std::map<std::string, TolRule> spec;
  {
    std::istringstream in(spec_text);
    std::string err;
    if (!ParseSpec(in, &spec, &err)) {
      std::cerr << "self-test: spec parse failed: " << err << "\n";
      return 1;
    }
  }
  const DiffResult identical = Compare(rows(baseline), rows(same), spec);
  if (!identical.regressions.empty() || identical.checked != 2) {
    std::cerr << "self-test: identical runs must pass with 2 checked keys\n";
    return 1;
  }
  const DiffResult slowed = Compare(rows(baseline), rows(slow), spec);
  if (slowed.regressions.size() != 2) {
    std::cerr << "self-test: injected 2x slowdown must flag both metrics, got "
              << slowed.regressions.size() << "\n";
    return 1;
  }
  const DiffResult ok = Compare(rows(baseline), rows(wiggle), spec);
  if (!ok.regressions.empty()) {
    std::cerr << "self-test: within-tolerance drift must pass\n";
    return 1;
  }
  std::cout << "bench_diff self-test: PASS (2x slowdown detected, identical "
               "and in-tolerance runs pass)\n";
  return 0;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <baseline-file> <current-file> --tol <spec-file>\n"
               "       " << argv0 << " --self-test\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string spec_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--self-test") return SelfTest();
    if (a == "--tol" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (a.rfind("--tol=", 0) == 0) {
      spec_path = a.substr(6);
    } else if (!a.empty() && a[0] == '-') {
      return Usage(argv[0]);
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2 || spec_path.empty()) return Usage(argv[0]);

  auto load = [](const std::string& path, std::vector<Row>* rows) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "bench_diff: cannot open " << path << "\n";
      return false;
    }
    std::string err;
    if (!CollectRows(in, rows, &err)) {
      std::cerr << "bench_diff: " << path << ": " << err << "\n";
      return false;
    }
    return true;
  };
  std::vector<Row> baseline, current;
  if (!load(files[0], &baseline) || !load(files[1], &current)) return 2;
  if (baseline.empty()) {
    std::cerr << "bench_diff: no BENCH_ lines in baseline " << files[0] << "\n";
    return 2;
  }
  std::map<std::string, TolRule> spec;
  {
    std::ifstream in(spec_path);
    if (!in) {
      std::cerr << "bench_diff: cannot open tolerance spec " << spec_path << "\n";
      return 2;
    }
    std::string err;
    if (!ParseSpec(in, &spec, &err)) {
      std::cerr << "bench_diff: " << spec_path << ": " << err << "\n";
      return 2;
    }
  }

  const DiffResult result = Compare(baseline, current, spec);
  std::cout << "bench_diff: " << baseline.size() << " baseline rows, "
            << result.checked << " keys gated, " << result.unchecked
            << " ungated\n";
  for (const std::string& r : result.regressions) {
    std::cout << "REGRESSION " << r << "\n";
  }
  if (!result.regressions.empty()) {
    std::cout << "bench_diff: FAIL (" << result.regressions.size()
              << " regressions)\n";
    return 1;
  }
  std::cout << "bench_diff: PASS\n";
  return 0;
}
