// Extension — the sharded MDS (pdsi::pfs::ShardedMds): what GIGA+-style
// namespace partitioning buys the metadata plane that a single metadata
// server cannot provide. Two storms, each swept over the shard count
// with the 1-shard row as the legacy-MDS anchor:
//
//   1. create_storm — a Metarates/mdtest-shaped flood of ranks creating
//      files into one flat directory. One MDS serialises every create
//      behind one service queue and one parent-directory lock; shards
//      split the hash space incrementally (partitions double past
//      mds_split_threshold, migrating entries — possibly across shards)
//      so the same directory is absorbed by N independent queues.
//   2. open_storm — files pre-created, then a wave of fresh clients
//      (cold, empty split-history caches) opens them, amortising group
//      opens over `group` ranks each (the POSIX HEC group-open
//      extension), so the effective rank count is in the thousands.
//      Cold caches address stale shards and are corrected lazily: the
//      wrong shard serves the bounce, replies with its bitmap, the
//      client merges and retries — bounces are counted and must stay
//      bounded by split history, not by operation count.
//
// Per-shard mds.s<k>.ops counters report how evenly the hash space
// lands. The sweep fails the bench (exit 1) unless create throughput
// scales monotonically with the shard count and the 8-shard row beats
// the 1-shard anchor by >= 3x.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/obs/obs.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/sim/virtual_time.h"

using namespace pdsi;

namespace {

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

struct Shape {
  int create_clients = 64;      ///< ranks in the create storm
  int creates_per_client = 1024;
  std::uint32_t split_threshold = 1000;
  int open_files = 4096;        ///< pre-created namespace for the open storm
  int openers = 64;             ///< cold-cache client threads
  std::uint32_t open_group = 32;  ///< ranks amortised per group open
};

pfs::PfsConfig ShardedConfig(std::uint32_t shards, const Shape& shape) {
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.num_mds_shards = shards;
  cfg.mds_split_threshold = shape.split_threshold;
  cfg.store_data = false;  // pure metadata plane
  return cfg;
}

struct ShardOps {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::string per_shard;  ///< "a/b/c/d" table cell
};

ShardOps CollectShardOps(obs::Registry& reg, std::uint32_t shards) {
  ShardOps out;
  for (std::uint32_t k = 0; k < shards; ++k) {
    const std::string key =
        shards > 1 ? "mds.s" + std::to_string(k) + ".ops" : "mds.ops";
    const std::uint64_t v = reg.counter(key).value();
    out.min = k == 0 ? v : std::min(out.min, v);
    out.max = std::max(out.max, v);
    if (k > 0) out.per_shard += "/";
    out.per_shard += std::to_string(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 1: many ranks flooding one flat directory with creates.

struct StormResult {
  double makespan_s = 0.0;
  std::uint64_t ops = 0;        ///< real namespace operations
  std::uint64_t effective = 0;  ///< rank-ops after group amortisation
  std::uint64_t splits = 0;
  std::uint64_t partitions = 0;
  std::uint64_t stale_retries = 0;
  ShardOps shard_ops;
  bool ok = true;
  double opss() const { return static_cast<double>(effective) / makespan_s; }
};

StormResult RunCreateStorm(std::uint32_t shards, const Shape& shape,
                           obs::Tracer* tracer) {
  obs::Registry reg;
  obs::Context ctx;
  ctx.tracer = tracer;
  ctx.registry = &reg;
  pfs::PfsConfig cfg = ShardedConfig(shards, shape);
  const int clients = shape.create_clients;
  sim::VirtualScheduler sched(static_cast<std::size_t>(clients));
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);

  std::vector<std::thread> threads;
  std::mutex mu;
  double finish = 0.0;
  std::atomic<bool> ok{true};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      pfs::PfsClient client(cluster, static_cast<std::size_t>(c));
      for (int i = 0; i < shape.creates_per_client; ++i) {
        if (!client
                 .create("/r" + std::to_string(c) + "_f" + std::to_string(i))
                 .ok()) {
          ok = false;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, client.now());
      sched.finish(static_cast<std::size_t>(c));
    });
  }
  for (auto& t : threads) t.join();

  StormResult res;
  res.ops = static_cast<std::uint64_t>(clients) *
            static_cast<std::uint64_t>(shape.creates_per_client);
  res.effective = res.ops;
  res.makespan_s = finish;
  res.splits = cluster.smds().splits();
  res.partitions = res.splits + 1;  // every split adds one partition
  res.stale_retries = reg.counter("pfs.mds_stale_retries").value();
  res.shard_ops = CollectShardOps(reg, shards);
  // At one shard the partition index is bypassed entirely (the
  // byte-identical legacy path), so count the namespace directly there.
  const std::uint64_t files =
      shards > 1 ? cluster.smds().total_files()
                 : cluster.mds().entry_count() - 1;  // minus root
  res.ok = ok.load() && res.ops == files &&
           cluster.smds().check_placement_invariant();
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 2: cold-cache clients group-opening a pre-created namespace.

StormResult RunOpenStorm(std::uint32_t shards, const Shape& shape) {
  obs::Registry reg;
  obs::Context ctx;
  ctx.registry = &reg;
  pfs::PfsConfig cfg = ShardedConfig(shards, shape);
  // Split finer than the create storm: the partitions (and with them
  // the open load) must outnumber the widest shard sweep, or trailing
  // shards sit idle.
  cfg.mds_split_threshold = std::max(
      16u, static_cast<std::uint32_t>(shape.open_files) / 32u);
  const int openers = shape.openers;
  sim::VirtualScheduler sched(static_cast<std::size_t>(openers) + 1);
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);

  std::vector<std::size_t> ids;
  for (int a = 0; a <= openers; ++a) ids.push_back(static_cast<std::size_t>(a));
  sim::VirtualBarrier barrier(sched, ids);

  std::vector<std::thread> threads;
  std::mutex mu;
  double start = 0.0;
  double finish = 0.0;
  std::uint64_t seed_bounces = 0;
  std::atomic<bool> ok{true};
  // Actor 0 seeds the namespace (growing it through its splits), then
  // the cold openers start together.
  threads.emplace_back([&] {
    pfs::PfsClient seeder(cluster, 0);
    for (int i = 0; i < shape.open_files; ++i) {
      if (!seeder.create("/s" + std::to_string(i)).ok()) ok = false;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      seed_bounces = reg.counter("pfs.mds_stale_retries").value();
    }
    barrier.arrive(0);
    sched.finish(0);
  });
  const int slice = shape.open_files / openers;
  for (int o = 0; o < openers; ++o) {
    threads.emplace_back([&, o] {
      const std::size_t actor = static_cast<std::size_t>(o) + 1;
      barrier.arrive(actor);
      // Constructed after the barrier: a genuinely cold client whose
      // bitmap knows nothing of the seeding phase's splits.
      pfs::PfsClient client(cluster, actor);
      const double my_start = client.now();
      for (int i = o * slice; i < (o + 1) * slice; ++i) {
        auto fh =
            client.open_group("/s" + std::to_string(i), shape.open_group);
        if (!fh.ok() || !client.close(*fh).ok()) ok = false;
      }
      std::lock_guard<std::mutex> lk(mu);
      start = std::max(start, my_start);
      finish = std::max(finish, client.now());
      sched.finish(actor);
    });
  }
  for (auto& t : threads) t.join();

  StormResult res;
  res.ops = static_cast<std::uint64_t>(openers) *
            static_cast<std::uint64_t>(slice);
  res.effective = res.ops * shape.open_group;
  res.makespan_s = finish - start;
  res.splits = cluster.smds().splits();
  res.partitions = res.splits + 1;
  res.stale_retries = reg.counter("pfs.mds_stale_retries").value() - seed_bounces;
  res.shard_ops = CollectShardOps(reg, shards);
  res.ok = ok.load() && cluster.smds().check_placement_invariant();
  return res;
}

// ---------------------------------------------------------------------------
// Sweep driver.

struct SweepOutcome {
  double anchor_opss = 0.0;
  double last_opss = 0.0;
  bool monotonic = true;
  bool all_ok = true;
};

SweepOutcome Sweep(const std::string& name, const Shape& shape,
                   const std::vector<std::uint32_t>& shard_counts,
                   bench::JsonReport& json, const std::string& trace_path) {
  PrintBanner(std::cout, "scenario: " + name);
  Table tbl({"shards", "rank-op/s", "scaling", "makespan", "splits",
             "stale retries", "retries/op", "per-shard ops", "verify"});
  SweepOutcome out;
  double prev = 0.0;
  for (std::uint32_t shards : shard_counts) {
    StormResult res;
    if (name == "create_storm") {
      // Trace only the widest create run: that is where the
      // split_migrate spans and per-shard service lanes live.
      const bool traced = !trace_path.empty() && shards == shard_counts.back();
      bench::BenchObs obs(traced ? trace_path : "");
      res = RunCreateStorm(shards, shape, obs.tracer());
    } else {
      res = RunOpenStorm(shards, shape);
    }
    if (shards == shard_counts.front()) out.anchor_opss = res.opss();
    out.last_opss = res.opss();
    // Virtual-time rates are exact; any dip below the previous row is a
    // real scaling inversion, modulo split-migration noise.
    if (prev > 0.0 && res.opss() < prev * 0.98) out.monotonic = false;
    prev = res.opss();
    out.all_ok = out.all_ok && res.ok;
    const double scaling = res.opss() / out.anchor_opss;
    tbl.row({std::to_string(shards), FormatCount(res.opss()),
             FormatDouble(scaling, 2) + "x", FormatDuration(res.makespan_s),
             std::to_string(res.splits), std::to_string(res.stale_retries),
             FormatDouble(static_cast<double>(res.stale_retries) /
                              static_cast<double>(res.ops),
                          4),
             res.shard_ops.per_shard, res.ok ? "ok" : "FAIL"});
    json.str("scenario", name)
        .num("shards", shards)
        .num("ops", static_cast<double>(res.ops))
        .num("effective_rank_ops", static_cast<double>(res.effective))
        .num("rank_opss", res.opss())
        .num("makespan_s", res.makespan_s)
        .num("scaling", scaling)
        .num("splits", static_cast<double>(res.splits))
        .num("partitions", static_cast<double>(res.partitions))
        .num("stale_retries", static_cast<double>(res.stale_retries))
        .num("shard_ops_min", static_cast<double>(res.shard_ops.min))
        .num("shard_ops_max", static_cast<double>(res.shard_ops.max))
        .num("verify_ok", res.ok ? 1.0 : 0.0);
    json.emit();
  }
  tbl.print(std::cout);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFlag(argc, argv);
  bench::Header(
      "Sharded MDS: GIGA+ namespace partitioning vs the single metadata "
      "server (pdsi::pfs::ShardedMds)",
      "create storms into one directory are THE petascale metadata "
      "pathology; splitting the namespace incrementally over N shards "
      "scales creates/sec while stale client caches cost only a bounded "
      "trickle of lazily-corrected bounces");
  const std::string trace_path = bench::TraceFlag(argc, argv);
  bench::JsonReport json("ext19_sharded_mds");

  Shape shape;
  if (smoke) {
    shape.create_clients = 16;
    shape.creates_per_client = 64;
    shape.split_threshold = 48;
    shape.open_files = 128;
    shape.openers = 8;
    shape.open_group = 8;
  }
  const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};

  const SweepOutcome creates =
      Sweep("create_storm", shape, shard_counts, json, trace_path);
  const SweepOutcome opens =
      Sweep("open_storm", shape, shard_counts, json, "");

  const double speedup8 =
      creates.anchor_opss > 0.0 ? creates.last_opss / creates.anchor_opss : 0.0;
  const bool scaling_ok = creates.monotonic && speedup8 >= 3.0;
  const bool all_ok = creates.all_ok && opens.all_ok;
  std::cout << "create scaling at " << shard_counts.back() << " shards: "
            << FormatDouble(speedup8, 2) << "x the single-MDS anchor ("
            << (scaling_ok ? "monotonic, gate met" : "GATE FAILED") << ")\n";
  json.str("scenario", "summary")
      .num("create_speedup8", speedup8)
      .num("open_speedup8",
           opens.anchor_opss > 0.0 ? opens.last_opss / opens.anchor_opss : 0.0)
      .num("monotonic", creates.monotonic ? 1.0 : 0.0)
      .num("scaling_ok", scaling_ok ? 1.0 : 0.0)
      .num("verify_all", all_ok ? 1.0 : 0.0);
  json.emit();

  bench::Note(
      "shape check: the 1-shard row is the legacy MDS (one service queue + "
      "one directory lock, flat as the paper laments); shards multiply both "
      "resources and the hash split keeps them balanced. Open-storm bounces "
      "stay bounded by split history — cold caches converge after one "
      "correction per partition, not one per operation.");
  if (!scaling_ok || !all_ok) {
    std::cerr << "ext19_sharded_mds: FAILED ("
              << (all_ok ? "scaling gate" : "verification") << ")\n";
    return 1;
  }
  return 0;
}
