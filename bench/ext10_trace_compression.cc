// Extension — scalable event tracing (§5.4.2, ORNL/NCSU ScalaTrace for
// POSIX + MPI-IO events).
//
// Paper: loop-structural compression keeps trace files near-constant in
// run length, enabling tracing at scale and replay-driven workload
// analysis. Sweeps run length and prints raw-vs-structural sizes.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/scalatrace/scalatrace.h"

using namespace pdsi;
using namespace pdsi::scalatrace;

int main() {
  bench::Header("ScalaTrace-style structural trace compression",
                "trace size describes the pattern, not the run length");

  constexpr std::size_t kRawBytesPerEvent = 24;   // kind + args + timestamp
  constexpr std::size_t kNodeBytes = 32;          // structural record

  Table t({"timesteps", "events", "raw trace", "structural nodes",
           "structural size", "ratio", "lossless"});
  for (int steps : {10, 100, 1000, 10000}) {
    const auto raw = SyntheticAppTrace(steps, 8, 10);
    const auto compressed = Compress(raw);
    const bool lossless = compressed.expand() == raw;
    const double raw_bytes = static_cast<double>(raw.size()) * kRawBytesPerEvent;
    const double comp_bytes =
        static_cast<double>(compressed.node_count()) * kNodeBytes;
    t.row({std::to_string(steps), FormatCount(static_cast<double>(raw.size())),
           FormatBytes(raw_bytes), std::to_string(compressed.node_count()),
           FormatBytes(comp_bytes), FormatDouble(raw_bytes / comp_bytes, 0) + "x",
           lossless ? "yes" : "NO"});
  }
  t.print(std::cout);

  PrintBanner(std::cout, "replay-driven workload summary (10000 steps)");
  {
    const auto compressed = Compress(SyntheticAppTrace(10000, 8, 10));
    std::uint64_t bytes_written = 0, barriers = 0, ops = 0;
    compressed.replay([&](const Event& e) {
      ++ops;
      if (e.kind == Event::Kind::write) bytes_written += e.arg;
      if (e.kind == Event::Kind::barrier) ++barriers;
    });
    std::cout << "replayed " << FormatCount(static_cast<double>(ops))
              << " events from " << compressed.node_count()
              << " nodes: " << FormatBytes(static_cast<double>(bytes_written))
              << " written, " << barriers << " barriers\n";
  }
  bench::Note("shape check: structural size is flat while the raw trace "
              "grows linearly — the compression ratio scales with run "
              "length (the ScalaTrace property).");
  return 0;
}
