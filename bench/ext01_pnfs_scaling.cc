// Extension — pNFS vs NFS aggregate bandwidth scaling (§2.2).
//
// Paper: "pNFS departs from conventional NFS by allowing clients to
// access storage directly and in parallel... By separating data and
// metadata access, pNFS eliminates the server bottlenecks inherent to
// NAS access methods." Sweep client counts under both protocols.
#include <iostream>

#include "bench_util.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/pnfs/pnfs.h"

using namespace pdsi;

int main() {
  bench::Header("pNFS vs NFS: aggregate streaming bandwidth vs clients",
                "NFS saturates at the NAS head; pNFS scales with storage");

  Table t({"clients", "NFS aggregate", "pNFS aggregate", "pNFS/NFS",
           "per-client (pNFS)"});
  for (std::uint32_t clients : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    pnfs::PnfsParams p;
    p.clients = clients;
    p.data_servers = 8;
    p.bytes_per_client = 64 * MiB;

    p.protocol = pnfs::Protocol::nfs;
    const auto nfs = pnfs::RunStreamingClients(p);
    p.protocol = pnfs::Protocol::pnfs;
    const auto pn = pnfs::RunStreamingClients(p);

    t.row({std::to_string(clients), FormatRate(nfs.aggregate_bw()),
           FormatRate(pn.aggregate_bw()),
           FormatDouble(pn.aggregate_bw() / nfs.aggregate_bw(), 2) + "x",
           FormatRate(pn.aggregate_bw() / clients)});
  }
  t.print(std::cout);
  bench::Note("shape check: NFS is pinned near half the head's 1GE port "
              "from the first client on; pNFS rides each client's own "
              "wire and keeps scaling until the 8 storage servers "
              "saturate (~9x).");
  return 0;
}
