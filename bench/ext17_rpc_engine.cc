// Extension — the pdsi::rpc request engine: what a bounded in-flight
// window and batched wire messages buy a petascale client over the
// one-synchronous-RPC-at-a-time baseline. Three workload families, each
// swept over (window, batch) settings with the (1, 1) row as the sync
// anchor:
//
//   1. shared_small_writes — N ranks into one shared file, N-1 segmented
//      in small records (no locks, PVFS-style; each rank's segment is one
//      stripe, so ranks map one-to-one onto servers): the latency-bound
//      data plane. Sync pays a full round trip per record; the pipelined
//      window overlaps records until the OSS service pipeline, not the
//      wire, is the bound.
//   2. metadata_storm — one rank hammering the MDS with creates and
//      stats: the mdtest shape. Batching amortises the request latency
//      across coalesced ops, pipelining hides it behind the MDS service
//      queue; the ceiling is mds_op_s per op.
//   3. incast_fanin — one rank appending round-robin over many files,
//      one per server (fan-out of requests, fan-in of responses, the
//      Fig. 9 geometry): the case where the sync client is most absurd —
//      sixteen idle servers waiting on one client's round trips.
//
// Every run is verified: written records are read back and compared
// against the pattern, and sync-anchored rows must agree with the
// engine's accounting (no messages, no stalls in sync mode). The sweep
// fails the bench (exit 1) unless, for every scenario, at least one
// pipelined setting beats the sync row on op/s.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"
#include "pdsi/obs/obs.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/rpc/engine.h"
#include "pdsi/sim/virtual_time.h"

using namespace pdsi;

namespace {

bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

struct Setting {
  std::uint32_t window;
  std::uint32_t batch;
  std::string name() const {
    return "w" + std::to_string(window) + "b" + std::to_string(batch);
  }
  bool sync() const { return window == 1 && batch == 1; }
};

struct RunResult {
  double makespan_s = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  rpc::EngineStats rpc;  ///< summed over every rank's client
  bool bytes_ok = true;
  double opss() const { return static_cast<double>(ops) / makespan_s; }
  double mbs() const { return static_cast<double>(bytes) / makespan_s / 1e6; }
};

void Accumulate(rpc::EngineStats* into, const rpc::EngineStats& s) {
  into->submitted += s.submitted;
  into->messages += s.messages;
  into->batched_tails += s.batched_tails;
  into->window_stalls += s.window_stalls;
  into->drains += s.drains;
  into->failures += s.failures;
  into->max_inflight = std::max(into->max_inflight, s.max_inflight);
  into->stall_s += s.stall_s;
}

struct Shape {
  int ranks = 4;    ///< shared_small_writes clients
  int rounds = 64;  ///< records per rank (shared) / per file (incast)
  int meta_files = 96;          ///< metadata_storm creates (then stats)
  int incast_servers = 16;      ///< one file per server
  int incast_rounds = 48;       ///< appends per file
  std::uint64_t rec = 4 * KiB;  ///< small-record size
};

// ---------------------------------------------------------------------------
// Scenario 1: N ranks, small records into one shared file, N-1 segmented.

RunResult RunSharedSmallWrites(const Setting& s, const Shape& shape,
                               obs::Context* ctx) {
  pfs::PfsConfig cfg = pfs::PfsConfig::PvfsLike(4);  // no locks: pure RPC plane
  cfg.rpc_window = s.window;
  cfg.rpc_batch = s.batch;
  // One stripe per rank segment: each rank streams contiguously to its
  // own server, so the write-back cache aggregates and the sync row is
  // latency-bound rather than seek-bound (the strided pathology is
  // fig08/PLFS territory, not an RPC question).
  cfg.stripe_unit = static_cast<std::uint64_t>(shape.rounds) * shape.rec;
  const int ranks = shape.ranks;
  sim::VirtualScheduler sched(static_cast<std::size_t>(ranks));
  pfs::PfsCluster cluster(cfg, sched, nullptr, ctx);

  std::vector<std::size_t> ids;
  for (int r = 0; r < ranks; ++r) ids.push_back(static_cast<std::size_t>(r));
  sim::VirtualBarrier barrier(sched, ids);

  std::vector<double> ends(static_cast<std::size_t>(ranks), 0.0);
  std::vector<rpc::EngineStats> stats(static_cast<std::size_t>(ranks));
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, static_cast<std::size_t>(r));
      pfs::FileHandle fh = -1;
      if (r == 0) {
        fh = *client.create("/shared");
        barrier.arrive(static_cast<std::size_t>(r));
      } else {
        barrier.arrive(static_cast<std::size_t>(r));
        fh = *client.open("/shared");
      }
      for (int k = 0; k < shape.rounds; ++k) {
        const std::uint64_t off =
            static_cast<std::uint64_t>(r * shape.rounds + k) * shape.rec;
        const std::uint32_t tag = static_cast<std::uint32_t>(100 + r);
        if (!client.write(fh, off, MakePattern(tag, off, shape.rec)).ok()) {
          ok = false;
        }
      }
      if (!client.fsync(fh).ok()) ok = false;  // pipelined sync barrier
      // Read back this rank's last record: async writes must have landed.
      const std::uint64_t voff =
          static_cast<std::uint64_t>(r * shape.rounds + shape.rounds - 1) *
          shape.rec;
      Bytes out(shape.rec);
      auto n = client.read(fh, voff, out);
      if (!n.ok() || *n != shape.rec ||
          FindPatternMismatch(static_cast<std::uint32_t>(100 + r), voff, out) !=
              kNoMismatch) {
        ok = false;
      }
      ends[static_cast<std::size_t>(r)] = client.now();
      if (!client.close(fh).ok()) ok = false;
      stats[static_cast<std::size_t>(r)] = client.rpc_stats();
      sched.finish(static_cast<std::size_t>(r));
    });
  }
  for (auto& t : threads) t.join();

  RunResult res;
  res.ops = static_cast<std::uint64_t>(ranks) *
            static_cast<std::uint64_t>(shape.rounds);
  res.bytes = res.ops * shape.rec;
  res.makespan_s = *std::max_element(ends.begin(), ends.end());
  for (const auto& st : stats) Accumulate(&res.rpc, st);
  res.bytes_ok = ok.load();
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 2: one rank, a storm of creates then stats (mdtest shape).

RunResult RunMetadataStorm(const Setting& s, const Shape& shape,
                           obs::Context* ctx) {
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.rpc_window = s.window;
  cfg.rpc_batch = s.batch;
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(cfg, sched, nullptr, ctx);
  pfs::PfsClient client(cluster, 0);

  bool ok = true;
  if (!client.mkdir("/storm").ok()) ok = false;
  for (int i = 0; i < shape.meta_files; ++i) {
    auto fh = client.create("/storm/f" + std::to_string(i));
    if (!fh.ok() || !client.close(*fh).ok()) ok = false;
  }
  for (int i = 0; i < shape.meta_files; ++i) {
    if (!client.stat("/storm/f" + std::to_string(i)).ok()) ok = false;
  }
  // unlink is a drain point: the queued MDS charges all land before the
  // namespace teardown, so the makespan covers the full storm.
  if (!client.unlink("/storm/f0").ok()) ok = false;

  RunResult res;
  res.ops = 2 * static_cast<std::uint64_t>(shape.meta_files) + 2;  // +mkdir+unlink
  res.makespan_s = client.now();
  res.rpc = client.rpc_stats();
  res.bytes_ok = ok;
  sched.finish(0);
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 3: one rank fanning small appends over one file per server.

RunResult RunIncastFanin(const Setting& s, const Shape& shape,
                         obs::Context* ctx) {
  pfs::PfsConfig cfg = pfs::PfsConfig::PvfsLike(
      static_cast<std::uint32_t>(shape.incast_servers));
  cfg.rpc_window = s.window;
  cfg.rpc_batch = s.batch;
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(cfg, sched, nullptr, ctx);
  pfs::PfsClient client(cluster, 0);

  bool ok = true;
  std::vector<pfs::FileHandle> fhs;
  for (int f = 0; f < shape.incast_servers; ++f) {
    auto fh = client.create("/fan" + std::to_string(f));
    if (!fh.ok()) ok = false;
    fhs.push_back(fh.ok() ? *fh : -1);
  }
  for (int k = 0; k < shape.incast_rounds; ++k) {
    for (int f = 0; f < shape.incast_servers; ++f) {
      const std::uint64_t off = static_cast<std::uint64_t>(k) * shape.rec;
      const std::uint32_t tag = static_cast<std::uint32_t>(500 + f);
      if (!client.write(fhs[static_cast<std::size_t>(f)], off,
                        MakePattern(tag, off, shape.rec))
               .ok()) {
        ok = false;
      }
    }
  }
  for (int f = 0; f < shape.incast_servers; ++f) {
    if (!client.fsync(fhs[static_cast<std::size_t>(f)]).ok()) ok = false;
  }
  // Verify one file end to end.
  Bytes out(shape.rec);
  auto n = client.read(fhs[0], 0, out);
  if (!n.ok() || *n != shape.rec ||
      FindPatternMismatch(500, 0, out) != kNoMismatch) {
    ok = false;
  }
  for (int f = 0; f < shape.incast_servers; ++f) {
    if (!client.close(fhs[static_cast<std::size_t>(f)]).ok()) ok = false;
  }

  RunResult res;
  res.ops = static_cast<std::uint64_t>(shape.incast_rounds) *
            static_cast<std::uint64_t>(shape.incast_servers);
  res.bytes = res.ops * shape.rec;
  res.makespan_s = client.now();
  res.rpc = client.rpc_stats();
  res.bytes_ok = ok;
  sched.finish(0);
  return res;
}

// ---------------------------------------------------------------------------
// Sweep driver.

using Runner = RunResult (*)(const Setting&, const Shape&, obs::Context*);

bool SweepScenario(const std::string& name, Runner run, const Shape& shape,
                   const std::vector<Setting>& settings,
                   bench::JsonReport& json, const std::string& trace_base) {
  PrintBanner(std::cout, "scenario: " + name);
  Table tbl({"setting", "op/s", "makespan", "messages", "tails", "stalls",
             "stall time", "max infl", "verify"});
  double sync_opss = 0.0;
  double best_opss = 0.0;
  std::string best_name = "-";
  bool all_ok = true;
  for (const Setting& s : settings) {
    // Trace the sync anchor and the widest pipelined setting for the
    // EXPERIMENTS.md critical-path walkthrough.
    const bool traced = !trace_base.empty() &&
                        (s.sync() || &s == &settings.back());
    bench::BenchObs obs(traced ? trace_base + "." + name + "." + s.name() +
                                     ".trace"
                               : "");
    RunResult res = run(s, shape, obs.ctx());
    all_ok = all_ok && res.bytes_ok;
    if (s.sync()) {
      sync_opss = res.opss();
      // The sync anchor must be the pass-through client: nothing queued,
      // nothing batched, nothing stalled.
      if (res.rpc.messages != 0 || res.rpc.window_stalls != 0) all_ok = false;
    } else if (res.opss() > best_opss) {
      best_opss = res.opss();
      best_name = s.name();
    }
    tbl.row({s.sync() ? s.name() + " (sync)" : s.name(),
             FormatCount(res.opss()), FormatDuration(res.makespan_s),
             FormatCount(static_cast<double>(res.rpc.messages)),
             FormatCount(static_cast<double>(res.rpc.batched_tails)),
             FormatCount(static_cast<double>(res.rpc.window_stalls)),
             FormatDuration(res.rpc.stall_s),
             FormatCount(static_cast<double>(res.rpc.max_inflight)),
             res.bytes_ok ? "ok" : "FAIL"});
    json.str("scenario", name)
        .str("setting", s.name())
        .num("window", s.window)
        .num("batch", s.batch)
        .num("ops", static_cast<double>(res.ops))
        .num("opss", res.opss())
        .num("makespan_s", res.makespan_s)
        .num("messages", static_cast<double>(res.rpc.messages))
        .num("batched_tails", static_cast<double>(res.rpc.batched_tails))
        .num("window_stalls", static_cast<double>(res.rpc.window_stalls))
        .num("stall_s", res.rpc.stall_s)
        .num("max_inflight", static_cast<double>(res.rpc.max_inflight))
        .num("rpc_failures", static_cast<double>(res.rpc.failures))
        .num("verify_ok", res.bytes_ok ? 1.0 : 0.0);
    json.emit();
  }
  tbl.print(std::cout);
  const double speedup = sync_opss > 0.0 ? best_opss / sync_opss : 0.0;
  const bool beats_sync = best_opss > sync_opss;
  std::cout << "pipelining: best " << best_name << " at "
            << FormatDouble(speedup, 2) << "x the sync row ("
            << (beats_sync ? "beats sync" : "DOES NOT BEAT SYNC") << ")\n";
  json.str("scenario", name)
      .str("setting", "summary")
      .str("best", best_name)
      .num("pipeline_speedup", speedup)
      .num("beats_sync", beats_sync ? 1.0 : 0.0)
      .num("verify_all", all_ok ? 1.0 : 0.0);
  json.emit();
  return all_ok && beats_sync;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeFlag(argc, argv);
  bench::Header(
      "RPC engine: window/batch sweep vs the synchronous client (pdsi::rpc)",
      "one outstanding RPC per client leaves a petascale machine idle "
      "(incast, mdtest storms); a bounded in-flight window with batched "
      "wire messages is resource-bound instead of latency-bound");
  const std::string trace_base = bench::TraceFlag(argc, argv);
  bench::JsonReport json("ext17_rpc_engine");

  Shape shape;
  if (smoke) {
    shape.ranks = 2;
    shape.rounds = 16;
    shape.meta_files = 24;
    shape.incast_servers = 8;
    shape.incast_rounds = 12;
  }

  const std::vector<Setting> settings = {
      {1, 1},   // the sync anchor: byte-identical to the pre-engine client
      {4, 1},   // window only: overlap without coalescing
      {8, 4},   // the balanced default for a pipelined client
      {32, 8},  // deep window: the fan-in case saturates per-server service
  };

  bool ok = true;
  ok = SweepScenario("shared_small_writes", RunSharedSmallWrites, shape,
                     settings, json, trace_base) &&
       ok;
  ok = SweepScenario("metadata_storm", RunMetadataStorm, shape, settings, json,
                     trace_base) &&
       ok;
  ok = SweepScenario("incast_fanin", RunIncastFanin, shape, settings, json,
                     trace_base) &&
       ok;

  bench::Note(
      "shape check: shared small writes and the incast fan-in are "
      "latency-bound in sync mode, so the window converts idle round trips "
      "into overlapped service; the metadata storm's ceiling is one MDS op "
      "per request, so its best case is rpc_latency/mds_op_s hidden — "
      "modest, exactly as mdtest behaves against a single MDS.");
  if (!ok) {
    std::cerr << "ext17_rpc_engine: FAILED (verification or no pipelined "
                 "setting beat the sync row)\n";
    return 1;
  }
  return 0;
}
