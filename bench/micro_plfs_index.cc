// Microbenchmarks (google-benchmark): PLFS index hot paths — global-index
// construction, logical-range lookup, pattern compression and record
// serialisation. The SC09 follow-up work motivates these: index handling
// dominates PLFS restart at scale.
#include <benchmark/benchmark.h>

#include "pdsi/plfs/index.h"

using namespace pdsi::plfs;

namespace {

IndexEntry StridedEntry(std::uint64_t k, std::uint32_t ranks, std::uint64_t record,
                        std::uint32_t rank) {
  IndexEntry e;
  e.logical = (k * ranks + rank) * record;
  e.length = record;
  e.physical = k * record;
  e.rank = rank;
  e.sequence = k * ranks + rank;
  return e;
}

void BM_GlobalIndexInsertStrided(benchmark::State& state) {
  const std::uint64_t entries = state.range(0);
  for (auto _ : state) {
    GlobalIndex g;
    for (std::uint64_t k = 0; k < entries; ++k) {
      g.add(StridedEntry(k / 8, 8, 47 * 1024, k % 8), k % 8);
    }
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_GlobalIndexInsertStrided)->Range(1 << 10, 1 << 16);

void BM_GlobalIndexLookup(benchmark::State& state) {
  GlobalIndex g;
  const std::uint64_t entries = 1 << 16;
  for (std::uint64_t k = 0; k < entries; ++k) {
    g.add(StridedEntry(k / 8, 8, 47 * 1024, k % 8), k % 8);
  }
  std::uint64_t pos = 0;
  for (auto _ : state) {
    pos = (pos + 2654435761ULL) % (g.size() - 256 * 1024);
    benchmark::DoNotOptimize(g.lookup(pos, 256 * 1024));
  }
}
BENCHMARK(BM_GlobalIndexLookup);

void BM_PatternCompressor(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    PatternCompressor c(enabled);
    for (std::uint64_t k = 0; k < 4096; ++k) {
      c.add(StridedEntry(k, 8, 47 * 1024, 3));
    }
    c.finish();
    benchmark::DoNotOptimize(c.take());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PatternCompressor)->Arg(0)->Arg(1);

void BM_SerializeEntries(benchmark::State& state) {
  std::vector<IndexEntry> entries;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    entries.push_back(StridedEntry(k, 8, 47 * 1024, 1));
  }
  for (auto _ : state) {
    auto raw = SerializeEntries(entries);
    benchmark::DoNotOptimize(DeserializeEntries(raw));
  }
  state.SetBytesProcessed(state.iterations() * 4096 * kRawEntrySize);
}
BENCHMARK(BM_SerializeEntries);

}  // namespace
