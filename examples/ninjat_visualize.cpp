// Ninjat gallery: visualise the three checkpoint patterns.
//
// Captures write traces from simulated checkpoints in the N-1 strided,
// N-1 segmented and N-N patterns, renders each to PPM images (written to
// --out-dir, default the directory holding the binary) and prints the
// ASCII file maps so the pattern signatures are visible in the terminal —
// the Fig. 15 workflow as a tool.
#include <iostream>
#include <string>

#include "pdsi/common/units.h"
#include "pdsi/ninjat/ninjat.h"
#include "pdsi/pfs/config.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;

namespace {

// `--out-dir <dir>` / `--out-dir=<dir>`; defaults to the directory
// holding the binary so runs from the repo root don't litter the tree.
std::string OutDir(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out-dir" && i + 1 < argc) return argv[i + 1];
    if (a.rfind("--out-dir=", 0) == 0) return a.substr(10);
  }
  const std::string exe = argc > 0 ? argv[0] : "";
  const std::size_t slash = exe.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : exe.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = pfs::PfsConfig::PanFsLike(4);
  const std::string out_dir = OutDir(argc, argv);

  for (const auto pattern : {workload::Pattern::n1_strided,
                             workload::Pattern::n1_segmented,
                             workload::Pattern::nn}) {
    workload::CheckpointSpec spec;
    spec.pattern = pattern;
    spec.ranks = 8;
    spec.record_bytes = 32 * KiB;
    spec.records_per_rank = 16;

    workload::WriteTrace trace;
    const auto result = workload::RunDirectCheckpoint(cfg, spec, &trace);

    const std::string name(workload::PatternName(pattern));
    std::string slug = name;
    for (auto& c : slug) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }

    std::cout << "== " << name << " ==\n";
    std::cout << "checkpoint took " << FormatDuration(result.seconds) << " ("
              << FormatRate(result.bandwidth()) << ")\n";

    // For N-N each rank writes its own file; map them into one canvas by
    // offsetting per-rank (the time/offset view still shows concurrency).
    std::uint64_t canvas = spec.total_bytes();
    workload::WriteTrace adjusted = trace;
    if (pattern == workload::Pattern::nn) {
      for (auto& e : adjusted) {
        e.offset += static_cast<std::uint64_t>(e.rank) * spec.bytes_per_rank();
      }
    }

    const auto img1 = ninjat::RenderTimeOffset(adjusted, {640, 320});
    const auto img2 = ninjat::RenderFileMap(adjusted, canvas, {512, 128});
    img1.write_ppm(out_dir + "/ninjat_" + slug + "_time_offset.ppm");
    img2.write_ppm(out_dir + "/ninjat_" + slug + "_file_map.ppm");
    std::cout << "wrote " << out_dir << "/ninjat_" << slug
              << "_{time_offset,file_map}.ppm\n";
    std::cout << ninjat::AsciiFileMap(adjusted, canvas, 64, 8) << "\n";
  }
  std::cout << "reading the maps: strided = fine interleave of all ranks; "
               "segmented = contiguous rank bands; N-N shown per-rank.\n";
  return 0;
}
