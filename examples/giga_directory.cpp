// GIGA+ in action: a create storm into one directory.
//
// 32 client threads create 100k files in a single directory partitioned
// over 16 metadata servers. Watch the directory split itself, clients
// correct their stale partition maps lazily, and throughput scale with
// servers — then verify every file is findable and placed exactly where
// the final bitmap says it should be.
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "pdsi/common/stats.h"
#include "pdsi/common/units.h"
#include "pdsi/giga/giga.h"

using namespace pdsi;

int main() {
  constexpr std::uint32_t kServers = 16;
  constexpr int kClients = 32;
  constexpr int kPerClient = 3200;  // ~100k files total

  giga::GigaParams params;
  params.num_servers = kServers;
  params.split_threshold = 2000;
  giga::GigaDirectory dir(params);

  sim::VirtualScheduler sched(kClients);
  std::vector<std::thread> threads;
  std::mutex mu;
  double finish = 0.0;
  std::uint64_t retries = 0;

  std::cout << "creating " << kClients * kPerClient << " files in one "
            << "directory over " << kServers << " metadata servers...\n";
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      giga::GigaClient client(dir, sched, c);
      for (int i = 0; i < kPerClient; ++i) {
        client.create("file." + std::to_string(c) + "." + std::to_string(i));
      }
      std::lock_guard<std::mutex> lk(mu);
      finish = std::max(finish, sched.now(c));
      retries += client.stale_retries();
      sched.finish(c);
    });
  }
  for (auto& t : threads) t.join();

  const double total = kClients * kPerClient;
  std::cout << "done in " << FormatDuration(finish) << " of virtual time: "
            << FormatCount(total / finish) << " creates/s\n";
  std::cout << "directory grew to " << dir.partitions() << " partitions via "
            << dir.splits() << " splits\n";
  std::cout << "client addressing corrections: " << retries << " ("
            << FormatDouble(retries / total, 5) << " per create — stale "
            << "caches are nearly free)\n";

  std::cout << "placement invariant (every entry where the bitmap says): "
            << (dir.check_placement_invariant() ? "HOLDS" : "VIOLATED") << "\n";

  // Spot-check lookups through a fresh (fully stale) client.
  sim::VirtualScheduler sched2(1);
  giga::GigaClient fresh(dir, sched2, 0);
  int found = 0;
  for (int i = 0; i < 1000; ++i) {
    found += fresh.lookup("file." + std::to_string(i % kClients) + "." +
                          std::to_string(i))
                 .ok();
  }
  sched2.finish(0);
  std::cout << "fresh-client lookups: " << found << "/1000 found, "
            << fresh.stale_retries() << " addressing corrections\n";
  return dir.check_placement_invariant() && found == 1000 ? 0 : 1;
}
