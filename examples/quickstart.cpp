// Quickstart: PLFS in five minutes.
//
// Eight "ranks" (threads) concurrently write one logical checkpoint file
// in the N-1 strided pattern that cripples ordinary shared-file I/O.
// PLFS decouples that into per-rank logs under a real directory tree,
// then reconstructs and verifies the logical file, prints the container
// layout, and flattens it into a plain file.
//
// Run from anywhere; it works in a temp directory and cleans up.
#include <filesystem>
#include <iostream>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/mpix/mpix.h"
#include "pdsi/plfs/plfs.h"

using namespace pdsi;

int main() {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "plfs_quickstart";
  fs::remove_all(root);
  fs::create_directories(root);

  constexpr int kRanks = 8;
  constexpr std::uint64_t kRecord = 47 * KiB + 301;  // small & unaligned
  constexpr int kSteps = 24;

  plfs::Plfs store(plfs::MakePosixBackend(root.string()));

  std::cout << "writing /ckpt: " << kRanks << " ranks x " << kSteps
            << " strided records of "
            << FormatBytes(static_cast<double>(kRecord)) << "\n";

  mpix::RunWorld(kRanks, [&](mpix::Comm& comm) {
    auto writer = store.open_write("/ckpt", static_cast<std::uint32_t>(comm.rank()));
    if (!writer.ok()) {
      std::cerr << "open_write failed: " << ErrcName(writer.error()) << "\n";
      return;
    }
    for (int k = 0; k < kSteps; ++k) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(k) * kRanks + comm.rank()) * kRecord;
      const Bytes data =
          MakePattern(static_cast<std::uint32_t>(comm.rank()), off, kRecord);
      (*writer)->write(off, data);
    }
    (*writer)->close();
    comm.barrier();
  });

  // What landed on the backing store?
  std::cout << "\ncontainer layout under " << root << "/ckpt:\n";
  auto top = store.backend().readdir("/ckpt");
  int hostdirs = 0, droppings = 0;
  for (const auto& name : *top) {
    if (name.rfind("hostdir.", 0) == 0) {
      ++hostdirs;
      droppings += static_cast<int>(store.backend().readdir("/ckpt/" + name)->size());
    }
  }
  std::cout << "  " << hostdirs << " hostdirs, " << droppings
            << " droppings (data+index per rank)\n";

  // Read back through the global index and verify every byte.
  auto reader = store.open_read("/ckpt");
  const std::uint64_t total = (*reader)->size();
  std::cout << "\nlogical size: " << FormatBytes(static_cast<double>(total))
            << " from " << (*reader)->dropping_count() << " droppings, index "
            << FormatBytes(static_cast<double>((*reader)->index_bytes_read()))
            << " built in " << FormatDuration((*reader)->index_build_seconds())
            << "\n";

  Bytes buf(total);
  (*reader)->read(0, buf);
  std::size_t bad = 0;
  for (std::uint64_t block = 0; block < kRanks * kSteps; ++block) {
    const auto rank = static_cast<std::uint32_t>(block % kRanks);
    const std::uint64_t off = block * kRecord;
    if (FindPatternMismatch(rank, off, std::span(buf).subspan(off, kRecord)) !=
        kNoMismatch) {
      ++bad;
    }
  }
  std::cout << "verification: " << (bad == 0 ? "every byte correct" : "MISMATCH!")
            << "\n";

  // Flatten to a plain file for tools that cannot read containers.
  store.flatten("/ckpt", "/ckpt.flat");
  auto h = store.backend().open("/ckpt.flat");
  std::cout << "flattened copy: "
            << FormatBytes(static_cast<double>(*store.backend().size(*h))) << "\n";
  store.backend().close(*h);

  store.unlink("/ckpt");
  fs::remove_all(root);
  std::cout << "\nok.\n";
  return bad == 0 ? 0 : 1;
}
