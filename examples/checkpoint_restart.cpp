// Checkpoint/restart walkthrough on the simulated parallel file system.
//
// A 64-rank application alternates compute phases with PLFS checkpoints
// on a PanFS-like cluster, while a failure process (calibrated to the
// LANL analysis) interrupts it; after each interrupt the application
// restarts from the last complete checkpoint. The run prints the
// timeline and compares the achieved utilisation against the analytic
// Young/Daly model — the whole Fig. 5 story at application scale.
#include <iostream>
#include <thread>
#include <vector>

#include "pdsi/common/bytes.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/failure/model.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/pfs_backend.h"
#include "pdsi/plfs/plfs.h"
#include "pdsi/workload/driver.h"

using namespace pdsi;

int main() {
  constexpr std::uint32_t kRanks = 64;
  constexpr std::uint64_t kRecord = 47 * KiB;
  constexpr std::uint32_t kRecords = 64;
  constexpr double kComputePhase = 60.0;   // seconds between checkpoints
  constexpr double kMtti = 420.0;          // harsh exascale-ish failure rate
  constexpr double kWorkGoal = 3600.0;     // one hour of useful compute

  // Measure the checkpoint cost once on the simulated cluster.
  workload::CheckpointSpec spec{workload::Pattern::n1_strided, kRanks, kRecord,
                                kRecords};
  const auto cfg = pfs::PfsConfig::PanFsLike(8);
  const auto direct = workload::RunDirectCheckpoint(cfg, spec);
  const auto plfs = workload::RunPlfsCheckpoint(cfg, spec);
  std::cout << "checkpoint volume "
            << FormatBytes(static_cast<double>(spec.total_bytes())) << ": direct "
            << FormatDuration(direct.seconds) << ", PLFS "
            << FormatDuration(plfs.seconds) << " ("
            << FormatDouble(direct.seconds / plfs.seconds, 1) << "x)\n\n";

  // Drive the checkpoint-restart loop with each delta.
  Rng rng(2009);
  for (const auto& [label, delta] :
       {std::pair<const char*, double>{"direct N-1", direct.seconds},
        std::pair<const char*, double>{"PLFS", plfs.seconds}}) {
    failure::CheckpointSimParams p;
    p.work_seconds = kWorkGoal;
    p.interval = kComputePhase;
    p.checkpoint_seconds = delta;
    p.restart_seconds = 2.0 * delta;
    p.mtti_seconds = kMtti;
    Rng run_rng = rng.fork();
    const auto sim = failure::SimulateCheckpointing(p, run_rng);
    const double analytic = failure::EffectiveUtilization(
        p.interval, delta, kMtti, p.restart_seconds);
    std::cout << label << ": wall " << FormatDuration(sim.wall_seconds)
              << " for " << FormatDuration(kWorkGoal) << " of work, "
              << sim.failures << " failures, " << sim.checkpoints
              << " checkpoints -> utilisation "
              << FormatDouble(100.0 * sim.utilization, 1) << "% (model "
              << FormatDouble(100.0 * analytic, 1) << "%)\n";
    // The Young-optimal interval for this delta:
    const double tau = failure::YoungOptimalInterval(delta, kMtti);
    std::cout << "  young-optimal interval: " << FormatDuration(tau)
              << " -> utilisation "
              << FormatDouble(100.0 * failure::OptimalUtilization(
                                  delta, kMtti, p.restart_seconds), 1)
              << "%\n";
  }

  std::cout << "\ntakeaway: the PLFS-accelerated checkpoint turns the same "
               "failure environment from a utilisation crisis into routine "
               "overhead — the report's motivation for transparent "
               "checkpoint acceleration.\n";
  return 0;
}
