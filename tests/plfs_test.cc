// PLFS core tests: index record serialisation, pattern compression, the
// global interval map (newest-wins shadowing), and end-to-end container
// write/read verification over the in-memory and POSIX backends.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>

#include "pdsi/bb/bb_backend.h"
#include "pdsi/bb/burst_buffer.h"
#include "pdsi/bb/drain_target.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/units.h"
#include "pdsi/storage/device_catalog.h"
#include "pdsi/pfs/sparse_buffer.h"
#include "pdsi/plfs/flat_index.h"
#include "pdsi/plfs/index_cache.h"
#include "pdsi/plfs/plfs.h"

namespace pdsi::plfs {
namespace {

TEST(IndexEntry, SerializeRoundTrip) {
  IndexEntry e;
  e.logical = 0x123456789abcULL;
  e.length = 47 * KiB;
  e.physical = 99;
  e.stride = 12345678;
  e.count = 42;
  e.rank = 7;
  e.sequence = 1ULL << 40;
  Bytes buf(kRawEntrySize);
  SerializeEntry(e, buf);
  const IndexEntry d = DeserializeEntry(buf);
  EXPECT_EQ(d.logical, e.logical);
  EXPECT_EQ(d.length, e.length);
  EXPECT_EQ(d.physical, e.physical);
  EXPECT_EQ(d.stride, e.stride);
  EXPECT_EQ(d.count, e.count);
  EXPECT_EQ(d.rank, e.rank);
  EXPECT_EQ(d.sequence, e.sequence);
}

TEST(IndexEntry, BatchSerializeRejectsShortBuffer) {
  IndexEntry e;
  Bytes small(kRawEntrySize - 1);
  EXPECT_THROW(SerializeEntry(e, small), std::invalid_argument);
  Bytes odd(kRawEntrySize + 1);
  EXPECT_THROW(DeserializeEntries(odd), std::invalid_argument);
}

IndexEntry Plain(std::uint64_t logical, std::uint64_t length, std::uint64_t physical,
                 std::uint32_t rank = 0, std::uint64_t seq = 0) {
  IndexEntry e;
  e.logical = logical;
  e.length = length;
  e.physical = physical;
  e.rank = rank;
  e.sequence = seq;
  return e;
}

TEST(PatternCompressor, CollapsesStridedRun) {
  PatternCompressor c(true);
  // Rank 2 of 8, 100 KiB records, N-1 strided: logical step 800 KiB.
  for (int k = 0; k < 50; ++k) {
    c.add(Plain(200 * KiB + k * 800 * KiB, 100 * KiB, k * 100 * KiB, 2));
  }
  c.finish();
  auto out = c.take();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].count, 50u);
  EXPECT_EQ(out[0].stride, 800 * KiB);
  EXPECT_EQ(out[0].length, 100 * KiB);
  EXPECT_EQ(out[0].logical, 200 * KiB);
  EXPECT_EQ(out[0].logical_end(), 200 * KiB + 49 * 800 * KiB + 100 * KiB);
}

TEST(PatternCompressor, SequentialAppendsCompressToo) {
  PatternCompressor c(true);
  for (int k = 0; k < 20; ++k) c.add(Plain(k * 4096, 4096, k * 4096));
  c.finish();
  auto out = c.take();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].stride, 4096u);
  EXPECT_EQ(out[0].count, 20u);
}

TEST(PatternCompressor, BreaksOnShapeChange) {
  PatternCompressor c(true);
  c.add(Plain(0, 100, 0));
  c.add(Plain(1000, 100, 100));
  c.add(Plain(2000, 100, 200));
  c.add(Plain(3000, 999, 300));   // different length
  c.add(Plain(10000, 100, 1299)); // new run
  c.finish();
  auto out = c.take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].count, 3u);
  EXPECT_EQ(out[1].count, 1u);
  EXPECT_EQ(out[2].count, 1u);
}

TEST(PatternCompressor, DisabledPassesThrough) {
  PatternCompressor c(false);
  for (int k = 0; k < 10; ++k) c.add(Plain(k * 1000, 100, k * 100));
  c.finish();
  EXPECT_EQ(c.take().size(), 10u);
}

TEST(GlobalIndex, SimpleLookupAndHoles) {
  GlobalIndex g;
  g.add(Plain(100, 50, 0), 0);
  g.add(Plain(200, 50, 50), 1);
  EXPECT_EQ(g.size(), 250u);

  auto segs = g.lookup(0, 250);
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0].dropping, GlobalIndex::kHole);
  EXPECT_EQ(segs[0].length, 100u);
  EXPECT_EQ(segs[1].dropping, 0u);
  EXPECT_EQ(segs[1].physical, 0u);
  EXPECT_EQ(segs[2].dropping, GlobalIndex::kHole);
  EXPECT_EQ(segs[3].dropping, 1u);
}

TEST(GlobalIndex, PartialOverlapKeepsTailPhysicalOffsets) {
  GlobalIndex g;
  g.add(Plain(0, 100, 0, 0, 1), 0);
  g.add(Plain(40, 20, 500, 1, 2), 1);  // newer write punches the middle
  auto segs = g.lookup(0, 100);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].dropping, 0u);
  EXPECT_EQ(segs[0].length, 40u);
  EXPECT_EQ(segs[0].physical, 0u);
  EXPECT_EQ(segs[1].dropping, 1u);
  EXPECT_EQ(segs[1].physical, 500u);
  EXPECT_EQ(segs[2].dropping, 0u);
  EXPECT_EQ(segs[2].length, 40u);
  EXPECT_EQ(segs[2].physical, 60u);  // tail resumes at the right log offset
}

TEST(GlobalIndex, NewerSpansSwallowOlder) {
  GlobalIndex g;
  for (int k = 0; k < 10; ++k) g.add(Plain(k * 10, 10, k * 10, 0, k), 0);
  g.add(Plain(0, 100, 0, 1, 1000), 1);
  auto segs = g.lookup(0, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].dropping, 1u);
}

TEST(GlobalIndex, PatternEntryExpands) {
  GlobalIndex g;
  IndexEntry e = Plain(0, 10, 0);
  e.stride = 100;
  e.count = 5;
  g.add(e, 3);
  EXPECT_EQ(g.size(), 410u);
  EXPECT_EQ(g.segment_count(), 5u);
  auto segs = g.lookup(200, 10);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].physical, 20u);
}

// Property sweep: random interleaved writes from several "ranks" against a
// SparseBuffer oracle applied in the same sequence order.
class GlobalIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalIndexProperty, MatchesLinearOracle) {
  Rng rng(GetParam());
  GlobalIndex g;
  pfs::SparseBuffer oracle;
  std::vector<Bytes> logs(4);

  for (int op = 0; op < 300; ++op) {
    const std::uint32_t rank = static_cast<std::uint32_t>(rng.below(4));
    const std::uint64_t off = rng.below(5000);
    const std::uint64_t len = 1 + rng.below(400);
    Bytes payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));

    IndexEntry e = Plain(off, len, logs[rank].size(), rank,
                         static_cast<std::uint64_t>(op));
    logs[rank].insert(logs[rank].end(), payload.begin(), payload.end());
    g.add(e, rank);
    oracle.write(off, payload);
  }

  EXPECT_EQ(g.size(), oracle.size());
  // Reconstruct the file through the index and compare byte-for-byte.
  Bytes expect(oracle.size());
  oracle.read(0, expect);
  Bytes got(g.size(), 0);
  for (const auto& seg : g.lookup(0, g.size())) {
    if (seg.dropping == GlobalIndex::kHole) continue;
    std::copy_n(logs[seg.dropping].begin() + static_cast<long>(seg.physical),
                seg.length, got.begin() + static_cast<long>(seg.logical));
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// End-to-end container tests over MemBackend.

struct EndToEndCase {
  const char* name;
  Options options;
};

class PlfsEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(PlfsEndToEnd, NTo1StridedRoundTrip) {
  Plfs fs(MakeMemBackend(), GetParam().options);
  constexpr std::uint32_t kRanks = 8;
  constexpr std::uint64_t kRecord = 4801;  // unaligned
  constexpr int kSteps = 30;

  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      auto w = fs.open_write("/ckpt", r);
      ASSERT_TRUE(w.ok()) << ErrcName(w.error());
      for (int k = 0; k < kSteps; ++k) {
        const std::uint64_t off = (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
        ASSERT_TRUE((*w)->write(off, MakePattern(r, off, kRecord)).ok());
      }
      ASSERT_TRUE((*w)->close().ok());
    });
  }
  for (auto& t : threads) t.join();

  auto reader = fs.open_read("/ckpt");
  ASSERT_TRUE(reader.ok());
  const std::uint64_t total = kRecord * kRanks * kSteps;
  EXPECT_EQ((*reader)->size(), total);

  // Verify every byte against the writer-rank pattern.
  Bytes buf(total);
  auto n = (*reader)->read(0, buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, total);
  for (std::uint64_t block = 0; block < kRanks * kSteps; ++block) {
    const std::uint32_t rank = static_cast<std::uint32_t>(block % kRanks);
    const std::uint64_t off = block * kRecord;
    EXPECT_EQ(FindPatternMismatch(rank, off,
                                  std::span(buf).subspan(off, kRecord)),
              kNoMismatch)
        << GetParam().name << " block " << block;
  }

  // stat via meta hints agrees.
  auto sz = fs.stat_size("/ckpt");
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, total);
}

INSTANTIATE_TEST_SUITE_P(
    OptionMatrix, PlfsEndToEnd,
    ::testing::Values(
        EndToEndCase{"defaults", Options{}},
        EndToEndCase{"no_compression", [] {
                       Options o;
                       o.index_compression = false;
                       return o;
                     }()},
        EndToEndCase{"no_index_buffering", [] {
                       Options o;
                       o.index_buffering = false;
                       return o;
                     }()},
        EndToEndCase{"write_buffered", [] {
                       Options o;
                       o.write_buffer_bytes = 64 * KiB;
                       return o;
                     }()},
        EndToEndCase{"parallel_index_read", [] {
                       Options o;
                       o.index_read_threads = 4;
                       return o;
                     }()},
        EndToEndCase{"single_hostdir", [] {
                       Options o;
                       o.num_hostdirs = 1;
                       return o;
                     }()}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(PlfsCore, CompressionShrinksIndexForStridedWrites) {
  auto run = [](bool compress) {
    Options o;
    o.index_compression = compress;
    Plfs fs(MakeMemBackend(), o);
    auto w = fs.open_write("/f", 0);
    std::uint64_t flushed = 0;
    {
      for (int k = 0; k < 1000; ++k) {
        Bytes data(512);
        (*w)->write(static_cast<std::uint64_t>(k) * 8192, data);
      }
      (*w)->close();
      flushed = (*w)->index_bytes_flushed();
    }
    return flushed;
  };
  const std::uint64_t compressed = run(true);
  const std::uint64_t plain = run(false);
  EXPECT_EQ(compressed, kRawEntrySize);  // one pattern record
  EXPECT_EQ(plain, 1000 * kRawEntrySize);
}

TEST(PlfsCore, OverwriteResolution) {
  Plfs fs(MakeMemBackend());
  {
    auto w0 = fs.open_write("/f", 0);
    auto w1 = fs.open_write("/f", 1);
    // Sequential interleave: rank 0 writes, then rank 1 overwrites middle.
    (*w0)->write(0, MakePattern(0, 0, 1000));
    (*w1)->write(300, MakePattern(1, 300, 200));
    (*w0)->close();
    (*w1)->close();
  }
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  Bytes buf(1000);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, std::span(buf).first(300)), kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(1, 300, std::span(buf).subspan(300, 200)),
            kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(0, 500, std::span(buf).subspan(500)), kNoMismatch);
}

TEST(PlfsCore, HolesReadAsZeros) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(1 * MiB, MakePattern(0, 1 * MiB, 100));
    (*w)->close();
  }
  auto r = fs.open_read("/f");
  Bytes buf(200);
  auto n = (*r)->read(1 * MiB - 100, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(buf[i], 0);
  EXPECT_EQ(FindPatternMismatch(0, 1 * MiB, std::span(buf).subspan(100)),
            kNoMismatch);
}

TEST(PlfsCore, ReadPastEofShortens) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 100));
    (*w)->close();
  }
  auto r = fs.open_read("/f");
  Bytes buf(1000);
  auto n = (*r)->read(50, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);
  auto n2 = (*r)->read(100, buf);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST(PlfsCore, SyncMakesDataVisibleBeforeClose) {
  Plfs fs(MakeMemBackend());
  auto w = fs.open_write("/f", 0);
  (*w)->write(0, MakePattern(0, 0, 4096));
  ASSERT_TRUE((*w)->sync().ok());
  // A reader opened mid-write sees synced data.
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  Bytes buf(4096);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, buf), kNoMismatch);
  (*w)->close();
}

TEST(PlfsCore, ContainerDetectionAndUnlink) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 10));
    (*w)->close();
  }
  EXPECT_TRUE(*fs.is_container("/f"));
  // A plain file is not a container.
  auto h = fs.backend().create("/plain");
  fs.backend().close(*h);
  EXPECT_FALSE(*fs.is_container("/plain"));
  EXPECT_EQ(fs.open_read("/plain").error(), Errc::invalid);
  EXPECT_EQ(fs.unlink("/plain").error(), Errc::invalid);

  EXPECT_TRUE(fs.unlink("/f").ok());
  EXPECT_EQ(fs.open_read("/f").error(), Errc::not_found);
  EXPECT_FALSE(fs.backend().exists("/f").value_or(true));
}

TEST(PlfsCore, FlattenProducesIdenticalFlatFile) {
  Plfs fs(MakeMemBackend());
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kRecord = 1237;
  {
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        auto w = fs.open_write("/f", r);
        for (int k = 0; k < 16; ++k) {
          const std::uint64_t off = (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
          (*w)->write(off, MakePattern(r, off, kRecord));
        }
        (*w)->close();
      });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_TRUE(fs.flatten("/f", "/flat").ok());

  auto reader = fs.open_read("/f");
  const std::uint64_t total = (*reader)->size();
  Bytes via_plfs(total);
  ASSERT_TRUE((*reader)->read(0, via_plfs).ok());

  auto h = fs.backend().open("/flat");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*fs.backend().size(*h), total);
  Bytes via_flat(total);
  ASSERT_TRUE(fs.backend().read(*h, 0, via_flat).ok());
  fs.backend().close(*h);
  EXPECT_EQ(HashBytes(via_flat), HashBytes(via_plfs));
}

TEST(PlfsCore, StatSizeFallsBackWithoutMetaHints) {
  Options o;
  o.write_meta_hints = false;
  Plfs fs(MakeMemBackend(), o);
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(12345, MakePattern(0, 0, 55));
    (*w)->close();
  }
  auto sz = fs.stat_size("/f");
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, 12400u);
}

TEST(PlfsCore, HostdirFanoutSpreadsDroppings) {
  Options o;
  o.num_hostdirs = 4;
  Plfs fs(MakeMemBackend(), o);
  for (std::uint32_t r = 0; r < 8; ++r) {
    auto w = fs.open_write("/f", r);
    (*w)->write(r * 100, MakePattern(r, 0, 100));
    (*w)->close();
  }
  auto top = fs.backend().readdir("/f");
  ASSERT_TRUE(top.ok());
  int hostdirs = 0;
  for (const auto& name : *top) hostdirs += name.rfind("hostdir.", 0) == 0;
  EXPECT_EQ(hostdirs, 4);
  auto r = fs.open_read("/f");
  EXPECT_EQ((*r)->dropping_count(), 8u);
}

// ---------------------------------------------------------------------------
// Merge determinism, degraded reads, and writer failure bookkeeping.

// Two write epochs with independent clocks produce colliding sequence
// stamps for every record. The merge must still resolve every tie the
// same way on every open: by (sequence, dropping id, in-dropping
// position), so the lexicographically later dropping wins. Enough records
// that std::sort leaves its insertion-sort regime and an unstable
// tiebreak would actually scramble.
TEST(PlfsCore, MergeResolvesEqualSequencesDeterministically) {
  auto backend = MakeMemBackend();
  Options o;
  o.num_hostdirs = 1;         // both droppings share hostdir.0
  o.index_compression = false;  // keep all 200 entries per epoch
  constexpr int kRecords = 200;
  constexpr std::uint64_t kLen = 64;
  for (std::uint32_t rank : {0u, 1u}) {
    WriteClock epoch_clock{0};  // fresh clock: epoch 2 reuses stamps 0..199
    auto w = Writer::Open(*backend, "/f", rank, o, epoch_clock);
    ASSERT_TRUE(w.ok());
    for (int k = 0; k < kRecords; ++k) {
      const std::uint64_t off = static_cast<std::uint64_t>(k) * kLen;
      ASSERT_TRUE((*w)->write(off, MakePattern(rank, off, kLen)).ok());
    }
    ASSERT_TRUE((*w)->close().ok());
  }
  Bytes first;
  for (int open = 0; open < 2; ++open) {
    auto r = Reader::Open(*backend, "/f", o);
    ASSERT_TRUE(r.ok());
    Bytes buf(kRecords * kLen);
    ASSERT_TRUE((*r)->read(0, buf).ok());
    // index.1 sorts after index.0, so rank 1 wins every tie — everywhere.
    EXPECT_EQ(FindPatternMismatch(1, 0, buf), kNoMismatch) << "open " << open;
    if (open == 0) {
      first = buf;
    } else {
      EXPECT_EQ(first, buf);
    }
  }
}

// A data dropping shorter than its index claims must not destroy the
// bytes that did arrive: only the unread tail reads as zeros.
TEST(PlfsCore, DegradedShortReadKeepsPrefix) {
  auto backend = MakeMemBackend();
  {
    WriteClock clock{0};
    auto w = Writer::Open(*backend, "/f", 0, Options{}, clock);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->write(0, MakePattern(0, 0, 100)).ok());
    ASSERT_TRUE((*w)->close().ok());
  }
  std::string dropping;
  {
    auto r = Reader::Open(*backend, "/f");
    ASSERT_TRUE(r.ok());
    dropping = (*r)->droppings()[0];
  }
  // Truncate the dropping to 60 bytes (recreate — MemBackend cannot shrink).
  Bytes content(100);
  {
    auto h = backend->open(dropping);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(backend->read(*h, 0, content).ok());
    backend->close(*h);
  }
  ASSERT_TRUE(backend->unlink(dropping).ok());
  {
    auto h = backend->create(dropping);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(backend->write(*h, 0, std::span(content).first(60)).ok());
    backend->close(*h);
  }

  Options strict;
  auto r = Reader::Open(*backend, "/f", strict);
  ASSERT_TRUE(r.ok());
  Bytes buf(100, 0xff);
  EXPECT_EQ((*r)->read(0, buf).error(), Errc::io_error);

  Options degraded;
  degraded.degraded_reads = true;
  auto rd = Reader::Open(*backend, "/f", degraded);
  ASSERT_TRUE(rd.ok());
  Bytes dbuf(100, 0xff);
  auto n = (*rd)->read(0, dbuf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);
  EXPECT_EQ(FindPatternMismatch(0, 0, std::span(dbuf).first(60)), kNoMismatch);
  for (int i = 60; i < 100; ++i) EXPECT_EQ(dbuf[i], 0) << "byte " << i;
  EXPECT_EQ((*rd)->read_errors(), 1u);
}

// Delegating backend that fails selected operations on demand — reaches
// writer error paths MemBackend alone cannot.
class FailingBackend : public Backend {
 public:
  FailingBackend() : inner_(MakeMemBackend()) {}

  Status mkdir(const std::string& p) override { return inner_->mkdir(p); }
  Result<BackendHandle> create(const std::string& p) override {
    if (fail_creates) return Errc::invalid;
    return inner_->create(p);
  }
  Result<BackendHandle> open(const std::string& p) override {
    if (!fail_open_containing.empty() &&
        p.find(fail_open_containing) != std::string::npos) {
      return Errc::io_error;
    }
    return inner_->open(p);
  }
  Status write(BackendHandle h, std::uint64_t off,
               std::span<const std::uint8_t> d) override {
    if (fail_writes) return Errc::io_error;
    return inner_->write(h, off, d);
  }
  Result<std::size_t> read(BackendHandle h, std::uint64_t off,
                           std::span<std::uint8_t> out) override {
    return inner_->read(h, off, out);
  }
  Result<std::uint64_t> size(BackendHandle h) override { return inner_->size(h); }
  Status fsync(BackendHandle h) override {
    if (fail_fsync) return Errc::io_error;
    return inner_->fsync(h);
  }
  Status close(BackendHandle h) override { return inner_->close(h); }
  Result<std::vector<std::string>> readdir(const std::string& p) override {
    return inner_->readdir(p);
  }
  Status unlink(const std::string& p) override { return inner_->unlink(p); }
  Status rename(const std::string& f, const std::string& t) override {
    return inner_->rename(f, t);
  }
  Result<bool> is_dir(const std::string& p) override { return inner_->is_dir(p); }
  Result<bool> exists(const std::string& p) override { return inner_->exists(p); }

  bool fail_writes = false;
  bool fail_fsync = false;
  bool fail_creates = false;
  std::string fail_open_containing;  ///< opens of matching paths fail

 private:
  std::unique_ptr<Backend> inner_;
};

// A failed buffer flush must leave the writer as if the write never
// happened: no advanced physical_end_, no stray payload in the buffer, no
// index entry — so a retry logs the bytes exactly once.
TEST(PlfsCore, FailedBufferFlushRollsBackTheWrite) {
  FailingBackend backend;
  Options o;
  o.write_buffer_bytes = 1024;
  WriteClock clock{0};
  auto w = Writer::Open(backend, "/f", 0, o, clock);
  ASSERT_TRUE(w.ok());

  ASSERT_TRUE((*w)->write(0, MakePattern(0, 0, 600)).ok());
  EXPECT_EQ((*w)->bytes_logged(), 600u);
  EXPECT_EQ((*w)->records_written(), 1u);

  backend.fail_writes = true;  // crossing 1024 triggers the flush
  EXPECT_EQ((*w)->write(600, MakePattern(0, 600, 600)).error(), Errc::io_error);
  EXPECT_EQ((*w)->bytes_logged(), 600u);
  EXPECT_EQ((*w)->records_written(), 1u);

  backend.fail_writes = false;
  ASSERT_TRUE((*w)->write(600, MakePattern(0, 600, 600)).ok());
  EXPECT_EQ((*w)->bytes_logged(), 1200u);
  EXPECT_EQ((*w)->records_written(), 2u);
  ASSERT_TRUE((*w)->close().ok());

  auto r = Reader::Open(backend, "/f");
  ASSERT_TRUE(r.ok());
  // The log holds exactly the indexed bytes — a double-logged payload
  // would show up as a longer dropping.
  EXPECT_EQ(*backend.stat_size((*r)->droppings()[0]), 1200u);
  Bytes buf(1200);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, buf), kNoMismatch);
}

int CountSpans(obs::Tracer& tracer, std::string_view name) {
  int count = 0;
  tracer.for_each_sorted([&](const obs::EventView& ev, const std::string&) {
    count += name == ev.name;
  });
  return count;
}

// close() must trace its span on every exit path, and a meta-hint
// creation failure must be reported without masking the sync status.
TEST(PlfsCore, CloseTracesSpanWhenMetaHintFails) {
  FailingBackend backend;
  obs::Tracer tracer;
  obs::Context ctx{&tracer, nullptr};
  Options o;
  o.obs = &ctx;
  WriteClock clock{0};
  auto w = Writer::Open(backend, "/f", 0, o, clock);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->write(0, MakePattern(0, 0, 100)).ok());
  backend.fail_creates = true;  // data is durable; only the hint fails
  EXPECT_EQ((*w)->close().error(), Errc::invalid);
  EXPECT_EQ(CountSpans(tracer, "close"), 1);
}

TEST(PlfsCore, CloseReportsSyncErrorOverMetaHintError) {
  FailingBackend backend;
  obs::Tracer tracer;
  obs::Context ctx{&tracer, nullptr};
  Options o;
  o.obs = &ctx;
  WriteClock clock{0};
  auto w = Writer::Open(backend, "/f", 0, o, clock);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->write(0, MakePattern(0, 0, 100)).ok());
  backend.fail_fsync = true;
  backend.fail_creates = true;
  // io_error (the sync failure), not invalid (the hint failure).
  EXPECT_EQ((*w)->close().error(), Errc::io_error);
  EXPECT_EQ(CountSpans(tracer, "close"), 1);
}

// ---------------------------------------------------------------------------
// Flat index: serialisation, flatten-then-read equivalence, staleness.

TEST(FlatIndex, SerializeParseRoundTrip) {
  FlatIndex flat;
  flat.fingerprint = 0xfeedfacecafef00dULL;
  flat.logical_size = 12345;
  flat.droppings = {"hostdir.0/data.0", "hostdir.1/data.1"};
  IndexEntry e = Plain(0, 100, 0, 1, 0);
  e.stride = 200;
  e.count = 7;
  flat.entries = {e, Plain(5000, 45, 700, 0, 1)};
  const Bytes raw = SerializeFlatIndex(flat);
  auto parsed = ParseFlatIndex(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->fingerprint, flat.fingerprint);
  EXPECT_EQ(parsed->logical_size, flat.logical_size);
  EXPECT_EQ(parsed->droppings, flat.droppings);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].count, 7u);
  EXPECT_EQ(parsed->entries[1].logical, 5000u);
}

TEST(FlatIndex, ParseRejectsCorruption) {
  FlatIndex flat;
  flat.droppings = {"hostdir.0/data.0"};
  flat.entries = {Plain(0, 10, 0, 0, 0)};
  Bytes raw = SerializeFlatIndex(flat);
  EXPECT_FALSE(ParseFlatIndex(std::span(raw).first(raw.size() - 1)).ok());
  EXPECT_FALSE(ParseFlatIndex(std::span(raw).first(10)).ok());
  Bytes bad_magic = raw;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(ParseFlatIndex(bad_magic).ok());
  // Entry referencing a dropping beyond the table.
  FlatIndex oob = flat;
  oob.entries[0].rank = 5;
  EXPECT_FALSE(ParseFlatIndex(SerializeFlatIndex(oob)).ok());
}

TEST(FlatIndex, FingerprintSensitivity) {
  const std::uint64_t base =
      FingerprintDroppings({{"hostdir.0/index.0", 96}, {"hostdir.1/index.1", 48}});
  // Order-insensitive...
  EXPECT_EQ(base, FingerprintDroppings(
                      {{"hostdir.1/index.1", 48}, {"hostdir.0/index.0", 96}}));
  // ...but any size change, rename, or extra dropping misses.
  EXPECT_NE(base, FingerprintDroppings(
                      {{"hostdir.0/index.0", 144}, {"hostdir.1/index.1", 48}}));
  EXPECT_NE(base, FingerprintDroppings(
                      {{"hostdir.0/index.2", 96}, {"hostdir.1/index.1", 48}}));
  EXPECT_NE(base, FingerprintDroppings({{"hostdir.0/index.0", 96},
                                        {"hostdir.1/index.1", 48},
                                        {"hostdir.2/index.2", 48}}));
}

// Flatten a container with overwrites and an interior hole, then verify
// the flat-index open returns byte-identical content — and actually used
// the flat dropping rather than the raw merge.
TEST(PlfsFlat, FlattenIndexThenReadIsEquivalent) {
  Plfs fs(MakeMemBackend());
  {
    auto w0 = fs.open_write("/f", 0);
    auto w1 = fs.open_write("/f", 1);
    auto w2 = fs.open_write("/f", 2);
    (*w0)->write(0, MakePattern(0, 0, 1000));
    (*w1)->write(300, MakePattern(1, 300, 200));  // overwrites rank 0
    (*w2)->write(2000, MakePattern(2, 2000, 100));  // hole at [1000, 2000)
    (*w0)->close();
    (*w1)->close();
    (*w2)->close();
  }
  Bytes cold(2100);
  std::uint64_t cold_index_bytes = 0;
  {
    auto r = fs.open_read("/f");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->read(0, cold).ok());
    cold_index_bytes = (*r)->index_bytes_read();
  }

  ASSERT_TRUE(fs.flatten_index("/f").ok());
  auto flat_size = fs.backend().stat_size("/f/index.flat");
  ASSERT_TRUE(flat_size.ok());

  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->index_bytes_read(), *flat_size);  // loaded the flat dropping
  EXPECT_NE((*r)->index_bytes_read(), cold_index_bytes);
  EXPECT_EQ((*r)->size(), 2100u);
  Bytes via_flat(2100);
  ASSERT_TRUE((*r)->read(0, via_flat).ok());
  EXPECT_EQ(via_flat, cold);
  EXPECT_EQ(FindPatternMismatch(0, 0, std::span(via_flat).first(300)), kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(1, 300, std::span(via_flat).subspan(300, 200)),
            kNoMismatch);
  for (std::uint64_t i = 1000; i < 2000; ++i) EXPECT_EQ(via_flat[i], 0);
  EXPECT_EQ(FindPatternMismatch(2, 2000, std::span(via_flat).subspan(2000)),
            kNoMismatch);
}

// A write after the flatten changes the dropping fingerprint, so the open
// must ignore the stale flat dropping and merge the raw indexes.
TEST(PlfsFlat, StaleFlatIndexFallsBackToRawMerge) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 500));
    (*w)->close();
  }
  ASSERT_TRUE(fs.flatten_index("/f").ok());
  {
    auto w = fs.open_write("/f", 1);  // new dropping: fingerprint changes
    (*w)->write(100, MakePattern(1, 100, 300));
    (*w)->close();
  }
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  Bytes buf(500);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, std::span(buf).first(100)), kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(1, 100, std::span(buf).subspan(100, 300)),
            kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(0, 400, std::span(buf).subspan(400)), kNoMismatch);
}

TEST(PlfsFlat, CorruptFlatIndexFallsBackToRawMerge) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 500));
    (*w)->close();
  }
  ASSERT_TRUE(fs.flatten_index("/f").ok());
  ASSERT_TRUE(fs.backend().unlink("/f/index.flat").ok());
  {
    auto h = fs.backend().create("/f/index.flat");
    ASSERT_TRUE(h.ok());
    const Bytes junk(64, 0x5a);
    ASSERT_TRUE(fs.backend().write(*h, 0, junk).ok());
    fs.backend().close(*h);
  }
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  Bytes buf(500);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, buf), kNoMismatch);
}

// Re-flattening after more writes replaces the stale flat dropping.
TEST(PlfsFlat, ReflattenPicksUpNewWrites) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 500));
    (*w)->close();
  }
  ASSERT_TRUE(fs.flatten_index("/f").ok());
  {
    auto w = fs.open_write("/f", 1);
    (*w)->write(0, MakePattern(1, 0, 500));
    (*w)->close();
  }
  ASSERT_TRUE(fs.flatten_index("/f").ok());
  auto flat_size = fs.backend().stat_size("/f/index.flat");
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->index_bytes_read(), *flat_size);
  Bytes buf(500);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(1, 0, buf), kNoMismatch);
}

// ---------------------------------------------------------------------------
// Index cache: hits, invalidation on rewrite, LRU bound.

TEST(PlfsCache, HitServesSameBytesWithoutIndexReads) {
  IndexCache cache(4);
  Options o;
  o.index_cache = &cache;
  Plfs fs(MakeMemBackend(), o);
  {
    auto w = fs.open_write("/a", 0);
    (*w)->write(0, MakePattern(0, 0, 777));
    (*w)->close();
  }
  Bytes cold(777);
  {
    auto r = fs.open_read("/a");
    ASSERT_TRUE(r.ok());
    EXPECT_GT((*r)->index_bytes_read(), 0u);
    ASSERT_TRUE((*r)->read(0, cold).ok());
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  auto r = fs.open_read("/a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ((*r)->index_bytes_read(), 0u);  // no index dropping was fetched
  Bytes warm(777);
  ASSERT_TRUE((*r)->read(0, warm).ok());
  EXPECT_EQ(warm, cold);
}

TEST(PlfsCache, WriterCloseInvalidatesAndReopenSeesNewData) {
  IndexCache cache(4);
  Options o;
  o.index_cache = &cache;
  Plfs fs(MakeMemBackend(), o);
  {
    auto w = fs.open_write("/a", 0);
    (*w)->write(0, MakePattern(0, 0, 400));
    (*w)->close();
  }
  { auto r = fs.open_read("/a"); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(cache.size(), 1u);
  {
    auto w = fs.open_write("/a", 1);
    (*w)->write(100, MakePattern(1, 100, 200));
    (*w)->close();
  }
  EXPECT_EQ(cache.size(), 0u);  // close dropped the stale snapshot
  auto r = fs.open_read("/a");
  ASSERT_TRUE(r.ok());
  Bytes buf(400);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, std::span(buf).first(100)), kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(1, 100, std::span(buf).subspan(100, 200)),
            kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(0, 300, std::span(buf).subspan(300)), kNoMismatch);
}

TEST(PlfsCache, LruBoundEvictsOldestContainer) {
  IndexCache cache(2);
  Options o;
  o.index_cache = &cache;
  Plfs fs(MakeMemBackend(), o);
  for (const char* path : {"/a", "/b", "/c"}) {
    auto w = fs.open_write(path, 0);
    (*w)->write(0, MakePattern(0, 0, 100));
    (*w)->close();
    auto r = fs.open_read(path);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(cache.size(), 2u);  // "/a" evicted
  const std::uint64_t misses_before = cache.misses();
  { auto r = fs.open_read("/a"); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(cache.misses(), misses_before + 1);
  { auto r = fs.open_read("/c"); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(cache.hits(), 1u);
}

// Close-to-open lookup (pdsi::consist session semantics): find_any serves
// the latest snapshot without fingerprint validation — a stale fp that
// would miss under find() still hits.
TEST(PlfsCache, FindAnyIgnoresFingerprint) {
  IndexCache cache(2);
  auto snap = std::make_shared<IndexSnapshot>();
  snap->fingerprint = 42;
  cache.put("/c", snap);
  EXPECT_EQ(cache.find("/c", 7), nullptr);  // validated lookup: fp mismatch
  EXPECT_EQ(cache.find_any("/c"), snap);    // close-to-open: served anyway
  EXPECT_EQ(cache.find_any("/missing"), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

// End-to-end close-to-open: a reader under Options::close_to_open_cache
// is served from the container cache without touching a single index
// byte, and a writer's close (the session-model publish point)
// invalidates so the next open rebuilds fresh data.
TEST(PlfsCache, CloseToOpenHitSkipsIndexWorkUntilWriterCloses) {
  IndexCache cache(4);
  Options o;
  o.index_cache = &cache;
  Options c2o = o;
  c2o.close_to_open_cache = true;
  auto backend = MakeMemBackend();
  WriteClock clock{0};
  {
    auto w = Writer::Open(*backend, "/f", 0, o, clock);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->write(0, MakePattern(0, 0, 512)).ok());
    ASSERT_TRUE((*w)->close().ok());
  }
  Bytes cold(512);
  {
    auto r = Reader::Open(*backend, "/f", o);  // warms the cache
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->read(0, cold).ok());
  }
  {
    auto r = Reader::Open(*backend, "/f", c2o);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ((*r)->index_bytes_read(), 0u)
        << "a close-to-open hit must skip the merge and the validation pass";
    Bytes warm(512);
    ASSERT_TRUE((*r)->read(0, warm).ok());
    EXPECT_EQ(warm, cold);
  }
  {
    auto w = Writer::Open(*backend, "/f", 1, o, clock);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->write(0, MakePattern(1, 0, 512)).ok());
    ASSERT_TRUE((*w)->close().ok());  // publish: invalidates the container
  }
  {
    auto r = Reader::Open(*backend, "/f", c2o);
    ASSERT_TRUE(r.ok());
    EXPECT_GT((*r)->index_bytes_read(), 0u)
        << "after a publishing close the snapshot is gone; rebuild";
    Bytes fresh(512);
    ASSERT_TRUE((*r)->read(0, fresh).ok());
    EXPECT_EQ(FindPatternMismatch(1, 0, fresh), kNoMismatch);
  }
}

// A degraded build (unreadable index dropping) must never be cached.
TEST(PlfsCache, DegradedBuildIsNotCached) {
  IndexCache cache(4);
  FailingBackend backend;
  Options o;
  o.num_hostdirs = 1;
  {
    WriteClock clock{0};
    auto w0 = Writer::Open(backend, "/f", 0, o, clock);
    auto w1 = Writer::Open(backend, "/f", 1, o, clock);
    (*w0)->write(0, MakePattern(0, 0, 100));
    (*w1)->write(100, MakePattern(1, 100, 100));
    (*w0)->close();
    (*w1)->close();
  }
  backend.fail_open_containing = "index.1";  // rank 1's server is down
  Options degraded = o;
  degraded.degraded_reads = true;
  degraded.index_cache = &cache;
  auto r = Reader::Open(backend, "/f", degraded);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->read_errors(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Parallel merge must be byte-identical to the serial merge.

TEST(PlfsParallel, ParallelMergeMatchesSerialExactly) {
  auto backend = MakeMemBackend();
  Options o;
  o.num_hostdirs = 2;
  o.index_compression = false;  // maximise entry count and tie pressure
  // Two clock domains so sequence stamps collide across rank groups, plus
  // heavy logical overlap — the worst case for merge-order stability.
  for (int epoch = 0; epoch < 2; ++epoch) {
    WriteClock epoch_clock{0};
    for (std::uint32_t r = 0; r < 3; ++r) {
      const std::uint32_t rank = epoch * 3 + r;
      auto w = Writer::Open(*backend, "/f", rank, o, epoch_clock);
      ASSERT_TRUE(w.ok());
      Rng rng(1000 + rank);
      for (int k = 0; k < 60; ++k) {
        const std::uint64_t off = rng.below(4000);
        const std::uint64_t len = 1 + rng.below(300);
        ASSERT_TRUE((*w)->write(off, MakePattern(rank, off, len)).ok());
      }
      ASSERT_TRUE((*w)->close().ok());
    }
  }

  Options serial = o;
  serial.index_read_threads = 1;
  Options parallel = o;
  parallel.index_read_threads = 4;
  auto rs = Reader::Open(*backend, "/f", serial);
  auto rp = Reader::Open(*backend, "/f", parallel);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());

  EXPECT_EQ(SerializeEntries((*rs)->raw_entries()),
            SerializeEntries((*rp)->raw_entries()));
  const auto segs_s = (*rs)->index().all();
  const auto segs_p = (*rp)->index().all();
  ASSERT_EQ(segs_s.size(), segs_p.size());
  for (std::size_t i = 0; i < segs_s.size(); ++i) {
    EXPECT_EQ(segs_s[i].logical, segs_p[i].logical) << i;
    EXPECT_EQ(segs_s[i].length, segs_p[i].length) << i;
    EXPECT_EQ(segs_s[i].dropping, segs_p[i].dropping) << i;
    EXPECT_EQ(segs_s[i].physical, segs_p[i].physical) << i;
  }
  ASSERT_EQ((*rs)->size(), (*rp)->size());
  Bytes bs((*rs)->size());
  Bytes bp((*rp)->size());
  ASSERT_TRUE((*rs)->read(0, bs).ok());
  ASSERT_TRUE((*rp)->read(0, bp).ok());
  EXPECT_EQ(bs, bp);
}

// End-to-end over a real directory tree (the FUSE-deployment analogue).
TEST(PlfsPosix, RoundTripOnRealFilesystem) {
  const std::string root =
      std::filesystem::temp_directory_path() / "plfs_posix_test";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  {
    Plfs fs(MakePosixBackend(root));
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < 4; ++r) {
      threads.emplace_back([&, r] {
        auto w = fs.open_write("/ckpt", r);
        ASSERT_TRUE(w.ok()) << ErrcName(w.error());
        for (int k = 0; k < 10; ++k) {
          const std::uint64_t off = (static_cast<std::uint64_t>(k) * 4 + r) * 8191;
          ASSERT_TRUE((*w)->write(off, MakePattern(r, off, 8191)).ok());
        }
        ASSERT_TRUE((*w)->close().ok());
      });
    }
    for (auto& t : threads) t.join();

    auto reader = fs.open_read("/ckpt");
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ((*reader)->size(), 8191u * 40);
    Bytes buf(8191);
    ASSERT_TRUE((*reader)->read(8191 * 5, buf).ok());
    EXPECT_EQ(FindPatternMismatch(1, 8191 * 5, buf), kNoMismatch);

    EXPECT_TRUE(fs.unlink("/ckpt").ok());
  }
  EXPECT_TRUE(std::filesystem::is_empty(root));
  std::filesystem::remove_all(root);
}

// -- Burst-buffer backend stat path -----------------------------------------

TEST(PlfsBbBackend, StatSizeSeesStagedBytesWithoutHandleChurn) {
  bb::BbParams p;
  p.ssd = storage::FlashDevice("fusionio-iodrive-duo");
  p.ssd.capacity_bytes = 256 * MiB;
  bb::FixedRateDrainTarget sink(100e6);
  bb::BurstBuffer buf(p, sink);
  auto be = MakeBbBackend(buf, MakeMemBackend());

  auto h = be->create("/log.7");
  ASSERT_TRUE(h.ok());
  const Bytes data = MakePattern(7, 0, 3 * MiB + 321);
  ASSERT_TRUE(be->write(*h, 0, data).ok());

  // The bytes are staged, not yet drained to the inner backend, and the
  // writer still holds its handle open — stat must see the staged size
  // anyway (the reader's dropping-fingerprint stat pass runs while
  // writers are live).
  auto sz = be->stat_size("/log.7");
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, data.size());

  // After the durability barrier the answer is unchanged.
  ASSERT_TRUE(be->fsync(*h).ok());
  ASSERT_TRUE(be->close(*h).ok());
  EXPECT_EQ(*be->stat_size("/log.7"), data.size());

  // A sparse tail write extends the staged high-water mark immediately.
  auto h2 = be->open("/log.7");
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(be->write(*h2, 10 * MiB, MakePattern(7, 10 * MiB, KiB)).ok());
  EXPECT_EQ(*be->stat_size("/log.7"), 10 * MiB + KiB);
  ASSERT_TRUE(be->close(*h2).ok());

  EXPECT_EQ(be->stat_size("/absent").error(), Errc::not_found);
  EXPECT_EQ(be->stat_size("/").error(), Errc::invalid);  // inner: a directory
}

}  // namespace
}  // namespace pdsi::plfs
