// PLFS core tests: index record serialisation, pattern compression, the
// global interval map (newest-wins shadowing), and end-to-end container
// write/read verification over the in-memory and POSIX backends.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/sparse_buffer.h"
#include "pdsi/plfs/plfs.h"

namespace pdsi::plfs {
namespace {

TEST(IndexEntry, SerializeRoundTrip) {
  IndexEntry e;
  e.logical = 0x123456789abcULL;
  e.length = 47 * KiB;
  e.physical = 99;
  e.stride = 12345678;
  e.count = 42;
  e.rank = 7;
  e.sequence = 1ULL << 40;
  Bytes buf(kRawEntrySize);
  SerializeEntry(e, buf);
  const IndexEntry d = DeserializeEntry(buf);
  EXPECT_EQ(d.logical, e.logical);
  EXPECT_EQ(d.length, e.length);
  EXPECT_EQ(d.physical, e.physical);
  EXPECT_EQ(d.stride, e.stride);
  EXPECT_EQ(d.count, e.count);
  EXPECT_EQ(d.rank, e.rank);
  EXPECT_EQ(d.sequence, e.sequence);
}

TEST(IndexEntry, BatchSerializeRejectsShortBuffer) {
  IndexEntry e;
  Bytes small(kRawEntrySize - 1);
  EXPECT_THROW(SerializeEntry(e, small), std::invalid_argument);
  Bytes odd(kRawEntrySize + 1);
  EXPECT_THROW(DeserializeEntries(odd), std::invalid_argument);
}

IndexEntry Plain(std::uint64_t logical, std::uint64_t length, std::uint64_t physical,
                 std::uint32_t rank = 0, std::uint64_t seq = 0) {
  IndexEntry e;
  e.logical = logical;
  e.length = length;
  e.physical = physical;
  e.rank = rank;
  e.sequence = seq;
  return e;
}

TEST(PatternCompressor, CollapsesStridedRun) {
  PatternCompressor c(true);
  // Rank 2 of 8, 100 KiB records, N-1 strided: logical step 800 KiB.
  for (int k = 0; k < 50; ++k) {
    c.add(Plain(200 * KiB + k * 800 * KiB, 100 * KiB, k * 100 * KiB, 2));
  }
  c.finish();
  auto out = c.take();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].count, 50u);
  EXPECT_EQ(out[0].stride, 800 * KiB);
  EXPECT_EQ(out[0].length, 100 * KiB);
  EXPECT_EQ(out[0].logical, 200 * KiB);
  EXPECT_EQ(out[0].logical_end(), 200 * KiB + 49 * 800 * KiB + 100 * KiB);
}

TEST(PatternCompressor, SequentialAppendsCompressToo) {
  PatternCompressor c(true);
  for (int k = 0; k < 20; ++k) c.add(Plain(k * 4096, 4096, k * 4096));
  c.finish();
  auto out = c.take();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].stride, 4096u);
  EXPECT_EQ(out[0].count, 20u);
}

TEST(PatternCompressor, BreaksOnShapeChange) {
  PatternCompressor c(true);
  c.add(Plain(0, 100, 0));
  c.add(Plain(1000, 100, 100));
  c.add(Plain(2000, 100, 200));
  c.add(Plain(3000, 999, 300));   // different length
  c.add(Plain(10000, 100, 1299)); // new run
  c.finish();
  auto out = c.take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].count, 3u);
  EXPECT_EQ(out[1].count, 1u);
  EXPECT_EQ(out[2].count, 1u);
}

TEST(PatternCompressor, DisabledPassesThrough) {
  PatternCompressor c(false);
  for (int k = 0; k < 10; ++k) c.add(Plain(k * 1000, 100, k * 100));
  c.finish();
  EXPECT_EQ(c.take().size(), 10u);
}

TEST(GlobalIndex, SimpleLookupAndHoles) {
  GlobalIndex g;
  g.add(Plain(100, 50, 0), 0);
  g.add(Plain(200, 50, 50), 1);
  EXPECT_EQ(g.size(), 250u);

  auto segs = g.lookup(0, 250);
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0].dropping, GlobalIndex::kHole);
  EXPECT_EQ(segs[0].length, 100u);
  EXPECT_EQ(segs[1].dropping, 0u);
  EXPECT_EQ(segs[1].physical, 0u);
  EXPECT_EQ(segs[2].dropping, GlobalIndex::kHole);
  EXPECT_EQ(segs[3].dropping, 1u);
}

TEST(GlobalIndex, PartialOverlapKeepsTailPhysicalOffsets) {
  GlobalIndex g;
  g.add(Plain(0, 100, 0, 0, 1), 0);
  g.add(Plain(40, 20, 500, 1, 2), 1);  // newer write punches the middle
  auto segs = g.lookup(0, 100);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].dropping, 0u);
  EXPECT_EQ(segs[0].length, 40u);
  EXPECT_EQ(segs[0].physical, 0u);
  EXPECT_EQ(segs[1].dropping, 1u);
  EXPECT_EQ(segs[1].physical, 500u);
  EXPECT_EQ(segs[2].dropping, 0u);
  EXPECT_EQ(segs[2].length, 40u);
  EXPECT_EQ(segs[2].physical, 60u);  // tail resumes at the right log offset
}

TEST(GlobalIndex, NewerSpansSwallowOlder) {
  GlobalIndex g;
  for (int k = 0; k < 10; ++k) g.add(Plain(k * 10, 10, k * 10, 0, k), 0);
  g.add(Plain(0, 100, 0, 1, 1000), 1);
  auto segs = g.lookup(0, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].dropping, 1u);
}

TEST(GlobalIndex, PatternEntryExpands) {
  GlobalIndex g;
  IndexEntry e = Plain(0, 10, 0);
  e.stride = 100;
  e.count = 5;
  g.add(e, 3);
  EXPECT_EQ(g.size(), 410u);
  EXPECT_EQ(g.segment_count(), 5u);
  auto segs = g.lookup(200, 10);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].physical, 20u);
}

// Property sweep: random interleaved writes from several "ranks" against a
// SparseBuffer oracle applied in the same sequence order.
class GlobalIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalIndexProperty, MatchesLinearOracle) {
  Rng rng(GetParam());
  GlobalIndex g;
  pfs::SparseBuffer oracle;
  std::vector<Bytes> logs(4);

  for (int op = 0; op < 300; ++op) {
    const std::uint32_t rank = static_cast<std::uint32_t>(rng.below(4));
    const std::uint64_t off = rng.below(5000);
    const std::uint64_t len = 1 + rng.below(400);
    Bytes payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));

    IndexEntry e = Plain(off, len, logs[rank].size(), rank,
                         static_cast<std::uint64_t>(op));
    logs[rank].insert(logs[rank].end(), payload.begin(), payload.end());
    g.add(e, rank);
    oracle.write(off, payload);
  }

  EXPECT_EQ(g.size(), oracle.size());
  // Reconstruct the file through the index and compare byte-for-byte.
  Bytes expect(oracle.size());
  oracle.read(0, expect);
  Bytes got(g.size(), 0);
  for (const auto& seg : g.lookup(0, g.size())) {
    if (seg.dropping == GlobalIndex::kHole) continue;
    std::copy_n(logs[seg.dropping].begin() + static_cast<long>(seg.physical),
                seg.length, got.begin() + static_cast<long>(seg.logical));
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// End-to-end container tests over MemBackend.

struct EndToEndCase {
  const char* name;
  Options options;
};

class PlfsEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(PlfsEndToEnd, NTo1StridedRoundTrip) {
  Plfs fs(MakeMemBackend(), GetParam().options);
  constexpr std::uint32_t kRanks = 8;
  constexpr std::uint64_t kRecord = 4801;  // unaligned
  constexpr int kSteps = 30;

  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      auto w = fs.open_write("/ckpt", r);
      ASSERT_TRUE(w.ok()) << ErrcName(w.error());
      for (int k = 0; k < kSteps; ++k) {
        const std::uint64_t off = (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
        ASSERT_TRUE((*w)->write(off, MakePattern(r, off, kRecord)).ok());
      }
      ASSERT_TRUE((*w)->close().ok());
    });
  }
  for (auto& t : threads) t.join();

  auto reader = fs.open_read("/ckpt");
  ASSERT_TRUE(reader.ok());
  const std::uint64_t total = kRecord * kRanks * kSteps;
  EXPECT_EQ((*reader)->size(), total);

  // Verify every byte against the writer-rank pattern.
  Bytes buf(total);
  auto n = (*reader)->read(0, buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, total);
  for (std::uint64_t block = 0; block < kRanks * kSteps; ++block) {
    const std::uint32_t rank = static_cast<std::uint32_t>(block % kRanks);
    const std::uint64_t off = block * kRecord;
    EXPECT_EQ(FindPatternMismatch(rank, off,
                                  std::span(buf).subspan(off, kRecord)),
              kNoMismatch)
        << GetParam().name << " block " << block;
  }

  // stat via meta hints agrees.
  auto sz = fs.stat_size("/ckpt");
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, total);
}

INSTANTIATE_TEST_SUITE_P(
    OptionMatrix, PlfsEndToEnd,
    ::testing::Values(
        EndToEndCase{"defaults", Options{}},
        EndToEndCase{"no_compression", [] {
                       Options o;
                       o.index_compression = false;
                       return o;
                     }()},
        EndToEndCase{"no_index_buffering", [] {
                       Options o;
                       o.index_buffering = false;
                       return o;
                     }()},
        EndToEndCase{"write_buffered", [] {
                       Options o;
                       o.write_buffer_bytes = 64 * KiB;
                       return o;
                     }()},
        EndToEndCase{"parallel_index_read", [] {
                       Options o;
                       o.index_read_threads = 4;
                       return o;
                     }()},
        EndToEndCase{"single_hostdir", [] {
                       Options o;
                       o.num_hostdirs = 1;
                       return o;
                     }()}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(PlfsCore, CompressionShrinksIndexForStridedWrites) {
  auto run = [](bool compress) {
    Options o;
    o.index_compression = compress;
    Plfs fs(MakeMemBackend(), o);
    auto w = fs.open_write("/f", 0);
    std::uint64_t flushed = 0;
    {
      for (int k = 0; k < 1000; ++k) {
        Bytes data(512);
        (*w)->write(static_cast<std::uint64_t>(k) * 8192, data);
      }
      (*w)->close();
      flushed = (*w)->index_bytes_flushed();
    }
    return flushed;
  };
  const std::uint64_t compressed = run(true);
  const std::uint64_t plain = run(false);
  EXPECT_EQ(compressed, kRawEntrySize);  // one pattern record
  EXPECT_EQ(plain, 1000 * kRawEntrySize);
}

TEST(PlfsCore, OverwriteResolution) {
  Plfs fs(MakeMemBackend());
  {
    auto w0 = fs.open_write("/f", 0);
    auto w1 = fs.open_write("/f", 1);
    // Sequential interleave: rank 0 writes, then rank 1 overwrites middle.
    (*w0)->write(0, MakePattern(0, 0, 1000));
    (*w1)->write(300, MakePattern(1, 300, 200));
    (*w0)->close();
    (*w1)->close();
  }
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  Bytes buf(1000);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, std::span(buf).first(300)), kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(1, 300, std::span(buf).subspan(300, 200)),
            kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(0, 500, std::span(buf).subspan(500)), kNoMismatch);
}

TEST(PlfsCore, HolesReadAsZeros) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(1 * MiB, MakePattern(0, 1 * MiB, 100));
    (*w)->close();
  }
  auto r = fs.open_read("/f");
  Bytes buf(200);
  auto n = (*r)->read(1 * MiB - 100, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(buf[i], 0);
  EXPECT_EQ(FindPatternMismatch(0, 1 * MiB, std::span(buf).subspan(100)),
            kNoMismatch);
}

TEST(PlfsCore, ReadPastEofShortens) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 100));
    (*w)->close();
  }
  auto r = fs.open_read("/f");
  Bytes buf(1000);
  auto n = (*r)->read(50, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);
  auto n2 = (*r)->read(100, buf);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST(PlfsCore, SyncMakesDataVisibleBeforeClose) {
  Plfs fs(MakeMemBackend());
  auto w = fs.open_write("/f", 0);
  (*w)->write(0, MakePattern(0, 0, 4096));
  ASSERT_TRUE((*w)->sync().ok());
  // A reader opened mid-write sees synced data.
  auto r = fs.open_read("/f");
  ASSERT_TRUE(r.ok());
  Bytes buf(4096);
  ASSERT_TRUE((*r)->read(0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, buf), kNoMismatch);
  (*w)->close();
}

TEST(PlfsCore, ContainerDetectionAndUnlink) {
  Plfs fs(MakeMemBackend());
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(0, MakePattern(0, 0, 10));
    (*w)->close();
  }
  EXPECT_TRUE(*fs.is_container("/f"));
  // A plain file is not a container.
  auto h = fs.backend().create("/plain");
  fs.backend().close(*h);
  EXPECT_FALSE(*fs.is_container("/plain"));
  EXPECT_EQ(fs.open_read("/plain").error(), Errc::invalid);
  EXPECT_EQ(fs.unlink("/plain").error(), Errc::invalid);

  EXPECT_TRUE(fs.unlink("/f").ok());
  EXPECT_EQ(fs.open_read("/f").error(), Errc::not_found);
  EXPECT_FALSE(fs.backend().exists("/f").value_or(true));
}

TEST(PlfsCore, FlattenProducesIdenticalFlatFile) {
  Plfs fs(MakeMemBackend());
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kRecord = 1237;
  {
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        auto w = fs.open_write("/f", r);
        for (int k = 0; k < 16; ++k) {
          const std::uint64_t off = (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
          (*w)->write(off, MakePattern(r, off, kRecord));
        }
        (*w)->close();
      });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_TRUE(fs.flatten("/f", "/flat").ok());

  auto reader = fs.open_read("/f");
  const std::uint64_t total = (*reader)->size();
  Bytes via_plfs(total);
  ASSERT_TRUE((*reader)->read(0, via_plfs).ok());

  auto h = fs.backend().open("/flat");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*fs.backend().size(*h), total);
  Bytes via_flat(total);
  ASSERT_TRUE(fs.backend().read(*h, 0, via_flat).ok());
  fs.backend().close(*h);
  EXPECT_EQ(HashBytes(via_flat), HashBytes(via_plfs));
}

TEST(PlfsCore, StatSizeFallsBackWithoutMetaHints) {
  Options o;
  o.write_meta_hints = false;
  Plfs fs(MakeMemBackend(), o);
  {
    auto w = fs.open_write("/f", 0);
    (*w)->write(12345, MakePattern(0, 0, 55));
    (*w)->close();
  }
  auto sz = fs.stat_size("/f");
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, 12400u);
}

TEST(PlfsCore, HostdirFanoutSpreadsDroppings) {
  Options o;
  o.num_hostdirs = 4;
  Plfs fs(MakeMemBackend(), o);
  for (std::uint32_t r = 0; r < 8; ++r) {
    auto w = fs.open_write("/f", r);
    (*w)->write(r * 100, MakePattern(r, 0, 100));
    (*w)->close();
  }
  auto top = fs.backend().readdir("/f");
  ASSERT_TRUE(top.ok());
  int hostdirs = 0;
  for (const auto& name : *top) hostdirs += name.rfind("hostdir.", 0) == 0;
  EXPECT_EQ(hostdirs, 4);
  auto r = fs.open_read("/f");
  EXPECT_EQ((*r)->dropping_count(), 8u);
}

// End-to-end over a real directory tree (the FUSE-deployment analogue).
TEST(PlfsPosix, RoundTripOnRealFilesystem) {
  const std::string root =
      std::filesystem::temp_directory_path() / "plfs_posix_test";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  {
    Plfs fs(MakePosixBackend(root));
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < 4; ++r) {
      threads.emplace_back([&, r] {
        auto w = fs.open_write("/ckpt", r);
        ASSERT_TRUE(w.ok()) << ErrcName(w.error());
        for (int k = 0; k < 10; ++k) {
          const std::uint64_t off = (static_cast<std::uint64_t>(k) * 4 + r) * 8191;
          ASSERT_TRUE((*w)->write(off, MakePattern(r, off, 8191)).ok());
        }
        ASSERT_TRUE((*w)->close().ok());
      });
    }
    for (auto& t : threads) t.join();

    auto reader = fs.open_read("/ckpt");
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ((*reader)->size(), 8191u * 40);
    Bytes buf(8191);
    ASSERT_TRUE((*reader)->read(8191 * 5, buf).ok());
    EXPECT_EQ(FindPatternMismatch(1, 8191 * 5, buf), kNoMismatch);

    EXPECT_TRUE(fs.unlink("/ckpt").ok());
  }
  EXPECT_TRUE(std::filesystem::is_empty(root));
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace pdsi::plfs
