// hdf5lite tests: dump accounting, the individual optimisation effects,
// and determinism.
#include <gtest/gtest.h>

#include "pdsi/hdf5lite/hdf5lite.h"

namespace pdsi::hdf5lite {
namespace {

pfs::PfsConfig Cfg() { return pfs::PfsConfig::LustreLike(4); }

TEST(Dump, WritesAllPayload) {
  auto spec = GcrmSpec(16);
  const auto r = RunDump(Cfg(), spec, H5Options{});
  EXPECT_EQ(r.bytes, spec.total_bytes());
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Dump, IrregularSpecsKeepTotalConstant) {
  auto spec = ChomboSpec(8);
  const auto a = RunDump(Cfg(), spec, H5Options{});
  // Irregular record sizes must still sum to the nominal volume per rank
  // (the zero-sum perturbation contract) within the +64*k jitter term.
  EXPECT_NEAR(static_cast<double>(a.bytes),
              static_cast<double>(spec.total_bytes()),
              0.05 * spec.total_bytes());
}

TEST(Dump, CollectiveBufferingHelps) {
  auto spec = ChomboSpec(32);
  H5Options base;
  base.metadata_coalescing = true;  // isolate the data-path effect
  H5Options cb = base;
  cb.collective_buffering = true;
  const auto slow = RunDump(Cfg(), spec, base);
  const auto fast = RunDump(Cfg(), spec, cb);
  EXPECT_LT(fast.seconds, 0.6 * slow.seconds);
}

TEST(Dump, MetadataCoalescingHelps) {
  auto spec = ChomboSpec(32);
  H5Options eager;
  eager.collective_buffering = true;
  H5Options coalesced = eager;
  coalesced.metadata_coalescing = true;
  const auto slow = RunDump(Cfg(), spec, eager);
  const auto fast = RunDump(Cfg(), spec, coalesced);
  EXPECT_LT(fast.seconds, slow.seconds);
}

TEST(Dump, AlignmentNeverHurtsMuch) {
  auto spec = GcrmSpec(16);
  H5Options tuned;
  tuned.collective_buffering = true;
  tuned.metadata_coalescing = true;
  H5Options aligned = tuned;
  aligned.align_to_stripe = true;
  const auto a = RunDump(Cfg(), spec, tuned);
  const auto b = RunDump(Cfg(), spec, aligned);
  EXPECT_LT(b.seconds, 1.1 * a.seconds);
}

TEST(Dump, FullyTunedApproachesRegularStreaming) {
  auto spec = GcrmSpec(32);
  H5Options tuned;
  tuned.collective_buffering = true;
  tuned.metadata_coalescing = true;
  tuned.align_to_stripe = true;
  const auto r = RunDump(Cfg(), spec, tuned);
  const auto cfg = Cfg();
  const double media_peak = cfg.num_oss * cfg.disk.seq_bw_bytes;
  EXPECT_GT(r.bandwidth(), 0.4 * media_peak);
}

TEST(Dump, Deterministic) {
  auto spec = ChomboSpec(16);
  H5Options o;
  o.collective_buffering = true;
  const auto a = RunDump(Cfg(), spec, o);
  const auto b = RunDump(Cfg(), spec, o);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

}  // namespace
}  // namespace pdsi::hdf5lite
