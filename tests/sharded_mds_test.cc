// Tests for the sharded metadata service (pdsi::pfs::ShardedMds) and the
// MDS namespace bug fixes that PR landed together: the unlink emptiness
// prefix scan (a sibling like "/a.x" sorts between "/a" and "/a/b" and
// must not make a populated directory deletable), the root unlink guard,
// POSIX same-path rename, placement invariants under GIGA+ splitting,
// stale-bitmap client convergence, single-shard equivalence with the
// legacy lone MDS, and cross-shard readdir. Labelled `mds` in ctest.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pdsi/obs/obs.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/pfs/mds.h"
#include "pdsi/pfs/sharded_mds.h"

namespace pdsi::pfs {
namespace {

PfsConfig ShardedConfig(std::uint32_t shards, std::uint32_t threshold) {
  PfsConfig cfg = PfsConfig::PanFsLike(4);
  cfg.num_mds_shards = shards;
  cfg.mds_split_threshold = threshold;
  return cfg;
}

// -- Mds namespace bug regressions ------------------------------------

TEST(MdsUnlink, DotSiblingCannotFakeEmptiness) {
  // '.' (0x2E) sorts before '/' (0x2F), so in the ordered namespace the
  // immediate successor of "/a" is "/a.x", not "/a/b". The old
  // std::next(it) probe concluded "/a" was empty and erased it,
  // orphaning "/a/b". The prefix scan must see through the sibling.
  PfsConfig cfg;
  Mds mds(cfg);
  ASSERT_TRUE(mds.mkdir("/a").ok());
  ASSERT_TRUE(mds.create("/a.x", 0.0).ok());
  ASSERT_TRUE(mds.create("/a/b", 0.0).ok());
  EXPECT_EQ(mds.unlink("/a").error(), Errc::not_empty);
  EXPECT_TRUE(mds.lookup("/a").ok());
  EXPECT_TRUE(mds.lookup("/a/b").ok());
  // Once the child is gone the directory (still shadowed by "/a.x") is
  // genuinely empty and unlinkable.
  ASSERT_TRUE(mds.unlink("/a/b").ok());
  EXPECT_TRUE(mds.unlink("/a").ok());
  EXPECT_TRUE(mds.lookup("/a.x").ok());
}

TEST(MdsUnlink, RootIsNotUnlinkable) {
  PfsConfig cfg;
  Mds mds(cfg);
  EXPECT_EQ(mds.unlink("/").error(), Errc::not_supported);
  EXPECT_TRUE(mds.lookup("/").ok());
  ASSERT_TRUE(mds.create("/f", 0.0).ok());
  EXPECT_EQ(mds.unlink("/").error(), Errc::not_supported);
  EXPECT_TRUE(mds.lookup("/").ok());
  EXPECT_TRUE(mds.create("/g", 0.0).ok());  // root still a live directory
}

TEST(MdsRename, SamePathIsPosixNoop) {
  PfsConfig cfg;
  Mds mds(cfg);
  ASSERT_TRUE(mds.create("/f", 1.0).ok());
  EXPECT_TRUE(mds.rename("/f", "/f", 2.0).ok());
  EXPECT_TRUE(mds.lookup("/f").ok());
  // Spelled differently but the same path after normalization.
  EXPECT_TRUE(mds.rename("/f", "//f/", 3.0).ok());
  EXPECT_TRUE(mds.lookup("/f").ok());
}

TEST(MdsRename, StampsDestinationMtime) {
  PfsConfig cfg;
  Mds mds(cfg);
  ASSERT_TRUE(mds.create("/old", 1.0).ok());
  ASSERT_TRUE(mds.rename("/old", "/new", 7.5).ok());
  auto r = mds.lookup("/new");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mtime, 7.5);
  EXPECT_EQ(mds.lookup("/old").error(), Errc::not_found);
}

TEST(MdsHasChildren, PrefixScanSemantics) {
  PfsConfig cfg;
  Mds mds(cfg);
  ASSERT_TRUE(mds.mkdir("/d").ok());
  EXPECT_FALSE(mds.has_children("/d"));
  ASSERT_TRUE(mds.create("/d.x", 0.0).ok());
  EXPECT_FALSE(mds.has_children("/d"));  // sibling, not child
  ASSERT_TRUE(mds.create("/d/f", 0.0).ok());
  EXPECT_TRUE(mds.has_children("/d"));
  EXPECT_TRUE(mds.has_children("/"));
}

// -- ShardedMds state semantics ---------------------------------------

TEST(ShardedMds, PlacementInvariantHoldsThroughSplits) {
  PfsConfig cfg = ShardedConfig(8, 16);
  ShardedMds smds(cfg);
  ASSERT_TRUE(smds.mkdir("/d").ok());
  constexpr int kFiles = 1500;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(smds.create("/d/f" + std::to_string(i), 0.0).ok()) << i;
  }
  EXPECT_GT(smds.splits(), 10u);
  EXPECT_GT(smds.bitmap().highest(), 8u);
  EXPECT_EQ(smds.total_files(), static_cast<std::uint64_t>(kFiles));
  EXPECT_TRUE(smds.check_placement_invariant());
  // Every file resolves after arbitrary migration history.
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_TRUE(smds.lookup("/d/f" + std::to_string(i)).ok()) << i;
  }
}

TEST(ShardedMds, FileIdsStayGloballyUnique) {
  PfsConfig cfg = ShardedConfig(4, 32);
  ShardedMds smds(cfg);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 600; ++i) {
    auto r = smds.create("/f" + std::to_string(i), 0.0);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ids.insert(r->file_id).second) << "duplicate id " << r->file_id;
  }
}

TEST(ShardedMds, DirectoryUnlinkSeesChildrenOnAllShards) {
  // Low threshold so the children split across partitions on several
  // shards; emptiness must consult them all.
  PfsConfig cfg = ShardedConfig(4, 8);
  ShardedMds smds(cfg);
  ASSERT_TRUE(smds.mkdir("/d").ok());
  constexpr int kKids = 64;
  for (int i = 0; i < kKids; ++i) {
    ASSERT_TRUE(smds.create("/d/f" + std::to_string(i), 0.0).ok());
  }
  ASSERT_GT(smds.splits(), 0u);
  std::set<std::uint32_t> homes;
  for (int i = 0; i < kKids; ++i) {
    homes.insert(smds.home_shard("/d/f" + std::to_string(i)));
  }
  ASSERT_GT(homes.size(), 1u);  // the probe genuinely spans shards
  EXPECT_EQ(smds.unlink("/d").error(), Errc::not_empty);
  for (int i = 0; i < kKids; ++i) {
    ASSERT_TRUE(smds.unlink("/d/f" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(smds.unlink("/d").ok());
  EXPECT_EQ(smds.lookup("/d").error(), Errc::not_found);
  EXPECT_EQ(smds.unlink("/").error(), Errc::not_supported);
}

TEST(ShardedMds, ReaddirMergesAcrossShards) {
  PfsConfig cfg = ShardedConfig(4, 24);
  ShardedMds smds(cfg);
  ASSERT_TRUE(smds.mkdir("/d").ok());
  ASSERT_TRUE(smds.mkdir("/d/sub").ok());  // replicated on every shard
  std::vector<std::string> expected = {"sub"};
  for (int i = 0; i < 300; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(smds.create("/d/" + name, 0.0).ok());
    expected.push_back(name);
  }
  std::sort(expected.begin(), expected.end());
  auto r = smds.readdir("/d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, expected);  // sorted, complete, replicas deduped
  EXPECT_EQ(smds.readdir("/d/f0").error(), Errc::not_dir);
  EXPECT_EQ(smds.readdir("/missing").error(), Errc::not_found);
}

TEST(ShardedMds, CrossShardRenameMovesHome) {
  // Before any split there is only partition 0, so every path homes to
  // shard 0; grow the namespace first so distinct home shards exist,
  // then rename across them.
  PfsConfig cfg = ShardedConfig(4, 8);
  ShardedMds smds(cfg);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(smds.create("/seed" + std::to_string(i), 1.0).ok());
  }
  ASSERT_GT(smds.splits(), 0u);
  const std::string from = "/seed0";
  std::string to;
  for (int i = 0; i < 256 && to.empty(); ++i) {
    const std::string cand = "/moved" + std::to_string(i);
    if (smds.home_shard(cand) != smds.home_shard(from)) to = cand;
  }
  ASSERT_FALSE(to.empty());
  auto created = smds.lookup(from);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(smds.rename(from, to, 9.0).ok());
  EXPECT_EQ(smds.lookup(from).error(), Errc::not_found);
  auto moved = smds.lookup(to);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->file_id, created->file_id);
  EXPECT_EQ(moved->mtime, 9.0);
  EXPECT_TRUE(smds.check_placement_invariant());
}

// -- Single-shard equivalence with the legacy lone MDS ----------------

TEST(ShardedMds, SingleShardMatchesLegacyMdsOnRecordedOps) {
  // Replay one op sequence through a bare Mds (the legacy service) and a
  // one-shard ShardedMds; every status, inode id, size, mtime, and
  // listing must match exactly.
  PfsConfig cfg;
  Mds legacy(cfg);
  ShardedMds sharded(cfg);
  ASSERT_EQ(sharded.num_shards(), 1u);

  const std::vector<std::string> files = {"/a", "/a.x", "/d/f1", "/d/f2",
                                          "/d/sub/g"};
  auto drive = [&files](auto&& mkdir, auto&& create, auto&& unlink,
                        auto&& rename, auto&& extend) {
    std::vector<std::string> log;
    log.push_back(mkdir("/d"));
    log.push_back(mkdir("/d"));  // exists
    log.push_back(mkdir("/d/sub"));
    log.push_back(mkdir("/nope/sub"));  // not_found
    for (const auto& f : files) log.push_back(create(f));
    log.push_back(create("/a"));          // exists
    log.push_back(unlink("/d"));          // not_empty
    log.push_back(unlink("/"));           // not_supported
    log.push_back(rename("/a", "/a"));    // POSIX no-op
    log.push_back(rename("/a", "/b"));    // ok
    log.push_back(rename("/gone", "/x")); // not_found
    extend("/b", 4096, 3.25);
    log.push_back(unlink("/d/f1"));
    return log;
  };

  auto name = [](Errc e) { return std::string(ErrcName(e)); };
  const auto legacy_log = drive(
      [&](const std::string& p) { return name(legacy.mkdir(p).error()); },
      [&](const std::string& p) {
        auto r = legacy.create(p, 1.5);
        return r.ok() ? "id=" + std::to_string(r->file_id) : name(r.error());
      },
      [&](const std::string& p) { return name(legacy.unlink(p).error()); },
      [&](const std::string& f, const std::string& t) {
        return name(legacy.rename(f, t, 2.5).error());
      },
      [&](const std::string& p, std::uint64_t n, double m) {
        legacy.extend(p, n, m);
      });
  const auto sharded_log = drive(
      [&](const std::string& p) { return name(sharded.mkdir(p).error()); },
      [&](const std::string& p) {
        auto r = sharded.create(p, 1.5);
        return r.ok() ? "id=" + std::to_string(r->file_id) : name(r.error());
      },
      [&](const std::string& p) { return name(sharded.unlink(p).error()); },
      [&](const std::string& f, const std::string& t) {
        return name(sharded.rename(f, t, 2.5).error());
      },
      [&](const std::string& p, std::uint64_t n, double m) {
        sharded.extend(p, n, m);
      });
  EXPECT_EQ(legacy_log, sharded_log);

  for (const std::string p : {"/", "/d", "/b", "/d/f2", "/d/sub/g"}) {
    auto a = legacy.lookup(p);
    auto b = sharded.lookup(p);
    ASSERT_EQ(a.ok(), b.ok()) << p;
    if (a.ok()) {
      EXPECT_EQ(a->file_id, b->file_id) << p;
      EXPECT_EQ(a->is_dir, b->is_dir) << p;
      EXPECT_EQ(a->size, b->size) << p;
      EXPECT_EQ(a->mtime, b->mtime) << p;
    }
  }
  auto la = legacy.readdir("/d");
  auto lb = sharded.readdir("/d");
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(*la, *lb);
}

// -- Client-level behaviour over a sharded cluster --------------------

struct ClusterFixture {
  // Single-actor runs let the fixture retire actor 0; multi-actor storms
  // have each rank thread call sched.finish(rank) itself.
  explicit ClusterFixture(PfsConfig cfg, obs::Context* ctx = nullptr,
                          std::size_t actors = 1)
      : sched(actors),
        cluster(std::move(cfg), sched, nullptr, ctx),
        auto_finish(actors == 1) {}
  ~ClusterFixture() {
    if (auto_finish) sched.finish(0);
  }
  sim::VirtualScheduler sched;
  PfsCluster cluster;
  bool auto_finish;
};

TEST(ShardedClient, StaleBitmapClientConvergesFromEmptyCache) {
  obs::Registry registry;
  obs::Context ctx{nullptr, &registry};
  ClusterFixture fx(ShardedConfig(4, 16), &ctx);
  // Writer grows the namespace through many splits (its own cache keeps
  // pace one bounce at a time).
  PfsClient writer(fx.cluster, 0);
  constexpr int kFiles = 400;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(writer.create("/f" + std::to_string(i)).ok()) << i;
  }
  ASSERT_GT(fx.cluster.smds().splits(), 4u);
  const std::uint64_t bounces_after_writes =
      registry.counter("pfs.mds_stale_retries").value();
  EXPECT_GT(bounces_after_writes, 0u);

  // A fresh client starts from the empty bitmap (partition 0 only) and
  // must converge via lazy correction alone: every open succeeds, and
  // the bounces it pays are bounded by the split history, not by the
  // number of operations (the GIGA+ claim).
  PfsClient reader(fx.cluster, 0);
  for (int i = 0; i < kFiles; ++i) {
    auto fh = reader.open("/f" + std::to_string(i));
    ASSERT_TRUE(fh.ok()) << i;
    ASSERT_TRUE(reader.close(*fh).ok());
  }
  const std::uint64_t reader_bounces =
      registry.counter("pfs.mds_stale_retries").value() - bounces_after_writes;
  EXPECT_GT(reader_bounces, 0u);
  EXPECT_LT(reader_bounces, fx.cluster.smds().bitmap().highest() + 1);
  EXPECT_TRUE(fx.cluster.smds().check_placement_invariant());
}

TEST(ShardedClient, NamespaceLifecycleAcrossShards) {
  ClusterFixture fx(ShardedConfig(4, 16));
  PfsClient client(fx.cluster, 0);
  ASSERT_TRUE(client.mkdir("/dir").ok());
  EXPECT_EQ(client.mkdir("/dir").error(), Errc::exists);
  std::vector<std::string> expected;
  for (int i = 0; i < 120; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(client.create("/dir/" + name).ok());
    expected.push_back(name);
  }
  std::sort(expected.begin(), expected.end());
  auto names = client.readdir("/dir");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, expected);
  EXPECT_EQ(client.unlink("/dir").error(), Errc::not_empty);
  ASSERT_TRUE(client.rename("/dir/f0", "/dir/renamed").ok());
  EXPECT_EQ(client.open("/dir/f0").error(), Errc::not_found);
  EXPECT_TRUE(client.open("/dir/renamed").ok());
  // Data ops still resolve through the sharded namespace.
  auto fh = client.open("/dir/f1");
  ASSERT_TRUE(fh.ok());
  std::vector<std::uint8_t> payload(1000, 0x5a);
  ASSERT_TRUE(client.write(*fh, 0, payload).ok());
  auto st = client.stat("/dir/f1");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1000u);
  ASSERT_TRUE(client.close(*fh).ok());
  ASSERT_TRUE(client.unlink("/dir/f1").ok());
  EXPECT_EQ(client.open("/dir/f1").error(), Errc::not_found);
}

TEST(ShardedClient, PipelinedModeSurvivesSplitStorm) {
  PfsConfig cfg = ShardedConfig(4, 16);
  cfg.rpc_window = 32;
  cfg.rpc_batch = 8;
  ClusterFixture fx(cfg);
  PfsClient client(fx.cluster, 0);
  ASSERT_TRUE(client.pipelined());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(client.create("/p" + std::to_string(i)).ok()) << i;
  }
  EXPECT_GT(fx.cluster.smds().splits(), 4u);
  EXPECT_TRUE(fx.cluster.smds().check_placement_invariant());
  for (int i = 0; i < 400; ++i) {
    auto fh = client.open("/p" + std::to_string(i));
    ASSERT_TRUE(fh.ok()) << i;
    ASSERT_TRUE(client.close(*fh).ok());
  }
}

TEST(ShardedClient, ShardCountScalesCreateStorm) {
  // The tentpole claim in miniature: a concurrent create storm finishes
  // earlier (in virtual time) with more shards, because independent
  // service queues absorb it in parallel. A single serial client cannot
  // see this — each of its ops is a full round trip either way — so the
  // storm runs many ranks at once, metarates-style.
  constexpr int kClients = 32;
  constexpr int kPerClient = 40;
  auto storm = [](std::uint32_t shards) {
    ClusterFixture fx(ShardedConfig(shards, 200), nullptr, kClients);
    std::vector<std::thread> threads;
    std::mutex mu;
    double finish = 0.0;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        PfsClient client(fx.cluster, c);
        for (int i = 0; i < kPerClient; ++i) {
          EXPECT_TRUE(client
                          .create("/c" + std::to_string(c) + "_" +
                                  std::to_string(i))
                          .ok());
        }
        std::lock_guard<std::mutex> lk(mu);
        finish = std::max(finish, client.now());
        fx.sched.finish(c);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };
  const double one = storm(1);
  const double eight = storm(8);
  EXPECT_GT(one / eight, 2.0) << "one=" << one << " eight=" << eight;
}

}  // namespace
}  // namespace pdsi::pfs
