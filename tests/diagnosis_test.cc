// Diagnosis tests: the peer-comparison detector's math, plus end-to-end
// fault-injection experiments (detection of each fault kind, no false
// indictments on healthy runs).
#include <gtest/gtest.h>

#include "pdsi/diagnosis/diagnosis.h"

namespace pdsi::diagnosis {
namespace {

MetricSample S(double ops, double bytes, double lat) {
  return {ops, bytes, lat};
}

TEST(PeerDiagnoser, QuietOnHomogeneousWindows) {
  PeerDiagnoser d(8);
  for (int w = 0; w < 20; ++w) {
    std::vector<MetricSample> window;
    for (int s = 0; s < 8; ++s) {
      window.push_back(S(1000 + 5 * s, 5e7 + 1e5 * s, 0.01 + 1e-4 * s));
    }
    EXPECT_FALSE(d.observe(window).has_value());
  }
}

TEST(PeerDiagnoser, IndictsPersistentOutlier) {
  PeerDiagnoser d(8);
  std::optional<std::uint32_t> got;
  for (int w = 0; w < 12; ++w) {
    std::vector<MetricSample> window;
    for (int s = 0; s < 8; ++s) {
      const bool bad = s == 3;
      window.push_back(S(bad ? 200 : 1000, bad ? 1e7 : 5e7, bad ? 0.05 : 0.01));
    }
    if (auto r = d.observe(window)) got = r;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3u);
}

TEST(PeerDiagnoser, TransientBlipsDoNotIndict) {
  PeerDiagnoser d(8);
  for (int w = 0; w < 12; ++w) {
    std::vector<MetricSample> window;
    for (int s = 0; s < 8; ++s) {
      // Server 2 blips on alternating windows only: persistence resets.
      const bool bad = s == 2 && (w % 2 == 0);
      window.push_back(S(bad ? 100 : 1000, 5e7, 0.01));
    }
    EXPECT_FALSE(d.observe(window).has_value()) << "window " << w;
  }
}

class FaultMatrix : public ::testing::TestWithParam<FaultKind> {};

TEST_P(FaultMatrix, DetectsInjectedFault) {
  ExperimentParams p;
  p.servers = 12;
  p.clients = 8;
  p.windows = 20;
  p.severity = 4.0;
  p.fault = GetParam();
  const auto r = RunDiagnosisExperiment(p);
  EXPECT_TRUE(r.any_indictment);
  EXPECT_TRUE(r.correct) << "indicted " << r.indicted_server;
  EXPECT_LE(r.windows_to_detect, 8u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, FaultMatrix,
                         ::testing::Values(FaultKind::disk_hog,
                                           FaultKind::network_loss,
                                           FaultKind::cpu_hog),
                         [](const auto& param_info) {
                           std::string n(FaultKindName(param_info.param));
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(Experiment, NoFalseAlarmsWhenHealthy) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ExperimentParams p;
    p.servers = 12;
    p.clients = 8;
    p.windows = 20;
    p.fault = FaultKind::none;
    p.seed = seed;
    const auto r = RunDiagnosisExperiment(p);
    EXPECT_FALSE(r.any_indictment) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pdsi::diagnosis
