// pdsi::fault — the deterministic fault-injection layer and every data
// path that consults it: client retry/failover, OSS crash recovery,
// burst-buffer drain parking, PLFS degraded reads, and the injected
// interrupt schedule for the checkpoint simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "pdsi/bb/drain_target.h"
#include "pdsi/common/bytes.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/fault/fault.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/pfs_backend.h"
#include "pdsi/plfs/reader.h"
#include "pdsi/plfs/writer.h"
#include "pdsi/storage/device_catalog.h"
#include "pdsi/tier/tier_engine.h"

namespace pdsi {
namespace {

constexpr double kForever = 1e18;

fault::FaultPlan CrashPlan(double mtbf, double restart, double horizon) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.oss_mtbf_s = mtbf;
  plan.oss_restart_s = restart;
  plan.horizon_s = horizon;
  return plan;
}

TEST(FaultSchedule, DeterministicAcrossInstances) {
  const fault::FaultPlan plan = CrashPlan(50.0, 5.0, 2000.0);
  fault::FaultInjector a(plan, 4);
  fault::FaultInjector b(plan, 4);
  EXPECT_GT(a.crash_count(), 0u);
  EXPECT_EQ(a.crash_count(), b.crash_count());
  EXPECT_EQ(a.interrupt_times(), b.interrupt_times());
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (double t = 0.0; t < 2000.0; t += 13.7) {
      ASSERT_EQ(a.down(s, t), b.down(s, t)) << "server " << s << " t " << t;
      ASSERT_EQ(a.next_up(s, t), b.next_up(s, t));
    }
  }
  const auto times = a.interrupt_times();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), a.crash_count());

  // A different seed produces a different schedule.
  fault::FaultPlan other = plan;
  other.seed = 43;
  fault::FaultInjector c(other, 4);
  EXPECT_NE(a.interrupt_times(), c.interrupt_times());
}

TEST(FaultSchedule, DownNextUpAndForceDown) {
  fault::FaultInjector inj(fault::FaultPlan{}, 2);  // inactive: never down
  EXPECT_FALSE(inj.down(0, 123.0));
  EXPECT_EQ(inj.next_up(0, 123.0), 123.0);
  EXPECT_EQ(inj.crash_count(), 0u);

  inj.force_down(0, 10.0, 20.0);
  EXPECT_FALSE(inj.down(0, 9.999));
  EXPECT_TRUE(inj.down(0, 10.0));
  EXPECT_TRUE(inj.down(0, 19.999));
  EXPECT_FALSE(inj.down(0, 20.0));
  EXPECT_FALSE(inj.down(1, 15.0)) << "windows are per-server";
  EXPECT_EQ(inj.next_up(0, 15.0), 20.0);
  EXPECT_EQ(inj.crashes_between(0, 0.0, 15.0), 1u);
  EXPECT_EQ(inj.crashes_between(0, 10.0, 15.0), 0u) << "(since, until] is half-open";

  // Overlapping forced windows coalesce into one outage.
  inj.force_down(0, 15.0, 30.0);
  EXPECT_TRUE(inj.down(0, 22.0));
  EXPECT_EQ(inj.next_up(0, 12.0), 30.0);
  EXPECT_EQ(inj.crash_count(), 1u);
}

TEST(FaultSchedule, SlowDiskFactor) {
  fault::FaultPlan plan;
  plan.slow_disk_prob = 1.0;
  plan.slow_disk_factor = 4.0;
  fault::FaultInjector inj(plan, 3);
  for (std::uint32_t s = 0; s < 3; ++s) EXPECT_EQ(inj.disk_factor(s), 4.0);
  fault::FaultInjector none(fault::FaultPlan{}, 3);
  for (std::uint32_t s = 0; s < 3; ++s) EXPECT_EQ(none.disk_factor(s), 1.0);
}

// Runs a small write/read/fsync workload and returns the client's final
// virtual time plus total disk busy-seconds.
std::pair<double, double> RunWorkload(fault::FaultInjector* inj) {
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(4), sched);
  if (inj) cluster.set_fault(inj);
  pfs::PfsClient client(cluster, 0);
  auto fh = *client.create("/f");
  Bytes buf(256 * 1024);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(client.write(fh, static_cast<std::uint64_t>(i) * buf.size(), buf).ok());
  }
  EXPECT_TRUE(client.fsync(fh).ok());
  Bytes out(buf.size());
  EXPECT_TRUE(client.read(fh, 0, out).ok());
  EXPECT_TRUE(client.close(fh).ok());
  const double t = client.now();
  sched.finish(0);
  return {t, cluster.total_disk_busy()};
}

TEST(FaultInert, ZeroPlanChangesNothing) {
  const auto [t_none, busy_none] = RunWorkload(nullptr);
  fault::FaultInjector zero(fault::FaultPlan{}, 4);
  const auto [t_zero, busy_zero] = RunWorkload(&zero);
  EXPECT_EQ(t_none, t_zero);
  EXPECT_EQ(busy_none, busy_zero);
  EXPECT_EQ(zero.retries(), 0u);
  EXPECT_EQ(zero.dropped_rpcs(), 0u);
}

TEST(FaultClient, DroppedRpcsAreRetriedAndDeterministic) {
  auto run = [](fault::FaultInjector& inj) {
    sim::VirtualScheduler sched(1);
    pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(2), sched);
    cluster.set_fault(&inj);
    pfs::PfsClient client(cluster, 0);
    auto fh = *client.create("/f");
    Bytes buf(4096);
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(client.write(fh, static_cast<std::uint64_t>(i) * buf.size(), buf).ok())
          << "write " << i << " should survive drops within the retry budget";
    }
    const double t = client.now();
    sched.finish(0);
    return t;
  };
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.rpc_drop_prob = 0.3;
  fault::FaultInjector a(plan, 2);
  const double ta = run(a);
  EXPECT_GT(a.dropped_rpcs(), 0u);
  EXPECT_GE(a.retries(), a.dropped_rpcs());

  fault::FaultInjector b(plan, 2);
  EXPECT_EQ(ta, run(b)) << "same seed, same drop sequence, same timing";
  EXPECT_EQ(a.dropped_rpcs(), b.dropped_rpcs());

  const auto [t_clean, busy] = RunWorkload(nullptr);
  (void)t_clean;
  (void)busy;
}

TEST(FaultClient, FailedWriteLeavesNoPhantomTouchedServers) {
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(1), sched);
  fault::FaultInjector inj(fault::FaultPlan{}, 1);
  inj.force_down(0, 0.0, kForever);
  cluster.set_fault(&inj);
  pfs::PfsClient client(cluster, 0);
  auto fh = *client.create("/f");  // MDS only: succeeds with the OSS down
  Bytes buf(4096);
  const double before = client.now();
  Status st = client.write(fh, 0, buf);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(inj.retries(), inj.plan().max_retries);
  EXPECT_GT(client.now(), before) << "the failed attempts still cost time";
  // The write failed wholesale: the file was never extended.
  EXPECT_EQ(*client.file_size(fh), 0u);
  // A server registers as touched only when a chunk lands, so a wholesale
  // failure leaves nothing to flush: fsync has no server to wait for and
  // succeeds instantly instead of burning a second retry schedule against
  // data that never existed.
  const std::uint64_t fid = cluster.mds().lookup("/f")->file_id;
  EXPECT_TRUE(cluster.touched_servers(fid).empty())
      << "failed write must not register the server as touched";
  const double before_sync = client.now();
  EXPECT_TRUE(client.fsync(fh).ok());
  EXPECT_EQ(client.now(), before_sync) << "no touched servers, nothing to await";
  EXPECT_TRUE(client.close(fh).ok());
  sched.finish(0);
}

TEST(FaultClient, PartialWriteStillSurfacesFsyncError) {
  // Two servers, one down: the chunk on the live server lands (and is
  // touched); the chunk on the dead server exhausts its retries. fsync
  // must still fail — the dead server holds no data, but the write as a
  // whole did not complete and the failure cannot be swallowed.
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(2);
  pfs::PfsCluster cluster(cfg, sched);
  pfs::PfsClient client(cluster, 0);
  auto fh = *client.create("/f");
  Bytes warm(4096);
  EXPECT_TRUE(client.write(fh, 0, warm).ok());  // touch stripe-0's server

  const std::uint64_t fid = cluster.mds().lookup("/f")->file_id;
  const std::uint32_t owner0 = cluster.placement().server_for(fid, 0, 2);
  fault::FaultInjector inj(fault::FaultPlan{}, 2);
  inj.force_down(owner0, client.now(), kForever);
  cluster.set_fault(&inj);

  Bytes both(2 * cfg.stripe_unit);
  EXPECT_FALSE(client.write(fh, 0, both).ok());
  // Only the pre-fault touch remains; the surviving server's chunk of the
  // failed write never ran (the stripe-0 chunk fails first and the write
  // bails out wholesale).
  EXPECT_EQ(cluster.touched_servers(fid).size(), 1u);
  EXPECT_EQ(*cluster.touched_servers(fid).begin(), owner0);
  // The touched (now dead) server cannot be flushed: close -> fsync fails.
  EXPECT_FALSE(client.close(fh).ok());
  sched.finish(0);
}

TEST(FaultClient, ReadFailsOverToSurvivingServer) {
  auto run = [](bool failover, std::uint64_t* failovers) {
    sim::VirtualScheduler sched(1);
    pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(2);
    pfs::PfsCluster cluster(cfg, sched);
    pfs::PfsClient client(cluster, 0);
    auto fh = *client.create("/f");
    Bytes data = MakePattern(0, 0, 2 * cfg.stripe_unit);  // both servers
    EXPECT_TRUE(client.write(fh, 0, data).ok());
    EXPECT_TRUE(client.fsync(fh).ok());

    const std::uint64_t fid = cluster.mds().lookup("/f")->file_id;
    const std::uint32_t owner = cluster.placement().server_for(fid, 0, 2);
    fault::FaultPlan plan;
    plan.read_failover = failover;
    fault::FaultInjector inj(plan, 2);
    inj.force_down(owner, client.now(), kForever);
    cluster.set_fault(&inj);

    Bytes out(cfg.stripe_unit);
    auto n = client.read(fh, 0, out);
    if (failovers) *failovers = inj.failovers();
    Status st = n.ok() ? Status::Ok() : Status(n.error());
    if (n.ok()) {
      EXPECT_EQ(*n, out.size());
      EXPECT_EQ(FindPatternMismatch(0, 0, out), kNoMismatch)
          << "failover must serve the real bytes";
    }
    sched.finish(0);
    return st;
  };
  std::uint64_t failovers = 0;
  EXPECT_TRUE(run(true, &failovers).ok());
  EXPECT_GT(failovers, 0u);
  // Single-copy regime: the same read fails while the owner is down.
  EXPECT_FALSE(run(false, nullptr).ok());
}

TEST(FaultOss, CrashDropsReadaheadWindow) {
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(1), sched);
  fault::FaultInjector inj(fault::FaultPlan{}, 1);
  cluster.set_fault(&inj);
  pfs::Oss& oss = cluster.oss(0);

  double t = oss.serve_write(7, 0, 256 * 1024, 0.0);
  t = oss.serve_read(7, 0, 64 * 1024, t);  // flush + cold read, arms readahead
  const double busy_cold = oss.disk_busy_seconds();
  t = oss.serve_read(7, 0, 64 * 1024, t);  // readahead hit: no disk charge
  EXPECT_EQ(oss.disk_busy_seconds(), busy_cold);

  inj.force_down(0, t + 0.1, t + 0.2);  // crash + restart between requests
  t = oss.serve_read(7, 0, 64 * 1024, t + 0.3);
  EXPECT_GT(oss.disk_busy_seconds(), busy_cold)
      << "the restarted server lost its readahead window and must re-read";
  sched.finish(0);
}

TEST(FaultBb, DrainParksUntilServerRestarts) {
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(1);
  pfs::PfsCluster cluster(cfg, sched);
  fault::FaultInjector inj(fault::FaultPlan{}, 1);
  inj.force_down(0, 0.0, 3.0);
  cluster.set_fault(&inj);
  auto target = bb::MakePfsDrainTarget(cluster);
  const double done = target->drain(1, 0, 1024 * 1024, 1.0);
  EXPECT_GE(done, 3.0) << "the chunk waits out the crash window";
  EXPECT_EQ(inj.drain_retries(), 1u);
  sched.finish(0);
}

TEST(FaultPlfs, DegradedReadReturnsPartialDataWithErrorCount) {
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(8);
  pfs::PfsCluster cluster(cfg, sched);
  auto backend = plfs::MakePfsBackend(cluster, 0);
  plfs::WriteClock clock{0};
  const std::uint64_t kHalf = 256 * 1024;
  const std::uint64_t kRec = 64 * 1024;
  for (std::uint32_t rank = 0; rank < 2; ++rank) {
    auto w = plfs::Writer::Open(*backend, "/ckpt", rank, plfs::Options{}, clock);
    ASSERT_TRUE(w.ok());
    for (std::uint64_t o = 0; o < kHalf; o += kRec) {
      Bytes rec = MakePattern(rank, rank * kHalf + o, kRec);
      ASSERT_TRUE((*w)->write(rank * kHalf + o, rec).ok());
    }
    ASSERT_TRUE((*w)->close().ok());
  }

  // Find a server holding rank 1's data log but not rank 0's.
  pfs::PfsClient lister(cluster, 0);
  std::vector<std::vector<std::uint32_t>> data_servers(2);
  auto top = lister.readdir("/ckpt");
  ASSERT_TRUE(top.ok());
  for (const auto& name : *top) {
    if (name.rfind("hostdir.", 0) != 0) continue;
    const std::string hostdir = "/ckpt/" + name;
    const auto entries = lister.readdir(hostdir);
    ASSERT_TRUE(entries.ok());
    for (const auto& e : *entries) {
      if (e.rfind("data.", 0) != 0) continue;
      const std::uint32_t rank = static_cast<std::uint32_t>(std::stoul(e.substr(5)));
      const auto inode = cluster.mds().lookup(hostdir + "/" + e);
      ASSERT_TRUE(inode.ok());
      const std::uint64_t stripes =
          (inode->size + cfg.stripe_unit - 1) / cfg.stripe_unit;
      for (std::uint64_t s = 0; s < stripes; ++s) {
        data_servers[rank].push_back(
            cluster.placement().server_for(inode->file_id, s, cluster.num_oss()));
      }
    }
  }
  ASSERT_EQ(data_servers[0].size(), 1u);
  ASSERT_EQ(data_servers[1].size(), 1u);
  const std::uint32_t victim = data_servers[1][0];
  ASSERT_NE(victim, data_servers[0][0])
      << "placement put both logs on one server; enlarge the cluster";

  // Healthy build, then the victim crashes for good before the read.
  plfs::Options ropt;
  ropt.degraded_reads = true;
  auto reader = plfs::Reader::Open(*backend, "/ckpt", ropt);
  ASSERT_TRUE(reader.ok());
  fault::FaultPlan plan;
  plan.read_failover = false;
  fault::FaultInjector inj(plan, cluster.num_oss());
  inj.force_down(victim, 0.0, kForever);
  cluster.set_fault(&inj);

  Bytes out(2 * kHalf, 0xFF);
  auto n = (*reader)->read(0, out);
  ASSERT_TRUE(n.ok()) << "degraded mode must not fail the read";
  EXPECT_EQ(*n, out.size());
  EXPECT_GT((*reader)->read_errors(), 0u);
  std::span<const std::uint8_t> survived(out.data(), kHalf);
  EXPECT_EQ(FindPatternMismatch(0, 0, survived), kNoMismatch)
      << "the surviving rank's bytes are intact";
  for (std::uint64_t i = kHalf; i < 2 * kHalf; ++i) {
    ASSERT_EQ(out[i], 0u) << "lost region must read back as a hole at " << i;
  }

  // Without degraded_reads the same situation is a hard error.
  auto strict = plfs::Reader::Open(*backend, "/ckpt");
  ASSERT_TRUE(strict.ok());
  Bytes out2(2 * kHalf);
  EXPECT_FALSE((*strict)->read(0, out2).ok());
  sched.finish(0);
}

TEST(FaultPlfs, DegradedBuildSkipsUnreadableIndexDroppings) {
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(1), sched);
  auto backend = plfs::MakePfsBackend(cluster, 0);
  plfs::WriteClock clock{0};
  {
    auto w = plfs::Writer::Open(*backend, "/ckpt", 0, plfs::Options{}, clock);
    ASSERT_TRUE(w.ok());
    Bytes rec(4096, 1);
    ASSERT_TRUE((*w)->write(0, rec).ok());
    ASSERT_TRUE((*w)->close().ok());
  }
  fault::FaultPlan plan;
  plan.read_failover = false;
  fault::FaultInjector inj(plan, 1);
  inj.force_down(0, 0.0, kForever);
  cluster.set_fault(&inj);

  EXPECT_FALSE(plfs::Reader::Open(*backend, "/ckpt").ok());

  plfs::Options ropt;
  ropt.degraded_reads = true;
  auto reader = plfs::Reader::Open(*backend, "/ckpt", ropt);
  ASSERT_TRUE(reader.ok()) << "degraded build tolerates a lost index dropping";
  EXPECT_GT((*reader)->read_errors(), 0u);
  EXPECT_EQ((*reader)->size(), 0u) << "that rank's writes are invisible";
  sched.finish(0);
}

// -- Tiering engine under faults --------------------------------------------

/// Checkpoint-then-analyse workload on a small three-tier stack. Returns
/// the final clock plus the accounting the regression compares.
struct TierRunResult {
  double final_t = 0.0;
  std::uint64_t degraded = 0;
  std::uint64_t read_errors = 0;
  bool data_ok = false;

  bool operator==(const TierRunResult&) const = default;
};

TierRunResult RunTierScenario(fault::FaultInjector* inj) {
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(2), sched);
  tier::TierEngineParams p;
  p.bb.ssd = storage::FlashDevice("fusionio-iodrive-duo");
  p.bb.ssd.capacity_bytes = 64 * MiB;
  p.warm_capacity_bytes = 64 * MiB;
  p.cold.data_shards = 4;
  p.cold.parity_shards = 2;
  p.cold.shard_unit = 64 * KiB;
  p.cold.num_devices = 8;
  tier::TierEngine engine(p, cluster);
  if (inj) engine.set_fault(inj);

  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "ckpt" + std::to_string(i);
    engine.pin(name, tier::kWarmTier);  // warm-resident: reads hit the PFS
    for (std::uint64_t off = 0; off < 4 * MiB; off += MiB) {
      t = *engine.write(name, off,
                        MakePattern(static_cast<std::uint32_t>(i), off, MiB), t);
    }
  }
  t = engine.flush(t);

  TierRunResult r;
  r.data_ok = true;
  Bytes back(4 * MiB);
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 3; ++i) {
      auto g = engine.read("ckpt" + std::to_string(i), 0, back, t + 1.0);
      if (g.ok()) {
        t = std::max(t, *g);
        r.data_ok = r.data_ok &&
                    FindPatternMismatch(static_cast<std::uint32_t>(i), 0, back) ==
                        kNoMismatch;
      }
    }
  }
  r.final_t = t;
  r.degraded = engine.degraded_reads();
  r.read_errors = engine.read_errors();
  sched.finish(0);
  return r;
}

TEST(FaultTier, InactivePlanLeavesEngineTimingIdentical) {
  const TierRunResult bare = RunTierScenario(nullptr);
  EXPECT_TRUE(bare.data_ok);
  EXPECT_EQ(bare.degraded, 0u);
  EXPECT_EQ(bare.read_errors, 0u);

  // An installed-but-inactive plan must be a pure bystander: identical
  // clocks, identical counters, no randomness consumed.
  fault::FaultPlan inert;  // all rates zero -> !active()
  ASSERT_FALSE(inert.active());
  fault::FaultInjector inj(inert, 2 + 8);
  const TierRunResult with_inert = RunTierScenario(&inj);
  EXPECT_EQ(with_inert, bare);
}

TEST(FaultTier, ActivePlanYieldsDegradedReadsWithAccounting) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.oss_mtbf_s = 1e12;  // active, but organically crash-free
  plan.read_failover = true;
  fault::FaultInjector inj(plan, 2 + 8);
  // Down warm server 0 across the whole read phase; server 1 survives.
  inj.force_down(0, 0.5, kForever);

  const TierRunResult r = RunTierScenario(&inj);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.degraded, 0u);
  EXPECT_EQ(r.read_errors, 0u);

  // Same plan with failover disabled: warm reads have no surviving
  // replica and no cold copy yet, so every read of a stripe on the dead
  // server is a counted error.
  fault::FaultPlan no_failover = plan;
  no_failover.read_failover = false;
  fault::FaultInjector inj2(no_failover, 2 + 8);
  inj2.force_down(0, 0.5, kForever);
  const TierRunResult r2 = RunTierScenario(&inj2);
  EXPECT_GT(r2.read_errors, 0u);
  EXPECT_EQ(r2.degraded, 0u);

  // Determinism: the faulty run replays byte-identically.
  fault::FaultInjector inj3(plan, 2 + 8);
  inj3.force_down(0, 0.5, kForever);
  EXPECT_EQ(RunTierScenario(&inj3), r);
}

TEST(FaultCheckpointSim, InjectedScheduleDrivesFailures) {
  failure::CheckpointSimParams p;
  p.work_seconds = 10 * 3600.0;
  p.interval = 3600.0;
  p.checkpoint_seconds = 300.0;
  p.restart_seconds = 600.0;

  const std::vector<double> empty;
  p.interrupts = &empty;
  Rng r0(1);
  const auto clean = failure::SimulateCheckpointing(p, r0);
  EXPECT_EQ(clean.failures, 0u);
  EXPECT_EQ(clean.wall_seconds, 10 * (3600.0 + 300.0));

  // One failure mid-third-segment, plus an instant inside the restart that
  // must be absorbed (the machine is already down).
  const std::vector<double> schedule = {2 * 3900.0 + 100.0, 2 * 3900.0 + 200.0};
  p.interrupts = &schedule;
  Rng r1(1);
  const auto faulty = failure::SimulateCheckpointing(p, r1);
  EXPECT_EQ(faulty.failures, 1u);
  EXPECT_GT(faulty.wall_seconds, clean.wall_seconds);

  Rng r2(1);
  const auto again = failure::SimulateCheckpointing(p, r2);
  EXPECT_EQ(faulty.wall_seconds, again.wall_seconds);
  EXPECT_EQ(faulty.failures, again.failures);

  // The injector's interrupt_times() slot straight in.
  fault::FaultInjector inj(CrashPlan(4 * 3600.0, 600.0, 40 * 3600.0), 1);
  const auto times = inj.interrupt_times();
  ASSERT_FALSE(times.empty());
  p.interrupts = &times;
  Rng r3(1);
  const auto injected = failure::SimulateCheckpointing(p, r3);
  EXPECT_GT(injected.failures, 0u);
}

}  // namespace
}  // namespace pdsi
