// Cross-module property tests: randomised fuzzing of the PLFS container
// against a linear oracle, parallel-file-system byte exactness under
// concurrency, and scheduler determinism under heavy contention.
#include <gtest/gtest.h>

#include <thread>

#include <map>

#include "pdsi/bb/bb_backend.h"
#include "pdsi/bb/burst_buffer.h"
#include "pdsi/bb/drain_target.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/pfs/sparse_buffer.h"
#include "pdsi/plfs/plfs.h"
#include "pdsi/storage/device_catalog.h"

namespace pdsi {
namespace {

// ---------------------------------------------------------------------------
// PLFS fuzz: interleaved writers with arbitrary overlapping writes, syncs
// and reopenings, verified byte-for-byte against a SparseBuffer oracle
// that applies operations in the same order.
class PlfsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlfsFuzz, MatchesOracleUnderRandomWrites) {
  Rng rng(GetParam());
  const std::uint32_t writers = 2 + static_cast<std::uint32_t>(rng.below(4));

  plfs::Options opts;
  opts.index_compression = rng.chance(0.5);
  opts.index_buffering = rng.chance(0.8);
  opts.num_hostdirs = 1 + static_cast<std::uint32_t>(rng.below(8));
  if (rng.chance(0.3)) opts.write_buffer_bytes = 16 * KiB;
  plfs::Plfs fs(plfs::MakeMemBackend(), opts);

  pfs::SparseBuffer oracle;
  std::vector<std::unique_ptr<plfs::Writer>> open_writers(writers);
  for (std::uint32_t w = 0; w < writers; ++w) {
    auto r = fs.open_write("/fuzz", w);
    ASSERT_TRUE(r.ok());
    open_writers[w] = std::move(*r);
  }

  const int ops = 400;
  for (int i = 0; i < ops; ++i) {
    const std::uint32_t w = static_cast<std::uint32_t>(rng.below(writers));
    const double dice = rng.uniform();
    if (dice < 0.85) {
      const std::uint64_t off = rng.below(64 * KiB);
      const std::size_t len = 1 + rng.below(3000);
      Bytes data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
      ASSERT_TRUE(open_writers[w]->write(off, data).ok());
      oracle.write(off, data);
    } else if (dice < 0.95) {
      ASSERT_TRUE(open_writers[w]->sync().ok());
    } else {
      // Close and reopen this writer mid-stream.
      ASSERT_TRUE(open_writers[w]->close().ok());
      auto r = fs.open_write("/fuzz", w + writers * (1 + i));  // fresh rank id
      ASSERT_TRUE(r.ok());
      open_writers[w] = std::move(*r);
    }
  }
  for (auto& w : open_writers) ASSERT_TRUE(w->close().ok());

  auto reader = fs.open_read("/fuzz");
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->size(), oracle.size());
  Bytes got(oracle.size());
  Bytes expect(oracle.size());
  ASSERT_TRUE((*reader)->read(0, got).ok());
  oracle.read(0, expect);
  EXPECT_EQ(HashBytes(got), HashBytes(expect)) << "seed " << GetParam();
  // Random-offset spot reads too (different code path than full scan).
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t off = rng.below(oracle.size());
    const std::size_t len = 1 + rng.below(5000);
    Bytes a(len), b(len);
    auto n = (*reader)->read(off, a);
    ASSERT_TRUE(n.ok());
    oracle.read(off, std::span(b).first(*n));
    EXPECT_EQ(HashBytes(std::span(a).first(*n)), HashBytes(std::span(b).first(*n)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlfsFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

// ---------------------------------------------------------------------------
// PFS byte exactness with many concurrent writers on one shared file.
TEST(PfsConcurrency, StridedWritersReconstructExactly) {
  constexpr int kRanks = 12;
  constexpr std::uint64_t kRecord = 3163;  // odd size
  constexpr int kSteps = 10;
  pfs::PfsConfig cfg = pfs::PfsConfig::GpfsLike(4);
  sim::VirtualScheduler sched(kRanks);
  pfs::PfsCluster cluster(cfg, sched);

  std::vector<std::thread> threads;
  sim::VirtualBarrier barrier(sched, [&] {
    std::vector<std::size_t> all;
    for (int r = 0; r < kRanks; ++r) all.push_back(r);
    return all;
  }());
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      pfs::FileHandle fh;
      if (r == 0) {
        fh = *client.create("/shared");
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        fh = *client.open("/shared");
      }
      for (int k = 0; k < kSteps; ++k) {
        const std::uint64_t off = (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
        client.write(fh, off, MakePattern(r, off, kRecord));
      }
      client.close(fh);
      barrier.arrive(r);
      // Every rank verifies another rank's region through a fresh handle.
      const std::uint32_t other = (r + 5) % kRanks;
      Bytes buf(kRecord);
      const std::uint64_t off = (static_cast<std::uint64_t>(3) * kRanks + other) * kRecord;
      auto fh2 = client.open("/shared");
      auto n = client.read(*fh2, off, buf);
      EXPECT_TRUE(n.ok());
      EXPECT_EQ(*n, kRecord);
      EXPECT_EQ(FindPatternMismatch(other, off, buf), kNoMismatch);
      client.close(*fh2);
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
}

// ---------------------------------------------------------------------------
// Burst-buffer backend fuzz: random write/read/fsync interleavings through
// MakeBbBackend(MemBackend) — drains, evictions and backpressure stalls
// firing at arbitrary points — checked byte-for-byte against a trivial
// shadow model (offset -> byte). Small capacity relative to the write
// volume so the watermark/evict machinery actually engages.
class BbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BbFuzz, BackendMatchesShadowModelUnderRandomOps) {
  Rng rng(GetParam());
  bb::BbParams bp;
  bp.ssd = storage::FlashDevice("fusionio-iodrive-duo");
  bp.ssd.capacity_bytes = (1u << rng.below(3)) * 4 * MiB;  // 4/8/16 MiB
  bp.high_watermark = 0.50;
  bp.low_watermark = 0.25;
  bp.drain_unit = 64 * KiB << rng.below(5);  // 64 KiB .. 1 MiB
  bb::FixedRateDrainTarget pfs(1e7 * (1 + rng.below(10)));  // 10-100 MB/s
  bb::BurstBuffer buf(bp, pfs);
  auto be = plfs::MakeBbBackend(buf, plfs::MakeMemBackend());

  auto h = be->create("/bbfuzz");
  ASSERT_TRUE(h.ok()) << "seed " << GetParam();
  std::map<std::uint64_t, std::uint8_t> model;
  std::uint64_t fsize = 0;

  auto expect_at = [&](std::uint64_t off) -> std::uint8_t {
    auto it = model.find(off);
    return it == model.end() ? 0 : it->second;  // holes read as zeros
  };
  auto check_read = [&](std::uint64_t off, std::size_t len) {
    Bytes out(len, 0xAA);
    auto n = be->read(*h, off, out);
    ASSERT_TRUE(n.ok()) << "seed " << GetParam();
    const std::size_t want = off >= fsize
        ? 0
        : static_cast<std::size_t>(std::min<std::uint64_t>(len, fsize - off));
    ASSERT_EQ(*n, want) << "seed " << GetParam() << " off " << off;
    for (std::size_t i = 0; i < want; ++i) {
      ASSERT_EQ(out[i], expect_at(off + i))
          << "seed " << GetParam() << " at " << off + i;
    }
  };

  const int ops = 300;
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.uniform();
    if (dice < 0.60) {
      const std::uint64_t off = rng.below(2 * MiB);
      const std::size_t len = 1 + rng.below(64 * KiB);
      Bytes data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
      ASSERT_TRUE(be->write(*h, off, data).ok()) << "seed " << GetParam();
      for (std::size_t k = 0; k < len; ++k) model[off + k] = data[k];
      fsize = std::max(fsize, off + len);
      ASSERT_EQ(*be->size(*h), fsize) << "seed " << GetParam();
    } else if (dice < 0.90) {
      if (fsize == 0) continue;
      // Mix interior reads with reads straddling or past the EOF.
      const std::uint64_t off = rng.below(fsize + fsize / 4 + 1);
      check_read(off, 1 + rng.below(48 * KiB));
    } else {
      ASSERT_TRUE(be->fsync(*h).ok()) << "seed " << GetParam();
    }
  }

  // Drain everything, then the durable image must still match the model.
  ASSERT_TRUE(be->fsync(*h).ok()) << "seed " << GetParam();
  check_read(0, static_cast<std::size_t>(fsize));
  check_read(fsize / 3, static_cast<std::size_t>(fsize));  // tail + past-EOF
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbFuzz,
                         ::testing::Values(7, 21, 42, 63, 84, 105, 126, 147));

// ---------------------------------------------------------------------------
// Scheduler stress: 24 actors doing seeded random advances and barriers
// must produce identical traces across repeated runs.
TEST(SchedulerStress, HeavyContentionIsDeterministic) {
  auto run = [](unsigned jitter) {
    constexpr int kActors = 24;
    sim::VirtualScheduler sched(kActors);
    sim::SimResource shared;
    std::vector<double> finish(kActors);
    std::vector<std::thread> threads;
    for (int a = 0; a < kActors; ++a) {
      threads.emplace_back([&, a] {
        std::this_thread::sleep_for(std::chrono::microseconds((a * jitter) % 300));
        Rng rng(1000 + a);
        for (int i = 0; i < 200; ++i) {
          sched.atomically(a, [&](double now) {
            return shared.reserve(now, rng.uniform(1e-5, 1e-3));
          });
        }
        finish[a] = sched.now(a);
        sched.finish(a);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };
  const auto a = run(0);
  const auto b = run(7);
  const auto c = run(31);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace pdsi
