// Tests for the POSIX-HEC-extension APIs on the simulated PFS (layout
// query, group open) and for OSS/MDS internals added for them.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::pfs {
namespace {

class ExtFixture : public ::testing::Test {
 protected:
  ExtFixture()
      : sched_(1), cluster_(PfsConfig::LustreLike(4), sched_), client_(cluster_, 0) {}
  ~ExtFixture() override { sched_.finish(0); }

  sim::VirtualScheduler sched_;
  PfsCluster cluster_;
  PfsClient client_;
};

TEST_F(ExtFixture, LayoutQueryReturnsGeometry) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  auto info = client_.layout("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->stripe_unit, cluster_.config().stripe_unit);
  EXPECT_EQ(info->lock_unit, cluster_.config().lock_unit);
  EXPECT_EQ(info->num_servers, 4u);
  ASSERT_EQ(info->first_stripes.size(), 4u);
  // Round-robin placement: the four stripes land on four distinct servers.
  std::set<std::uint32_t> distinct(info->first_stripes.begin(),
                                   info->first_stripes.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST_F(ExtFixture, LayoutErrorsMirrorStat) {
  EXPECT_EQ(client_.layout("/missing").error(), Errc::not_found);
  client_.mkdir("/d");
  EXPECT_EQ(client_.layout("/d").error(), Errc::is_dir);
}

TEST_F(ExtFixture, GroupOpenReturnsUsableHandle) {
  auto fh = client_.create("/f");
  client_.write(*fh, 0, MakePattern(1, 0, 100));
  client_.close(*fh);
  auto g = client_.open_group("/f", 64);
  ASSERT_TRUE(g.ok());
  Bytes buf(100);
  ASSERT_TRUE(client_.read(*g, 0, buf).ok());
  EXPECT_EQ(FindPatternMismatch(1, 0, buf), kNoMismatch);
  EXPECT_EQ(client_.open_group("/missing", 8).error(), Errc::not_found);
}

TEST(GroupOpen, AmortisesMetadataTime) {
  // N ranks each opening a file: per-rank opens serialise N ops at the
  // MDS; group opens cost ~one op total.
  auto run = [](bool group) {
    constexpr std::uint32_t kRanks = 32;
    PfsConfig cfg = PfsConfig::LustreLike(2);
    sim::VirtualScheduler sched(kRanks);
    PfsCluster cluster(cfg, sched);
    std::vector<std::size_t> all(kRanks);
    for (std::uint32_t i = 0; i < kRanks; ++i) all[i] = i;
    sim::VirtualBarrier barrier(sched, all);
    std::mutex mu;
    double finish = 0.0;
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        PfsClient client(cluster, r);
        if (r == 0) {
          auto fh = client.create("/f");
          client.close(*fh);
        }
        const double t0 = barrier.arrive(r);
        auto fh = group ? client.open_group("/f", kRanks) : client.open("/f");
        client.close(*fh);
        barrier.arrive(r);
        std::lock_guard<std::mutex> lk(mu);
        finish = std::max(finish, sched.now(r) - t0);
        sched.finish(r);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };
  const double individual = run(false);
  const double grouped = run(true);
  EXPECT_GT(individual / grouped, 5.0);
}

TEST(DirContention, FanoutSpreadsCreateStorm) {
  // Creates into one directory serialise on its lock; spreading the same
  // creates over many directories parallelises (given MDS headroom).
  auto run = [](int dirs) {
    constexpr std::uint32_t kRanks = 16;
    PfsConfig cfg = PfsConfig::PvfsLike(2);
    cfg.mds_op_s = 50e-6;       // MDS service itself is not the bottleneck
    cfg.mds_dir_lock_s = 300e-6;  // ...the per-directory lock is
    sim::VirtualScheduler sched(kRanks);
    PfsCluster cluster(cfg, sched);
    std::mutex mu;
    double finish = 0.0;
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        PfsClient client(cluster, r);
        if (r == 0) {
          for (int d = 0; d < dirs; ++d) client.mkdir("/d" + std::to_string(d));
        }
        for (int i = 0; i < 32; ++i) {
          const int d = (r * 32 + i) % dirs;
          auto fh = client.create("/d" + std::to_string(d) + "/f" +
                                  std::to_string(r) + "_" + std::to_string(i));
          if (fh.ok()) client.close(*fh);
        }
        std::lock_guard<std::mutex> lk(mu);
        finish = std::max(finish, client.now());
        sched.finish(r);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };
  // Note: dir-lock cost equals one MDS op per create, so with 1 directory
  // the whole storm serialises behind that lock.
  const double one = run(1);
  const double sixteen = run(16);
  EXPECT_GT(one / sixteen, 1.5);
}

TEST(OssReadahead, ClampsToObjectSize) {
  // Reading a tiny object must not charge a full flush-chunk disk read.
  sim::VirtualScheduler sched(1);
  PfsConfig cfg = PfsConfig::PvfsLike(1);
  PfsCluster cluster(cfg, sched);
  PfsClient client(cluster, 0);
  auto tiny = client.create("/tiny");
  client.write(*tiny, 0, MakePattern(0, 0, 64));
  client.fsync(*tiny);
  const double t0 = client.now();
  Bytes buf(64);
  client.read(*tiny, 0, buf);
  const double tiny_read = client.now() - t0;
  // A 4 MiB read at ~120 MB/s would be ~35 ms; a clamped read is ~ a seek.
  EXPECT_LT(tiny_read, 0.02);
  sched.finish(0);
}

}  // namespace
}  // namespace pdsi::pfs
