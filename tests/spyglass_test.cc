// Spyglass tests: result equivalence with the scan baseline on randomised
// crawls and queries, summary-based partition skipping, and partial
// rebuild accounting.
#include <gtest/gtest.h>

#include <set>

#include "pdsi/common/rng.h"
#include "pdsi/spyglass/spyglass.h"

namespace pdsi::spyglass {
namespace {

std::vector<Query> RandomQueries(Rng& rng, int n, std::uint32_t owners,
                                 std::uint32_t extensions) {
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    Query q;
    if (rng.chance(0.7)) q.owner = static_cast<std::uint32_t>(rng.below(owners));
    if (rng.chance(0.5)) {
      q.extension = static_cast<std::uint32_t>(rng.below(extensions));
    }
    if (rng.chance(0.3)) q.min_size = rng.below(1 << 20);
    if (rng.chance(0.3)) q.max_size = (1 << 18) + rng.below(1 << 24);
    if (rng.chance(0.3)) q.min_mtime = rng.uniform(0.0, 300.0 * 86400);
    out.push_back(q);
  }
  return out;
}

std::multiset<std::string> Paths(const std::vector<const FileMeta*>& v) {
  std::multiset<std::string> out;
  for (const auto* f : v) out.insert(f->path);
  return out;
}

class SpyglassProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpyglassProperty, MatchesScanBaselineExactly) {
  auto crawl = SyntheticCrawl(40000, 32, 64, 32, GetParam());
  ScanBaseline baseline(crawl);
  SpyglassIndex index(crawl, {5000});
  Rng rng(GetParam() * 31);
  for (const auto& q : RandomQueries(rng, 40, 64, 32)) {
    EXPECT_EQ(Paths(index.search(q)), Paths(baseline.search(q)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpyglassProperty, ::testing::Values(1, 2, 3, 4));

TEST(Spyglass, SummariesSkipMostPartitionsForOwnerQueries) {
  auto crawl = SyntheticCrawl(100000, 64, 128, 32, 9);
  SpyglassIndex index(crawl, {5000});
  Query q;
  q.owner = crawl[12345].owner;  // an owner that certainly exists
  index.search(q);
  // Owners are concentrated in few subtrees; most partitions are skipped.
  EXPECT_GT(index.last_skipped(), index.partition_count() / 2);
}

TEST(Spyglass, CapacitySplitsBigSubtrees) {
  auto crawl = SyntheticCrawl(30000, 2, 16, 8, 11);
  SpyglassIndex index(crawl, {4000});
  EXPECT_GE(index.partition_count(), 30000 / 4000);
  EXPECT_EQ(index.records(), 30000u);
}

TEST(Spyglass, PartialRebuildTouchesOnlyTheSubtree) {
  auto crawl = SyntheticCrawl(50000, 25, 32, 16, 13);
  SpyglassIndex index(crawl, {100000});
  const std::size_t before = index.records();
  const std::size_t rescanned = index.rebuild_partition(3, crawl);
  EXPECT_LT(rescanned, crawl.size() / 10);  // ~1/25 of the namespace
  EXPECT_EQ(index.records(), before);
  // Queries still correct after the rebuild.
  ScanBaseline baseline(crawl);
  Query q;
  q.owner = crawl[100].owner;
  EXPECT_EQ(Paths(index.search(q)), Paths(baseline.search(q)));
}

TEST(Spyglass, EmptyQueryReturnsEverything) {
  auto crawl = SyntheticCrawl(5000, 8, 16, 8, 17);
  SpyglassIndex index(crawl, {1000});
  Query q;
  EXPECT_EQ(index.search(q).size(), 5000u);
}

}  // namespace
}  // namespace pdsi::spyglass
