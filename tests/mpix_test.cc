// mpix runtime tests: barrier phasing and collective correctness under
// concurrency.
#include <gtest/gtest.h>

#include <atomic>

#include "pdsi/mpix/mpix.h"

namespace pdsi::mpix {
namespace {

TEST(Mpix, WorldRunsAllRanks) {
  std::atomic<int> count{0};
  RunWorld(8, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 8);
    ++count;
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Mpix, BarrierSeparatesPhases) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  RunWorld(8, [&](Comm& comm) {
    ++phase1;
    comm.barrier();
    if (phase1.load() != 8) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Mpix, AllreduceSum) {
  RunWorld(6, [&](Comm& comm) {
    const double s = comm.allreduce_sum(comm.rank());
    EXPECT_DOUBLE_EQ(s, 15.0);  // 0+..+5
  });
}

TEST(Mpix, MinMax) {
  RunWorld(5, [&](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_min(10.0 + comm.rank()), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(10.0 + comm.rank()), 14.0);
  });
}

TEST(Mpix, BroadcastFromEachRoot) {
  RunWorld(4, [&](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      const double v = comm.broadcast(comm.rank() * 100.0, root);
      EXPECT_DOUBLE_EQ(v, root * 100.0);
    }
  });
}

TEST(Mpix, GatherToRoot) {
  RunWorld(4, [&](Comm& comm) {
    auto v = comm.gather(comm.rank() + 1.0, 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(v.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(v[r], r + 1.0);
    } else {
      EXPECT_TRUE(v.empty());
    }
  });
}

TEST(Mpix, CollectivesRepeatAcrossGenerations) {
  RunWorld(3, [&](Comm& comm) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), 3.0);
    }
  });
}

}  // namespace
}  // namespace pdsi::mpix
