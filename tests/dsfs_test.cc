// dsfs tests: replica/locality scheduling mechanics and the Fig. 12
// ordering — naive shim > 2x slower than native; readahead recovers most;
// layout exposure reaches (near) parity.
#include <gtest/gtest.h>

#include "pdsi/dsfs/dsfs.h"

namespace pdsi::dsfs {
namespace {

TEST(Grep, CompletesAllBlocks) {
  auto p = NativeHdfs(8);
  p.blocks = 64;
  const auto r = RunGrepJob(p);
  EXPECT_EQ(r.local_tasks + r.remote_tasks, 64u);
  EXPECT_GT(r.runtime_s, 0.0);
  EXPECT_EQ(r.total_bytes, 64u * p.block_bytes);
}

TEST(Grep, LocalitySchedulerRunsMostTasksLocal) {
  auto p = NativeHdfs(16);
  p.blocks = 128;
  const auto r = RunGrepJob(p);
  EXPECT_GT(r.local_tasks, 100u);
}

TEST(Grep, BlindSchedulerMostlyRemote) {
  auto p = NaivePvfsShim(16);
  p.blocks = 128;
  const auto r = RunGrepJob(p);
  // Random (ignorant) assignment: ~replication/nodes of tasks are
  // accidentally local.
  EXPECT_LT(r.local_tasks, 50u);
}

TEST(Grep, Fig12Ordering) {
  constexpr std::uint32_t kNodes = 16;
  auto run = [&](GrepJobParams p) {
    p.blocks = 128;
    return RunGrepJob(p).runtime_s;
  };
  const double native = run(NativeHdfs(kNodes));
  const double naive = run(NaivePvfsShim(kNodes));
  const double readahead = run(ReadaheadPvfsShim(kNodes));
  const double layout = run(LayoutExposedPvfsShim(kNodes));

  // Paper: naive shim "more than twice as slowly".
  EXPECT_GT(naive / native, 2.0);
  // Readahead recovers a large chunk.
  EXPECT_LT(readahead, 0.7 * naive);
  // Layout exposure reaches (near) parity with native.
  EXPECT_LT(layout / native, 1.15);
  EXPECT_GT(layout / native, 0.85);
}

TEST(Grep, MoreReplicasImproveLocality) {
  auto one = NativeHdfs(16);
  one.replication = 1;
  one.blocks = 128;
  auto three = NativeHdfs(16);
  three.replication = 3;
  three.blocks = 128;
  const auto r1 = RunGrepJob(one);
  const auto r3 = RunGrepJob(three);
  EXPECT_GT(r3.local_tasks, r1.local_tasks);
}

TEST(Grep, Deterministic) {
  const auto a = RunGrepJob(NaivePvfsShim(8));
  const auto b = RunGrepJob(NaivePvfsShim(8));
  EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.local_tasks, b.local_tasks);
}

}  // namespace
}  // namespace pdsi::dsfs
