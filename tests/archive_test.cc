// Archive verification tests: library construction, campaign accounting
// invariants, retry behaviour, and the NERSC-calibrated outcome.
#include <gtest/gtest.h>

#include "pdsi/archive/archive.h"

namespace pdsi::archive {
namespace {

TEST(Library, BuildsAllCartridges) {
  Rng rng(1);
  auto mix = NerscMediaMix();
  auto lib = BuildLibrary(mix, rng);
  EXPECT_EQ(lib.size(), 6859u + 9155u + 7806u);
  for (const auto& t : lib) {
    EXPECT_LT(t.media_class, mix.size());
    EXPECT_GE(t.pass_failure_p, 0.0);
    EXPECT_LT(t.pass_failure_p, 1.0);
  }
}

TEST(Library, OlderMediaFailMorePerPass) {
  Rng rng(2);
  auto mix = NerscMediaMix();
  auto lib = BuildLibrary(mix, rng);
  double sum[3] = {0, 0, 0};
  int n[3] = {0, 0, 0};
  for (const auto& t : lib) {
    sum[t.media_class] += t.pass_failure_p;
    ++n[t.media_class];
  }
  // 9840A (12 yrs) per-pass failure rate above T10KA (2 yrs).
  EXPECT_GT(sum[2] / n[2], sum[0] / n[0]);
}

TEST(Verification, AccountingAddsUp) {
  Rng rng(3);
  auto mix = NerscMediaMix();
  auto lib = BuildLibrary(mix, rng);
  VerificationPolicy policy;
  const auto r = RunVerification(lib, mix, policy, rng);
  EXPECT_EQ(r.tapes, lib.size());
  EXPECT_EQ(r.appliance_suspects, r.recovered_with_retries + r.unreadable);
  EXPECT_EQ(r.passes_needed.size(), r.recovered_with_retries);
}

TEST(Verification, MatchesNerscHeadlineNumbers) {
  Rng rng(4);
  auto mix = NerscMediaMix();
  auto lib = BuildLibrary(mix, rng);
  VerificationPolicy policy;
  const auto r = RunVerification(lib, mix, policy, rng);
  // Paper: 13 of 23,820 tapes unreadable => 99.945%. Allow a band.
  EXPECT_GE(r.full_read_probability(), 0.9985);
  EXPECT_LE(r.full_read_probability(), 0.99999);
  EXPECT_GE(r.unreadable, 3u);
  EXPECT_LE(r.unreadable, 40u);
  // Worst recovered tapes took 3-5 total reads.
  std::uint32_t worst = 0;
  for (auto p : r.passes_needed) worst = std::max(worst, p);
  EXPECT_GE(worst, 3u);
  EXPECT_LE(worst, 6u);
}

TEST(Verification, MoreRetriesRecoverMore) {
  auto mix = NerscMediaMix();
  Rng rng_a(5), rng_b(5);
  auto lib = BuildLibrary(mix, rng_a);
  Rng run_a(6), run_b(6);
  VerificationPolicy one;
  one.migration_retries = 1;
  VerificationPolicy five;
  five.migration_retries = 5;
  const auto r1 = RunVerification(lib, mix, one, run_a);
  const auto r5 = RunVerification(lib, mix, five, run_b);
  EXPECT_GE(r1.unreadable, r5.unreadable);
}

TEST(Verification, PermanentDefectsDefeatAllRetries) {
  std::vector<MediaClass> mix(1);
  mix[0].count = 200;
  mix[0].permanent_defect_per_tape = 1.0;  // every tape has a defect
  mix[0].ageing_per_year = 1.0;
  Rng rng(7);
  auto lib = BuildLibrary(mix, rng);
  VerificationPolicy policy;
  policy.migration_retries = 50;
  const auto r = RunVerification(lib, mix, policy, rng);
  EXPECT_EQ(r.unreadable, 200u);
  EXPECT_EQ(r.recovered_with_retries, 0u);
}

}  // namespace
}  // namespace pdsi::archive
