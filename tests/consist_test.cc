// Tests for pdsi::consist: the model switch, the trace-driven checker on
// clean multi-client workloads recorded through the real pfs client, the
// seeded violation injector (every planted violation must be caught with
// the exact op pair named), and the lattice-monotonicity property that
// POSIX-clean traces pass every relaxed model's check.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/consist/mutate.h"
#include "pdsi/obs/obs.h"
#include "pdsi/obs/profile.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::consist {
namespace {

constexpr std::uint64_t kSlot = 64 * KiB;  // one extent-lock unit per rank
constexpr std::uint64_t kLen = 4 * KiB;    // record length within a slot

/// SplitMix64, for per-(rank, round) schedule decisions that do not
/// depend on host-thread interleaving.
std::uint64_t Mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return Mix64(Mix64(Mix64(a) ^ b) ^ c);
}

struct WorkloadSpec {
  ConsistencyModel model = ConsistencyModel::posix;
  int ranks = 3;
  int rounds = 3;
  /// All ranks write the same interval under whole-file locks (the
  /// serialized-conflict workload); otherwise each rank owns a
  /// lock-unit-aligned slot and reads rotate across the others'.
  bool contended = false;
  /// First half of the ranks only write, second half only read — gives
  /// MPI-IO traces exactly one publish per write, so DropSyncEdge has an
  /// unambiguous candidate.
  bool split_roles = false;
  /// Randomize the schedule (skip writes, pick read targets by hash)
  /// while keeping the phase discipline the model demands.
  bool randomized = false;
  std::uint64_t salt = 1;
};

/// Runs a phase-disciplined multi-client workload through the real pfs
/// client with consist-op recording on, under the model's publication
/// discipline:
///   posix   — write; barrier; read
///   session — open, write, close; barrier; open, read, close
///   commit  — write, fsync; barrier; read
///   mpiio   — write, fsync; barrier; fsync, read
/// Barriers separate the phases so writes never race reads; content is
/// distinct per (rank, round) so fingerprints attribute uniquely.
void RunWorkload(const WorkloadSpec& spec, obs::Tracer* tracer,
                 obs::Registry* reg = nullptr) {
  obs::Context ctx;
  ctx.tracer = tracer;
  ctx.registry = reg;
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(2);
  cfg.consistency = spec.model;
  cfg.record_consist_ops = true;
  if (spec.contended) cfg.locking = pfs::LockProtocol::whole_file;
  sim::VirtualScheduler sched(spec.ranks);
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  std::vector<std::size_t> ids;
  for (int r = 0; r < spec.ranks; ++r) ids.push_back(r);
  sim::VirtualBarrier barrier(sched, ids);

  const bool session = spec.model == ConsistencyModel::session;
  const bool commit = spec.model == ConsistencyModel::commit;
  const bool mpiio = spec.model == ConsistencyModel::mpiio;
  const int writers = spec.split_roles ? (spec.ranks + 1) / 2 : spec.ranks;

  std::vector<std::thread> threads;
  for (int r = 0; r < spec.ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      const bool is_writer = r < writers;
      const bool is_reader = !spec.split_roles || r >= writers;
      pfs::FileHandle fh = -1;
      if (r == 0) {
        fh = *client.create("/shared");
        if (session) client.close(fh);
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        if (!session) fh = *client.open("/shared");
      }
      for (int k = 0; k < spec.rounds; ++k) {
        const bool write_this_round =
            is_writer &&
            (!spec.randomized || Hash3(spec.salt, r, 2 * k) % 4 != 0);
        if (write_this_round) {
          if (session) fh = *client.open("/shared");
          const std::uint64_t off =
              spec.contended ? 0 : static_cast<std::uint64_t>(r) * kSlot;
          const auto tag = static_cast<std::uint32_t>(
              spec.salt * 1000003 + static_cast<std::uint64_t>(k) * 131 + r);
          EXPECT_TRUE(client.write(fh, off, MakePattern(tag, off, kLen)).ok());
          if (session) {
            EXPECT_TRUE(client.close(fh).ok());
          } else if (commit || mpiio) {
            EXPECT_TRUE(client.fsync(fh).ok());
          }
        }
        barrier.arrive(r);
        const bool read_this_round =
            is_reader &&
            (!spec.randomized || Hash3(spec.salt, r, 2 * k + 1) % 8 != 0);
        if (read_this_round) {
          const int target =
              spec.contended
                  ? 0
                  : static_cast<int>(
                        (spec.randomized
                             ? Hash3(spec.salt, 977 + r, k)
                             : static_cast<std::uint64_t>(r) + 1 + k) %
                        writers);
          if (session) fh = *client.open("/shared");
          if (mpiio) {
            EXPECT_TRUE(client.fsync(fh).ok());
          }
          Bytes out(kLen);
          auto n = client.read(
              fh, static_cast<std::uint64_t>(target) * kSlot, out);
          EXPECT_TRUE(n.ok());
          if (session) client.close(fh);
        }
        barrier.arrive(r);
      }
      if (!session && fh >= 0) client.close(fh);
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
}

std::vector<obs::AnalysisEvent> RecordWorkload(const WorkloadSpec& spec) {
  obs::Tracer tracer;
  RunWorkload(spec, &tracer);
  return obs::CollectEvents(tracer);
}

/// Indices of consist write/read op spans in `events`.
void OpIndices(const std::vector<obs::AnalysisEvent>& events,
               std::vector<std::size_t>* writes,
               std::vector<std::size_t>* reads) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.cat != "consist" || !e.is_span()) continue;
    if (e.name == "write") writes->push_back(i);
    if (e.name == "read") reads->push_back(i);
  }
}

TEST(ConsistModel, NamesRoundTrip) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    ConsistencyModel back;
    ASSERT_TRUE(ParseConsistencyModel(ConsistencyModelName(m), &back));
    EXPECT_EQ(back, m);
  }
  ConsistencyModel out;
  EXPECT_FALSE(ParseConsistencyModel("bogus", &out));
}

TEST(ConsistModel, RelaxationOrderIsStrict) {
  for (int i = 1; i < kNumConsistencyModels; ++i) {
    EXPECT_LT(RelaxationRank(kAllConsistencyModels[i - 1]),
              RelaxationRank(kAllConsistencyModels[i]));
  }
}

TEST(ConsistChecker, ZeroFingerprintMatchesHashOfZeros) {
  Bytes zeros(kLen, 0);
  EXPECT_EQ(ZeroFingerprint(kLen), HashBytes(zeros) & 0xffffffffULL);
  EXPECT_EQ(ZeroFingerprint(0), HashBytes(Bytes{}) & 0xffffffffULL);
}

TEST(ConsistChecker, CleanTracesPassTheirModel) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    WorkloadSpec spec;
    spec.model = m;
    spec.ranks = 4;
    spec.rounds = 3;
    auto events = RecordWorkload(spec);
    auto res = CheckConsistency(events, m);
    EXPECT_TRUE(res.clean)
        << ConsistencyModelName(m) << ": " << FormatViolation(res.first, events);
    EXPECT_EQ(res.stats.writes, 12u) << ConsistencyModelName(m);
    EXPECT_EQ(res.stats.reads, 12u) << ConsistencyModelName(m);
    EXPECT_GT(res.stats.content_checks, 0u) << ConsistencyModelName(m);
  }
}

TEST(ConsistChecker, ContendedPosixSerializedByLocksIsClean) {
  WorkloadSpec spec;
  spec.contended = true;
  spec.ranks = 3;
  spec.rounds = 2;
  auto events = RecordWorkload(spec);
  auto res = CheckConsistency(events, ConsistencyModel::posix);
  EXPECT_TRUE(res.clean) << FormatViolation(res.first, events);
  // Cross-client byte-overlapping pairs were examined — the serialization
  // check actually ran.
  EXPECT_GT(res.stats.conflict_pairs, 0u);
}

// The lattice-monotonicity pin: a trace recorded (and clean) under POSIX
// passes the session, commit, and MPI-IO checks too — relaxed models
// require strictly less.
TEST(ConsistChecker, PosixCleanTracesPassEveryRelaxedModel) {
  for (bool contended : {false, true}) {
    WorkloadSpec spec;
    spec.contended = contended;
    auto events = RecordWorkload(spec);
    for (ConsistencyModel m : kAllConsistencyModels) {
      auto res = CheckConsistency(events, m);
      EXPECT_TRUE(res.clean)
          << "contended=" << contended << " model=" << ConsistencyModelName(m)
          << ": " << FormatViolation(res.first, events);
    }
  }
}

// Required-visibility shrinks down the lattice: whenever a relaxed model
// obliges a read to see a write, POSIX does too; and whenever MPI-IO
// does, commit does.
TEST(ConsistChecker, RequiredVisibleShrinksTowardPosix) {
  for (ConsistencyModel rec : kAllConsistencyModels) {
    WorkloadSpec spec;
    spec.model = rec;
    auto events = RecordWorkload(spec);
    std::vector<std::size_t> writes, reads;
    OpIndices(events, &writes, &reads);
    ASSERT_FALSE(writes.empty());
    ASSERT_FALSE(reads.empty());
    bool any_required = false;
    for (std::size_t w : writes) {
      for (std::size_t r : reads) {
        for (ConsistencyModel m :
             {ConsistencyModel::session, ConsistencyModel::commit,
              ConsistencyModel::mpiio}) {
          if (RequiredVisible(events, m, w, r)) {
            any_required = true;
            EXPECT_TRUE(RequiredVisible(events, ConsistencyModel::posix, w, r))
                << "recorded=" << ConsistencyModelName(rec)
                << " model=" << ConsistencyModelName(m) << " w=" << w
                << " r=" << r;
          }
        }
        if (RequiredVisible(events, ConsistencyModel::mpiio, w, r)) {
          EXPECT_TRUE(RequiredVisible(events, ConsistencyModel::commit, w, r))
              << "recorded=" << ConsistencyModelName(rec) << " w=" << w
              << " r=" << r;
        }
      }
    }
    EXPECT_TRUE(any_required) << ConsistencyModelName(rec);
  }
}

// Randomized schedules (seeded, deterministic): whatever the hash picks,
// a workload that follows the model's publication discipline is clean —
// and POSIX-recorded ones are clean under all four models.
TEST(ConsistProperty, RandomizedSchedulesAreClean) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    for (std::uint64_t seed : {11u, 29u, 63u}) {
      WorkloadSpec spec;
      spec.model = m;
      spec.ranks = 4;
      spec.rounds = 4;
      spec.randomized = true;
      spec.salt = seed;
      auto events = RecordWorkload(spec);
      auto res = CheckConsistency(events, m);
      EXPECT_TRUE(res.clean)
          << ConsistencyModelName(m) << " seed=" << seed << ": "
          << FormatViolation(res.first, events);
      if (m == ConsistencyModel::posix) {
        for (ConsistencyModel weaker : kAllConsistencyModels) {
          auto wres = CheckConsistency(events, weaker);
          EXPECT_TRUE(wres.clean)
              << "posix seed=" << seed << " under "
              << ConsistencyModelName(weaker) << ": "
              << FormatViolation(wres.first, events);
        }
      }
    }
  }
}

// -- Seeded violation injection: every planted violation must be caught,
// with the checker naming exactly the planted op pair. ------------------

void ExpectCaught(const std::vector<obs::AnalysisEvent>& events,
                  ConsistencyModel model, const PlantedViolation& p,
                  const char* label, std::uint64_t seed) {
  ASSERT_TRUE(p.applied) << label << " seed=" << seed;
  auto res = CheckConsistency(events, model);
  ASSERT_FALSE(res.clean) << label << " seed=" << seed << " (" << p.what
                          << ") was not caught";
  EXPECT_EQ(res.first.kind, p.kind)
      << label << " seed=" << seed << ": " << FormatViolation(res.first, events);
  EXPECT_EQ(res.first.op_a, p.op_a)
      << label << " seed=" << seed << ": " << FormatViolation(res.first, events);
  EXPECT_EQ(res.first.op_b, p.op_b)
      << label << " seed=" << seed << ": " << FormatViolation(res.first, events);
}

TEST(ConsistMutate, ReorderWritePastCloseCaught) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::session;
  spec.ranks = 4;
  spec.rounds = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto events = RecordWorkload(spec);
    auto p = ReorderWritePastClose(&events, seed);
    ExpectCaught(events, ConsistencyModel::session, p, "reorder", seed);
  }
}

TEST(ConsistMutate, DropSyncEdgeCaughtUnderCommit) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::commit;
  spec.ranks = 4;
  spec.rounds = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto events = RecordWorkload(spec);
    auto p = DropSyncEdge(&events, seed);
    ExpectCaught(events, ConsistencyModel::commit, p, "drop-sync", seed);
  }
}

TEST(ConsistMutate, DropSyncEdgeCaughtUnderMpiio) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::mpiio;
  spec.ranks = 4;
  spec.rounds = 3;
  spec.split_roles = true;  // one publish per write: unambiguous candidates
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto events = RecordWorkload(spec);
    auto p = DropSyncEdge(&events, seed);
    ExpectCaught(events, ConsistencyModel::mpiio, p, "drop-sync-mpiio", seed);
  }
}

TEST(ConsistMutate, SpliceStaleReadCaughtUnderEveryModel) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    WorkloadSpec spec;
    spec.model = m;
    spec.ranks = 4;
    spec.rounds = 3;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      auto events = RecordWorkload(spec);
      auto p = SpliceStaleRead(&events, m, seed);
      ExpectCaught(events, m, p, ConsistencyModelName(m).data(), seed);
    }
  }
}

TEST(ConsistMutate, OverlapConflictingWritesCaught) {
  WorkloadSpec spec;
  spec.contended = true;
  spec.ranks = 3;
  spec.rounds = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto events = RecordWorkload(spec);
    auto p = OverlapConflictingWrites(&events, seed);
    ExpectCaught(events, ConsistencyModel::posix, p, "overlap", seed);
  }
}

TEST(ConsistMutate, InapplicableMutatorsReportUnapplied) {
  // A POSIX trace records no close-published writes' sync edges to drop;
  // DropSyncEdge must decline rather than corrupt the trace.
  WorkloadSpec spec;
  auto events = RecordWorkload(spec);
  const auto size_before = events.size();
  auto p = DropSyncEdge(&events, 1);
  EXPECT_FALSE(p.applied);
  EXPECT_EQ(events.size(), size_before);
  auto res = CheckConsistency(events, ConsistencyModel::posix);
  EXPECT_TRUE(res.clean);
}

// The checker consumes traces parsed back from the compact text format
// identically to in-process snapshots: same verdict, same stats, and a
// mutation planted in the parsed copy is still pinned to the right pair.
TEST(ConsistChecker, CompactTraceRoundTrip) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::commit;
  spec.ranks = 4;
  spec.rounds = 3;
  obs::Tracer tracer;
  RunWorkload(spec, &tracer);
  auto direct = obs::CollectEvents(tracer);

  std::ostringstream os;
  tracer.write_compact(os);
  std::istringstream is(os.str());
  std::vector<obs::AnalysisEvent> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParseCompactTrace(is, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), direct.size());

  auto r1 = CheckConsistency(direct, ConsistencyModel::commit);
  auto r2 = CheckConsistency(parsed, ConsistencyModel::commit);
  EXPECT_TRUE(r1.clean) << FormatViolation(r1.first, direct);
  EXPECT_TRUE(r2.clean) << FormatViolation(r2.first, parsed);
  EXPECT_EQ(r1.stats.writes, r2.stats.writes);
  EXPECT_EQ(r1.stats.reads, r2.stats.reads);
  EXPECT_EQ(r1.stats.content_checks, r2.stats.content_checks);
  EXPECT_EQ(r1.stats.composite_skips, r2.stats.composite_skips);

  auto p = DropSyncEdge(&parsed, 2);
  ExpectCaught(parsed, ConsistencyModel::commit, p, "parsed-drop-sync", 2);
}

TEST(ConsistChecker, FormatViolationNamesBothOps) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::session;
  auto events = RecordWorkload(spec);
  auto p = ReorderWritePastClose(&events, 0);
  ASSERT_TRUE(p.applied);
  auto res = CheckConsistency(events, ConsistencyModel::session);
  ASSERT_FALSE(res.clean);
  const std::string line = FormatViolation(res.first, events);
  EXPECT_NE(line.find("unpublished_read"), std::string::npos) << line;
  EXPECT_NE(line.find("write"), std::string::npos) << line;
  EXPECT_NE(line.find("read"), std::string::npos) << line;
}

// Verdicts are deterministic: the same workload re-recorded and the same
// mutation seed always name the same first violation.
TEST(ConsistChecker, DeterministicFirstViolation) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::session;
  spec.ranks = 4;
  spec.rounds = 3;
  auto run = [&] {
    auto events = RecordWorkload(spec);
    auto p = ReorderWritePastClose(&events, 5);
    EXPECT_TRUE(p.applied);
    auto res = CheckConsistency(events, ConsistencyModel::session);
    EXPECT_FALSE(res.clean);
    return std::make_tuple(res.first.kind, res.first.op_a, res.first.op_b,
                           events.size());
  };
  EXPECT_EQ(run(), run());
}

// The relaxed-model client really skips the lock path and counts it.
TEST(ConsistCounters, RelaxedModelsSkipLockCharges) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    WorkloadSpec spec;
    spec.model = m;
    obs::Tracer tracer;
    obs::Registry reg;
    RunWorkload(spec, &tracer, &reg);
    const auto skips = reg.counter("consist.lock_skips").value();
    const auto ops = reg.counter("consist.ops").value();
    EXPECT_GT(ops, 0u) << ConsistencyModelName(m);
    if (m == ConsistencyModel::posix) {
      EXPECT_EQ(skips, 0u);
    } else {
      EXPECT_EQ(skips, 9u) << ConsistencyModelName(m);  // 3 ranks x 3 rounds
      EXPECT_EQ(reg.counter("pfs.lock_conflicts").value(), 0u)
          << ConsistencyModelName(m);
    }
    if (m == ConsistencyModel::session || m == ConsistencyModel::commit ||
        m == ConsistencyModel::mpiio) {
      EXPECT_GT(reg.counter("mds.publishes").value(), 0u)
          << ConsistencyModelName(m);
    }
  }
}

}  // namespace
}  // namespace pdsi::consist
