// PLFS small-file mode tests: name-log serialisation, put/get/list/remove
// semantics, multi-writer merge, overwrite resolution, and the metadata
// reduction it exists for.
#include <gtest/gtest.h>

#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/plfs/smallfile.h"

namespace pdsi::plfs {
namespace {

TEST(NameRecords, SerializeRoundTrip) {
  std::vector<NameRecord> records;
  records.push_back({"alpha", 0, 100, 1});
  records.push_back({"beta.with.long.name", 100, 0, 2});
  records.push_back({"gone", 0, NameRecord::kTombstone, 3});
  const Bytes raw = SerializeNameRecords(records);
  const auto back = DeserializeNameRecords(raw);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "alpha");
  EXPECT_EQ(back[1].offset, 100u);
  EXPECT_EQ(back[2].length, NameRecord::kTombstone);
}

TEST(NameRecords, TruncationDetected) {
  std::vector<NameRecord> records{{"abc", 0, 10, 1}};
  Bytes raw = SerializeNameRecords(records);
  raw.pop_back();
  EXPECT_THROW(DeserializeNameRecords(raw), std::invalid_argument);
}

TEST(SmallFile, PutGetRoundTrip) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  {
    auto w = SmallFileWriter::Open(*backend, "/pack", 0, clock);
    ASSERT_TRUE(w.ok());
    for (int i = 0; i < 100; ++i) {
      const auto data = MakePattern(0, i * 1000, 64 + i);
      ASSERT_TRUE((*w)->put("f" + std::to_string(i), data).ok());
    }
    ASSERT_TRUE((*w)->close().ok());
  }
  auto r = SmallFileReader::Open(*backend, "/pack");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->list().size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto got = (*r)->get("f" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), 64u + i);
    EXPECT_EQ(FindPatternMismatch(0, i * 1000, *got), kNoMismatch);
  }
  EXPECT_EQ((*r)->get("missing").error(), Errc::not_found);
}

TEST(SmallFile, OnlyTwoBackendFilesPerWriter) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  {
    auto w = SmallFileWriter::Open(*backend, "/pack", 7, clock);
    Bytes tiny(10);
    for (int i = 0; i < 1000; ++i) (*w)->put("n" + std::to_string(i), tiny);
    (*w)->close();
  }
  auto names = backend->readdir("/pack");
  ASSERT_TRUE(names.ok());
  // marker + sfdata.7 + sfnames.7
  EXPECT_EQ(names->size(), 3u);
}

TEST(SmallFile, MultipleWritersMerge) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  std::vector<std::thread> threads;
  for (std::uint32_t wid = 0; wid < 4; ++wid) {
    threads.emplace_back([&, wid] {
      auto w = SmallFileWriter::Open(*backend, "/pack", wid, clock);
      ASSERT_TRUE(w.ok());
      for (int i = 0; i < 50; ++i) {
        const std::string name =
            "w" + std::to_string(wid) + "_" + std::to_string(i);
        (*w)->put(name, MakePattern(wid, i, 32));
      }
      (*w)->close();
    });
  }
  for (auto& t : threads) t.join();

  auto r = SmallFileReader::Open(*backend, "/pack");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->list().size(), 200u);
  auto got = (*r)->get("w2_49");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(FindPatternMismatch(2, 49, *got), kNoMismatch);
}

TEST(SmallFile, OverwriteNewestWins) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  auto w0 = SmallFileWriter::Open(*backend, "/pack", 0, clock);
  auto w1 = SmallFileWriter::Open(*backend, "/pack", 1, clock);
  (*w0)->put("shared", MakePattern(0, 0, 50));
  (*w1)->put("shared", MakePattern(1, 0, 70));  // later sequence
  (*w0)->close();
  (*w1)->close();
  auto r = SmallFileReader::Open(*backend, "/pack");
  auto got = (*r)->get("shared");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 70u);
  EXPECT_EQ(FindPatternMismatch(1, 0, *got), kNoMismatch);
}

TEST(SmallFile, RemoveTombstones) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  {
    auto w = SmallFileWriter::Open(*backend, "/pack", 0, clock);
    (*w)->put("keep", MakePattern(0, 0, 10));
    (*w)->put("drop", MakePattern(0, 0, 10));
    (*w)->remove("drop");
    (*w)->close();
  }
  auto r = SmallFileReader::Open(*backend, "/pack");
  EXPECT_EQ((*r)->list().size(), 1u);
  EXPECT_TRUE((*r)->get("keep").ok());
  EXPECT_EQ((*r)->get("drop").error(), Errc::not_found);
  EXPECT_EQ((*r)->size("drop").error(), Errc::not_found);
}

TEST(SmallFile, SyncMakesNamesVisible) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  auto w = SmallFileWriter::Open(*backend, "/pack", 0, clock);
  (*w)->put("early", MakePattern(0, 0, 16));
  ASSERT_TRUE((*w)->sync().ok());
  auto r = SmallFileReader::Open(*backend, "/pack");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->get("early").ok());
  (*w)->close();
}

TEST(SmallFile, RejectsBadNames) {
  auto backend = MakeMemBackend();
  WriteClock clock{1};
  auto w = SmallFileWriter::Open(*backend, "/pack", 0, clock);
  Bytes d(4);
  EXPECT_EQ((*w)->put("", d).error(), Errc::invalid);
  EXPECT_EQ((*w)->put("a/b", d).error(), Errc::invalid);
  (*w)->close();
}

TEST(SmallFile, NotAContainer) {
  auto backend = MakeMemBackend();
  backend->mkdir("/plain");
  EXPECT_EQ(SmallFileReader::Open(*backend, "/plain").error(), Errc::invalid);
  EXPECT_FALSE(*IsSmallFileContainer(*backend, "/plain"));
}

}  // namespace
}  // namespace pdsi::plfs
