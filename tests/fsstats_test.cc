// fsstats tests: CDF invariants, the published shape properties (small
// median, bytes concentrated in huge files), and real-directory surveys.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pdsi/common/units.h"
#include "pdsi/fsstats/fsstats.h"

namespace pdsi::fsstats {
namespace {

TEST(Population, GeneratesRequestedCount) {
  Rng rng(3);
  PopulationParams p;
  p.file_count = 5000;
  const Survey s = GeneratePopulation(p, rng);
  EXPECT_EQ(s.file_count(), 5000u);
  EXPECT_GT(s.total_bytes(), 0u);
}

TEST(Population, MedianNearLognormalMedian) {
  Rng rng(5);
  PopulationParams p;
  p.file_count = 50000;
  p.tail_fraction = 0.0;
  const Survey s = GeneratePopulation(p, rng);
  auto cdf = s.size_cdf();
  // Median of the lognormal body is exp(mu) = 32 KiB.
  const double below_med = s.fraction_below(32 * KiB);
  EXPECT_NEAR(below_med, 0.5, 0.02);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Population, BytesLiveInTheTail) {
  // The published HEC finding: most files are small, most bytes are in
  // a few huge files.
  Rng rng(7);
  PopulationParams p;
  p.file_count = 80000;
  const Survey s = GeneratePopulation(p, rng);
  // >80% of files below 1 MiB...
  EXPECT_GT(s.fraction_below(1 * MiB), 0.7);
  // ...but files below 1 MiB hold a small fraction of total bytes.
  const auto bytes_cdf = s.bytes_by_size_cdf();
  EXPECT_LT(CdfAt(bytes_cdf, static_cast<double>(1 * MiB)), 0.25);
}

TEST(Population, DirectoriesFollowMeanOccupancy) {
  Rng rng(9);
  PopulationParams p;
  p.file_count = 50000;
  p.mean_dir_files = 32.0;
  const Survey s = GeneratePopulation(p, rng);
  std::uint32_t max_dir = 0;
  for (const auto& f : s.files) max_dir = std::max(max_dir, f.directory);
  const double mean = static_cast<double>(s.file_count()) / (max_dir + 1);
  EXPECT_NEAR(mean, 32.0, 6.0);
}

TEST(Fig3, ElevenDistinctPopulations) {
  auto pops = Fig3Populations();
  EXPECT_EQ(pops.size(), 11u);
  // Shapes genuinely differ: medians span more than two decades.
  double lo = 1e18, hi = 0;
  for (const auto& p : pops) {
    lo = std::min(lo, p.lognormal_mu);
    hi = std::max(hi, p.lognormal_mu);
  }
  EXPECT_GT(hi - lo, std::log(100.0));
}

TEST(SurveyDirectory, CountsRealFiles) {
  namespace fs = std::filesystem;
  const auto root = fs::temp_directory_path() / "fsstats_test";
  fs::remove_all(root);
  fs::create_directories(root / "sub");
  auto touch = [&](const fs::path& p, std::size_t size) {
    std::ofstream f(p);
    f << std::string(size, 'x');
  };
  touch(root / "a", 100);
  touch(root / "b", 2000);
  touch(root / "sub" / "c", 300);
  const Survey s = SurveyDirectory(root.string());
  EXPECT_EQ(s.file_count(), 3u);
  EXPECT_EQ(s.total_bytes(), 2400u);
  EXPECT_DOUBLE_EQ(s.fraction_below(500), 2.0 / 3.0);
  fs::remove_all(root);
}

}  // namespace
}  // namespace pdsi::fsstats
