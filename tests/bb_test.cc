// Tests for the pdsi::bb burst-buffer tier: watermark backpressure,
// FIFO drain ordering, durability semantics (including failure-during-
// drain in the checkpoint simulator), clean-data eviction, the PLFS
// staging backend, and the two acceptance numbers the ext12 bench
// reports (absorb speedup over direct-to-PFS, utilization uplift vs
// drain overlap). Everything runs on virtual time and is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "pdsi/bb/bb_backend.h"
#include "pdsi/bb/burst_buffer.h"
#include "pdsi/bb/drain_target.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/plfs.h"
#include "pdsi/storage/device_catalog.h"

namespace pdsi {
namespace {

using bb::BbParams;
using bb::BurstBuffer;
using bb::FixedRateDrainTarget;

BbParams FastDevice(std::uint64_t capacity) {
  BbParams p;
  p.ssd = storage::FlashDevice("fusionio-iodrive-duo");
  p.ssd.capacity_bytes = capacity;
  return p;
}

// -- Core: absorb + background drain ---------------------------------------

TEST(BurstBuffer, AbsorbsAtFlashSpeedAndDrainsInBackground) {
  BbParams p = FastDevice(512 * MiB);
  FixedRateDrainTarget pfs(100e6);  // 100 MB/s backing store
  BurstBuffer buf(p, pfs);

  const std::uint64_t total = 128 * MiB;
  double t = 0.0;
  for (std::uint64_t off = 0; off < total; off += MiB) {
    t = buf.write(1, off, MiB, t);
  }
  const double absorb_bw = static_cast<double>(total) / t;
  EXPECT_GT(absorb_bw, 400e6);  // near the device's 690 MB/s rating
  EXPECT_EQ(buf.stats().ingest_stalls, 0u);

  // Drains proceed in the background and finish around total/100MB/s.
  EXPECT_GT(buf.undrained_bytes(), 0u);
  const double durable_at = buf.flush(t);
  EXPECT_EQ(buf.undrained_bytes(), 0u);
  EXPECT_EQ(buf.stats().bytes_drained, total);
  EXPECT_NEAR(durable_at, static_cast<double>(total) / 100e6, 0.5);
  EXPECT_GT(durable_at, t);  // the PFS, not the flash, is the bottleneck
}

TEST(BurstBuffer, RejectsWritesLargerThanTheDevice) {
  BbParams p = FastDevice(64 * MiB);
  FixedRateDrainTarget pfs(100e6);
  BurstBuffer buf(p, pfs);
  EXPECT_THROW(buf.write(1, 0, 65 * MiB, 0.0), std::invalid_argument);
  BbParams bad = FastDevice(64 * MiB);
  bad.high_watermark = 0.2;
  bad.low_watermark = 0.5;  // inverted hysteresis
  EXPECT_THROW(BurstBuffer(bad, pfs), std::invalid_argument);
}

// -- Backpressure -----------------------------------------------------------

// Exact-boundary regression for the watermark hysteresis documented in
// burst_buffer.h: backpressure engages when un-drained bytes reach the
// high mark exactly (>=), and releases only once they reach the low mark
// exactly (<=) — not one drain op earlier or later.
TEST(BurstBuffer, WatermarkHysteresisBoundariesAreInclusive) {
  BbParams p = FastDevice(64 * MiB);
  p.high_watermark = 0.50;  // 32 MiB exactly
  p.low_watermark = 0.25;   // 16 MiB exactly
  p.drain_unit = 16 * MiB;
  FixedRateDrainTarget slow_pfs(1e6);  // drains take ~17 s; absorbs take ms
  BurstBuffer buf(p, slow_pfs);

  const std::uint64_t high = 32 * MiB, low = 16 * MiB;
  // Two 16 MiB writes land un-drained bytes exactly on the high mark
  // without crossing it mid-write (the watermark check precedes absorb).
  double t = buf.write(1, 0, 16 * MiB, 0.0);
  t = buf.write(1, 16 * MiB, 16 * MiB, t);
  ASSERT_EQ(buf.undrained_bytes(), high);
  ASSERT_EQ(buf.stats().ingest_stalls, 0u);

  // undrained == high exactly: a further write must stall (engage at >=,
  // not >). The stall drains 16 MiB-unit ops until undrained == low
  // exactly, then resumes (release at <= low, not < low) — so afterwards
  // exactly low + len bytes are un-drained. Had release required < low,
  // a second drain op would have completed first and left only `len`.
  const std::uint64_t len = 1024;
  const double t2 = buf.write(1, high, len, t);
  EXPECT_EQ(buf.stats().ingest_stalls, 1u);
  EXPECT_GT(buf.stats().stall_seconds, 1.0);  // waited on a ~17 s drain op
  EXPECT_GT(t2, t + 1.0);
  EXPECT_EQ(buf.undrained_bytes(), low + len);
}

TEST(BurstBuffer, IngestStallsAtHighWatermarkAndResumesAtLow) {
  BbParams p = FastDevice(64 * MiB);
  p.high_watermark = 0.50;
  p.low_watermark = 0.25;
  FixedRateDrainTarget slow_pfs(10e6);  // drain far slower than absorb
  BurstBuffer buf(p, slow_pfs);

  double t = 0.0;
  double slowest_write = 0.0;
  for (std::uint64_t off = 0; off < 48 * MiB; off += MiB) {
    const double start = t;
    t = buf.write(1, off, MiB, t);
    slowest_write = std::max(slowest_write, t - start);
  }
  ASSERT_GE(buf.stats().ingest_stalls, 1u);
  EXPECT_GT(buf.stats().stall_seconds, 0.5);
  // Hysteresis: the stalled writes resumed only once drains pulled the
  // backlog to the low watermark, so it now sits at/below low + one write.
  EXPECT_LE(buf.undrained_bytes(),
            static_cast<std::uint64_t>(p.low_watermark * 64 * MiB) + MiB);
  // A stalled write is served at drain speed: it waits out on the order of
  // (high-low)*capacity / drain_bw, far above any absorb time.
  EXPECT_GT(slowest_write, 0.1);

  // Identical ingest against a drain faster than absorb never stalls.
  BbParams q = FastDevice(64 * MiB);
  q.high_watermark = 0.50;
  q.low_watermark = 0.25;
  FixedRateDrainTarget fast_pfs(2000e6);
  BurstBuffer unstalled(q, fast_pfs);
  double u = 0.0;
  for (std::uint64_t off = 0; off < 48 * MiB; off += MiB) {
    u = unstalled.write(1, off, MiB, u);
  }
  EXPECT_EQ(unstalled.stats().ingest_stalls, 0u);
  EXPECT_EQ(unstalled.stats().stall_seconds, 0.0);
}

// -- Drain ordering ---------------------------------------------------------

TEST(BurstBuffer, DrainsInFifoWriteOrderWithCoalescing) {
  BbParams p = FastDevice(256 * MiB);
  p.drain_unit = 16 * MiB;
  FixedRateDrainTarget pfs(50e6);
  BurstBuffer buf(p, pfs);

  struct Sunk {
    std::uint64_t file, off, len;
  };
  std::vector<Sunk> sunk;
  buf.set_drain_sink([&](std::uint64_t f, std::uint64_t off, std::uint64_t len) {
    sunk.push_back({f, off, len});
  });

  // Shuffled offsets: FIFO order is write order, not offset order.
  const std::vector<std::uint64_t> chunks = {5, 0, 3, 1, 4, 2, 6, 7};
  double t = 0.0;
  for (std::uint64_t c : chunks) t = buf.write(1, c * MiB, MiB, t);
  buf.flush(t);

  ASSERT_FALSE(sunk.empty());
  EXPECT_EQ(sunk.front().off, 5 * MiB);  // first write drains first
  std::uint64_t total = 0;
  for (const auto& s : sunk) total += s.len;
  EXPECT_EQ(total, chunks.size() * MiB);

  // Contiguous writes coalesce into fewer, larger drain ops.
  BurstBuffer seq(p, pfs);
  std::uint64_t sink_calls = 0, sink_bytes = 0;
  seq.set_drain_sink([&](std::uint64_t, std::uint64_t, std::uint64_t len) {
    ++sink_calls;
    sink_bytes += len;
  });
  double s = 0.0;
  const int kChunks = 64;
  for (int c = 0; c < kChunks; ++c) s = seq.write(1, c * MiB, MiB, s);
  seq.flush(s);
  EXPECT_EQ(sink_bytes, static_cast<std::uint64_t>(kChunks) * MiB);
  EXPECT_LT(sink_calls, static_cast<std::uint64_t>(kChunks) / 2);
  EXPECT_EQ(seq.stats().drain_ops, sink_calls);
}

// -- Eviction ---------------------------------------------------------------

TEST(BurstBuffer, EvictsOnlyCleanDataUnderCapacityPressure) {
  BbParams p = FastDevice(64 * MiB);
  p.high_watermark = 0.95;  // keep watermark backpressure out of the way
  p.low_watermark = 0.20;
  FixedRateDrainTarget pfs(300e6);
  BurstBuffer buf(p, pfs);

  std::vector<std::uint64_t> evicted_files;
  buf.set_evict_hook([&](std::uint64_t f, std::uint64_t, std::uint64_t) {
    evicted_files.push_back(f);
  });

  double t = 0.0;
  for (std::uint64_t off = 0; off < 48 * MiB; off += MiB) t = buf.write(1, off, MiB, t);
  t = buf.flush(t);  // file 1 fully drained: clean
  ASSERT_EQ(buf.dirty_bytes(), 0u);
  ASSERT_EQ(buf.stats().bytes_evicted, 0u);

  for (std::uint64_t off = 0; off < 48 * MiB; off += MiB) t = buf.write(2, off, MiB, t);
  // File 2 needed more space than was free: clean file-1 data went.
  EXPECT_GE(buf.stats().bytes_evicted, 32 * MiB);
  EXPECT_LE(buf.resident_bytes(), buf.capacity_bytes());
  ASSERT_FALSE(evicted_files.empty());
  EXPECT_EQ(evicted_files.front(), 1u);  // oldest clean data first

  // Evicted ranges are gone; recently staged file-2 data is resident.
  bool hit = true;
  buf.read(1, 0, MiB, t, &hit);
  EXPECT_FALSE(hit);
  buf.read(2, 47 * MiB, MiB, t, &hit);
  EXPECT_TRUE(hit);

  // Disabling eviction turns the same pressure into a hard stop once
  // nothing clean may be dropped and no drain can free space.
  BbParams ne = FastDevice(32 * MiB);
  ne.evict_clean = false;
  FixedRateDrainTarget pfs2(300e6);
  BurstBuffer strict(ne, pfs2);
  double u = 0.0;
  for (std::uint64_t off = 0; off < 30 * MiB; off += MiB) u = strict.write(1, off, MiB, u);
  u = strict.flush(u);  // all clean, but not evictable
  EXPECT_THROW(strict.write(2, 0, 8 * MiB, u), std::logic_error);
}

// -- PLFS staging backend ---------------------------------------------------

Bytes Pattern(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    b[i] = static_cast<std::uint8_t>(x >> 56);
  }
  return b;
}

TEST(BbBackend, StagesWritesAndDrainsToInnerOnFsync) {
  BbParams p = FastDevice(256 * MiB);
  FixedRateDrainTarget pfs(200e6);
  BurstBuffer buf(p, pfs);
  auto inner = plfs::MakeMemBackend();
  plfs::Backend* inner_raw = inner.get();
  auto backend = plfs::MakeBbBackend(buf, std::move(inner));

  auto h = backend->create("/ckpt");
  ASSERT_TRUE(h.ok());
  const Bytes data = Pattern(7, 8 * MiB);
  ASSERT_TRUE(backend->write(*h, 0, data).ok());
  ASSERT_TRUE(backend->write(*h, 12 * MiB, data).ok());  // leave a hole

  // Staged-first read returns the freshly written bytes immediately.
  Bytes back(8 * MiB);
  auto n = backend->read(*h, 12 * MiB, back);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, back.size());
  EXPECT_EQ(back, data);

  // The hole reads as zeros.
  Bytes hole(MiB);
  auto hn = backend->read(*h, 9 * MiB, hole);
  ASSERT_TRUE(hn.ok());
  EXPECT_TRUE(std::all_of(hole.begin(), hole.end(),
                          [](std::uint8_t b) { return b == 0; }));

  auto sz = backend->size(*h);
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, 20 * MiB);

  // fsync is the durability barrier: afterwards the inner backend holds
  // every byte.
  ASSERT_TRUE(backend->fsync(*h).ok());
  EXPECT_EQ(buf.undrained_bytes(), 0u);
  auto ih = inner_raw->open("/ckpt");
  ASSERT_TRUE(ih.ok());
  Bytes durable(8 * MiB);
  auto dn = inner_raw->read(*ih, 12 * MiB, durable);
  ASSERT_TRUE(dn.ok());
  ASSERT_EQ(*dn, durable.size());
  EXPECT_EQ(durable, data);
  ASSERT_TRUE(backend->close(*h).ok());
}

TEST(BbBackend, ReadsFallThroughAfterEviction) {
  // Tiny staging device: writing B evicts A's drained bytes; reads of A
  // must then come from the inner store, byte-identical.
  BbParams p = FastDevice(32 * MiB);
  p.high_watermark = 0.9;
  p.low_watermark = 0.3;
  FixedRateDrainTarget pfs(300e6);
  BurstBuffer buf(p, pfs);
  auto backend = plfs::MakeBbBackend(buf, plfs::MakeMemBackend());

  auto a = backend->create("/a");
  auto b = backend->create("/b");
  ASSERT_TRUE(a.ok() && b.ok());
  const Bytes da = Pattern(1, 24 * MiB);
  ASSERT_TRUE(backend->write(*a, 0, da).ok());
  ASSERT_TRUE(backend->fsync(*a).ok());
  const Bytes db = Pattern(2, 24 * MiB);
  ASSERT_TRUE(backend->write(*b, 0, db).ok());
  EXPECT_GE(buf.stats().bytes_evicted, 8 * MiB);

  Bytes back(24 * MiB);
  auto n = backend->read(*a, 0, back);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, back.size());
  EXPECT_EQ(back, da);
  auto nb = backend->read(*b, 0, back);
  ASSERT_TRUE(nb.ok());
  ASSERT_EQ(*nb, back.size());
  EXPECT_EQ(back, db);
}

TEST(BbBackend, RenameAndUnlinkKeepStagingConsistent) {
  BbParams p = FastDevice(64 * MiB);
  FixedRateDrainTarget pfs(200e6);
  BurstBuffer buf(p, pfs);
  auto backend = plfs::MakeBbBackend(buf, plfs::MakeMemBackend());

  auto h = backend->create("/old");
  ASSERT_TRUE(h.ok());
  const Bytes data = Pattern(3, 2 * MiB);
  ASSERT_TRUE(backend->write(*h, 0, data).ok());
  ASSERT_TRUE(backend->rename("/old", "/new").ok());

  Bytes back(2 * MiB);
  auto n = backend->read(*h, 0, back);  // open handle follows the rename
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(backend->close(*h).ok());

  auto h2 = backend->open("/new");
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(backend->unlink("/new").ok());
  EXPECT_FALSE(backend->exists("/new").value_or(true));
  EXPECT_EQ(buf.dirty_bytes(), 0u);  // staged dirty data discarded
}

TEST(BbBackend, PlfsContainerRoundTripThroughBurstBuffer) {
  // The whole point of the backend: PLFS containers stage transparently.
  BbParams p = FastDevice(256 * MiB);
  FixedRateDrainTarget pfs(200e6);
  BurstBuffer buf(p, pfs);
  plfs::Plfs fs(plfs::MakeBbBackend(buf, plfs::MakeMemBackend()));

  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kRecord = 4801;  // unaligned
  constexpr int kSteps = 10;
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      auto w = fs.open_write("/ckpt", r);
      ASSERT_TRUE(w.ok());
      for (int k = 0; k < kSteps; ++k) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
        ASSERT_TRUE((*w)->write(off, Pattern(r * 100 + k, kRecord)).ok());
      }
      ASSERT_TRUE((*w)->close().ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(buf.stats().bytes_absorbed, kRanks * kRecord * kSteps);

  auto reader = fs.open_read("/ckpt");
  ASSERT_TRUE(reader.ok());
  const std::uint64_t total = kRecord * kRanks * kSteps;
  EXPECT_EQ((*reader)->size(), total);
  Bytes out(total);
  auto n = (*reader)->read(0, out);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, total);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    for (int k = 0; k < kSteps; ++k) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
      const Bytes expect = Pattern(r * 100 + k, kRecord);
      ASSERT_TRUE(std::equal(expect.begin(), expect.end(), out.begin() + off))
          << "rank " << r << " step " << k;
    }
  }
}

// -- Checkpoint simulation: durability on failure ---------------------------

TEST(CheckpointSimBb, ZeroDrainMatchesClassicModelExactly) {
  // With an instant drain, "absorb" is a plain blocking checkpoint: the
  // staged model must reproduce the classic one failure for failure.
  failure::CheckpointSimParams classic;
  classic.work_seconds = 10 * kDay;
  classic.mtti_seconds = 12 * kHour;
  failure::CheckpointSimParams staged = classic;
  staged.bb_absorb_seconds = classic.checkpoint_seconds;
  staged.bb_drain_seconds = 0.0;

  Rng a(42), b(42);
  const auto rc = failure::SimulateCheckpointing(classic, a);
  const auto rs = failure::SimulateCheckpointing(staged, b);
  EXPECT_DOUBLE_EQ(rc.wall_seconds, rs.wall_seconds);
  EXPECT_EQ(rc.failures, rs.failures);
  EXPECT_EQ(rc.checkpoints, rs.checkpoints);
  EXPECT_EQ(rs.lost_drains, 0u);
}

TEST(CheckpointSimBb, FailureDuringDrainLosesTheCheckpoint) {
  failure::CheckpointSimParams p;
  p.work_seconds = 20 * kDay;
  p.interval = kHour;
  p.mtti_seconds = 6 * kHour;
  p.bb_absorb_seconds = 30.0;
  p.bb_drain_seconds = 30 * kMinute;  // long vulnerable window
  Rng rng(7);
  const auto r = failure::SimulateCheckpointing(p, rng);
  EXPECT_GT(r.failures, 0u);
  EXPECT_GT(r.lost_drains, 0u);      // some failures struck mid-drain
  EXPECT_LT(r.lost_drains, r.failures);  // ... but not all
  EXPECT_GT(r.utilization, 0.0);
}

TEST(CheckpointSimBb, UtilizationUpliftMonotoneUntilDrainBottleneck) {
  // Acceptance (b): failure-free sweep — as drain bandwidth rises (drain
  // time falls), utilization rises monotonically, then plateaus once the
  // drain fits inside the compute interval.
  failure::CheckpointSimParams base;
  base.work_seconds = 10 * kDay;
  base.interval = kHour;
  base.checkpoint_seconds = 300.0;
  base.mtti_seconds = 1e18;  // no failures: isolate the overlap effect
  Rng rng(1);
  const double direct = failure::SimulateCheckpointing(base, rng).utilization;

  const std::vector<double> drain_seconds = {4 * kHour,  2 * kHour, kHour,
                                             30 * kMinute, 10 * kMinute, kMinute};
  std::vector<double> util;
  for (double d : drain_seconds) {
    failure::CheckpointSimParams p = base;
    p.bb_absorb_seconds = 30.0;
    p.bb_drain_seconds = d;
    Rng r2(1);
    const auto r = failure::SimulateCheckpointing(p, r2);
    util.push_back(r.utilization);
    // Steady state: cycle = max(interval, drain) + absorb.
    const double expect =
        base.interval / (std::max(base.interval, d) + p.bb_absorb_seconds);
    EXPECT_NEAR(r.utilization, expect, 0.01) << "drain " << d;
  }
  for (std::size_t i = 1; i < util.size(); ++i) {
    EXPECT_GE(util[i] + 1e-9, util[i - 1]) << "not monotone at " << i;
  }
  // Plateau: once drain <= interval the drain is free; further bandwidth
  // buys nothing.
  EXPECT_NEAR(util[util.size() - 1], util[util.size() - 2], 1e-3);
  // Uplift over direct-to-PFS everywhere the drain is not the bottleneck.
  EXPECT_GT(util.back(), direct);
  // Bottleneck regime: drain 4x the interval throttles below direct, and
  // the simulator reports the stalls that explain it.
  failure::CheckpointSimParams slow = base;
  slow.bb_absorb_seconds = 30.0;
  slow.bb_drain_seconds = 4 * kHour;
  Rng r3(1);
  const auto rslow = failure::SimulateCheckpointing(slow, r3);
  EXPECT_GT(rslow.stall_seconds, 0.0);
  EXPECT_LT(rslow.utilization, direct);
}

// -- Acceptance (a): absorb >= 5x direct-to-PFS -----------------------------

// Issues the N-1 strided checkpoint pattern: `ranks` writers, `chunk`
// bytes per record, records interleaved rank-major, each writer modelled
// by its own clock (min-clock issue order preserves FIFO arrival).
template <typename WriteFn>
double StridedCheckpointTime(std::uint32_t ranks, std::uint64_t chunk,
                             std::uint64_t per_rank, WriteFn&& write) {
  std::vector<double> clock(ranks, 0.0);
  std::vector<std::uint64_t> next(ranks, 0);
  const std::uint64_t records = per_rank / chunk;
  double end = 0.0;
  while (true) {
    std::uint32_t r = ranks;
    for (std::uint32_t i = 0; i < ranks; ++i) {
      if (next[i] < records && (r == ranks || clock[i] < clock[r])) r = i;
    }
    if (r == ranks) break;
    const std::uint64_t off = (next[r] * ranks + r) * chunk;
    clock[r] = write(off, chunk, clock[r]);
    end = std::max(end, clock[r]);
    ++next[r];
  }
  return end;
}

TEST(BurstBufferPfs, AbsorbAtLeastFiveTimesDirectPfsBandwidth) {
  constexpr std::uint32_t kRanks = 8;
  constexpr std::uint64_t kChunk = 47 * KiB;  // unaligned, LANL-app-like
  constexpr std::uint64_t kPerRank = 8 * MiB;
  const std::uint64_t total = kRanks * kPerRank / kChunk * kChunk;

  // Direct: every rank writes its strided records straight at the PFS.
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster direct_cluster(pfs::PfsConfig{}, sched);
  auto direct_target = bb::MakePfsDrainTarget(direct_cluster);
  const double direct_time = StridedCheckpointTime(
      kRanks, kChunk, kPerRank,
      [&](std::uint64_t off, std::uint64_t len, double now) {
        return direct_target->drain(1, off, len, now);
      });

  // Staged: the same records absorb into the burst buffer, which drains
  // to an identical PFS in large sequential units in the background.
  sim::VirtualScheduler sched2(1);
  pfs::PfsCluster bb_cluster(pfs::PfsConfig{}, sched2);
  auto bb_target = bb::MakePfsDrainTarget(bb_cluster);
  BbParams p = FastDevice(512 * MiB);
  BurstBuffer buf(p, *bb_target);
  const double absorb_time = StridedCheckpointTime(
      kRanks, kChunk, kPerRank,
      [&](std::uint64_t off, std::uint64_t len, double now) {
        return buf.write(1, off, len, now);
      });

  const double direct_bw = static_cast<double>(total) / direct_time;
  const double absorb_bw = static_cast<double>(total) / absorb_time;
  EXPECT_GE(absorb_bw, 5.0 * direct_bw)
      << "absorb " << absorb_bw / 1e6 << " MB/s vs direct " << direct_bw / 1e6
      << " MB/s";

  // And the drain itself beats the strided direct write: large sequential
  // units are the PFS-friendly pattern.
  const double durable = buf.flush(absorb_time);
  EXPECT_LT(durable, direct_time);
  // The staging log is sequential on flash: no GC amplification.
  EXPECT_LT(buf.ssd().stats().write_amplification(), 1.05);
}

}  // namespace
}  // namespace pdsi
