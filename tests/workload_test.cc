// Workload-driver tests: pattern generation invariants and the headline
// integration property — PLFS beats direct N-1 strided checkpointing by a
// large factor on every file-system personality, while imposing little
// overhead where the baseline is already fine (N-N).
#include <gtest/gtest.h>

#include <set>

#include "pdsi/common/units.h"
#include "pdsi/workload/driver.h"
#include "pdsi/workload/patterns.h"

namespace pdsi::workload {
namespace {

TEST(Patterns, StridedTilesFileExactly) {
  CheckpointSpec spec{Pattern::n1_strided, 8, 1000, 16};
  std::set<std::uint64_t> offsets;
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    for (const auto& op : WritesForRank(spec, r)) {
      EXPECT_EQ(op.length, spec.record_bytes);
      EXPECT_EQ(op.offset % spec.record_bytes, 0u);
      EXPECT_TRUE(offsets.insert(op.offset).second) << "overlapping offsets";
    }
  }
  EXPECT_EQ(offsets.size(), 8u * 16u);
  EXPECT_EQ(*offsets.rbegin(), spec.total_bytes() - spec.record_bytes);
}

TEST(Patterns, SegmentedRegionsAreContiguousAndDisjoint) {
  CheckpointSpec spec{Pattern::n1_segmented, 4, 1000, 8};
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    auto ops = WritesForRank(spec, r);
    EXPECT_EQ(ops.front().offset, r * spec.bytes_per_rank());
    for (std::size_t k = 1; k < ops.size(); ++k) {
      EXPECT_EQ(ops[k].offset, ops[k - 1].offset + ops[k - 1].length);
    }
  }
}

TEST(Patterns, NnIsPrivateAndSequential) {
  CheckpointSpec spec{Pattern::nn, 4, 1000, 8};
  EXPECT_EQ(TargetPath(spec, 2), "/ckpt.2");
  auto ops = WritesForRank(spec, 3);
  EXPECT_EQ(ops.front().offset, 0u);
  EXPECT_EQ(ops.back().offset, 7000u);
}

TEST(Patterns, PaperAppsPopulated) {
  auto apps = PaperApps(16);
  EXPECT_GE(apps.size(), 5u);
  for (const auto& a : apps) {
    EXPECT_EQ(a.spec.ranks, 16u);
    EXPECT_GT(a.paper_speedup, 1.0);
  }
}

class PlfsSpeedup : public ::testing::TestWithParam<pfs::PfsConfig> {};

TEST_P(PlfsSpeedup, PlfsBeatsDirectOnTinyStridedRecords) {
  // FLASH-like: small unaligned records are the worst case for direct N-1
  // (per-record seeks, RMW, lock ping-pong) and the best case for PLFS.
  CheckpointSpec spec{Pattern::n1_strided, 16, 4 * KiB + 77, 32};
  const auto direct = RunDirectCheckpoint(GetParam(), spec);
  const auto plfs = RunPlfsCheckpoint(GetParam(), spec);
  EXPECT_EQ(direct.bytes, plfs.bytes);
  EXPECT_GT(direct.seconds / plfs.seconds, 6.0)
      << GetParam().name << " direct=" << direct.seconds
      << "s plfs=" << plfs.seconds << "s";
}

TEST_P(PlfsSpeedup, PlfsBeatsDirectOnMediumStridedRecords) {
  // 47 KiB records (LANL production code shape): gains are smaller than
  // the tiny-record case but still well above break-even at this small
  // test scale (the Fig. 8 bench runs the full-size configuration).
  CheckpointSpec spec{Pattern::n1_strided, 16, 47 * KiB + 301, 16};
  const auto direct = RunDirectCheckpoint(GetParam(), spec);
  const auto plfs = RunPlfsCheckpoint(GetParam(), spec);
  EXPECT_GT(direct.seconds / plfs.seconds, 2.0)
      << GetParam().name << " direct=" << direct.seconds
      << "s plfs=" << plfs.seconds << "s";
}

TEST_P(PlfsSpeedup, PlfsOverheadSmallForNN) {
  // N-N is already friendly; PLFS should not make it much slower.
  CheckpointSpec spec{Pattern::nn, 8, 256 * KiB, 16};
  const auto direct = RunDirectCheckpoint(GetParam(), spec);
  const auto plfs = RunPlfsCheckpoint(GetParam(), spec);
  EXPECT_LT(plfs.seconds / direct.seconds, 1.6)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Personalities, PlfsSpeedup,
                         ::testing::Values(pfs::PfsConfig::PanFsLike(4),
                                           pfs::PfsConfig::LustreLike(4),
                                           pfs::PfsConfig::GpfsLike(4)),
                         [](const auto& param_info) {
                           std::string n = param_info.param.name;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(PlfsRoundTrip, RestartReadsComplete) {
  CheckpointSpec spec{Pattern::n1_strided, 8, 16 * KiB + 11, 8};
  auto cfg = pfs::PfsConfig::PanFsLike(4);
  const auto rt = RunPlfsRoundTrip(cfg, spec);
  EXPECT_GT(rt.write.bandwidth(), 0.0);
  EXPECT_GT(rt.read.bandwidth(), 0.0);
  EXPECT_EQ(rt.write.bytes, spec.total_bytes());
}

TEST(TraceCapture, EventsCoverAllWrites) {
  CheckpointSpec spec{Pattern::n1_strided, 4, 10 * KiB, 8};
  WriteTrace trace;
  RunDirectCheckpoint(pfs::PfsConfig::LustreLike(2), spec, &trace);
  EXPECT_EQ(trace.size(), 4u * 8u);
  for (const auto& e : trace) {
    EXPECT_LT(e.start, e.end);
    EXPECT_EQ(e.length, spec.record_bytes);
  }
}

TEST(Determinism, DriverRunsAreReproducible) {
  CheckpointSpec spec{Pattern::n1_strided, 8, 20 * KiB + 3, 8};
  auto cfg = pfs::PfsConfig::GpfsLike(4);
  const auto a = RunPlfsCheckpoint(cfg, spec);
  const auto b = RunPlfsCheckpoint(cfg, spec);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  const auto c = RunDirectCheckpoint(cfg, spec);
  const auto d = RunDirectCheckpoint(cfg, spec);
  EXPECT_DOUBLE_EQ(c.seconds, d.seconds);
}

}  // namespace
}  // namespace pdsi::workload
