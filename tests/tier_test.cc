// Tests for pdsi::tier: the erasure-coded object store (round trips,
// degraded reads, permanent device loss + rebuild-from-parity with real
// byte verification), the policy-driven TierEngine (hot/warm/cold read
// paths, watermark demotion, pins, temperature promotion, fault
// integration) and the plfs::Backend adapter that lets PLFS containers
// live on the engine. Everything runs on virtual time and is
// deterministic: the determinism cases re-run whole scenarios and demand
// identical clocks and counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/fault/fault.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/plfs.h"
#include "pdsi/storage/device_catalog.h"
#include "pdsi/tier/object_store.h"
#include "pdsi/tier/policy.h"
#include "pdsi/tier/tier_backend.h"
#include "pdsi/tier/tier_engine.h"

namespace pdsi {
namespace {

using tier::ObjectStore;
using tier::ObjectStoreParams;
using tier::TierEngine;
using tier::TierEngineParams;

ObjectStoreParams SmallStore(int k = 4, int m = 2, std::uint32_t devices = 8) {
  ObjectStoreParams p;
  p.data_shards = k;
  p.parity_shards = m;
  p.shard_unit = 64 * KiB;
  p.num_devices = devices;
  return p;
}

// -- ObjectStore ------------------------------------------------------------

TEST(ObjectStore, PutGetRoundTripWithUnalignedTail) {
  ObjectStore store(SmallStore());
  // 1 MiB + odd tail: exercises stripe padding and final-stripe clamping.
  const Bytes data = MakePattern(7, 0, MiB + 12345);
  auto t_put = store.put("b", "obj", data, 0.0);
  ASSERT_TRUE(t_put.ok());
  EXPECT_GT(*t_put, 0.0);

  Bytes back;
  auto t_get = store.get("b", "obj", &back, *t_put);
  ASSERT_TRUE(t_get.ok());
  EXPECT_GE(*t_get, *t_put);
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.stats().degraded_gets, 0u);

  auto sz = store.object_size("b", "obj");
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, data.size());
  EXPECT_TRUE(store.exists("b", "obj"));
  EXPECT_EQ(store.list("b"), std::vector<std::string>{"obj"});
  EXPECT_GT(store.used_bytes(), data.size());  // parity overhead

  ASSERT_TRUE(store.remove("b", "obj").ok());
  EXPECT_FALSE(store.exists("b", "obj"));
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(ObjectStore, ReplaceKeepsLatestContents) {
  ObjectStore store(SmallStore());
  ASSERT_TRUE(store.put("b", "o", MakePattern(1, 0, 300 * KiB), 0.0).ok());
  const Bytes second = MakePattern(2, 0, 100 * KiB);
  auto t = store.put("b", "o", second, 1.0);
  ASSERT_TRUE(t.ok());
  Bytes back;
  ASSERT_TRUE(store.get("b", "o", &back, *t).ok());
  EXPECT_EQ(back, second);
}

TEST(ObjectStore, RejectsInvalidArguments) {
  ObjectStore store(SmallStore());
  const Bytes data = MakePattern(1, 0, KiB);
  EXPECT_EQ(store.put("b", "o", {}, 0.0).error(), Errc::invalid);
  EXPECT_EQ(store.put("", "o", data, 0.0).error(), Errc::invalid);
  EXPECT_EQ(store.put("a/b", "o", data, 0.0).error(), Errc::invalid);
  Bytes out;
  EXPECT_EQ(store.get("b", "missing", &out, 0.0).error(), Errc::not_found);
}

TEST(ObjectStore, DegradedGetReconstructsFromParity) {
  // k+m == num_devices: every stripe touches every device, so device
  // losses translate directly into per-stripe shard losses.
  ObjectStore store(SmallStore(4, 2, 6));
  const Bytes data = MakePattern(11, 0, 700 * KiB);
  ASSERT_TRUE(store.put("b", "o", data, 0.0).ok());

  store.fail_device(0);
  store.fail_device(3);
  EXPECT_GT(store.lost_shards(), 0u);

  Bytes back;
  auto t = store.get("b", "o", &back, 10.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(back, data);
  EXPECT_GT(store.stats().degraded_gets, 0u);
  EXPECT_GT(store.stats().degraded_stripes, 0u);

  // A third loss exceeds m = 2: unreadable, and accounted as such.
  store.fail_device(5);
  auto bad = store.get("b", "o", &back, 20.0);
  EXPECT_EQ(bad.error(), Errc::io_error);
  EXPECT_GT(store.stats().read_errors, 0u);
}

TEST(ObjectStore, RebuildRestoresBytesAndRedundancy) {
  ObjectStore store(SmallStore(4, 2, 8));
  const Bytes data = MakePattern(23, 0, 2 * MiB + 777);
  ASSERT_TRUE(store.put("b", "o", data, 0.0).ok());

  store.fail_device(1);
  store.fail_device(4);
  ASSERT_GT(store.lost_shards(), 0u);

  auto t = store.rebuild(100.0);
  ASSERT_TRUE(t.ok());
  EXPECT_GT(*t, 100.0);
  EXPECT_EQ(store.lost_shards(), 0u);
  EXPECT_GT(store.stats().rebuilt_shards, 0u);
  EXPECT_GT(store.stats().rebuilt_bytes, 0u);

  // The rebuilt shards must carry real bytes: lose two MORE devices and
  // the object still reads back byte-identical without the originals.
  store.fail_device(2);
  store.fail_device(6);
  Bytes back;
  auto g = store.get("b", "o", &back, *t);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(back, data);
}

TEST(ObjectStore, PutNeedsKPlusMLiveDevices) {
  ObjectStore store(SmallStore(4, 2, 6));
  store.fail_device(0);
  EXPECT_EQ(store.put("b", "o", MakePattern(1, 0, KiB), 0.0).error(),
            Errc::no_space);
}

TEST(ObjectStore, CrashWindowDegradesWithoutLosingBytes) {
  // A transient fault window makes one device's shards unavailable; the
  // get reconstructs. After the window the same get is clean again.
  fault::FaultPlan plan;
  plan.oss_mtbf_s = 1e12;  // active, but no organic crashes
  fault::FaultInjector inj(plan, 6);
  // Down two of six devices: with k+m == 6 every stripe lands on all
  // devices, and any two losses are guaranteed to cover a data shard of
  // some stripe while staying within parity (m = 2).
  inj.force_down(2, 50.0, 60.0);
  inj.force_down(3, 50.0, 60.0);

  ObjectStore store(SmallStore(4, 2, 6));
  store.set_fault(&inj, 0);
  const Bytes data = MakePattern(3, 0, 512 * KiB);
  ASSERT_TRUE(store.put("b", "o", data, 0.0).ok());

  Bytes back;
  ASSERT_TRUE(store.get("b", "o", &back, 55.0).ok());
  EXPECT_EQ(back, data);
  EXPECT_GT(store.stats().degraded_gets, 0u);
  EXPECT_EQ(store.lost_shards(), 0u);

  const auto degraded_before = store.stats().degraded_gets;
  ASSERT_TRUE(store.get("b", "o", &back, 70.0).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.stats().degraded_gets, degraded_before);
}

TEST(ObjectStore, DeterministicTimings) {
  auto run = [] {
    ObjectStore store(SmallStore());
    std::vector<double> times;
    double t = 0.0;
    for (int i = 0; i < 4; ++i) {
      auto p = store.put("b", "o" + std::to_string(i),
                         MakePattern(static_cast<std::uint32_t>(i), 0,
                                     (i + 1) * 200 * KiB),
                         t);
      t = *p;
      times.push_back(t);
    }
    store.fail_device(1);
    Bytes back;
    times.push_back(*store.get("b", "o2", &back, t));
    times.push_back(*store.rebuild(times.back()));
    return times;
  };
  EXPECT_EQ(run(), run());
}

// -- TierEngine -------------------------------------------------------------

/// One engine over a 2-server PanFS-like cluster with a small flash tier,
/// sized so tests can push objects through all three tiers quickly.
struct EngineFixture {
  explicit EngineFixture(std::uint64_t flash = 64 * MiB,
                         std::uint64_t warm = 8 * MiB,
                         obs::Context* ctx = nullptr)
      : sched(1), cluster(pfs::PfsConfig::PanFsLike(2), sched) {
    TierEngineParams p;
    p.bb.ssd = storage::FlashDevice("fusionio-iodrive-duo");
    p.bb.ssd.capacity_bytes = flash;
    p.warm_capacity_bytes = warm;
    p.cold = SmallStore();
    engine = std::make_unique<TierEngine>(p, cluster, ctx);
  }
  ~EngineFixture() { sched.finish(0); }

  sim::VirtualScheduler sched;
  pfs::PfsCluster cluster;
  std::unique_ptr<TierEngine> engine;
};

TEST(TierEngine, HotWriteReadRoundTrip) {
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  const Bytes data = MakePattern(5, 0, 4 * MiB);
  auto w = e.write("f", 0, data, 0.0);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(e.resident_tier("f"), tier::kHotTier);

  Bytes back(data.size());
  std::size_t n = 0;
  auto r = e.read("f", 0, back, *w, &n);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(n, data.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(e.stats().hot_hits, 1u);

  // Reads clamp at EOF.
  Bytes past(KiB);
  auto r2 = e.read("f", data.size() + KiB, past, *r, &n);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(n, 0u);
}

TEST(TierEngine, FlushDrainsToWarmAndEvictionFallsBackToWarmRead) {
  // 16 MiB flash: object A drains, then B's ingest evicts A's clean
  // staged bytes, so the next read of A is a warm (PFS) read.
  EngineFixture fx(16 * MiB, 64 * MiB);
  TierEngine& e = *fx.engine;
  const Bytes a = MakePattern(1, 0, 6 * MiB);
  double t = *e.write("a", 0, a, 0.0);
  t = e.flush(t);
  EXPECT_EQ(e.resident_tier("a"), tier::kWarmTier);
  EXPECT_EQ(e.usage(tier::kWarmTier).used, a.size());

  for (std::uint64_t off = 0; off < 12 * MiB; off += MiB) {
    t = *e.write("b", off, MakePattern(2, off, MiB), t);
  }
  ASSERT_GT(e.buffer().stats().bytes_evicted, 0u);

  Bytes back(a.size());
  auto r = e.read("a", 0, back, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back, a);
  EXPECT_EQ(e.stats().warm_hits, 1u);
  EXPECT_EQ(e.stats().hot_hits, 0u);
}

TEST(TierEngine, WatermarkDemotionArchivesColdestAndReadsBack) {
  // Warm budget 8 MiB, high watermark 0.85: three 3 MiB objects overflow
  // it, so the two oldest are demoted to the object store.
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    const std::string name(1, static_cast<char>('a' + i));
    t = *e.write(name, 0, MakePattern(static_cast<std::uint32_t>(i), 0, 3 * MiB),
                 t + 1.0);
  }
  t = e.flush(t);

  EXPECT_EQ(e.stats().demotions, 2u);
  EXPECT_EQ(e.resident_tier("a"), tier::kColdTier);
  EXPECT_EQ(e.resident_tier("b"), tier::kColdTier);
  EXPECT_EQ(e.resident_tier("c"), tier::kWarmTier);
  EXPECT_EQ(e.usage(tier::kWarmTier).used, 3 * MiB);
  EXPECT_TRUE(e.store().exists(TierEngine::kBucket, "1"));

  Bytes back(3 * MiB);
  auto r = e.read("a", 0, back, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(FindPatternMismatch(0, 0, back), kNoMismatch);
  EXPECT_EQ(e.stats().cold_hits, 1u);
}

TEST(TierEngine, PinToColdArchivesAtFlushAndRecallsOnWrite) {
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  ASSERT_TRUE(e.pin("x", tier::kColdTier).ok());
  double t = *e.write("x", 0, MakePattern(9, 0, 2 * MiB), 0.0);
  t = e.flush(t);
  EXPECT_EQ(e.resident_tier("x"), tier::kColdTier);
  EXPECT_EQ(e.stats().demotions, 1u);

  // A write recalls + invalidates the archive copy, then the next flush
  // re-demotes the new contents.
  t = *e.write("x", MiB, MakePattern(10, MiB, MiB), t);
  EXPECT_NE(e.resident_tier("x"), tier::kColdTier);
  t = e.flush(t);
  EXPECT_EQ(e.resident_tier("x"), tier::kColdTier);

  Bytes back(2 * MiB);
  ASSERT_TRUE(e.read("x", 0, back, t).ok());
  EXPECT_EQ(FindPatternMismatch(9, 0, std::span(back).first(MiB)), kNoMismatch);
  EXPECT_EQ(FindPatternMismatch(10, MiB, std::span(back).subspan(MiB)),
            kNoMismatch);
}

TEST(TierEngine, PinToWarmBypassesStagingFlash) {
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  ASSERT_TRUE(e.pin("w", tier::kWarmTier).ok());
  const Bytes data = MakePattern(4, 0, 2 * MiB);
  auto t = e.write("w", 0, data, 0.0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(e.resident_tier("w"), tier::kWarmTier);
  EXPECT_EQ(e.buffer().stats().writes, 0u);
  EXPECT_EQ(e.usage(tier::kWarmTier).used, data.size());

  Bytes back(data.size());
  ASSERT_TRUE(e.read("w", 0, back, *t).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(e.stats().warm_hits, 1u);
}

TEST(TierEngine, TemperaturePromotionLiftsColdObjectToWarm) {
  // a and b get archived by the watermark; three quick reads of a then
  // cross the default temperature threshold and promote it back to warm.
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    const std::string name(1, static_cast<char>('a' + i));
    t = *e.write(name, 0, MakePattern(static_cast<std::uint32_t>(i), 0, 3 * MiB),
                 t + 1.0);
  }
  t = e.flush(t);
  ASSERT_EQ(e.resident_tier("a"), tier::kColdTier);

  Bytes back(3 * MiB);
  for (int i = 0; i < 3; ++i) {
    auto r = e.read("a", 0, back, t + i);
    ASSERT_TRUE(r.ok());
    t = std::max(t, *r);
  }
  EXPECT_EQ(e.stats().promotions, 1u);
  EXPECT_EQ(e.stats().promoted_bytes, 3 * MiB);
  EXPECT_EQ(e.resident_tier("a"), tier::kWarmTier);
  EXPECT_EQ(FindPatternMismatch(0, 0, back), kNoMismatch);
  // The archive copy stays as clean redundancy.
  EXPECT_TRUE(e.store().exists(TierEngine::kBucket, "1"));
}

TEST(TierEngine, NamespaceOps) {
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  ASSERT_TRUE(e.write("one", 0, MakePattern(1, 0, KiB), 0.0).ok());
  ASSERT_TRUE(e.write("two", 0, MakePattern(2, 0, 2 * KiB), 1.0).ok());
  EXPECT_EQ(e.list(), (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(*e.size("two"), 2 * KiB);

  EXPECT_EQ(e.rename("one", "two").error(), Errc::exists);
  ASSERT_TRUE(e.rename("one", "uno").ok());
  EXPECT_TRUE(e.exists("uno"));
  EXPECT_FALSE(e.exists("one"));

  ASSERT_TRUE(e.remove("uno").ok());
  EXPECT_EQ(e.remove("uno").error(), Errc::not_found);
  Bytes gone(KiB);
  EXPECT_EQ(e.read("uno", 0, gone, 2.0).error(), Errc::not_found);
}

TEST(TierEngine, WarmServerCrashFailsOverWhenAllowed) {
  fault::FaultPlan plan;
  plan.oss_mtbf_s = 1e12;
  plan.read_failover = true;
  EngineFixture fx;
  TierEngine& e = *fx.engine;
  // Cover warm servers and cold devices from one injector.
  fault::FaultInjector inj(plan, fx.cluster.num_oss() + SmallStore().num_devices);
  e.set_fault(&inj);

  ASSERT_TRUE(e.pin("z", tier::kWarmTier).ok());
  const Bytes data = MakePattern(6, 0, 2 * MiB);
  double t = *e.write("z", 0, data, 0.0);
  inj.force_down(0, t + 1.0, t + 100.0);
  inj.force_down(1, t + 1.0, t + 100.0);

  // Both warm servers down: no failover target, no cold copy -> error.
  Bytes back(data.size());
  EXPECT_EQ(e.read("z", 0, back, t + 2.0).error(), Errc::io_error);
  EXPECT_EQ(e.read_errors(), 1u);

  // One server back up: the read fails over and stays correct.
  fault::FaultInjector inj2(plan, fx.cluster.num_oss() + SmallStore().num_devices);
  inj2.force_down(0, t + 1.0, t + 100.0);
  e.set_fault(&inj2);
  auto r = e.read("z", 0, back, t + 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(e.degraded_reads(), 1u);
}

TEST(TierEngine, DeterministicStatsAndClocks) {
  auto run = [] {
    EngineFixture fx;
    TierEngine& e = *fx.engine;
    double t = 0.0;
    for (int i = 0; i < 4; ++i) {
      const std::string name = "o" + std::to_string(i);
      for (std::uint64_t off = 0; off < 3 * MiB; off += MiB) {
        t = *e.write(name, off, MakePattern(static_cast<std::uint32_t>(i), off, MiB),
                     t);
      }
    }
    t = e.flush(t);
    Bytes back(3 * MiB);
    for (int i = 0; i < 4; ++i) {
      t = std::max(t, *e.read("o" + std::to_string(i), 0, back, t + 1.0));
    }
    const auto& s = e.stats();
    return std::vector<double>{
        t,
        static_cast<double>(s.hot_hits),    static_cast<double>(s.warm_hits),
        static_cast<double>(s.cold_hits),   static_cast<double>(s.demotions),
        static_cast<double>(s.promotions),  static_cast<double>(s.demoted_bytes),
        static_cast<double>(s.promoted_bytes),
        static_cast<double>(e.usage(tier::kWarmTier).used),
        static_cast<double>(e.store().used_bytes())};
  };
  EXPECT_EQ(run(), run());
}

// -- plfs::Backend adapter --------------------------------------------------

TEST(TierBackend, PlfsContainerRoundTripOnEngine) {
  EngineFixture fx(64 * MiB, 64 * MiB);
  plfs::Plfs fs(tier::MakeTierBackend(*fx.engine));

  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kRecord = 3571;  // unaligned
  constexpr int kSteps = 10;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    auto w = fs.open_write("/ckpt", r);
    ASSERT_TRUE(w.ok()) << ErrcName(w.error());
    for (int k = 0; k < kSteps; ++k) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(k) * kRanks + r) * kRecord;
      ASSERT_TRUE((*w)->write(off, MakePattern(r, off, kRecord)).ok());
    }
    ASSERT_TRUE((*w)->close().ok());
  }

  // The container's droppings are engine objects; the engine clock moved.
  EXPECT_FALSE(fx.engine->list().empty());
  EXPECT_GT(fs.backend().now(), 0.0);

  auto sz = fs.stat_size("/ckpt");
  ASSERT_TRUE(sz.ok());
  const std::uint64_t total = kRecord * kRanks * kSteps;
  EXPECT_EQ(*sz, total);

  auto reader = fs.open_read("/ckpt");
  ASSERT_TRUE(reader.ok());
  Bytes buf(total);
  auto n = (*reader)->read(0, buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, total);
  for (std::uint64_t block = 0; block < kRanks * kSteps; ++block) {
    const std::uint32_t rank = static_cast<std::uint32_t>(block % kRanks);
    const std::uint64_t off = block * kRecord;
    ASSERT_EQ(FindPatternMismatch(rank, off,
                                  std::span(buf).subspan(off, kRecord)),
              kNoMismatch)
        << "block " << block;
  }

  // Index flattening works through the adapter too.
  ASSERT_TRUE(fs.flatten_index("/ckpt").ok());
  auto reader2 = fs.open_read("/ckpt");
  ASSERT_TRUE(reader2.ok());
  EXPECT_EQ((*reader2)->size(), total);
}

TEST(TierBackend, NamespaceSemanticsMatchMemBackend) {
  EngineFixture fx;
  auto be = tier::MakeTierBackend(*fx.engine);
  ASSERT_TRUE(be->mkdir("/d").ok());
  EXPECT_EQ(be->mkdir("/d").error(), Errc::exists);
  EXPECT_EQ(be->create("/missing/f").error(), Errc::not_found);

  auto h = be->create("/d/f");
  ASSERT_TRUE(h.ok());
  // Created but never written: size 0, stat_size 0.
  EXPECT_EQ(*be->size(*h), 0u);
  EXPECT_EQ(*be->stat_size("/d/f"), 0u);

  const Bytes data = MakePattern(8, 0, 100 * KiB);
  ASSERT_TRUE(be->write(*h, 0, data).ok());
  EXPECT_EQ(*be->size(*h), data.size());
  ASSERT_TRUE(be->fsync(*h).ok());
  ASSERT_TRUE(be->close(*h).ok());
  EXPECT_EQ(*be->stat_size("/d/f"), data.size());

  auto names = be->readdir("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"f"});

  ASSERT_TRUE(be->rename("/d/f", "/d/g").ok());
  EXPECT_FALSE(*be->exists("/d/f"));
  Bytes back(data.size());
  auto h2 = be->open("/d/g");
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ(*be->read(*h2, 0, back), data.size());
  EXPECT_EQ(back, data);
  ASSERT_TRUE(be->close(*h2).ok());

  EXPECT_EQ(be->unlink("/d").error(), Errc::not_empty);
  ASSERT_TRUE(be->unlink("/d/g").ok());
  ASSERT_TRUE(be->unlink("/d").ok());
  EXPECT_FALSE(fx.engine->exists("/d/g"));
}

}  // namespace
}  // namespace pdsi
