// Reed-Solomon tests: field axioms, encode/verify, reconstruction from
// every erasure pattern up to m losses, and failure cases.
#include <gtest/gtest.h>

#include "pdsi/common/rng.h"
#include "pdsi/reedsolomon/reedsolomon.h"

namespace pdsi::reedsolomon {
namespace {

TEST(GaloisField, Axioms) {
  GaloisField gf;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
    const auto c = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(gf.mul(a, 1), a);
    EXPECT_EQ(gf.mul(a, 0), 0);
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
    EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
    EXPECT_EQ(gf.mul(b, gf.inv(b)), 1);
  }
  EXPECT_THROW(gf.inv(0), std::domain_error);
  EXPECT_THROW(gf.div(1, 0), std::domain_error);
}

std::vector<Bytes> RandomShards(int k, std::size_t n, Rng& rng) {
  std::vector<Bytes> data(k, Bytes(n));
  for (auto& shard : data) {
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng.below(256));
  }
  return data;
}

TEST(ReedSolomon, EncodeVerify) {
  Rng rng(5);
  ReedSolomon rs(6, 3);
  auto data = RandomShards(6, 4096, rng);
  auto parity = rs.encode(data);
  std::vector<Bytes> all = data;
  all.insert(all.end(), parity.begin(), parity.end());
  EXPECT_TRUE(rs.verify(all));
  all[2][100] ^= 1;
  EXPECT_FALSE(rs.verify(all));
}

struct Config {
  int k, m;
};

class RsMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(RsMatrix, AllErasurePatternsUpToM) {
  const auto [k, m] = GetParam();
  Rng rng(k * 100 + m);
  ReedSolomon rs(k, m);
  auto data = RandomShards(k, 257, rng);  // odd size on purpose
  auto parity = rs.encode(data);
  std::vector<Bytes> reference = data;
  reference.insert(reference.end(), parity.begin(), parity.end());

  // Exhaustive single erasures; exhaustive pairs when tolerable; random
  // m-erasure patterns beyond.
  const int total = k + m;
  for (int a = 0; a < total; ++a) {
    auto shards = reference;
    shards[a].clear();
    rs.reconstruct(shards);
    EXPECT_EQ(shards, reference) << "erased " << a;
  }
  if (m >= 2) {
    for (int a = 0; a < total; ++a) {
      for (int b = a + 1; b < total; ++b) {
        auto shards = reference;
        shards[a].clear();
        shards[b].clear();
        rs.reconstruct(shards);
        EXPECT_EQ(shards, reference) << "erased " << a << "," << b;
      }
    }
  }
  if (m >= 3) {
    for (int trial = 0; trial < 20; ++trial) {
      auto shards = reference;
      std::vector<int> idx(total);
      for (int i = 0; i < total; ++i) idx[i] = i;
      rng.shuffle(idx);
      for (int e = 0; e < m; ++e) shards[idx[e]].clear();
      rs.reconstruct(shards);
      EXPECT_EQ(shards, reference);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, RsMatrix,
                         ::testing::Values(Config{2, 1}, Config{4, 2},
                                           Config{6, 3}, Config{10, 4},
                                           Config{17, 3}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k) + "m" +
                                  std::to_string(info.param.m);
                         });

TEST(ReedSolomon, TooManyErasuresThrows) {
  Rng rng(7);
  ReedSolomon rs(4, 2);
  auto data = RandomShards(4, 64, rng);
  auto parity = rs.encode(data);
  std::vector<Bytes> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  shards[0].clear();
  shards[1].clear();
  shards[4].clear();
  EXPECT_THROW(rs.reconstruct(shards), std::invalid_argument);
}

TEST(ReedSolomon, NoErasureIsANoop) {
  Rng rng(9);
  ReedSolomon rs(3, 2);
  auto data = RandomShards(3, 64, rng);
  auto parity = rs.encode(data);
  std::vector<Bytes> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  auto copy = shards;
  rs.reconstruct(shards);
  EXPECT_EQ(shards, copy);
}

// Property: at the object-store stripe geometries (8+2, 10+4), any random
// erasure pattern of up to m shards — data, parity, or a mix — round-trips
// through reconstruct with every rebuilt byte identical to the original.
// Shard sizes include the store's 256 KiB shard unit and awkward odd
// lengths (the final stripe of an unaligned object).
TEST(ReedSolomon, RandomErasuresAtStoreGeometriesRoundTrip) {
  struct Geometry {
    int k, m;
  };
  for (const Geometry g : {Geometry{8, 2}, Geometry{10, 4}}) {
    Rng rng(static_cast<std::uint64_t>(g.k * 1000 + g.m));
    ReedSolomon rs(g.k, g.m);
    for (const std::size_t shard_len : {std::size_t{256 * 1024},
                                        std::size_t{4093}, std::size_t{1}}) {
      auto data = RandomShards(g.k, shard_len, rng);
      auto parity = rs.encode(data);
      std::vector<Bytes> pristine = data;
      pristine.insert(pristine.end(), parity.begin(), parity.end());

      for (int trial = 0; trial < 50; ++trial) {
        auto shards = pristine;
        // Erase a uniformly random subset of 1..m distinct shard slots.
        const int losses = static_cast<int>(rng.range(1, g.m));
        int erased = 0;
        while (erased < losses) {
          const auto idx = static_cast<std::size_t>(rng.below(
              static_cast<std::uint64_t>(g.k + g.m)));
          if (shards[idx].empty()) continue;
          shards[idx].clear();
          ++erased;
        }
        rs.reconstruct(shards);
        ASSERT_EQ(shards, pristine)
            << "k=" << g.k << " m=" << g.m << " len=" << shard_len
            << " trial=" << trial;
      }
    }
  }
}

TEST(ReedSolomon, RejectsBadGeometry) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 60), std::invalid_argument);
  ReedSolomon rs(4, 2);
  std::vector<Bytes> wrong(3, Bytes(16));
  EXPECT_THROW(rs.encode(wrong), std::invalid_argument);
  std::vector<Bytes> unequal(4, Bytes(16));
  unequal[2].resize(8);
  EXPECT_THROW(rs.encode(unequal), std::invalid_argument);
}

}  // namespace
}  // namespace pdsi::reedsolomon
