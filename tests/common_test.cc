// Unit tests for pdsi/common: RNG determinism and distribution moments,
// streaming statistics, CDFs, fits, table rendering, data patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "pdsi/common/bytes.h"
#include "pdsi/common/result.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"
#include "pdsi/common/table.h"
#include "pdsi/common/units.h"

namespace pdsi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(13);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng r(17);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.weibull(1.0, 3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, GammaMoments) {
  Rng r(23);
  OnlineStats s;
  // Gamma(k, theta): mean = k*theta, var = k*theta^2.
  for (int i = 0; i < 200000; ++i) s.add(r.gamma(2.5, 3.0));
  EXPECT_NEAR(s.mean(), 7.5, 0.15);
  EXPECT_NEAR(s.variance(), 22.5, 1.5);
}

TEST(Rng, GammaSmallShape) {
  Rng r(29);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.gamma(0.5, 2.0));
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng r(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(4.0, 1.5), 4.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Zipf, SkewConcentratesMass) {
  Rng r(37);
  ZipfGenerator z(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z(r)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 50000 / 20);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng r(41);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal(3.0, 1.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  std::vector<double> v{3, 1, 2, 2, 5};
  auto cdf = EmpiricalCdf(v);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(CdfAt(cdf, 2.0), 0.6);  // 1,2,2 of 5
  EXPECT_DOUBLE_EQ(CdfAt(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(cdf, 99.0), 1.0);
}

TEST(LogHistogram, QuantileApproximatesPercentile) {
  Rng r(43);
  LogHistogram h(1e-6);
  std::vector<double> raw;
  for (int i = 0; i < 50000; ++i) {
    const double v = r.lognormal(0.0, 1.5);
    h.add(v);
    raw.push_back(v);
  }
  const double exact = Percentile(raw, 0.9);
  const double approx = h.quantile(0.9);
  EXPECT_NEAR(approx / exact, 1.0, 0.5);  // within a bucket factor
}

TEST(FitLinear, RecoversSlopeIntercept) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  auto fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitWeibull, RecoversParameters) {
  Rng r(47);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(r.weibull(0.7, 100.0));
  auto fit = FitWeibull(samples);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.shape, 0.7, 0.02);
  EXPECT_NEAR(fit.scale, 100.0, 3.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long-header", "c"});
  t.row({"1", "2", "3"});
  t.row({"wide-cell", "x", ""});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
  // Header and both rows plus the rule.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Units, Formatting) {
  EXPECT_EQ(FormatBytes(4096), "4.00 KiB");
  EXPECT_EQ(FormatDuration(0.0125), "12.5 ms");
  EXPECT_EQ(FormatCount(12500), "12.5 K");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Errc::not_found);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errc::not_found);
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_EQ(ErrcName(Errc::stale), "stale");
}

TEST(Bytes, PatternRoundTrip) {
  auto b = MakePattern(3, 1000, 256);
  EXPECT_EQ(FindPatternMismatch(3, 1000, b), kNoMismatch);
  b[100] ^= 0xff;
  EXPECT_EQ(FindPatternMismatch(3, 1000, b), 100u);
  // Wrong rank or offset is detected.
  auto c = MakePattern(4, 1000, 256);
  EXPECT_NE(FindPatternMismatch(3, 1000, c), kNoMismatch);
  auto d = MakePattern(3, 1001, 256);
  EXPECT_NE(FindPatternMismatch(3, 1000, d), kNoMismatch);
}

TEST(Bytes, HashDiscriminates) {
  auto a = MakePattern(1, 0, 64);
  auto b = MakePattern(1, 0, 64);
  EXPECT_EQ(HashBytes(a), HashBytes(b));
  b[0] ^= 1;
  EXPECT_NE(HashBytes(a), HashBytes(b));
}

}  // namespace
}  // namespace pdsi
