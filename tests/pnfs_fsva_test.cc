// Tests for the standardization-side models: pNFS scaling vs the NAS
// bottleneck, and FSVA forwarding overhead.
#include <gtest/gtest.h>

#include "pdsi/fsva/fsva.h"
#include "pdsi/pnfs/pnfs.h"

namespace pdsi {
namespace {

pnfs::PnfsParams Base(pnfs::Protocol proto, std::uint32_t clients) {
  pnfs::PnfsParams p;
  p.protocol = proto;
  p.clients = clients;
  p.data_servers = 8;
  p.bytes_per_client = 64 * 1024 * 1024;
  return p;
}

TEST(Pnfs, SingleClientPnfsIsClientLinkBound) {
  // One 1GE client through pNFS runs at its own wire; through NFS it is
  // already pinched by the head's NIC carrying each byte twice.
  const auto nfs = pnfs::RunStreamingClients(Base(pnfs::Protocol::nfs, 1));
  const auto pn = pnfs::RunStreamingClients(Base(pnfs::Protocol::pnfs, 1));
  EXPECT_GT(pn.aggregate_bw(), 0.7 * 117e6);
  EXPECT_LT(nfs.aggregate_bw(), 0.6 * 117e6);
}

TEST(Pnfs, NasHeadCapsAggregateBandwidth) {
  const auto r = pnfs::RunStreamingClients(Base(pnfs::Protocol::nfs, 32));
  // Head NIC carries each byte twice: ceiling = nas_head_nic_bw / 2.
  EXPECT_LT(r.aggregate_bw(), 117e6 / 2 * 1.1);
}

TEST(Pnfs, PnfsScalesPastTheNasCeiling) {
  const auto nfs = pnfs::RunStreamingClients(Base(pnfs::Protocol::nfs, 32));
  const auto pn = pnfs::RunStreamingClients(Base(pnfs::Protocol::pnfs, 32));
  EXPECT_GT(pn.aggregate_bw(), 4.0 * nfs.aggregate_bw());
}

TEST(Pnfs, ScalingCurveIsMonotonic) {
  double prev = 0.0;
  for (std::uint32_t clients : {2u, 8u, 16u}) {
    const auto r = pnfs::RunStreamingClients(Base(pnfs::Protocol::pnfs, clients));
    EXPECT_GT(r.aggregate_bw(), prev);
    prev = r.aggregate_bw();
  }
}

TEST(Fsva, NativeIsBaseline) {
  fsva::CostModel m;
  for (const auto& w : fsva::PaperWorkloads()) {
    EXPECT_DOUBLE_EQ(fsva::Slowdown(m, fsva::Mount::native, w), 1.0);
  }
}

TEST(Fsva, SharedRingsBeatHypercalls) {
  fsva::CostModel m;
  for (const auto& w : fsva::PaperWorkloads()) {
    EXPECT_LT(fsva::Slowdown(m, fsva::Mount::fsva_shared_ring, w),
              fsva::Slowdown(m, fsva::Mount::fsva_hypercall, w));
  }
}

TEST(Fsva, SharedRingOverheadIsSmall) {
  // The report's hope: with shared-memory tricks, FSVA "need not slow
  // down applications significantly" — keep it under ~5% on every mix.
  fsva::CostModel m;
  for (const auto& w : fsva::PaperWorkloads()) {
    EXPECT_LT(fsva::Slowdown(m, fsva::Mount::fsva_shared_ring, w), 1.05)
        << w.name;
  }
}

TEST(Fsva, MetadataHeavyHurtsMost) {
  fsva::CostModel m;
  const auto loads = fsva::PaperWorkloads();
  const double meta = fsva::Slowdown(m, fsva::Mount::fsva_hypercall, loads[0]);
  const double stream = fsva::Slowdown(m, fsva::Mount::fsva_hypercall, loads[2]);
  EXPECT_GT(meta, stream);
}

TEST(Fsva, CopyCostsAppearWithoutZeroCopy) {
  fsva::CostModel m;
  m.zero_copy_grants = false;
  const auto loads = fsva::PaperWorkloads();
  fsva::CostModel zc;
  EXPECT_GT(fsva::Slowdown(m, fsva::Mount::fsva_shared_ring, loads[2]),
            fsva::Slowdown(zc, fsva::Mount::fsva_shared_ring, loads[2]));
}

}  // namespace
}  // namespace pdsi
