// Tests for the pdsi::obs analysis layer — compact-trace parsing
// (round-trip against the in-process event stream), profile aggregation
// (self time, class breakdowns, empty/instant-only edge cases), the
// deterministic log-bucketed digest cross-checked against exact sorted
// samples, critical-path extraction on crafted span graphs, and the
// golden guarantee: the same simulated scenario profiled twice through
// the trace_tool code path yields byte-identical reports.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "pdsi/common/units.h"
#include "pdsi/obs/critical_path.h"
#include "pdsi/obs/profile.h"
#include "pdsi/pfs/config.h"
#include "pdsi/workload/driver.h"

namespace pdsi {
namespace {

obs::AnalysisEvent Span(const std::string& track, const std::string& cat,
                        const std::string& name, double ts, double dur) {
  obs::AnalysisEvent e;
  e.track = track;
  e.cat = cat;
  e.name = name;
  e.ts = ts;
  e.dur = dur;
  return e;
}

// ---------------------------------------------------------------------------
// Compact-format parsing.

TEST(ParseCompactTrace, RoundTripsTracerExport) {
  obs::Tracer tr;
  tr.track(2, "oss0");
  tr.track(9, "rank3");
  tr.complete(2, "write", "disk", 0.25, 1.5,
              {obs::Arg::Int("len", 4096), obs::Arg::Num("seek_s", 0.125)});
  tr.complete(9, "lock_wait", "pfs", 0.5, 0.75);
  tr.instant(9, "evict", "bb", 2.25);

  std::ostringstream os;
  tr.write_compact(os);
  std::istringstream in(os.str());
  std::vector<obs::AnalysisEvent> parsed;
  std::string error;
  ASSERT_TRUE(obs::ParseCompactTrace(in, &parsed, &error)) << error;

  const std::vector<obs::AnalysisEvent> direct = obs::CollectEvents(tr);
  ASSERT_EQ(parsed.size(), direct.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed[i].ts, direct[i].ts, 1e-9);
    EXPECT_EQ(parsed[i].is_span(), direct[i].is_span());
    if (direct[i].is_span()) {
      EXPECT_NEAR(parsed[i].dur, direct[i].dur, 1e-9);
    }
    EXPECT_EQ(parsed[i].track, direct[i].track);
    EXPECT_EQ(parsed[i].cat, direct[i].cat);
    EXPECT_EQ(parsed[i].name, direct[i].name);
    ASSERT_EQ(parsed[i].args.size(), direct[i].args.size());
    for (std::size_t j = 0; j < parsed[i].args.size(); ++j) {
      EXPECT_EQ(parsed[i].args[j].first, direct[i].args[j].first);
      EXPECT_NEAR(parsed[i].args[j].second, direct[i].args[j].second, 1e-9);
    }
  }
}

TEST(ParseCompactTrace, ReportsTheFirstMalformedLine) {
  std::istringstream in(
      "0.100000000 t X c:a dur=0.100000000\n"
      "0.200000000 t X c:b\n");  // span without dur=
  std::vector<obs::AnalysisEvent> events;
  std::string error;
  EXPECT_FALSE(obs::ParseCompactTrace(in, &events, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::istringstream bad_phase("0.1 t Q c:a\n");
  events.clear();
  EXPECT_FALSE(obs::ParseCompactTrace(bad_phase, &events, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Profile aggregation.

TEST(Profile, EmptyTraceIsWellDefined) {
  const obs::Profile p = obs::Profile::Build({});
  EXPECT_EQ(p.n_events(), 0u);
  EXPECT_EQ(p.n_spans(), 0u);
  EXPECT_TRUE(p.spans().empty());
  EXPECT_TRUE(p.tracks().empty());
  std::ostringstream a, b;
  p.write_text(a);
  p.write_text(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str(),
            "profile: window [0.000000000, 0.000000000] 0.000000000s, "
            "0 events, 0 spans\n");
}

TEST(Profile, InstantOnlyTraceIsWellDefined) {
  obs::AnalysisEvent i1;
  i1.ts = 2.0;
  i1.track = "fault";
  i1.cat = "fault";
  i1.name = "oss_crash";
  const obs::Profile p = obs::Profile::Build({i1});
  EXPECT_EQ(p.n_events(), 1u);
  EXPECT_EQ(p.n_spans(), 0u);
  EXPECT_TRUE(p.spans().empty());
  EXPECT_TRUE(p.tracks().empty());
  EXPECT_DOUBLE_EQ(p.window_start(), 2.0);
  EXPECT_DOUBLE_EQ(p.window_end(), 2.0);
  std::ostringstream os;
  p.write_json(os);  // must not crash or divide by the zero-width window
  EXPECT_NE(os.str().find("\"events\": 1"), std::string::npos);
}

TEST(Profile, SelfTimeSubtractsDirectlyNestedSpans) {
  const std::vector<obs::AnalysisEvent> events = {
      Span("a", "c", "parent", 0.0, 10.0),
      Span("a", "c", "child", 2.0, 3.0),   // nested: [2, 5] inside [0, 10]
      Span("a", "c", "leaf", 2.5, 1.0),    // nested inside child
  };
  const obs::Profile p = obs::Profile::Build(events);
  const auto& spans = p.spans();
  ASSERT_EQ(spans.count("a c:parent"), 1u);
  ASSERT_EQ(spans.count("a c:child"), 1u);
  ASSERT_EQ(spans.count("a c:leaf"), 1u);
  EXPECT_DOUBLE_EQ(spans.at("a c:parent").self, 7.0);  // 10 - child's 3
  EXPECT_DOUBLE_EQ(spans.at("a c:child").self, 2.0);   // 3 - leaf's 1
  EXPECT_DOUBLE_EQ(spans.at("a c:leaf").self, 1.0);
  EXPECT_DOUBLE_EQ(spans.at("a c:parent").total, 10.0);
}

TEST(Profile, PartialOverlapKeepsFullSelfTime) {
  const std::vector<obs::AnalysisEvent> events = {
      Span("a", "c", "x", 0.0, 4.0),
      Span("a", "c", "y", 2.0, 4.0),  // [2, 6] straddles x's end
  };
  const obs::Profile p = obs::Profile::Build(events);
  EXPECT_DOUBLE_EQ(p.spans().at("a c:x").self, 4.0);
  EXPECT_DOUBLE_EQ(p.spans().at("a c:y").self, 4.0);
  EXPECT_DOUBLE_EQ(p.tracks().at("a").covered, 6.0);  // union [0, 6]
}

TEST(Profile, BreakdownClassifiesLockSeekTransferAndStall) {
  std::vector<obs::AnalysisEvent> events = {
      Span("oss0", "oss", "write", 0.0, 10.0),
      Span("oss0", "disk", "write", 1.0, 3.0),  // seek 1, transfer 2
      Span("rank0", "pfs", "lock_wait", 0.0, 2.0),
      Span("ckpt", "ckpt", "stall", 0.0, 4.0),
  };
  events[1].args.emplace_back("seek_s", 1.0);
  const obs::Profile p = obs::Profile::Build(events);
  const double window = p.window_end() - p.window_start();
  EXPECT_DOUBLE_EQ(window, 10.0);

  const obs::TrackBreakdown& oss = p.tracks().at("oss0");
  EXPECT_DOUBLE_EQ(oss.seek, 1.0);
  EXPECT_DOUBLE_EQ(oss.transfer, 2.0);
  EXPECT_DOUBLE_EQ(oss.covered, 10.0);
  EXPECT_DOUBLE_EQ(oss.busy, 7.0);  // covered minus the disk split
  EXPECT_DOUBLE_EQ(oss.idle, 0.0);

  const obs::TrackBreakdown& rank = p.tracks().at("rank0");
  EXPECT_DOUBLE_EQ(rank.lock_wait, 2.0);
  EXPECT_DOUBLE_EQ(rank.busy, 0.0);
  EXPECT_DOUBLE_EQ(rank.idle, 8.0);

  const obs::TrackBreakdown& ckpt = p.tracks().at("ckpt");
  EXPECT_DOUBLE_EQ(ckpt.stall, 4.0);
  EXPECT_DOUBLE_EQ(ckpt.busy, 0.0);
}

TEST(Profile, UtilizationTimelineIsCoveredFractionPerBin) {
  obs::ProfileOptions opts;
  opts.timeline_bins = 4;
  // Window [0, 8], two bins fully covered, two empty.
  const std::vector<obs::AnalysisEvent> events = {
      Span("a", "c", "x", 0.0, 4.0),
      Span("b", "c", "marker", 8.0, 0.0),  // stretches the window
  };
  const obs::Profile p = obs::Profile::Build(events, opts);
  const auto& u = p.tracks().at("a").utilization;
  ASSERT_EQ(u.size(), 4u);
  EXPECT_DOUBLE_EQ(u[0], 1.0);
  EXPECT_DOUBLE_EQ(u[1], 1.0);
  EXPECT_DOUBLE_EQ(u[2], 0.0);
  EXPECT_DOUBLE_EQ(u[3], 0.0);
}

// ---------------------------------------------------------------------------
// Digest quantiles vs exact sorted samples.

TEST(LogDigest, QuantilesTrackExactSortedSamples) {
  obs::LogDigest d;
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(i * i % 997 + 1) * 1e-3;
    d.add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  ASSERT_EQ(d.count(), 1000u);
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const double est = d.quantile(q);
    // Bucket resolution is 2^(1/8)-1 ≈ 9% relative; allow the rank
    // convention another neighbouring-sample of slack.
    EXPECT_NEAR(est, exact, 0.15 * exact + 1e-6)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LogDigest, DeterministicAndHandlesEdgeCases) {
  obs::LogDigest a, b;
  for (const double v : {0.0, -1.0, 1e-12, 0.5, 1.0, 2.0, 1e12}) {
    a.add(v);
    b.add(v);
  }
  for (const double q : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 0.0);  // zero bucket holds 0 and -1
  obs::LogDigest empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Critical path.

TEST(CriticalPath, WalksBackwardsAcrossTracksAndAccountsWaits) {
  const std::vector<obs::AnalysisEvent> events = {
      Span("a", "w", "x", 0.0, 1.0),   // end 1.0
      Span("b", "w", "y", 1.5, 1.5),   // end 3.0, waited 0.5 on x
      Span("a", "w", "x", 3.0, 1.0),   // end 4.0 — the terminal span
  };
  const obs::CriticalPathResult cp = obs::ExtractCriticalPath(events);
  ASSERT_EQ(cp.steps.size(), 3u);
  EXPECT_EQ(cp.steps[0].ev.track, "a");
  EXPECT_EQ(cp.steps[1].ev.track, "b");
  EXPECT_EQ(cp.steps[2].ev.track, "a");
  EXPECT_DOUBLE_EQ(cp.makespan, 4.0);
  EXPECT_DOUBLE_EQ(cp.span_seconds, 3.5);
  EXPECT_DOUBLE_EQ(cp.wait_seconds, 0.5);
  EXPECT_DOUBLE_EQ(cp.steps[1].wait_s, 0.5);

  const auto kinds = cp.by_kind();
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0].first, "w:x");  // 2.0s beats y's 1.5s
  EXPECT_DOUBLE_EQ(kinds[0].second, 2.0);
  EXPECT_DOUBLE_EQ(kinds[1].second, 1.5);
}

TEST(CriticalPath, PrefersSameTrackPredecessorOnEqualEnds) {
  const std::vector<obs::AnalysisEvent> events = {
      Span("a", "w", "x", 0.0, 1.0),  // end 1.0, other track
      Span("b", "w", "z", 0.0, 1.0),  // end 1.0, same track as the next step
      Span("b", "w", "y", 1.5, 1.5),  // end 3.0 — terminal
  };
  const obs::CriticalPathResult cp = obs::ExtractCriticalPath(events);
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_EQ(cp.steps[0].ev.name, "z");  // program order continues the chain
  EXPECT_EQ(cp.steps[1].ev.name, "y");
}

TEST(CriticalPath, EmptyAndInstantOnlyTracesYieldEmptyPaths) {
  EXPECT_TRUE(obs::ExtractCriticalPath({}).steps.empty());
  obs::AnalysisEvent inst;
  inst.ts = 1.0;
  inst.track = "t";
  EXPECT_TRUE(obs::ExtractCriticalPath({inst}).steps.empty());
  std::ostringstream os;
  obs::ExtractCriticalPath({}).write_text(os);
  EXPECT_NE(os.str().find("0 steps"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden guarantee: profiling an instrumented fig08-style scenario twice
// through the trace_tool code path (compact export -> parse -> profile ->
// text) produces byte-identical reports.

std::string GoldenProfileReport() {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  const pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  const workload::CheckpointSpec spec{workload::Pattern::n1_strided, 4,
                                      47 * KiB, 8};
  workload::RunDirectCheckpoint(cfg, spec, nullptr, &ctx);

  std::ostringstream compact;
  tr.write_compact(compact);
  std::istringstream in(compact.str());
  std::vector<obs::AnalysisEvent> events;
  std::string error;
  EXPECT_TRUE(obs::ParseCompactTrace(in, &events, &error)) << error;

  std::ostringstream report;
  const obs::Profile p = obs::Profile::Build(events);
  p.write_text(report);
  p.write_json(report);
  const obs::CriticalPathResult cp = obs::ExtractCriticalPath(events);
  cp.write_text(report);
  cp.write_json(report);
  return report.str();
}

TEST(GoldenProfile, Fig08ScenarioReportIsByteIdenticalAcrossRuns) {
  const std::string a = GoldenProfileReport();
  const std::string b = GoldenProfileReport();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The direct N-1 run must surface the contended-lock signature the
  // EXPERIMENTS.md walkthrough reads off the profile.
  EXPECT_NE(a.find("pfs:lock_wait"), std::string::npos);
  EXPECT_NE(a.find("oss:write"), std::string::npos);
}

TEST(GoldenProfile, InProcessAndParsedProfilesAgreeOnStructure) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  const pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(2);
  const workload::CheckpointSpec spec{workload::Pattern::n1_strided, 2,
                                      13 * KiB, 4};
  workload::RunDirectCheckpoint(cfg, spec, nullptr, &ctx);

  const obs::Profile direct = obs::Profile::Build(obs::CollectEvents(tr));
  std::ostringstream compact;
  tr.write_compact(compact);
  std::istringstream in(compact.str());
  std::vector<obs::AnalysisEvent> events;
  std::string error;
  ASSERT_TRUE(obs::ParseCompactTrace(in, &events, &error)) << error;
  const obs::Profile parsed = obs::Profile::Build(events);

  EXPECT_EQ(direct.n_events(), parsed.n_events());
  EXPECT_EQ(direct.n_spans(), parsed.n_spans());
  ASSERT_EQ(direct.spans().size(), parsed.spans().size());
  auto d = direct.spans().begin();
  auto q = parsed.spans().begin();
  for (; d != direct.spans().end(); ++d, ++q) {
    EXPECT_EQ(d->first, q->first);
    EXPECT_EQ(d->second.count, q->second.count);
    // The compact format rounds timestamps to 1ns; totals agree to that.
    EXPECT_NEAR(d->second.total, q->second.total,
                1e-9 * static_cast<double>(d->second.count) + 1e-12);
  }
}

}  // namespace
}  // namespace pdsi
