// Incast simulation tests: conservation, baseline efficiency, the
// goodput-collapse onset, and the RTO-min fix — the Fig. 9 mechanics.
#include <gtest/gtest.h>

#include "pdsi/incast/incast.h"

namespace pdsi::incast {
namespace {

IncastParams Base1GE(std::uint32_t senders) {
  IncastParams p;
  p.senders = senders;
  p.sru_bytes = 256 * 1024;
  p.blocks = 3;
  p.link_bw_bytes = 125e6;   // 1GE
  p.buffer_packets = 64;
  return p;
}

TEST(Incast, AllDataDelivered) {
  const auto p = Base1GE(4);
  const auto r = SimulateIncast(p);
  const std::uint64_t pkts_per_sru = (p.sru_bytes + p.mss_bytes - 1) / p.mss_bytes;
  EXPECT_EQ(r.packets_delivered, pkts_per_sru * p.senders * p.blocks);
  EXPECT_GT(r.duration_s, 0.0);
}

TEST(Incast, FewSendersRunNearLineRate) {
  const auto r = SimulateIncast(Base1GE(3));
  EXPECT_GT(r.goodput_bytes, 0.70 * 125e6);
  EXPECT_EQ(r.timeouts, 0u);
}

TEST(Incast, ManySendersCollapseWith200msRto) {
  const auto few = SimulateIncast(Base1GE(3));
  const auto many = SimulateIncast(Base1GE(40));
  EXPECT_GT(many.timeouts, 0u);
  EXPECT_GT(many.drops, 0u);
  // Order-of-magnitude goodput collapse (paper: ~900 Mbps to < 100 Mbps).
  EXPECT_LT(many.goodput_bytes, few.goodput_bytes / 5.0);
}

TEST(Incast, CollapseWorsensWithSenders) {
  const auto a = SimulateIncast(Base1GE(8));
  const auto b = SimulateIncast(Base1GE(32));
  EXPECT_GE(b.timeouts, a.timeouts);
}

TEST(Incast, SmallMinRtoRestoresGoodput) {
  auto broken = Base1GE(40);
  auto fixed = Base1GE(40);
  fixed.min_rto_s = 1e-3;
  fixed.rto_jitter = 0.5;
  const auto r_broken = SimulateIncast(broken);
  const auto r_fixed = SimulateIncast(fixed);
  EXPECT_GT(r_fixed.goodput_bytes, 4.0 * r_broken.goodput_bytes);
  EXPECT_GT(r_fixed.goodput_bytes, 0.5 * 125e6);
}

TEST(Incast, BiggerBuffersDelayOnset) {
  auto small = Base1GE(24);
  small.buffer_packets = 32;
  auto big = Base1GE(24);
  big.buffer_packets = 1024;
  const auto r_small = SimulateIncast(small);
  const auto r_big = SimulateIncast(big);
  EXPECT_GT(r_big.goodput_bytes, r_small.goodput_bytes);
  EXPECT_LT(r_big.timeouts, r_small.timeouts);
}

TEST(Incast, DeterministicForFixedSeed) {
  const auto a = SimulateIncast(Base1GE(16));
  const auto b = SimulateIncast(Base1GE(16));
  EXPECT_DOUBLE_EQ(a.goodput_bytes, b.goodput_bytes);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

TEST(Incast, TenGigWithManySendersNeedsJitterToo) {
  // SIGCOMM'09: at 10GE scale with hundreds of senders, even a 1 ms RTO
  // needs desynchronisation (randomness) to avoid synchronized
  // retransmission storms.
  IncastParams p;
  p.senders = 256;
  p.sru_bytes = 32 * 1024;
  p.blocks = 2;
  p.link_bw_bytes = 1250e6;  // 10GE
  p.buffer_packets = 256;
  p.min_rto_s = 1e-3;
  p.rto_jitter = 0.0;
  const auto plain = SimulateIncast(p);
  p.rto_jitter = 0.5;
  const auto jittered = SimulateIncast(p);
  EXPECT_GE(jittered.goodput_bytes, plain.goodput_bytes * 0.95);
  EXPECT_GT(jittered.goodput_bytes, 0.2 * 1250e6);
}

}  // namespace
}  // namespace pdsi::incast
