// Failure module tests: trace generator embodies the published findings,
// analysis functions recover them, the MTTI/utilisation models match the
// paper's qualitative claims, and the event-driven checkpoint simulator
// agrees with the analytic utilisation formula.
#include <gtest/gtest.h>

#include "pdsi/common/units.h"
#include "pdsi/failure/checkpoint_sim.h"
#include "pdsi/failure/model.h"
#include "pdsi/failure/trace.h"

namespace pdsi::failure {
namespace {

TEST(Trace, EventCountTracksRateAndSize) {
  SystemTraceParams p;
  p.nodes = 512;
  p.chips_per_node = 2;
  p.years = 4.0;
  p.interrupts_per_chip_year = 0.25;
  p.ageing_per_year = 1.0;        // flat hazard for count check
  p.tbf_weibull_shape = 1.0;      // Poisson (no renewal-transient excess)
  p.burst_probability = 0.0;      // no correlated follow-ups
  Rng rng(11);
  auto trace = GenerateTrace(p, rng);
  const double expect = 512 * 2 * 0.25 * 4.0;
  EXPECT_NEAR(static_cast<double>(trace.size()), expect, 0.15 * expect);
}

TEST(Trace, SortedAndWithinHorizon) {
  SystemTraceParams p;
  p.nodes = 64;
  p.years = 2.0;
  Rng rng(13);
  auto trace = GenerateTrace(p, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time, trace[i].time);
  }
  for (const auto& e : trace) {
    EXPECT_LT(e.time, p.years * kYear);
    EXPECT_LT(e.node, p.nodes);
    EXPECT_GT(e.repair_seconds, 0.0);
  }
}

TEST(Trace, NoInfantMortalityReplacementRatesGrowWithAge) {
  // The FAST'07 headline: no bathtub — annual replacement rates increase
  // steadily with deployment age.
  SystemTraceParams p;
  p.nodes = 2048;
  p.years = 5.0;
  p.ageing_per_year = 1.15;
  p.tbf_weibull_shape = 1.0;  // isolate the ageing effect from the
                              // DFR-renewal start-up transient
  Rng rng(17);
  auto rates = AnnualRatePerNode(GenerateTrace(p, rng), p);
  ASSERT_EQ(rates.size(), 5u);
  EXPECT_GT(rates[4], rates[0] * 1.3);
  // Monotone up to sampling noise: each year at least 95% of previous.
  for (std::size_t y = 1; y < rates.size(); ++y) {
    EXPECT_GT(rates[y], 0.95 * rates[y - 1]) << "year " << y;
  }
}

TEST(Trace, TimeBetweenFailuresHasWeibullShapeBelowOne) {
  SystemTraceParams p;
  p.nodes = 256;
  p.years = 5.0;
  p.ageing_per_year = 1.0;  // isolate burstiness from ageing
  Rng rng(19);
  auto fit = FitTimeBetweenFailures(GenerateTrace(p, rng));
  EXPECT_TRUE(fit.converged);
  // System-wide interleaving of per-node Weibull renewals with ageing
  // produces a decreasing-hazard (shape < 1) aggregate, as published.
  EXPECT_LT(fit.shape, 1.0);
  EXPECT_GT(fit.shape, 0.4);
}

TEST(MttiModel, InterruptsLinearInChips) {
  MttiModel m;
  const double y = 2010.0;
  MttiModelParams p2 = m.params();
  p2.interrupts_per_chip_year *= 2.0;
  MttiModel m2(p2);
  EXPECT_NEAR(m2.interrupt_rate(y) / m.interrupt_rate(y), 2.0, 1e-9);
  EXPECT_NEAR(m.mtti_seconds(y) * m.interrupt_rate(y), 1.0, 1e-12);
}

TEST(MttiModel, MttiFallsAsMachinesGrow) {
  MttiModel m;
  EXPECT_GT(m.mtti_seconds(2008), m.mtti_seconds(2012));
  EXPECT_GT(m.mtti_seconds(2012), m.mtti_seconds(2018));
  // ~52 minutes for the 2008 petaflop baseline (0.1/chip-year, 100k chips).
  EXPECT_NEAR(m.mtti_seconds(2008) / kMinute, 52.0, 6.0);
}

TEST(MttiModel, SlowerChipsMeanMoreChipsAndWorseMtti) {
  MttiModelParams fast;
  fast.chip_doubling_months = 18.0;
  MttiModelParams slow = fast;
  slow.chip_doubling_months = 30.0;
  MttiModel mf(fast), ms(slow);
  EXPECT_LT(ms.mtti_seconds(2015), mf.mtti_seconds(2015));
}

TEST(Daly, OptimalIntervalBeatsNeighbours) {
  const double delta = 300.0, mtti = 6.0 * kHour, restart = 600.0;
  const double tau = YoungOptimalInterval(delta, mtti);
  const double at = EffectiveUtilization(tau, delta, mtti, restart);
  EXPECT_GT(at, EffectiveUtilization(tau / 4.0, delta, mtti, restart));
  EXPECT_GT(at, EffectiveUtilization(tau * 4.0, delta, mtti, restart));
  EXPECT_GT(at, 0.5);
  EXPECT_LT(at, 1.0);
}

TEST(UtilizationModel, BalancedCrossesBelowHalfBeforeMid2010s) {
  UtilizationModel m;
  const double year = m.year_crossing_below(0.5, StorageScenario::balanced);
  // Paper: "effective application utilization may cross under 50% before
  // 2014" for balanced systems (with conservative chip scaling).
  EXPECT_GT(year, 2009.0);
  EXPECT_LT(year, 2017.0);
}

TEST(UtilizationModel, DiskTrendIsWorseAndCompressionIsBetter) {
  UtilizationModel m;
  const double y = 2012.0;
  EXPECT_LT(m.utilization(y, StorageScenario::disk_trend),
            m.utilization(y, StorageScenario::balanced));
  EXPECT_GT(m.utilization(y, StorageScenario::compression),
            m.utilization(y, StorageScenario::balanced));
  // Per-year checkpoint cost ordering matches.
  EXPECT_GT(m.checkpoint_seconds(y, StorageScenario::disk_trend),
            m.checkpoint_seconds(y, StorageScenario::balanced));
}

TEST(UtilizationModel, CompressionRescuesUtilization) {
  // Paper: 25-50%/yr better compression "makes the problem go away".
  UtilizationModel m;
  const double cross =
      m.year_crossing_below(0.5, StorageScenario::compression);
  EXPECT_GT(cross,
            m.year_crossing_below(0.5, StorageScenario::balanced) + 3.0);
}

TEST(UtilizationModel, ProcessPairsTakeOverNearTheFiftyPercentWall) {
  UtilizationModel m;
  // Early on, checkpointing beats burning half the machine...
  EXPECT_GT(m.utilization(2008, StorageScenario::balanced),
            m.pairs_utilization(2008, StorageScenario::balanced));
  // ...but pairs stay pinned near 50% while checkpointing collapses.
  EXPECT_LT(m.utilization(2016, StorageScenario::balanced),
            m.pairs_utilization(2016, StorageScenario::balanced));
  const double cross = m.year_pairs_win(StorageScenario::balanced);
  const double wall = m.year_crossing_below(0.5, StorageScenario::balanced);
  EXPECT_NEAR(cross, wall, 1.5);
  EXPECT_LT(m.pairs_utilization(2016, StorageScenario::balanced), 0.5);
}

TEST(CheckpointSim, MatchesAnalyticUtilization) {
  CheckpointSimParams p;
  p.work_seconds = 200.0 * 24 * 3600;
  p.checkpoint_seconds = 300.0;
  p.restart_seconds = 600.0;
  p.mtti_seconds = 12.0 * kHour;
  p.interval = YoungOptimalInterval(p.checkpoint_seconds, p.mtti_seconds);
  Rng rng(23);
  const auto sim = SimulateCheckpointing(p, rng);
  const double analytic = EffectiveUtilization(p.interval, p.checkpoint_seconds,
                                               p.mtti_seconds, p.restart_seconds);
  EXPECT_GT(sim.failures, 50u);
  EXPECT_NEAR(sim.utilization, analytic, 0.08);
}

TEST(CheckpointSim, ShorterMttiHurts) {
  CheckpointSimParams p;
  p.work_seconds = 60.0 * 24 * 3600;
  p.interval = 1800.0;
  p.checkpoint_seconds = 120.0;
  Rng a(29), b(29);
  p.mtti_seconds = 24 * kHour;
  const auto healthy = SimulateCheckpointing(p, a);
  p.mtti_seconds = 2 * kHour;
  const auto sick = SimulateCheckpointing(p, b);
  EXPECT_GT(healthy.utilization, sick.utilization);
  EXPECT_GT(sick.failures, healthy.failures);
}

TEST(CheckpointSim, CompletesEvenUnderHarshFailures) {
  CheckpointSimParams p;
  p.work_seconds = 24 * 3600.0;
  p.interval = 600.0;
  p.checkpoint_seconds = 60.0;
  p.restart_seconds = 120.0;
  p.mtti_seconds = 1800.0;
  Rng rng(31);
  const auto r = SimulateCheckpointing(p, rng);
  EXPECT_GT(r.wall_seconds, p.work_seconds);
  EXPECT_LT(r.utilization, 0.75);
  EXPECT_GT(r.utilization, 0.0);
}

}  // namespace
}  // namespace pdsi::failure
