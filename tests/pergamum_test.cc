// Archive power-management tests: energy accounting invariants and the
// three published findings (grouping saves power, more disks can save
// power, placement stops mattering at very low rates).
#include <gtest/gtest.h>

#include "pdsi/pergamum/pergamum.h"

namespace pdsi::pergamum {
namespace {

ArchiveParams Base() {
  ArchiveParams p;
  p.disks = 16;
  p.groups = 64;
  p.burst_rate_per_hour = 6.0;
  p.duration_hours = 24.0;
  return p;
}

TEST(Archive, EnergyBounds) {
  auto p = Base();
  const auto r = RunArchive(p);
  // Floor: everything asleep the whole day. Ceiling: everything spinning.
  const double floor_wh = p.disks * p.power.standby_w * p.duration_hours;
  const double ceil_wh = p.disks * p.power.active_w * p.duration_hours +
                         r.spinups * p.power.spinup_j / 3600.0;
  EXPECT_GT(r.energy_wh, floor_wh);
  EXPECT_LT(r.energy_wh, ceil_wh);
  EXPECT_GT(r.requests, 100u);
  EXPECT_GE(r.mean_disks_spinning, 0.0);
  EXPECT_LE(r.mean_disks_spinning, p.disks);
}

TEST(Archive, Deterministic) {
  const auto a = RunArchive(Base());
  const auto b = RunArchive(Base());
  EXPECT_DOUBLE_EQ(a.energy_wh, b.energy_wh);
  EXPECT_EQ(a.spinups, b.spinups);
}

TEST(Archive, GroupingSavesEnergyAndWakes) {
  auto grouped = Base();
  grouped.placement = Placement::grouped;
  auto scattered = Base();
  scattered.placement = Placement::scattered;
  const auto g = RunArchive(grouped);
  const auto s = RunArchive(scattered);
  // A scattered burst wakes many spindles; a grouped burst wakes one.
  EXPECT_LT(g.spinups * 3, s.spinups);
  EXPECT_LT(g.energy_wh, 0.8 * s.energy_wh);
  // Grouping also hides spin-up latency after the first hit of a burst.
  EXPECT_LT(g.mean_latency_s, s.mean_latency_s);
}

TEST(Archive, MoreSmallerDevicesCanSavePower) {
  // Adams MASCOTS'10: "situations where utilizing more devices ... may
  // counter-intuitively save power." The situation: replace few large
  // 3.5" spindles with many small 2.5" ones at equal capacity — each
  // burst still wakes one (cheaper) spindle and the rest sleep at a
  // lower floor, despite quadrupling the device count.
  auto few = Base();
  few.placement = Placement::grouped;
  few.disks = 4;
  few.burst_rate_per_hour = 30.0;  // few big disks barely get to sleep
  auto many = few;
  many.disks = 16;
  many.power.active_w = 2.5;
  many.power.standby_w = 0.15;
  many.power.spinup_j = 35.0;
  many.power.spinup_s = 5.0;
  const auto f = RunArchive(few);
  const auto m = RunArchive(many);
  EXPECT_LT(m.energy_wh, f.energy_wh);
  EXPECT_LT(m.mean_latency_s, f.mean_latency_s);
}

TEST(Archive, PlacementIrrelevantAtVeryLowRates) {
  auto grouped = Base();
  grouped.placement = Placement::grouped;
  grouped.burst_rate_per_hour = 0.05;  // a burst every ~20 hours
  auto scattered = grouped;
  scattered.placement = Placement::scattered;
  const auto g = RunArchive(grouped);
  const auto s = RunArchive(scattered);
  // Standby power dominates: within a few percent of each other.
  EXPECT_NEAR(g.energy_wh / s.energy_wh, 1.0, 0.05);
}

TEST(Archive, SpinDownTimeoutTradesEnergyForLatency) {
  auto eager = Base();
  eager.power.idle_timeout_s = 5.0;
  auto lazy = Base();
  lazy.power.idle_timeout_s = 1800.0;
  const auto e = RunArchive(eager);
  const auto l = RunArchive(lazy);
  EXPECT_GT(e.spinups, l.spinups);
  EXPECT_LT(e.mean_disks_spinning, l.mean_disks_spinning);
}

}  // namespace
}  // namespace pdsi::pergamum
