// Argon tests: standalone baselines, FIFO interference, time-slice
// insulation with a small guard band, and multi-server co-scheduling.
#include <gtest/gtest.h>

#include <algorithm>

#include "pdsi/argon/argon.h"
#include "pdsi/common/units.h"

namespace pdsi::argon {
namespace {

JobSpec Streamer() {
  JobSpec j;
  j.kind = JobKind::streamer;
  j.chunk_bytes = 512 * KiB;
  return j;
}

JobSpec Scanner() {
  JobSpec j;
  j.kind = JobKind::scanner;
  j.outstanding_per_server = 8;
  j.request_bytes = 16 * KiB;
  return j;
}

ArgonParams Base(std::uint32_t servers, Scheduler sched, bool cosched = true) {
  ArgonParams p;
  p.servers = servers;
  p.scheduler = sched;
  p.coscheduled = cosched;
  p.quantum_s = 0.15;
  p.duration_s = 20.0;
  p.jobs = {Streamer(), Scanner()};
  return p;
}

TEST(Argon, StandaloneStreamerNearsMediaRate) {
  const auto alone = RunAlone(Base(1, Scheduler::fifo), Streamer());
  EXPECT_GT(alone.throughput, 0.85 * 80e6);
}

TEST(Argon, StandaloneScannerIsSeekBound) {
  const auto alone = RunAlone(Base(1, Scheduler::fifo), Scanner());
  // ~90 IOPS * 16 KiB ~ 1.5 MB/s.
  EXPECT_LT(alone.throughput, 4e6);
  EXPECT_GT(alone.requests, 500u);
}

TEST(Argon, FifoShreddsTheStreamer) {
  const auto p = Base(1, Scheduler::fifo);
  const auto shared = RunArgon(p);
  const auto alone = RunAlone(p, Streamer());
  // Far below its fair half-share.
  EXPECT_LT(shared.jobs[0].throughput, 0.25 * alone.throughput);
}

TEST(Argon, TimesliceInsulatesBothJobs) {
  const auto p = Base(1, Scheduler::timeslice);
  const auto shared = RunArgon(p);
  const auto stream_alone = RunAlone(p, Streamer());
  const auto scan_alone = RunAlone(p, Scanner());
  // Each job gets at least (share - guard band) of its standalone rate:
  // half share with a <= 10 % guard band => >= 0.45.
  EXPECT_GT(shared.jobs[0].throughput, 0.45 * stream_alone.throughput);
  EXPECT_GT(shared.jobs[1].throughput, 0.45 * scan_alone.throughput);
}

TEST(Argon, TimesliceLiftsTheWorstOffJob) {
  // Insulation is a per-job guarantee: the *minimum* normalised share is
  // what Argon improves (under FIFO the scanner's deep queue wins and the
  // streamer is starved far below its share).
  auto min_share = [](Scheduler sched) {
    const auto p = Base(1, sched);
    const auto shared = RunArgon(p);
    const auto stream_alone = RunAlone(p, Streamer());
    const auto scan_alone = RunAlone(p, Scanner());
    return std::min(shared.jobs[0].throughput / stream_alone.throughput,
                    shared.jobs[1].throughput / scan_alone.throughput);
  };
  const double fifo = min_share(Scheduler::fifo);
  const double sliced = min_share(Scheduler::timeslice);
  EXPECT_LT(fifo, 0.25);
  EXPECT_GT(sliced, 0.4);
  EXPECT_GT(sliced, 2.0 * fifo);
}

TEST(Argon, CoschedulingBeatsUncoordinatedSlices) {
  const auto co = RunArgon(Base(4, Scheduler::timeslice, true));
  const auto unco = RunArgon(Base(4, Scheduler::timeslice, false));
  // The striped streamer waits on the slowest server; misaligned slices
  // stall whole rounds.
  EXPECT_GT(co.jobs[0].throughput, 1.3 * unco.jobs[0].throughput);
}

TEST(Argon, CoscheduledStripedStreamerNearsItsShare) {
  // With slices long enough to amortise boundary spill, the striped
  // streamer should get ~90% of its half share (paper: "about 90% of the
  // best case performance").
  auto p = Base(4, Scheduler::timeslice, true);
  p.quantum_s = 0.3;
  const auto shared = RunArgon(p);
  const auto alone = RunAlone(p, Streamer());
  // Striped rounds spanning slice boundaries cost more than the paper's
  // single-server guard band; we require >= 80% of the half share here
  // (the fig10 bench reports the exact efficiencies).
  EXPECT_GT(shared.jobs[0].throughput, 0.40 * alone.throughput);
}

TEST(Argon, DeterministicRuns) {
  const auto a = RunArgon(Base(2, Scheduler::timeslice));
  const auto b = RunArgon(Base(2, Scheduler::timeslice));
  EXPECT_EQ(a.jobs[0].bytes, b.jobs[0].bytes);
  EXPECT_EQ(a.jobs[1].bytes, b.jobs[1].bytes);
}

}  // namespace
}  // namespace pdsi::argon
