// Tests for the disk and SSD (FTL) models, including calibration checks
// against the published Table 1 rates and the Fig. 14 collapse mechanics.
#include <gtest/gtest.h>

#include <cmath>

#include "pdsi/common/rng.h"
#include "pdsi/common/units.h"
#include "pdsi/storage/device_catalog.h"
#include "pdsi/storage/disk_model.h"
#include "pdsi/storage/ssd_model.h"

namespace pdsi::storage {
namespace {

TEST(DiskModel, SequentialIsCheaperThanRandom) {
  DiskModel d(ReferenceSataDisk());
  const double first = d.access(1, 0, 64 * KiB);
  const double seq = d.access(1, 64 * KiB, 64 * KiB);
  const double rand = d.access(1, 10 * MiB, 64 * KiB);
  EXPECT_LT(seq, rand);
  EXPECT_GT(first, seq);  // first access pays positioning
  EXPECT_GT(rand / seq, 5.0);
}

TEST(DiskModel, CrossObjectSeekCostsMoreThanSameObject) {
  DiskModel d(ReferenceSataDisk());
  d.access(1, 0, 4 * KiB);
  const double near = d.access(1, 1 * MiB, 4 * KiB);
  d.access(2, 0, 4 * KiB);
  const double far = d.access(3, 0, 4 * KiB);
  EXPECT_LT(near, far);
}

TEST(DiskModel, ReferenceDiskIsAbout90Iops) {
  DiskModel d(ReferenceSataDisk());
  Rng rng(3);
  double t = 0.0;
  const int n = 1000;
  const std::uint64_t span = d.params().capacity_bytes;  // whole-device random
  for (int i = 0; i < n; ++i) {
    t += d.access(1, rng.below(span / 4096) * 4096, 4 * KiB);
  }
  const double iops = n / t;
  EXPECT_GT(iops, 60.0);
  EXPECT_LT(iops, 130.0);
}

TEST(DiskModel, ShortSeeksCheaperThanFullStroke) {
  DiskModel d(ReferenceSataDisk());
  d.access(1, 0, 4096);
  const double near = d.access(1, 8 * MiB, 4096);
  d.access(1, 0, 4096);
  const double far = d.access(1, d.params().capacity_bytes / 2, 4096);
  EXPECT_LT(near, far);
}

TEST(DiskModel, StreamingHitsMediaRate) {
  DiskModel d(ReferenceSataDisk());
  double t = d.access(1, 0, 1 * MiB);
  for (int i = 1; i < 100; ++i) t += d.access(1, i * MiB, 1 * MiB);
  const double bw = 100.0 * MiB / t;
  EXPECT_GT(bw, 0.9 * d.params().seq_bw_bytes);
}

TEST(DiskModel, TracksSequentialityStats) {
  DiskModel d;
  d.access(1, 0, 4096);
  d.access(1, 4096, 4096);
  d.access(1, 0, 4096);
  EXPECT_EQ(d.total_requests(), 3u);
  EXPECT_EQ(d.sequential_requests(), 1u);
}

class FlashTable1 : public ::testing::TestWithParam<SsdParams> {};

// Sequential bandwidth within ~25% of the Table 1 ratings.
TEST_P(FlashTable1, SequentialBandwidthMatchesRating) {
  SsdModel ssd(GetParam());
  const std::uint64_t chunk = 1 * MiB;
  const std::uint64_t total = ssd.params().capacity_bytes / 2;
  double tw = 0.0;
  for (std::uint64_t off = 0; off < total; off += chunk) tw += ssd.write(off, chunk);
  double tr = 0.0;
  for (std::uint64_t off = 0; off < total; off += chunk) tr += ssd.read(off, chunk);
  const double wbw = static_cast<double>(total) / tw;
  const double rbw = static_cast<double>(total) / tr;
  const double rated_r = ssd.params().interface_read_bw;
  const double rated_w = ssd.params().interface_write_bw;
  EXPECT_GT(rbw, 0.70 * rated_r) << ssd.params().name;
  EXPECT_LT(rbw, 1.05 * rated_r) << ssd.params().name;
  EXPECT_GT(wbw, 0.55 * rated_w) << ssd.params().name;
  EXPECT_LT(wbw, 1.05 * rated_w) << ssd.params().name;
}

// Fresh-device random 4K read IOPS within a factor of the rating.
TEST_P(FlashTable1, RandomReadIopsMatchesRating) {
  SsdModel ssd(GetParam());
  // Expected from the model directly: 1 / (cmd + one-page read).
  const double expect = 1e6 / (GetParam().cmd_overhead_us + GetParam().read_page_us);
  std::uint64_t pos = 0;
  double t = 0.0;
  const int n = 2000;
  const std::uint64_t span = ssd.params().capacity_bytes - 4096;
  for (int i = 0; i < n; ++i) {
    pos = (pos + 2654435761ULL * 4096) % span;
    t += ssd.read(pos / 4096 * 4096, 4096);
  }
  EXPECT_NEAR(n / t, expect, 0.05 * expect) << ssd.params().name;
}

INSTANTIATE_TEST_SUITE_P(AllDevices, FlashTable1,
                         ::testing::ValuesIn(AllFlashDevices()),
                         [](const auto& param_info) {
                           std::string n = param_info.param.name;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

TEST(SsdModel, RandomReadsVastlyOutpaceDiskIops) {
  SsdModel ssd(FlashDevice("intel-x25m"));
  const double t = ssd.read(0, 4096);
  EXPECT_GT(1.0 / t, 10000.0);  // vs ~90 for the reference disk
}

TEST(SsdModel, SataEraRandomWritesSlowerThanReads) {
  SsdModel ssd(FlashDevice("intel-x25m"));
  const std::uint64_t span = ssd.params().capacity_bytes;
  double tr = 0.0, tw = 0.0;
  std::uint64_t pos = 0;
  for (int i = 0; i < 500; ++i) {
    pos = (pos + 2654435761ULL * 4096) % (span - 4096);
    const std::uint64_t a = pos / 4096 * 4096;
    tr += ssd.read(a, 4096);
    tw += ssd.write(a, 4096);
  }
  EXPECT_GT(tw / tr, 5.0);  // 19.1K read vs 1.49K write IOPS => ~13x
}

TEST(SsdModel, SubPageWritesNoCheaperThanFullPage) {
  // Report finding (3): random writes "worse for sizes smaller than 4 KB" —
  // a 512 B write still programs a whole page.
  SsdModel ssd(FlashDevice("fusionio-iodrive-duo"));
  const double small = ssd.write(0, 512);
  const double full = ssd.write(8192, 4096);
  EXPECT_GE(small, 0.999 * full);
}

// A deliberately low-over-provision page-mapped device: isolates the FTL
// erase-pool mechanics from interface caps and hybrid-FTL penalties.
SsdParams CollapseProneDevice(std::uint64_t capacity) {
  SsdParams p;
  p.name = "lowop-mlc";
  p.capacity_bytes = capacity;
  p.over_provision = 0.06;
  p.channels = 8;
  p.read_page_us = 25.0;
  p.program_page_us = 200.0;
  p.cmd_overhead_us = 20.0;
  p.gc_low_watermark = 0.02;
  return p;
}

TEST(SsdModel, SustainedRandomWriteCollapses) {
  // Fig. 11/14 mechanism: after the pre-erased pool is depleted, every
  // host write drags garbage-collection relocations behind it and
  // throughput collapses (paper: roughly 10x slower).
  SsdParams p = CollapseProneDevice(256 * MiB);
  SsdModel ssd(p);
  Rng rng(5);
  const std::uint64_t pages = p.capacity_bytes / 4096;  // full logical span
  auto burst = [&](int n) {
    double t = 0.0;
    for (int i = 0; i < n; ++i) t += ssd.write(rng.below(pages) * 4096, 4096);
    return n / t;
  };
  const double fresh_iops = burst(2000);
  // Hammer until well past device fill (forces steady-state GC).
  burst(static_cast<int>(pages) * 2);
  const auto before = ssd.stats();
  const double steady_iops = burst(20000);
  const auto after = ssd.stats();
  // Write amplification over the steady window alone.
  const double host = static_cast<double>(
      (after.pages_programmed - after.relocations) -
      (before.pages_programmed - before.relocations));
  const double steady_wa =
      static_cast<double>(after.pages_programmed - before.pages_programmed) / host;
  // The paper quotes ~10x for 2009-era hardware; the mechanistic model
  // reaches 4-8x on long horizons (see bench/fig14_flash_degradation) and
  // must show at least a 3x cliff plus real amplification here.
  EXPECT_GT(fresh_iops / steady_iops, 3.0);
  EXPECT_GT(steady_wa, 2.0);
  EXPECT_GT(ssd.stats().erases, 100u);
}

TEST(SsdModel, IdleGroomingRestoresPerformance) {
  // The 2010 follow-up finding: devices with generous spare flash recover
  // between bursts because idle time refills the erased pool.
  SsdParams p = CollapseProneDevice(128 * MiB);
  p.over_provision = 0.30;
  SsdModel ssd(p);
  Rng rng(7);
  const std::uint64_t pages = p.capacity_bytes * 9 / 10 / 4096;
  auto burst = [&](int n) {
    double t = 0.0;
    for (int i = 0; i < n; ++i) t += ssd.write(rng.below(pages) * 4096, 4096);
    return n / t;
  };
  burst(static_cast<int>(p.capacity_bytes / 4096) * 2);
  const double degraded = burst(2000);
  const double pool_before = ssd.free_fraction();
  ssd.idle(60.0);
  EXPECT_GT(ssd.free_fraction(), pool_before);
  const double groomed = burst(2000);
  EXPECT_GT(groomed, 1.2 * degraded);
}

TEST(SsdModel, WriteAmplificationIsOneForSequentialFill) {
  SsdParams p;
  p.capacity_bytes = 64 * MiB;
  SsdModel ssd(p);
  for (std::uint64_t off = 0; off < p.capacity_bytes; off += 128 * KiB) {
    ssd.write(off, 128 * KiB);
  }
  EXPECT_DOUBLE_EQ(ssd.stats().write_amplification(), 1.0);
}

TEST(SsdStats, WriteAmplificationOfPureGcWindowIsInfinite) {
  // A fresh device (no programs at all) reports 1.0 ...
  SsdStats fresh;
  EXPECT_EQ(fresh.host_pages(), 0u);
  EXPECT_DOUBLE_EQ(fresh.write_amplification(), 1.0);

  // ... but a stats window containing only GC relocations — e.g. the
  // delta across an idle-grooming pass — must report infinity, not
  // masquerade as a perfect 1.0.
  SsdParams p = CollapseProneDevice(64 * MiB);
  SsdModel ssd(p);
  Rng rng(11);
  const std::uint64_t pages = p.capacity_bytes / 4096;
  for (std::uint64_t i = 0; i < pages * 2; ++i) {
    ssd.write(rng.below(pages) * 4096, 4096);
  }
  const SsdStats before = ssd.stats();
  ssd.idle(10.0);
  const SsdStats after = ssd.stats();
  ASSERT_GT(after.relocations, before.relocations);  // grooming did work
  EXPECT_EQ(after.host_pages(), before.host_pages());
  SsdStats window;
  window.pages_programmed = after.pages_programmed - before.pages_programmed;
  window.relocations = after.relocations - before.relocations;
  EXPECT_EQ(window.host_pages(), 0u);
  EXPECT_TRUE(std::isinf(window.write_amplification()));
}

TEST(SsdModel, IdleGroomingIsIncrementalAndBounded) {
  // idle() consumes a time budget block-by-block: a short slice makes
  // partial progress, repeated slices accumulate, and a device whose pool
  // is already at the grooming target treats idle time as a no-op.
  SsdParams p = CollapseProneDevice(64 * MiB);
  p.over_provision = 0.30;
  SsdModel ssd(p);
  Rng rng(13);
  const std::uint64_t pages = p.capacity_bytes * 9 / 10 / 4096;
  for (std::uint64_t i = 0; i < pages * 3; ++i) {
    ssd.write(rng.below(pages) * 4096, 4096);
  }
  const double depleted = ssd.free_fraction();
  const double slice = 2 * p.erase_block_ms * 1e-3;  // a couple of blocks' worth
  ssd.idle(slice);
  const double after_one = ssd.free_fraction();
  EXPECT_GT(after_one, depleted);
  for (int i = 0; i < 10000; ++i) ssd.idle(slice);
  const double groomed = ssd.free_fraction();
  EXPECT_GT(groomed, after_one);
  // Converged at the grooming target: more idle time changes nothing.
  ssd.idle(3600.0);
  EXPECT_DOUBLE_EQ(ssd.free_fraction(), groomed);
  const double target = 0.9 * p.over_provision / (1.0 + p.over_provision);
  EXPECT_GE(ssd.free_fraction(), target * 0.9);
}

TEST(SsdModel, OutOfRangeAccessThrows) {
  SsdParams p;
  p.capacity_bytes = 16 * MiB;
  SsdModel ssd(p);
  EXPECT_THROW(ssd.read(p.capacity_bytes, 4096), std::out_of_range);
  EXPECT_THROW(ssd.write(p.capacity_bytes - 100, 4096), std::out_of_range);
}

TEST(DeviceCatalog, UnknownDeviceThrows) {
  EXPECT_THROW(FlashDevice("nvram-9000"), std::out_of_range);
  EXPECT_EQ(AllFlashDevices().size(), 5u);
}

}  // namespace
}  // namespace pdsi::storage
