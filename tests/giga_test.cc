// GIGA+ tests: bitmap addressing algebra, split mechanics, placement
// invariants under growth, stale-client correction, and create scaling.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "pdsi/giga/giga.h"

namespace pdsi::giga {
namespace {

TEST(Bitmap, PartitionZeroAlwaysExists) {
  Bitmap b;
  EXPECT_TRUE(b.test(0));
  EXPECT_EQ(b.partition_for(0xdeadbeef), 0u);
}

TEST(Bitmap, AddressingWalksDownToExisting) {
  Bitmap b;
  b.set(1);  // depth 1: partitions 0,1
  b.set(3);  // partition 1 split at depth 1 -> 3
  // hash suffix ...11 -> 3; ...01 -> 1; ...0 -> 0.
  EXPECT_EQ(b.partition_for(0b111), 3u);
  EXPECT_EQ(b.partition_for(0b101), 1u);
  // Suffix 0b10 addresses partition 2, which does not exist; the walk
  // falls back to depth 1 (suffix 0b0) -> partition 0.
  EXPECT_EQ(b.partition_for(0b110), 0u);
}

TEST(Bitmap, MergeIsUnion) {
  Bitmap a, b;
  a.set(1);
  b.set(2);
  a.merge(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_EQ(a.highest(), 2u);
}

TEST(Bitmap, HighestAcrossWords) {
  Bitmap b;
  b.set(130);
  EXPECT_EQ(b.highest(), 130u);
  EXPECT_TRUE(b.test(130));
  EXPECT_FALSE(b.test(129));
}

TEST(PartitionMath, DepthAndChild) {
  EXPECT_EQ(PartitionDepth(0), 0u);
  EXPECT_EQ(PartitionDepth(1), 1u);
  EXPECT_EQ(PartitionDepth(2), 2u);
  EXPECT_EQ(PartitionDepth(3), 2u);
  EXPECT_EQ(PartitionDepth(4), 3u);
  EXPECT_EQ(SplitChild(0, 0), 1u);
  EXPECT_EQ(SplitChild(0, 1), 2u);
  EXPECT_EQ(SplitChild(1, 1), 3u);
  EXPECT_EQ(SplitChild(3, 2), 7u);
}

TEST(PartitionMath, RadixBoundaryIsShiftSafe) {
  // Radix depth 31..32 is where a 32-bit `1u << d` would be undefined;
  // the helpers must stay exact there.
  EXPECT_EQ(PartitionDepth(0x40000000u), 31u);
  EXPECT_EQ(PartitionDepth(0x7fffffffu), 31u);
  EXPECT_EQ(PartitionDepth(0x80000000u), 32u);
  EXPECT_EQ(PartitionDepth(0xffffffffu), 32u);
  // The last splittable level: p < 2^31 splits to p + 2^31.
  EXPECT_EQ(SplitChild(5u, 31u), 5u + 0x80000000u);
  EXPECT_EQ(SplitChild(0x7fffffffu, 31u), 0xffffffffu);
}

TEST(Bitmap, DeepPartitionAddressing) {
  // A partition high enough that deriving the radix from it exercises
  // multi-word scans and 64-bit masks in partition_for.
  Bitmap b;
  const std::uint32_t deep = 1u << 20;
  b.set(deep);
  EXPECT_EQ(b.highest(), deep);
  // A hash whose low 21 bits address exactly `deep` lands there; one
  // whose candidate is absent walks down to partition 0.
  EXPECT_EQ(b.partition_for(deep), deep);
  EXPECT_EQ(b.partition_for(deep | (1ULL << 40)), deep);
  EXPECT_EQ(b.partition_for(0x2a), 0u);
}

TEST(HashName, SpreadsShortNames) {
  std::set<std::uint64_t> low3;
  for (int i = 0; i < 64; ++i) {
    low3.insert(HashName("f" + std::to_string(i)) & 7);
  }
  EXPECT_EQ(low3.size(), 8u);  // all 8 suffixes hit
}

GigaParams SmallParams(std::uint32_t servers, std::uint32_t threshold) {
  GigaParams p;
  p.num_servers = servers;
  p.split_threshold = threshold;
  return p;
}

TEST(GigaDirectory, SplitsAsItGrowsAndKeepsInvariant) {
  GigaDirectory dir(SmallParams(4, 50));
  sim::VirtualScheduler sched(1);
  GigaClient client(dir, sched, 0);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(client.create("file" + std::to_string(i)).ok());
  }
  sched.finish(0);
  EXPECT_EQ(dir.total_entries(), 2000u);
  EXPECT_GT(dir.splits(), 10u);
  EXPECT_GT(dir.partitions(), 16u);
  EXPECT_TRUE(dir.check_placement_invariant());
}

TEST(GigaDirectory, DuplicateCreateReturnsExists) {
  GigaDirectory dir(SmallParams(2, 100));
  sim::VirtualScheduler sched(1);
  GigaClient client(dir, sched, 0);
  EXPECT_TRUE(client.create("x").ok());
  auto st = client.create("x");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error(), Errc::exists);
  sched.finish(0);
}

TEST(GigaDirectory, LookupFindsAllAfterSplits) {
  GigaDirectory dir(SmallParams(4, 40));
  sim::VirtualScheduler sched(1);
  GigaClient client(dir, sched, 0);
  for (int i = 0; i < 500; ++i) client.create("f" + std::to_string(i));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(client.lookup("f" + std::to_string(i)).ok()) << i;
  }
  auto st = client.lookup("missing");
  EXPECT_EQ(st.error(), Errc::not_found);
  sched.finish(0);
}

TEST(GigaClient, StaleClientsCorrectLazily) {
  GigaDirectory dir(SmallParams(8, 30));
  sim::VirtualScheduler sched(2);
  // Client A grows the directory; client B starts stale and must catch up
  // via addressing corrections only.
  std::uint64_t b_retries = 0;
  std::thread ta([&] {
    GigaClient a(dir, sched, 0);
    for (int i = 0; i < 1000; ++i) a.create("a" + std::to_string(i));
    sched.finish(0);
  });
  std::thread tb([&] {
    GigaClient b(dir, sched, 1);
    for (int i = 0; i < 1000; ++i) b.create("b" + std::to_string(i));
    b_retries = b.stale_retries();
    sched.finish(1);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(dir.total_entries(), 2000u);
  EXPECT_TRUE(dir.check_placement_invariant());
  EXPECT_GT(b_retries, 0u);
  // Retries are rare relative to operations (bounded by split count, not
  // by operation count) — the GIGA+ claim that stale caches are cheap.
  EXPECT_LT(b_retries, 200u);
}

TEST(GigaScaling, MoreServersMoreCreateThroughput) {
  auto run = [](std::uint32_t servers) {
    GigaParams p = SmallParams(servers, 200);
    p.server_op_s = 200e-6;
    GigaDirectory dir(p);
    // Metarates-style: many more clients than servers so server capacity,
    // not client round-trip latency, is the limiter.
    constexpr int kClients = 48;
    constexpr int kPerClient = 300;
    sim::VirtualScheduler sched(kClients);
    std::vector<std::thread> threads;
    std::mutex mu;
    double finish = 0.0;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        GigaClient client(dir, sched, c);
        for (int i = 0; i < kPerClient; ++i) {
          client.create("c" + std::to_string(c) + "_" + std::to_string(i));
        }
        std::lock_guard<std::mutex> lk(mu);
        finish = std::max(finish, sched.now(c));
        sched.finish(c);
      });
    }
    for (auto& t : threads) t.join();
    return kClients * kPerClient / finish;  // creates per second
  };
  const double one = run(1);
  const double four = run(4);
  const double sixteen = run(16);
  EXPECT_GT(four / one, 2.0);
  EXPECT_GT(sixteen / four, 1.8);
}

}  // namespace
}  // namespace pdsi::giga
