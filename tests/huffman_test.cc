// Huffman codec tests: canonical-code invariants, round trips over many
// input classes, corruption detection, and compressibility expectations.
#include <gtest/gtest.h>

#include "pdsi/common/rng.h"
#include "pdsi/huffman/huffman.h"

namespace pdsi::huffman {
namespace {

TEST(CodeLengths, KraftInequalityHolds) {
  std::uint64_t freq[256] = {0};
  Rng rng(3);
  for (int i = 0; i < 256; ++i) freq[i] = rng.below(10000);
  auto lengths = BuildCodeLengths(freq);
  double kraft = 0.0;
  for (int s = 0; s < 256; ++s) {
    ASSERT_LE(lengths[s], kMaxCodeBits);
    if (lengths[s] > 0) kraft += std::ldexp(1.0, -lengths[s]);
    if (freq[s] > 0) {
      EXPECT_GT(lengths[s], 0) << s;
    }
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(CodeLengths, SkewedDistributionIsLengthLimited) {
  std::uint64_t freq[256] = {0};
  // Fibonacci-ish weights force deep unconstrained trees.
  std::uint64_t a = 1, b = 1;
  for (int s = 0; s < 40; ++s) {
    freq[s] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  auto lengths = BuildCodeLengths(freq);
  for (int s = 0; s < 40; ++s) {
    EXPECT_GT(lengths[s], 0);
    EXPECT_LE(lengths[s], kMaxCodeBits);
  }
}

TEST(CodeLengths, FrequentSymbolsGetShorterCodes) {
  std::uint64_t freq[256] = {0};
  freq['a'] = 1000000;
  freq['b'] = 10;
  freq['c'] = 10;
  auto lengths = BuildCodeLengths(freq);
  EXPECT_LT(lengths['a'], lengths['b']);
}

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, CompressDecompressIdentity) {
  Rng rng(GetParam());
  Bytes input;
  switch (GetParam() % 5) {
    case 0:  // empty
      break;
    case 1:  // constant
      input.assign(100000, 0x42);
      break;
    case 2:  // random (incompressible; exercises stored blocks)
      input.resize(50000);
      for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(256));
      break;
    case 3:  // text-like
      for (int i = 0; i < 80000; ++i) {
        input.push_back("the quick brown fox "[rng.below(20)]);
      }
      break;
    default:  // synthetic checkpoint
      input = SyntheticCheckpoint(300000, 0.05, GetParam());
      break;
  }
  const Bytes compressed = Compress(input, 64 * 1024);
  const Bytes back = Decompress(compressed);
  EXPECT_EQ(back, input);
}

INSTANTIATE_TEST_SUITE_P(Inputs, RoundTrip, ::testing::Range(0, 15));

TEST(Compress, SkewedInputShrinks) {
  Bytes input;
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    // ~90% of bytes from a 4-symbol set.
    input.push_back(rng.chance(0.9) ? static_cast<std::uint8_t>(rng.below(4))
                                    : static_cast<std::uint8_t>(rng.below(256)));
  }
  const Bytes compressed = Compress(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST(Compress, RandomInputDoesNotBlowUp) {
  Bytes input(100000);
  Rng rng(9);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes compressed = Compress(input);
  // Stored-block fallback: tiny framing overhead only.
  EXPECT_LT(compressed.size(), input.size() + 64);
}

TEST(Compress, CheckpointCompressesMeaningfully) {
  const Bytes ckpt = SyntheticCheckpoint(1 << 20, 0.05, 42);
  // Plain byte-Huffman struggles on raw doubles (entropy hides in the
  // low mantissa bytes); the byte-plane shuffle exposes the smoothness.
  const Bytes plain = Compress(ckpt);
  const Bytes filtered = Compress(ckpt, 1 << 20, 8, true);
  const double plain_ratio = static_cast<double>(ckpt.size()) / plain.size();
  const double filt_ratio = static_cast<double>(ckpt.size()) / filtered.size();
  EXPECT_GT(filt_ratio, plain_ratio);
  EXPECT_GT(filt_ratio, 1.5);
  EXPECT_EQ(Decompress(filtered), ckpt);
}

TEST(Compress, ShuffleRoundTripsOddSizes) {
  Rng rng(21);
  for (std::size_t n : {1u, 7u, 8u, 9u, 4097u}) {
    Bytes in(n);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(Decompress(Compress(in, 1 << 16, 8)), in) << n;
    EXPECT_EQ(Decompress(Compress(in, 1 << 16, 8, true)), in) << n;
  }
}

TEST(Decompress, DetectsCorruption) {
  Bytes input = SyntheticCheckpoint(100000, 0.0, 1);
  Bytes compressed = Compress(input);
  Bytes truncated(compressed.begin(), compressed.begin() + compressed.size() / 2);
  EXPECT_THROW(Decompress(truncated), std::invalid_argument);
  Bytes garbage(10, 0xff);
  EXPECT_THROW(Decompress(garbage), std::invalid_argument);
}

TEST(Decompress, EmptyStream) {
  const Bytes compressed = Compress({});
  EXPECT_TRUE(Decompress(compressed).empty());
}

}  // namespace
}  // namespace pdsi::huffman
