// Ninjat renderer tests: colours, raster bounds, PPM output, and the
// characteristic strided-pattern signature in the ASCII file map.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "pdsi/ninjat/ninjat.h"

namespace pdsi::ninjat {
namespace {

workload::WriteTrace StridedTrace(std::uint32_t ranks, std::uint32_t steps,
                                  std::uint64_t record) {
  workload::WriteTrace t;
  for (std::uint32_t k = 0; k < steps; ++k) {
    for (std::uint32_t r = 0; r < ranks; ++r) {
      const double s = k * 0.1 + r * 0.01;
      t.push_back({r, s, s + 0.005,
                   (static_cast<std::uint64_t>(k) * ranks + r) * record, record});
    }
  }
  return t;
}

TEST(RankColor, DistinctForNearbyRanks) {
  std::uint8_t r0, g0, b0, r1, g1, b1;
  RankColor(0, &r0, &g0, &b0);
  RankColor(1, &r1, &g1, &b1);
  const int dist = std::abs(r0 - r1) + std::abs(g0 - g1) + std::abs(b0 - b1);
  EXPECT_GT(dist, 60);
}

TEST(Image, SetRespectsBounds) {
  Image img(10, 10);
  img.set(-1, 5, 1, 2, 3);   // silently clipped
  img.set(5, 100, 1, 2, 3);
  img.set(9, 9, 1, 2, 3);    // valid
  EXPECT_EQ(img.width(), 10);
}

TEST(Image, PpmRoundTrip) {
  Image img(4, 2);
  img.set(0, 0, 255, 0, 0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ninjat_test.ppm").string();
  ASSERT_TRUE(img.write_ppm(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string header;
  in >> header;
  EXPECT_EQ(header, "P6");
  int w, h, maxv;
  in >> w >> h >> maxv;
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  std::remove(path.c_str());
}

TEST(Render, TimeOffsetCoversCanvas) {
  auto trace = StridedTrace(8, 16, 1000);
  Image img = RenderTimeOffset(trace, {200, 100});
  EXPECT_EQ(img.width(), 200);
  EXPECT_EQ(img.height(), 100);
}

TEST(Render, EmptyTraceIsBlank) {
  workload::WriteTrace empty;
  Image img = RenderTimeOffset(empty, {10, 10});
  EXPECT_EQ(img.width(), 10);
  Image img2 = RenderFileMap(empty, 0, {10, 10});
  EXPECT_EQ(img2.width(), 10);
}

TEST(AsciiMap, ShowsStridedSignature) {
  // 4 ranks, record size = one cell: the map should repeat "abcd".
  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint64_t kRecord = 100;
  auto trace = StridedTrace(kRanks, 8, kRecord);
  const std::uint64_t size = kRanks * 8 * kRecord;
  // One cell per record: 32 cells in a 8x4 grid.
  const std::string map = AsciiFileMap(trace, size, 8, 4);
  EXPECT_EQ(map.substr(0, 8), "abcdabcd");
  // Every cell written (no holes).
  EXPECT_EQ(map.find('.'), std::string::npos);
}

TEST(AsciiMap, HolesStayDotted) {
  workload::WriteTrace t;
  t.push_back({0, 0.0, 0.1, 0, 100});  // only the first 100 bytes of 1000
  const std::string map = AsciiFileMap(t, 1000, 10, 1);
  EXPECT_EQ(map[0], 'a');
  EXPECT_EQ(map[5], '.');
}

}  // namespace
}  // namespace pdsi::ninjat
