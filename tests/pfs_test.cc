// Tests for the parallel file system substrate: namespace semantics, data
// round trips, striping, locking behaviour, and the performance asymmetry
// (sequential streams fast, interleaved strided writes pathological) that
// the PLFS experiments depend on.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/pfs/sparse_buffer.h"

namespace pdsi::pfs {
namespace {

TEST(SparseBuffer, WriteReadRoundTrip) {
  SparseBuffer b(1024);
  auto data = MakePattern(1, 0, 5000);
  b.write(100, data);
  EXPECT_EQ(b.size(), 5100u);
  Bytes out(5000);
  b.read(100, out);
  EXPECT_EQ(out, data);
}

TEST(SparseBuffer, HolesReadAsZeros) {
  SparseBuffer b(1024);
  b.write(10000, MakePattern(1, 0, 10));
  Bytes out(100);
  b.read(0, out);
  for (auto v : out) EXPECT_EQ(v, 0);
}

TEST(SparseBuffer, TruncateDropsTail) {
  SparseBuffer b(1024);
  b.write(0, MakePattern(1, 0, 4096));
  b.truncate(100);
  EXPECT_EQ(b.size(), 100u);
  b.write(200, MakePattern(1, 0, 1));  // re-extend past truncation point
  Bytes out(50);
  b.read(120, out);
  for (auto v : out) EXPECT_EQ(v, 0) << "tail must be zeroed after truncate";
  EXPECT_LT(b.allocated_bytes(), 8192u);
}

TEST(Paths, Normalization) {
  EXPECT_EQ(NormalizePath("/a//b/"), "/a/b");
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_THROW(NormalizePath("relative"), std::invalid_argument);
}

class PfsFixture : public ::testing::Test {
 protected:
  PfsFixture()
      : sched_(1), cluster_(PfsConfig::PanFsLike(4), sched_), client_(cluster_, 0) {}

  ~PfsFixture() override { sched_.finish(0); }

  sim::VirtualScheduler sched_;
  PfsCluster cluster_;
  PfsClient client_;
};

TEST_F(PfsFixture, NamespaceLifecycle) {
  EXPECT_TRUE(client_.mkdir("/dir").ok());
  EXPECT_EQ(client_.mkdir("/dir").error(), Errc::exists);
  EXPECT_EQ(client_.mkdir("/nope/sub").error(), Errc::not_found);

  auto fh = client_.create("/dir/f");
  ASSERT_TRUE(fh.ok());
  EXPECT_EQ(client_.create("/dir/f").error(), Errc::exists);
  EXPECT_EQ(client_.open("/dir/missing").error(), Errc::not_found);
  EXPECT_EQ(client_.open("/dir").error(), Errc::is_dir);

  auto names = client_.readdir("/dir");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ(names->front(), "f");

  EXPECT_EQ(client_.unlink("/dir").error(), Errc::not_empty);
  EXPECT_TRUE(client_.unlink("/dir/f").ok());
  EXPECT_TRUE(client_.unlink("/dir").ok());
  EXPECT_EQ(client_.unlink("/dir").error(), Errc::not_found);
}

TEST_F(PfsFixture, WriteReadBackExact) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  const auto data = MakePattern(7, 0, 3 * MiB + 137);  // spans stripes
  EXPECT_TRUE(client_.write(*fh, 0, data).ok());
  Bytes out(data.size());
  auto n = client_.read(*fh, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(HashBytes(out), HashBytes(data));
}

TEST_F(PfsFixture, ReadShortAtEof) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 0, MakePattern(1, 0, 1000));
  Bytes out(600);
  auto n = client_.read(*fh, 800, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
  auto n2 = client_.read(*fh, 5000, out);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(PfsFixture, SparseHolesReadZero) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 1 * MiB, MakePattern(1, 0, 16));
  Bytes out(32);
  auto n = client_.read(*fh, 1 * MiB - 16, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 32u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], 0);
  EXPECT_EQ(FindPatternMismatch(1, 0, std::span(out).subspan(16)), kNoMismatch);
}

TEST_F(PfsFixture, StatTracksSize) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 0, MakePattern(1, 0, 100));
  client_.write(*fh, 500, MakePattern(1, 500, 100));
  auto st = client_.stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 600u);
  EXPECT_FALSE(st->is_dir);
}

TEST_F(PfsFixture, RenameMovesFile) {
  auto fh = client_.create("/a");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 0, MakePattern(2, 0, 64));
  ASSERT_TRUE(client_.close(*fh).ok());
  EXPECT_TRUE(client_.rename("/a", "/b").ok());
  EXPECT_EQ(client_.open("/a").error(), Errc::not_found);
  auto fh2 = client_.open("/b");
  ASSERT_TRUE(fh2.ok());
  Bytes out(64);
  ASSERT_TRUE(client_.read(*fh2, 0, out).ok());
  EXPECT_EQ(FindPatternMismatch(2, 0, out), kNoMismatch);
}

TEST_F(PfsFixture, BadHandleRejected) {
  Bytes buf(10);
  EXPECT_EQ(client_.write(99, 0, buf).error(), Errc::bad_handle);
  EXPECT_EQ(client_.read(99, 0, buf).error(), Errc::bad_handle);
  EXPECT_EQ(client_.close(99).error(), Errc::bad_handle);
}

TEST_F(PfsFixture, TimeAdvancesWithWork) {
  auto fh = client_.create("/f");
  const double t0 = client_.now();
  client_.write(*fh, 0, MakePattern(1, 0, 8 * MiB));
  client_.fsync(*fh);
  EXPECT_GT(client_.now(), t0);
  // 8 MiB at ~120 MB/s media rate is at least 60 ms of disk time in total,
  // but striped over 4 servers it completes faster than serial.
  const double elapsed = client_.now() - t0;
  EXPECT_GT(elapsed, 8.0 * MiB / (4 * 200e6));
  EXPECT_LT(elapsed, 1.0);
}

TEST(Placement, RoundRobinCoversAllServers) {
  auto p = MakeRoundRobinPlacement();
  std::vector<int> hits(8, 0);
  for (std::uint64_t s = 0; s < 64; ++s) ++hits[p->server_for(3, s, 8)];
  for (int h : hits) EXPECT_EQ(h, 8);
}

TEST(Placement, HashedIsBalancedOverManyFiles) {
  auto p = MakeHashedPlacement();
  std::vector<int> hits(8, 0);
  for (std::uint64_t f = 0; f < 500; ++f) {
    for (std::uint64_t s = 0; s < 16; ++s) ++hits[p->server_for(f, s, 8)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(Placement, RaidGroupConfinesFile) {
  auto p = MakeRaidGroupPlacement(3);
  std::set<std::uint32_t> servers;
  for (std::uint64_t s = 0; s < 100; ++s) servers.insert(p->server_for(42, s, 16));
  EXPECT_EQ(servers.size(), 3u);
}

// The core asymmetry behind Fig. 8: N ranks writing sequential private
// files achieve far more aggregate bandwidth than the same ranks writing
// interleaved small strided records into one shared file.
class NTo1Pathology : public ::testing::TestWithParam<PfsConfig> {};

TEST_P(NTo1Pathology, SharedStridedSlowerThanPrivateSequential) {
  constexpr int kRanks = 8;
  constexpr std::uint64_t kRecord = 47 * KiB + 317;  // small, unaligned
  constexpr int kRecordsPerRank = 24;

  auto run = [&](bool shared) {
    PfsConfig cfg = GetParam();
    cfg.store_data = false;
    sim::VirtualScheduler sched(kRanks);
    PfsCluster cluster(cfg, sched);
    std::vector<std::thread> threads;
    double finish = 0.0;
    std::mutex mu;
    // Rank 0 pre-creates the shared file in a separate single-actor phase
    // is unnecessary: create is idempotent enough if only rank 0 creates
    // and others open after a barrier.
    sim::VirtualBarrier barrier(sched, [&] {
      std::vector<std::size_t> all;
      for (int r = 0; r < kRanks; ++r) all.push_back(r);
      return all;
    }());
    for (int r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        PfsClient client(cluster, r);
        FileHandle fh;
        if (shared) {
          if (r == 0) {
            fh = *client.create("/ckpt");
            barrier.arrive(r);
          } else {
            barrier.arrive(r);
            fh = *client.open("/ckpt");
          }
        } else {
          fh = *client.create("/ckpt." + std::to_string(r));
          barrier.arrive(r);
        }
        for (int i = 0; i < kRecordsPerRank; ++i) {
          // Shared: strided N-1 layout. Private: sequential log.
          const std::uint64_t off =
              shared ? (static_cast<std::uint64_t>(i) * kRanks + r) * kRecord
                     : static_cast<std::uint64_t>(i) * kRecord;
          Bytes data(kRecord);  // contents irrelevant in timing mode
          ASSERT_TRUE(client.write(fh, off, data).ok());
        }
        client.close(fh);
        barrier.arrive(r);
        {
          std::lock_guard<std::mutex> lk(mu);
          finish = std::max(finish, client.now());
        }
        sched.finish(r);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };

  const double shared_time = run(true);
  const double private_time = run(false);
  EXPECT_GT(shared_time / private_time, 3.0)
      << GetParam().name << ": shared=" << shared_time
      << " private=" << private_time;
}

INSTANTIATE_TEST_SUITE_P(Personalities, NTo1Pathology,
                         ::testing::Values(PfsConfig::PanFsLike(4),
                                           PfsConfig::LustreLike(4),
                                           PfsConfig::GpfsLike(4)),
                         [](const auto& param_info) {
                           std::string n = param_info.param.name;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// Determinism across whole simulations: identical runs give identical
// virtual finish times.
TEST(PfsDeterminism, RepeatedRunsIdentical) {
  auto run = [] {
    constexpr int kRanks = 4;
    PfsConfig cfg = PfsConfig::LustreLike(2);
    cfg.store_data = false;
    sim::VirtualScheduler sched(kRanks);
    PfsCluster cluster(cfg, sched);
    std::vector<std::thread> threads;
    std::vector<double> finish(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        PfsClient client(cluster, r);
        auto fh = client.create("/f" + std::to_string(r));
        for (int i = 0; i < 50; ++i) {
          Bytes data(10000 + 1000 * r);
          client.write(*fh, static_cast<std::uint64_t>(i) * data.size(), data);
        }
        client.close(*fh);
        finish[r] = client.now();
        sched.finish(r);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pdsi::pfs
