// Tests for the parallel file system substrate: namespace semantics, data
// round trips, striping, locking behaviour, and the performance asymmetry
// (sequential streams fast, interleaved strided writes pathological) that
// the PLFS experiments depend on.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/consist/model.h"
#include "pdsi/fault/fault.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/pfs/sparse_buffer.h"

namespace pdsi::pfs {
namespace {

TEST(SparseBuffer, WriteReadRoundTrip) {
  SparseBuffer b(1024);
  auto data = MakePattern(1, 0, 5000);
  b.write(100, data);
  EXPECT_EQ(b.size(), 5100u);
  Bytes out(5000);
  b.read(100, out);
  EXPECT_EQ(out, data);
}

TEST(SparseBuffer, HolesReadAsZeros) {
  SparseBuffer b(1024);
  b.write(10000, MakePattern(1, 0, 10));
  Bytes out(100);
  b.read(0, out);
  for (auto v : out) EXPECT_EQ(v, 0);
}

TEST(SparseBuffer, TruncateDropsTail) {
  SparseBuffer b(1024);
  b.write(0, MakePattern(1, 0, 4096));
  b.truncate(100);
  EXPECT_EQ(b.size(), 100u);
  b.write(200, MakePattern(1, 0, 1));  // re-extend past truncation point
  Bytes out(50);
  b.read(120, out);
  for (auto v : out) EXPECT_EQ(v, 0) << "tail must be zeroed after truncate";
  EXPECT_LT(b.allocated_bytes(), 8192u);
}

TEST(Paths, Normalization) {
  EXPECT_EQ(NormalizePath("/a//b/"), "/a/b");
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_THROW(NormalizePath("relative"), std::invalid_argument);
}

class PfsFixture : public ::testing::Test {
 protected:
  PfsFixture()
      : sched_(1), cluster_(PfsConfig::PanFsLike(4), sched_), client_(cluster_, 0) {}

  ~PfsFixture() override { sched_.finish(0); }

  sim::VirtualScheduler sched_;
  PfsCluster cluster_;
  PfsClient client_;
};

TEST_F(PfsFixture, NamespaceLifecycle) {
  EXPECT_TRUE(client_.mkdir("/dir").ok());
  EXPECT_EQ(client_.mkdir("/dir").error(), Errc::exists);
  EXPECT_EQ(client_.mkdir("/nope/sub").error(), Errc::not_found);

  auto fh = client_.create("/dir/f");
  ASSERT_TRUE(fh.ok());
  EXPECT_EQ(client_.create("/dir/f").error(), Errc::exists);
  EXPECT_EQ(client_.open("/dir/missing").error(), Errc::not_found);
  EXPECT_EQ(client_.open("/dir").error(), Errc::is_dir);

  auto names = client_.readdir("/dir");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ(names->front(), "f");

  EXPECT_EQ(client_.unlink("/dir").error(), Errc::not_empty);
  EXPECT_TRUE(client_.unlink("/dir/f").ok());
  EXPECT_TRUE(client_.unlink("/dir").ok());
  EXPECT_EQ(client_.unlink("/dir").error(), Errc::not_found);
}

TEST_F(PfsFixture, WriteReadBackExact) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  const auto data = MakePattern(7, 0, 3 * MiB + 137);  // spans stripes
  EXPECT_TRUE(client_.write(*fh, 0, data).ok());
  Bytes out(data.size());
  auto n = client_.read(*fh, 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(HashBytes(out), HashBytes(data));
}

TEST_F(PfsFixture, ReadShortAtEof) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 0, MakePattern(1, 0, 1000));
  Bytes out(600);
  auto n = client_.read(*fh, 800, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
  auto n2 = client_.read(*fh, 5000, out);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(PfsFixture, SparseHolesReadZero) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 1 * MiB, MakePattern(1, 0, 16));
  Bytes out(32);
  auto n = client_.read(*fh, 1 * MiB - 16, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 32u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], 0);
  EXPECT_EQ(FindPatternMismatch(1, 0, std::span(out).subspan(16)), kNoMismatch);
}

TEST_F(PfsFixture, StatTracksSize) {
  auto fh = client_.create("/f");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 0, MakePattern(1, 0, 100));
  client_.write(*fh, 500, MakePattern(1, 500, 100));
  auto st = client_.stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 600u);
  EXPECT_FALSE(st->is_dir);
}

TEST_F(PfsFixture, RenameMovesFile) {
  auto fh = client_.create("/a");
  ASSERT_TRUE(fh.ok());
  client_.write(*fh, 0, MakePattern(2, 0, 64));
  ASSERT_TRUE(client_.close(*fh).ok());
  EXPECT_TRUE(client_.rename("/a", "/b").ok());
  EXPECT_EQ(client_.open("/a").error(), Errc::not_found);
  auto fh2 = client_.open("/b");
  ASSERT_TRUE(fh2.ok());
  Bytes out(64);
  ASSERT_TRUE(client_.read(*fh2, 0, out).ok());
  EXPECT_EQ(FindPatternMismatch(2, 0, out), kNoMismatch);
}

TEST_F(PfsFixture, BadHandleRejected) {
  Bytes buf(10);
  EXPECT_EQ(client_.write(99, 0, buf).error(), Errc::bad_handle);
  EXPECT_EQ(client_.read(99, 0, buf).error(), Errc::bad_handle);
  EXPECT_EQ(client_.close(99).error(), Errc::bad_handle);
}

TEST_F(PfsFixture, TimeAdvancesWithWork) {
  auto fh = client_.create("/f");
  const double t0 = client_.now();
  client_.write(*fh, 0, MakePattern(1, 0, 8 * MiB));
  client_.fsync(*fh);
  EXPECT_GT(client_.now(), t0);
  // 8 MiB at ~120 MB/s media rate is at least 60 ms of disk time in total,
  // but striped over 4 servers it completes faster than serial.
  const double elapsed = client_.now() - t0;
  EXPECT_GT(elapsed, 8.0 * MiB / (4 * 200e6));
  EXPECT_LT(elapsed, 1.0);
}

TEST_F(PfsFixture, ReaddirBatchChargeBoundaries) {
  // The first 1024 entries arrive with the initial RPC reply; only the
  // entries beyond them cost extra MDS round trips. The old accounting
  // charged size()/1024 extra batches, double-charging the first batch
  // the moment a listing reached exactly 1024 entries.
  auto listing_cost = [&](const char* dir, std::size_t entries) {
    EXPECT_TRUE(client_.mkdir(dir).ok());
    for (std::size_t i = 0; i < entries; ++i) {
      auto fh = client_.create(std::string(dir) + "/f" + std::to_string(i));
      EXPECT_TRUE(fh.ok());
      EXPECT_TRUE(client_.close(*fh).ok());
    }
    const double before = client_.now();
    auto r = client_.readdir(dir);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->size(), entries);
    return client_.now() - before;
  };
  const double d1023 = listing_cost("/a", 1023);
  const double d1024 = listing_cost("/b", 1024);
  const double d1025 = listing_cost("/c", 1025);
  const double mds_op = cluster_.config().mds_op_s;
  // NEAR at 1e-9: durations are differences of absolute clock values at
  // different (second-scale) magnitudes, so rounding noise reaches
  // ~1e-12; the question being pinned — one extra 300e-6 s batch or not —
  // sits five orders of magnitude above the tolerance.
  EXPECT_NEAR(d1023, d1024, 1e-9) << "1024 entries fit the first batch exactly";
  EXPECT_NEAR(d1025, d1024 + mds_op, 1e-9) << "entry 1025 starts the second batch";

  // And the empty listing charges the base RPC alone.
  EXPECT_TRUE(client_.mkdir("/empty").ok());
  const double before = client_.now();
  EXPECT_TRUE(client_.readdir("/empty").ok());
  EXPECT_NEAR(client_.now() - before, d1023, 1e-9)
      << "an empty dir costs the same base RPC as any single-batch listing";
}

TEST(Placement, RoundRobinCoversAllServers) {
  auto p = MakeRoundRobinPlacement();
  std::vector<int> hits(8, 0);
  for (std::uint64_t s = 0; s < 64; ++s) ++hits[p->server_for(3, s, 8)];
  for (int h : hits) EXPECT_EQ(h, 8);
}

TEST(Placement, HashedIsBalancedOverManyFiles) {
  auto p = MakeHashedPlacement();
  std::vector<int> hits(8, 0);
  for (std::uint64_t f = 0; f < 500; ++f) {
    for (std::uint64_t s = 0; s < 16; ++s) ++hits[p->server_for(f, s, 8)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(Placement, RaidGroupConfinesFile) {
  auto p = MakeRaidGroupPlacement(3);
  std::set<std::uint32_t> servers;
  for (std::uint64_t s = 0; s < 100; ++s) servers.insert(p->server_for(42, s, 16));
  EXPECT_EQ(servers.size(), 3u);
}

// The core asymmetry behind Fig. 8: N ranks writing sequential private
// files achieve far more aggregate bandwidth than the same ranks writing
// interleaved small strided records into one shared file.
class NTo1Pathology : public ::testing::TestWithParam<PfsConfig> {};

TEST_P(NTo1Pathology, SharedStridedSlowerThanPrivateSequential) {
  constexpr int kRanks = 8;
  constexpr std::uint64_t kRecord = 47 * KiB + 317;  // small, unaligned
  constexpr int kRecordsPerRank = 24;

  auto run = [&](bool shared) {
    PfsConfig cfg = GetParam();
    cfg.store_data = false;
    sim::VirtualScheduler sched(kRanks);
    PfsCluster cluster(cfg, sched);
    std::vector<std::thread> threads;
    double finish = 0.0;
    std::mutex mu;
    // Rank 0 pre-creates the shared file in a separate single-actor phase
    // is unnecessary: create is idempotent enough if only rank 0 creates
    // and others open after a barrier.
    sim::VirtualBarrier barrier(sched, [&] {
      std::vector<std::size_t> all;
      for (int r = 0; r < kRanks; ++r) all.push_back(r);
      return all;
    }());
    for (int r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        PfsClient client(cluster, r);
        FileHandle fh;
        if (shared) {
          if (r == 0) {
            fh = *client.create("/ckpt");
            barrier.arrive(r);
          } else {
            barrier.arrive(r);
            fh = *client.open("/ckpt");
          }
        } else {
          fh = *client.create("/ckpt." + std::to_string(r));
          barrier.arrive(r);
        }
        for (int i = 0; i < kRecordsPerRank; ++i) {
          // Shared: strided N-1 layout. Private: sequential log.
          const std::uint64_t off =
              shared ? (static_cast<std::uint64_t>(i) * kRanks + r) * kRecord
                     : static_cast<std::uint64_t>(i) * kRecord;
          Bytes data(kRecord);  // contents irrelevant in timing mode
          ASSERT_TRUE(client.write(fh, off, data).ok());
        }
        client.close(fh);
        barrier.arrive(r);
        {
          std::lock_guard<std::mutex> lk(mu);
          finish = std::max(finish, client.now());
        }
        sched.finish(r);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };

  const double shared_time = run(true);
  const double private_time = run(false);
  EXPECT_GT(shared_time / private_time, 3.0)
      << GetParam().name << ": shared=" << shared_time
      << " private=" << private_time;
}

INSTANTIATE_TEST_SUITE_P(Personalities, NTo1Pathology,
                         ::testing::Values(PfsConfig::PanFsLike(4),
                                           PfsConfig::LustreLike(4),
                                           PfsConfig::GpfsLike(4)),
                         [](const auto& param_info) {
                           std::string n = param_info.param.name;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// Lock accounting pins: the pfs.lock_conflicts counter and pfs.lock_wait_s
// histogram must attribute waits to actual protocol conflicts — and add
// nothing on the uncontended fast path.

// Two ranks write interleaved records; `disjoint` keeps each rank in its
// own 64 KiB-aligned region (separate extent-lock units), otherwise both
// hammer the same units. Returns {lock_conflicts, lock_wait samples}.
std::pair<std::uint64_t, std::uint64_t> RunLockWorkload(
    LockProtocol locking, bool disjoint,
    consist::ConsistencyModel model = consist::ConsistencyModel::posix) {
  obs::Registry reg;
  obs::Context ctx;
  ctx.registry = &reg;
  PfsConfig cfg = PfsConfig::PanFsLike(2);
  cfg.locking = locking;
  cfg.consistency = model;
  cfg.store_data = false;
  sim::VirtualScheduler sched(2);
  PfsCluster cluster(cfg, sched, nullptr, &ctx);
  sim::VirtualBarrier barrier(sched, {0, 1});
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      PfsClient client(cluster, r);
      FileHandle fh;
      if (r == 0) {
        fh = *client.create("/locked");
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        fh = *client.open("/locked");
      }
      for (int i = 0; i < 8; ++i) {
        Bytes data(4 * KiB);
        const std::uint64_t off =
            disjoint ? static_cast<std::uint64_t>(r) * MiB +
                           static_cast<std::uint64_t>(i) * 64 * KiB
                     : static_cast<std::uint64_t>(i) * 64 * KiB;
        ASSERT_TRUE(client.write(fh, off, data).ok());
      }
      client.close(fh);
      barrier.arrive(r);
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
  return {reg.counter("pfs.lock_conflicts").value(),
          reg.histogram("pfs.lock_wait_s", obs::LatencyBuckets()).total()};
}

TEST(LockAccounting, SingleWriterFastPathAddsNothing) {
  for (LockProtocol locking : {LockProtocol::whole_file, LockProtocol::extent}) {
    obs::Registry reg;
    obs::Context ctx;
    ctx.registry = &reg;
    PfsConfig cfg = PfsConfig::PanFsLike(2);
    cfg.locking = locking;
    cfg.store_data = false;
    sim::VirtualScheduler sched(1);
    PfsCluster cluster(cfg, sched, nullptr, &ctx);
    PfsClient client(cluster, 0);
    auto fh = *client.create("/solo");
    for (int i = 0; i < 8; ++i) {
      Bytes data(4 * KiB);
      ASSERT_TRUE(
          client.write(fh, static_cast<std::uint64_t>(i) * 64 * KiB, data).ok());
    }
    client.close(fh);
    sched.finish(0);
    EXPECT_EQ(reg.counter("pfs.lock_conflicts").value(), 0u)
        << "uncontended writes must not count as conflicts";
    EXPECT_EQ(reg.histogram("pfs.lock_wait_s", obs::LatencyBuckets()).total(), 0u)
        << "the no-conflict fast path must record no wait samples";
  }
}

TEST(LockAccounting, DisjointWritersConflictOnlyUnderWholeFileLocking) {
  const auto [extent_conflicts, extent_waits] =
      RunLockWorkload(LockProtocol::extent, /*disjoint=*/true);
  EXPECT_EQ(extent_conflicts, 0u)
      << "disjoint 64 KiB-aligned regions own disjoint extent units";
  EXPECT_EQ(extent_waits, 0u);

  const auto [wf_conflicts, wf_waits] =
      RunLockWorkload(LockProtocol::whole_file, /*disjoint=*/true);
  EXPECT_GT(wf_conflicts, 0u)
      << "whole-file locking serialises even non-overlapping writers";
  EXPECT_GE(wf_waits, wf_conflicts)
      << "every revocation shows up as a wait sample";
}

TEST(LockAccounting, OverlappingExtentWritersConflict) {
  const auto [conflicts, waits] =
      RunLockWorkload(LockProtocol::extent, /*disjoint=*/false);
  EXPECT_GT(conflicts, 0u);
  EXPECT_EQ(waits, conflicts)
      << "extent-lock waits and conflicts are charged under one condition";
}

// Exact regression pins for the POSIX-mode lock path: the consist work
// rewired write() around the model switch and the WholeFileGrant RAII
// helper, and these counts must not move while the model stays posix.
TEST(LockAccounting, PosixModeLockChargesPinnedExactly) {
  const auto [wf_dis_c, wf_dis_w] =
      RunLockWorkload(LockProtocol::whole_file, /*disjoint=*/true);
  EXPECT_EQ(wf_dis_c, 13u);
  EXPECT_EQ(wf_dis_w, 13u);
  const auto [wf_ovl_c, wf_ovl_w] =
      RunLockWorkload(LockProtocol::whole_file, /*disjoint=*/false);
  EXPECT_EQ(wf_ovl_c, 13u);
  EXPECT_EQ(wf_ovl_w, 13u);
  const auto [ex_ovl_c, ex_ovl_w] =
      RunLockWorkload(LockProtocol::extent, /*disjoint=*/false);
  EXPECT_EQ(ex_ovl_c, 8u);
  EXPECT_EQ(ex_ovl_w, 8u);
}

// Relaxed consistency models bypass the lock path entirely: no conflicts
// charged, no wait samples — visibility is deferred to close/sync instead.
TEST(LockAccounting, RelaxedModelsSkipTheLockPath) {
  for (consist::ConsistencyModel m :
       {consist::ConsistencyModel::session, consist::ConsistencyModel::commit,
        consist::ConsistencyModel::mpiio}) {
    for (LockProtocol locking :
         {LockProtocol::whole_file, LockProtocol::extent}) {
      const auto [conflicts, waits] =
          RunLockWorkload(locking, /*disjoint=*/false, m);
      EXPECT_EQ(conflicts, 0u) << ConsistencyModelName(m);
      EXPECT_EQ(waits, 0u) << ConsistencyModelName(m);
    }
  }
}

// WholeFileGrant owns a granted whole-file unit: completing stamps the
// op's finish time; abandoning (error path) releases at the grant instant
// so no phantom hold outlives the op.
TEST(WholeFileGrant, AbandonedGrantReleasesAtGrantInstant) {
  PfsCluster::LockUnit unit;
  {
    WholeFileGrant g;
    g.arm(&unit, 2.5);
    EXPECT_TRUE(g.held());
  }  // destroyed without complete(): early-exit path
  EXPECT_EQ(unit.free, 2.5);
}

TEST(WholeFileGrant, CompleteStampsOnceAndDisarms) {
  PfsCluster::LockUnit unit;
  WholeFileGrant g;
  EXPECT_FALSE(g.held());
  g.arm(&unit, 1.0);
  g.complete(4.0);
  EXPECT_FALSE(g.held());
  EXPECT_EQ(unit.free, 4.0);
  g.complete(9.0);  // disarmed: no effect
  g.release();
  EXPECT_EQ(unit.free, 4.0);
}

// A write that fails mid-op (both servers down, retry budget exhausted)
// must still stamp the whole-file unit with its own completion time: a
// leaked hold would block every later acquirer behind a lock nobody
// holds.
TEST(WholeFileGrant, FailedWriteCannotLeakAHeldLockUnit) {
  obs::Registry reg;
  obs::Context ctx;
  ctx.registry = &reg;
  PfsConfig cfg = PfsConfig::PanFsLike(2);
  cfg.locking = LockProtocol::whole_file;
  cfg.store_data = false;
  sim::VirtualScheduler sched(1);
  PfsCluster cluster(cfg, sched, nullptr, &ctx);
  fault::FaultPlan plan;
  fault::FaultInjector fault(plan, cluster.num_oss());
  fault.force_down(0, 0.0, 500.0);
  fault.force_down(1, 0.0, 500.0);
  cluster.set_fault(&fault);

  PfsClient client(cluster, 0);
  auto fh = client.create("/f");
  ASSERT_TRUE(fh.ok());
  const auto fid = cluster.mds().lookup("/f")->file_id;
  EXPECT_FALSE(client.write(*fh, 0, MakePattern(1, 0, 4 * KiB)).ok());

  auto& unit = cluster.lock_unit(fid, 0);
  EXPECT_EQ(unit.holder, 0u);
  EXPECT_GT(unit.free, 0.0) << "the failed op's hold time must be charged";
  EXPECT_LE(unit.free, client.now())
      << "unit.free must not outlive the failed op";

  // The next acquisition must find the unit free at (or before) the
  // current time: a leaked hold would surface as a lock-wait sample even
  // for the same client re-acquiring its own unit.
  EXPECT_FALSE(client.write(*fh, 0, MakePattern(2, 0, 4 * KiB)).ok());
  EXPECT_LE(cluster.lock_unit(fid, 0).free, client.now());
  EXPECT_EQ(reg.histogram("pfs.lock_wait_s", obs::LatencyBuckets()).total(), 0u)
      << "no phantom hold may charge a wait";
  sched.finish(0);
}

// Regression: a write overlapping the readahead window must invalidate the
// overlapped suffix — the cached pages no longer match the object — while
// the untouched prefix and non-overlapping writes keep serving hits.
TEST(OssRegression, OverlappingWriteInvalidatesReadaheadWindow) {
  PfsConfig cfg = PfsConfig::PanFsLike(1);
  cfg.rmw_on_unaligned = false;  // isolate the readahead charges
  sim::VirtualScheduler sched(1);
  PfsCluster cluster(cfg, sched);
  Oss& oss = cluster.oss(0);

  double t = oss.serve_write(1, 0, 256 * KiB, 0.0);
  t = oss.serve_read(1, 0, 64 * KiB, t);  // cold: flush + arm window [0,256K)
  const double busy_armed = oss.disk_busy_seconds();
  t = oss.serve_read(1, 16 * KiB, 16 * KiB, t);
  EXPECT_EQ(oss.disk_busy_seconds(), busy_armed) << "in-window read is a hit";

  t = oss.serve_write(1, 512 * KiB, 4 * KiB, t);  // beyond the window
  t = oss.flush(1, t);
  const double busy_disjoint = oss.disk_busy_seconds();
  t = oss.serve_read(1, 64 * KiB, 8 * KiB, t);
  EXPECT_EQ(oss.disk_busy_seconds(), busy_disjoint)
      << "a non-overlapping write must not invalidate the window";

  t = oss.serve_write(1, 16 * KiB, 4 * KiB, t);  // overlaps: shrink to [0,16K)
  t = oss.flush(1, t);
  const double busy_overlap = oss.disk_busy_seconds();
  t = oss.serve_read(1, 0, 8 * KiB, t);
  EXPECT_EQ(oss.disk_busy_seconds(), busy_overlap)
      << "the untouched prefix may keep serving hits";
  t = oss.serve_read(1, 32 * KiB, 8 * KiB, t);
  EXPECT_GT(oss.disk_busy_seconds(), busy_overlap)
      << "reading past the invalidated point must go back to disk";
  sched.finish(0);
}

// Regression: reading a range this server never stored (a hole in the
// stripe) must answer from the extent map without disk I/O, and a
// readahead window must clamp to the object's stored size instead of
// prefetching past EOF.
TEST(OssRegression, HoleReadsChargeNoDiskAndWindowClampsToSize) {
  // Client level: a file whose first stripe was never written.
  {
    sim::VirtualScheduler sched(1);
    PfsConfig cfg = PfsConfig::PanFsLike(2);
    PfsCluster cluster(cfg, sched);
    PfsClient client(cluster, 0);
    auto fh = *client.create("/sparse");
    Bytes data = MakePattern(0, cfg.stripe_unit, 64 * KiB);
    ASSERT_TRUE(client.write(fh, cfg.stripe_unit, data).ok());
    ASSERT_TRUE(client.fsync(fh).ok());

    const std::uint64_t fid = cluster.mds().lookup("/sparse")->file_id;
    const std::uint32_t hole_server = cluster.placement().server_for(fid, 0, 2);
    Bytes out(64 * KiB, 0xFF);
    ASSERT_TRUE(client.read(fh, 0, out).ok());
    for (auto v : out) ASSERT_EQ(v, 0u) << "holes read as zeros";
    EXPECT_EQ(cluster.oss(hole_server).disk_busy_seconds(), 0.0)
        << "the hole stripe's server must not touch its disk";
    sched.finish(0);
  }
  // Server level: the readahead window never extends past the stored size.
  {
    sim::VirtualScheduler sched(1);
    PfsConfig cfg = PfsConfig::PanFsLike(1);
    cfg.rmw_on_unaligned = false;
    PfsCluster cluster(cfg, sched);
    Oss& oss = cluster.oss(0);
    double t = oss.serve_write(2, 0, 100 * KiB, 0.0);
    t = oss.serve_read(2, 90 * KiB, 8 * KiB, t);  // window [90K, 100K)
    const double busy_armed = oss.disk_busy_seconds();
    t = oss.serve_read(2, 96 * KiB, 4 * KiB, t);  // inside the clamped window
    EXPECT_EQ(oss.disk_busy_seconds(), busy_armed);
    t = oss.serve_read(2, 100 * KiB, 8 * KiB, t);  // entirely past EOF: hole
    EXPECT_EQ(oss.disk_busy_seconds(), busy_armed)
        << "a read past the stored size must not charge the disk";
    t = oss.serve_read(2, 92 * KiB, 4 * KiB, t);
    EXPECT_EQ(oss.disk_busy_seconds(), busy_armed)
        << "the hole read must not have replaced the readahead window";
    sched.finish(0);
  }
}

// Determinism across whole simulations: identical runs give identical
// virtual finish times.
TEST(PfsDeterminism, RepeatedRunsIdentical) {
  auto run = [] {
    constexpr int kRanks = 4;
    PfsConfig cfg = PfsConfig::LustreLike(2);
    cfg.store_data = false;
    sim::VirtualScheduler sched(kRanks);
    PfsCluster cluster(cfg, sched);
    std::vector<std::thread> threads;
    std::vector<double> finish(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] {
        PfsClient client(cluster, r);
        auto fh = client.create("/f" + std::to_string(r));
        for (int i = 0; i < 50; ++i) {
          Bytes data(10000 + 1000 * r);
          client.write(*fh, static_cast<std::uint64_t>(i) * data.size(), data);
        }
        client.close(*fh);
        finish[r] = client.now();
        sched.finish(r);
      });
    }
    for (auto& t : threads) t.join();
    return finish;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pdsi::pfs
