// ScalaTrace tests: lossless round trip on arbitrary streams, structural
// size bounds for iterative traces, and nested-loop folding.
#include <gtest/gtest.h>

#include "pdsi/common/rng.h"
#include "pdsi/scalatrace/scalatrace.h"

namespace pdsi::scalatrace {
namespace {

TEST(Compress, RoundTripIsLossless) {
  auto trace = SyntheticAppTrace(50, 8, 10);
  auto compressed = Compress(trace);
  EXPECT_EQ(compressed.expand(), trace);
  EXPECT_EQ(compressed.event_count(), trace.size());
}

TEST(Compress, RandomStreamsRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Event> trace;
    const int n = 50 + static_cast<int>(rng.below(300));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.kind = static_cast<Event::Kind>(rng.below(7));
      e.arg = rng.below(4);  // small arg space => accidental repeats
      trace.push_back(e);
    }
    auto compressed = Compress(trace);
    EXPECT_EQ(compressed.expand(), trace) << "trial " << trial;
  }
}

TEST(Compress, IterativeTraceSizeIsNearConstant) {
  // The ScalaTrace claim: trace size describes the *pattern*, not the
  // run length. 10x the timesteps must not grow the structure.
  const auto small = Compress(SyntheticAppTrace(100, 8, 10));
  const auto large = Compress(SyntheticAppTrace(1000, 8, 10));
  EXPECT_EQ(large.event_count(), Compress(SyntheticAppTrace(1000, 8, 10)).event_count());
  EXPECT_LE(large.node_count(), small.node_count() + 4);
  // And both are tiny next to the raw stream.
  EXPECT_LT(large.node_count() * 20, large.event_count());
}

TEST(Compress, FoldsSimpleRun) {
  std::vector<Event> trace(100, {Event::Kind::compute, 1});
  auto compressed = Compress(trace);
  ASSERT_EQ(compressed.nodes.size(), 1u);
  EXPECT_TRUE(compressed.nodes[0].is_loop());
  EXPECT_EQ(compressed.expand(), trace);
}

TEST(Compress, FoldsNestedLoops) {
  // (A A A B) x 8 should become one loop of [loop(A,3), B].
  std::vector<Event> trace;
  for (int outer = 0; outer < 8; ++outer) {
    for (int inner = 0; inner < 3; ++inner) trace.push_back({Event::Kind::read, 7});
    trace.push_back({Event::Kind::barrier, 0});
  }
  auto compressed = Compress(trace);
  EXPECT_EQ(compressed.expand(), trace);
  EXPECT_LE(compressed.node_count(), 4u);
}

TEST(Compress, NoFalseFolding) {
  // Strictly aperiodic stream must stay literal.
  std::vector<Event> trace;
  for (std::uint64_t i = 0; i < 40; ++i) trace.push_back({Event::Kind::write, i});
  auto compressed = Compress(trace);
  EXPECT_EQ(compressed.nodes.size(), 40u);
  EXPECT_EQ(compressed.expand(), trace);
}

TEST(Replay, ActionSeesEventsInOrder) {
  auto trace = SyntheticAppTrace(5, 2, 2);
  auto compressed = Compress(trace);
  std::vector<Event> seen;
  compressed.replay([&](const Event& e) { seen.push_back(e); });
  EXPECT_EQ(seen, trace);
}

}  // namespace
}  // namespace pdsi::scalatrace
