// Tests for the online monitoring layer: the incremental consistency
// monitor's first-violation parity with the batch checker (clean traces,
// every mutation injector, live subscription vs replay), the bounded
// retained-state guarantee, the cap-vs-subscriber regression (a capped
// tracer still feeds sinks the full stream), and the rpc_req causal
// breakdown identity with its zero-observer-effect gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/consist/monitor.h"
#include "pdsi/consist/mutate.h"
#include "pdsi/fault/fault.h"
#include "pdsi/obs/monitor.h"
#include "pdsi/obs/obs.h"
#include "pdsi/obs/profile.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::consist {
namespace {

constexpr std::uint64_t kSlot = 64 * KiB;  // one extent-lock unit per rank
constexpr std::uint64_t kLen = 4 * KiB;    // record length within a slot

std::uint64_t Mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return Mix64(Mix64(Mix64(a) ^ b) ^ c);
}

struct WorkloadSpec {
  ConsistencyModel model = ConsistencyModel::posix;
  int ranks = 3;
  int rounds = 3;
  bool contended = false;
  bool split_roles = false;
  bool randomized = false;
  std::uint64_t salt = 1;
};

/// The consist_test phase-disciplined workload (same schedule, same
/// content tags), so monitor parity is tested on the same traces the
/// batch checker's own suite pins.
void RunWorkload(const WorkloadSpec& spec, obs::Tracer* tracer) {
  obs::Context ctx;
  ctx.tracer = tracer;
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(2);
  cfg.consistency = spec.model;
  cfg.record_consist_ops = true;
  if (spec.contended) cfg.locking = pfs::LockProtocol::whole_file;
  sim::VirtualScheduler sched(spec.ranks);
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  std::vector<std::size_t> ids;
  for (int r = 0; r < spec.ranks; ++r) ids.push_back(r);
  sim::VirtualBarrier barrier(sched, ids);

  const bool session = spec.model == ConsistencyModel::session;
  const bool commit = spec.model == ConsistencyModel::commit;
  const bool mpiio = spec.model == ConsistencyModel::mpiio;
  const int writers = spec.split_roles ? (spec.ranks + 1) / 2 : spec.ranks;

  std::vector<std::thread> threads;
  for (int r = 0; r < spec.ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      const bool is_writer = r < writers;
      const bool is_reader = !spec.split_roles || r >= writers;
      pfs::FileHandle fh = -1;
      if (r == 0) {
        fh = *client.create("/shared");
        if (session) client.close(fh);
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        if (!session) fh = *client.open("/shared");
      }
      for (int k = 0; k < spec.rounds; ++k) {
        const bool write_this_round =
            is_writer &&
            (!spec.randomized || Hash3(spec.salt, r, 2 * k) % 4 != 0);
        if (write_this_round) {
          if (session) fh = *client.open("/shared");
          const std::uint64_t off =
              spec.contended ? 0 : static_cast<std::uint64_t>(r) * kSlot;
          const auto tag = static_cast<std::uint32_t>(
              spec.salt * 1000003 + static_cast<std::uint64_t>(k) * 131 + r);
          EXPECT_TRUE(client.write(fh, off, MakePattern(tag, off, kLen)).ok());
          if (session) {
            EXPECT_TRUE(client.close(fh).ok());
          } else if (commit || mpiio) {
            EXPECT_TRUE(client.fsync(fh).ok());
          }
        }
        barrier.arrive(r);
        const bool read_this_round =
            is_reader &&
            (!spec.randomized || Hash3(spec.salt, r, 2 * k + 1) % 8 != 0);
        if (read_this_round) {
          const int target =
              spec.contended
                  ? 0
                  : static_cast<int>(
                        (spec.randomized
                             ? Hash3(spec.salt, 977 + r, k)
                             : static_cast<std::uint64_t>(r) + 1 + k) %
                        writers);
          if (session) fh = *client.open("/shared");
          if (mpiio) {
            EXPECT_TRUE(client.fsync(fh).ok());
          }
          Bytes out(kLen);
          auto n = client.read(
              fh, static_cast<std::uint64_t>(target) * kSlot, out);
          EXPECT_TRUE(n.ok());
          if (session) client.close(fh);
        }
        barrier.arrive(r);
      }
      if (!session && fh >= 0) client.close(fh);
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();
}

std::vector<obs::AnalysisEvent> RecordWorkload(const WorkloadSpec& spec) {
  obs::Tracer tracer;
  RunWorkload(spec, &tracer);
  return obs::CollectEvents(tracer);
}

/// Replays `events` through a fresh monitor and returns it.
ConsistencyMonitor Monitor(const std::vector<obs::AnalysisEvent>& events,
                           ConsistencyModel model) {
  ConsistencyMonitor mon(model);
  obs::ReplayEvents(events, {&mon});
  return mon;
}

/// Batch and online verdicts must agree: same cleanliness and, on a
/// violation, the same kind and op pair (the parity contract — stats
/// past the first violation may legitimately differ).
void ExpectParity(const std::vector<obs::AnalysisEvent>& events,
                  ConsistencyModel model, const char* label,
                  std::uint64_t seed) {
  const CheckResult batch = CheckConsistency(events, model);
  const ConsistencyMonitor mon = Monitor(events, model);
  ASSERT_EQ(mon.clean(), batch.clean)
      << label << " seed=" << seed
      << " batch=" << (batch.clean ? "clean" : FormatViolation(batch.first, events))
      << " online=" << (mon.clean() ? "clean" : FormatViolation(mon.first(), events));
  if (!batch.clean) {
    EXPECT_EQ(mon.first().kind, batch.first.kind)
        << label << " seed=" << seed << ": "
        << FormatViolation(mon.first(), events) << " vs batch "
        << FormatViolation(batch.first, events);
    EXPECT_EQ(mon.first().op_a, batch.first.op_a)
        << label << " seed=" << seed << ": "
        << FormatViolation(mon.first(), events);
    EXPECT_EQ(mon.first().op_b, batch.first.op_b)
        << label << " seed=" << seed << ": "
        << FormatViolation(mon.first(), events);
    EXPECT_EQ(mon.first().detail, batch.first.detail)
        << label << " seed=" << seed;
  }
}

TEST(ConsistMonitor, CleanTracesAgreeWithBatchUnderEveryModel) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    WorkloadSpec spec;
    spec.model = m;
    spec.ranks = 4;
    spec.rounds = 3;
    auto events = RecordWorkload(spec);
    const CheckResult batch = CheckConsistency(events, m);
    const ConsistencyMonitor mon = Monitor(events, m);
    EXPECT_TRUE(batch.clean) << ConsistencyModelName(m);
    EXPECT_TRUE(mon.clean())
        << ConsistencyModelName(m) << ": "
        << FormatViolation(mon.first(), events);
    // On clean traces the per-read classification counters agree too.
    EXPECT_EQ(mon.stats().writes, batch.stats.writes) << ConsistencyModelName(m);
    EXPECT_EQ(mon.stats().reads, batch.stats.reads) << ConsistencyModelName(m);
    EXPECT_EQ(mon.stats().content_checks, batch.stats.content_checks)
        << ConsistencyModelName(m);
    EXPECT_EQ(mon.stats().composite_skips, batch.stats.composite_skips)
        << ConsistencyModelName(m);
  }
}

TEST(ConsistMonitor, RandomizedCleanSchedulesAgree) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    for (std::uint64_t seed : {11u, 29u, 63u}) {
      WorkloadSpec spec;
      spec.model = m;
      spec.ranks = 4;
      spec.rounds = 4;
      spec.randomized = true;
      spec.salt = seed;
      ExpectParity(RecordWorkload(spec), m, ConsistencyModelName(m).data(),
                   seed);
    }
  }
}

TEST(ConsistMonitor, ReorderWritePastCloseParity) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::session;
  spec.ranks = 4;
  spec.rounds = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto events = RecordWorkload(spec);
    auto p = ReorderWritePastClose(&events, seed);
    ASSERT_TRUE(p.applied) << seed;
    ExpectParity(events, ConsistencyModel::session, "reorder", seed);
  }
}

TEST(ConsistMonitor, DropSyncEdgeParityUnderCommitAndMpiio) {
  for (ConsistencyModel m : {ConsistencyModel::commit, ConsistencyModel::mpiio}) {
    WorkloadSpec spec;
    spec.model = m;
    spec.ranks = 4;
    spec.rounds = 3;
    spec.split_roles = m == ConsistencyModel::mpiio;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      auto events = RecordWorkload(spec);
      auto p = DropSyncEdge(&events, seed);
      ASSERT_TRUE(p.applied) << ConsistencyModelName(m) << " seed=" << seed;
      ExpectParity(events, m, "drop-sync", seed);
    }
  }
}

TEST(ConsistMonitor, SpliceStaleReadParityUnderEveryModel) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    WorkloadSpec spec;
    spec.model = m;
    spec.ranks = 4;
    spec.rounds = 3;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      auto events = RecordWorkload(spec);
      auto p = SpliceStaleRead(&events, m, seed);
      ASSERT_TRUE(p.applied) << ConsistencyModelName(m) << " seed=" << seed;
      ExpectParity(events, m, ConsistencyModelName(m).data(), seed);
    }
  }
}

TEST(ConsistMonitor, OverlapConflictingWritesParity) {
  WorkloadSpec spec;
  spec.contended = true;
  spec.ranks = 3;
  spec.rounds = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto events = RecordWorkload(spec);
    auto p = OverlapConflictingWrites(&events, seed);
    ASSERT_TRUE(p.applied) << seed;
    ExpectParity(events, ConsistencyModel::posix, "overlap", seed);
  }
}

TEST(ConsistMonitor, ViolationSurfacesAsDeterministicAlarm) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::session;
  auto events = RecordWorkload(spec);
  auto p = ReorderWritePastClose(&events, 0);
  ASSERT_TRUE(p.applied);
  const ConsistencyMonitor mon = Monitor(events, ConsistencyModel::session);
  ASSERT_FALSE(mon.clean());
  const obs::Alarm a = mon.alarm();
  EXPECT_EQ(a.kind, "consistency");
  EXPECT_EQ(a.key, ViolationKindName(mon.first().kind));
  const std::string line = obs::FormatAlarm(a);
  EXPECT_NE(line.find("consistency"), std::string::npos) << line;
  EXPECT_EQ(line, obs::FormatAlarm(Monitor(events, ConsistencyModel::session)
                                       .alarm()));
}

// The O(open intervals) guarantee: retained state does not grow with the
// trace. Scaling rounds 2 -> 10 quintuples the ops but must not move the
// peak by more than a round's worth of in-flight state.
TEST(ConsistMonitor, PeakRetainedIsBoundedByOpenIntervalsNotTraceLength) {
  auto peak = [](int rounds) {
    WorkloadSpec spec;
    spec.ranks = 4;
    spec.rounds = rounds;
    auto events = RecordWorkload(spec);
    ConsistencyMonitor mon = Monitor(events, ConsistencyModel::posix);
    EXPECT_TRUE(mon.clean());
    // Reads all settle; each interval keeps its newest write live (there
    // is no newer one to supersede it), so the tail is O(intervals) too.
    EXPECT_LE(mon.retained(), 8u) << "only per-interval tails may remain";
    return mon.peak_retained();
  };
  const std::size_t p2 = peak(2);
  const std::size_t p10 = peak(10);
  EXPECT_LE(p10, p2 + 4u) << "retained state must not scale with rounds";
  // And the bound is far below the trace: 4 ranks x 10 rounds = 40 writes
  // + 40 reads flowed through.
  EXPECT_LT(p10, 20u);
}

// -- Satellite: cap-vs-subscriber regression --------------------------------
//
// A tracer capped far below the event count drops events from the stored
// trace but still feeds subscribers the full stream: the online monitor
// and the alarm sinks must produce byte-identical results to an uncapped
// run of the same workload.
TEST(ConsistMonitor, CappedTracerFeedsSubscribersTheFullStream) {
  struct Run {
    std::uint64_t dropped = 0;
    bool clean = false;
    CheckStats stats;
    std::size_t peak = 0;
    std::string watermark_report;
    std::size_t slo_alarms = 0;
  };
  auto run = [](std::size_t cap) {
    WorkloadSpec spec;
    spec.model = ConsistencyModel::commit;
    spec.ranks = 4;
    spec.rounds = 4;
    obs::Tracer tracer;
    if (cap != 0) tracer.set_max_events(cap);
    ConsistencyMonitor mon(ConsistencyModel::commit);
    obs::WatermarkSink wm;
    obs::SloSink slo({{"oss:write", 1e-9, 0.5, 10.0, 4, 0.0}});
    tracer.subscribe(&mon);
    tracer.subscribe(&wm);
    tracer.subscribe(&slo);
    RunWorkload(spec, &tracer);
    tracer.flush_subscribers(0.0);
    Run r;
    r.dropped = tracer.dropped_events();
    r.clean = mon.clean();
    r.stats = mon.stats();
    r.peak = mon.peak_retained();
    std::ostringstream os;
    wm.write_report(os);
    r.watermark_report = os.str();
    r.slo_alarms = slo.alarms().size();
    return r;
  };
  const Run uncapped = run(0);
  const Run capped = run(64);
  EXPECT_EQ(uncapped.dropped, 0u);
  EXPECT_GT(capped.dropped, 0u) << "the cap must actually bite";
  EXPECT_TRUE(uncapped.clean);
  EXPECT_EQ(capped.clean, uncapped.clean);
  EXPECT_EQ(capped.stats.writes, uncapped.stats.writes);
  EXPECT_EQ(capped.stats.reads, uncapped.stats.reads);
  EXPECT_EQ(capped.stats.content_checks, uncapped.stats.content_checks);
  EXPECT_EQ(capped.stats.composite_skips, uncapped.stats.composite_skips);
  EXPECT_EQ(capped.peak, uncapped.peak);
  EXPECT_EQ(capped.watermark_report, uncapped.watermark_report);
  EXPECT_GT(uncapped.slo_alarms, 0u) << "the 1ns SLO must fire";
  EXPECT_EQ(capped.slo_alarms, uncapped.slo_alarms);
}

// Live subscription and post-hoc replay of the same tracer see the same
// stream with the same indices — the online/offline equivalence pivot.
TEST(ConsistMonitor, LiveSubscriptionMatchesReplayExactly) {
  WorkloadSpec spec;
  spec.model = ConsistencyModel::mpiio;
  spec.ranks = 4;
  spec.rounds = 3;
  spec.split_roles = true;
  obs::Tracer tracer;
  ConsistencyMonitor live(ConsistencyModel::mpiio);
  tracer.subscribe(&live);
  RunWorkload(spec, &tracer);
  tracer.flush_subscribers(0.0);

  ConsistencyMonitor replayed =
      Monitor(obs::CollectEvents(tracer), ConsistencyModel::mpiio);
  EXPECT_EQ(live.clean(), replayed.clean());
  EXPECT_EQ(live.stats().writes, replayed.stats().writes);
  EXPECT_EQ(live.stats().reads, replayed.stats().reads);
  EXPECT_EQ(live.stats().content_checks, replayed.stats().content_checks);
  EXPECT_EQ(live.stats().composite_skips, replayed.stats().composite_skips);
  EXPECT_EQ(live.peak_retained(), replayed.peak_retained());
}

// -- rpc_req causal spans ----------------------------------------------------

struct BreakdownRun {
  double final_now = 0.0;
  std::vector<obs::AnalysisEvent> events;
  obs::RequestBreakdownSink sink;
};

/// The rpc_test pipelined golden workload (same seed, same schedule),
/// optionally monitored. 24 pipelined writes + a read barrier + fsync
/// against a seeded 15% drop plan: queue waits, window stalls and retry
/// penalties all occur.
void RunPipelinedMonitored(bool subscribe, BreakdownRun* out) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.rpc_window = 8;
  cfg.rpc_batch = 4;
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.rpc_drop_prob = 0.15;
  fault::FaultInjector inj(plan, 4);
  cluster.set_fault(&inj);
  pfs::PfsClient client(cluster, 0);
  if (subscribe) tr.subscribe(&out->sink);

  auto fh = *client.create("/shared");
  const auto rec = MakePattern(5, 0, 47 * KiB);
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(
        client.write(fh, static_cast<std::uint64_t>(i) * rec.size(), rec).ok());
  }
  Bytes out_buf(rec.size());
  EXPECT_TRUE(client.read(fh, 3 * rec.size(), out_buf).ok());
  EXPECT_TRUE(client.fsync(fh).ok());
  EXPECT_TRUE(client.close(fh).ok());
  out->final_now = client.now();
  sched.finish(0);
  if (subscribe) tr.flush_subscribers(client.now());
  out->events = obs::CollectEvents(tr);
}

TEST(RpcReqSpans, BreakdownsSumExactlyAndGateOnSubscribers) {
  BreakdownRun monitored, bare;
  RunPipelinedMonitored(true, &monitored);
  RunPipelinedMonitored(false, &bare);

  // Zero observer effect: attaching the sink changes no timing.
  EXPECT_EQ(monitored.final_now, bare.final_now);

  // Without a subscriber, no rpc_req span and no req arg exists anywhere.
  for (const auto& e : bare.events) {
    EXPECT_NE(e.name, "rpc_req");
    EXPECT_NE(e.name, "rpc_req_fail");
    for (const auto& [k, v] : e.args) EXPECT_NE(k, "req");
  }

  // With one, every pipelined request appears with the exact identity
  // total = queue + stall + retry + wire + service.
  const auto& reqs = monitored.sink.requests();
  ASSERT_GT(reqs.size(), 24u);  // 24 writes + metadata ops
  for (const auto& b : reqs) {
    EXPECT_GE(b.queue_s, 0.0) << "req=" << b.req;
    EXPECT_GE(b.stall_s, 0.0) << "req=" << b.req;
    EXPECT_GE(b.retry_s, 0.0) << "req=" << b.req;
    EXPECT_GE(b.wire_s, 0.0) << "req=" << b.req;
    EXPECT_GE(b.service_s, 0.0)
        << "req=" << b.req << " total=" << b.total_s << " queue=" << b.queue_s
        << " stall=" << b.stall_s << " retry=" << b.retry_s
        << " wire=" << b.wire_s;
  }
  EXPECT_TRUE(monitored.sink.exact());
  bool any_queue = false, any_retry = false;
  for (const auto& b : reqs) {
    if (b.queue_s > 0 || b.stall_s > 0) any_queue = true;
    if (b.retry_s > 0) any_retry = true;
  }
  EXPECT_TRUE(any_queue) << "batching must produce queue/stall time";
  EXPECT_TRUE(any_retry) << "the seeded 15% drop plan must produce retries";

  // req ids are per-client monotonic from 1. One public client op may
  // fan out to several wire requests (fsync flushes every touched
  // server) — those share the op's causal id but target distinct
  // servers, which is exactly what lets a consumer group a client op's
  // spans back together.
  std::map<std::uint64_t, std::set<std::uint64_t>> by_req;
  for (const auto& b : reqs) {
    EXPECT_GE(b.req, 1u);
    EXPECT_TRUE(by_req[b.req].insert(b.server).second)
        << "req=" << b.req << " srv=" << b.server
        << ": same (req, server) pair twice";
  }
  EXPECT_LT(by_req.size(), reqs.size()) << "the fsync fan-out must share ids";

  // The table renders byte-stably.
  std::ostringstream t1, t2;
  monitored.sink.write_table(t1, 8);
  monitored.sink.write_table(t2, 8);
  EXPECT_EQ(t1.str(), t2.str());
  EXPECT_NE(t1.str().find("req"), std::string::npos);
}

}  // namespace
}  // namespace pdsi::consist
