// Maat capability tests: issue/verify, forgery and tamper rejection,
// expiry and epoch revocation, merged (group) capabilities.
#include <gtest/gtest.h>

#include "pdsi/security/maat.h"

namespace pdsi::security {
namespace {

TEST(Rights, Lattice) {
  EXPECT_TRUE(Permits(Rights::read_write, Rights::read));
  EXPECT_TRUE(Permits(Rights::read_write, Rights::write));
  EXPECT_TRUE(Permits(Rights::read, Rights::read));
  EXPECT_FALSE(Permits(Rights::read, Rights::write));
  EXPECT_FALSE(Permits(Rights::write, Rights::read));
}

TEST(DigestSet, OrderIndependent) {
  EXPECT_EQ(DigestSet({1, 2, 3}), DigestSet({3, 1, 2}));
  EXPECT_NE(DigestSet({1, 2}), DigestSet({1, 2, 3}));
  EXPECT_NE(DigestSet({1}), DigestSet({2}));
}

class MaatFixture : public ::testing::Test {
 protected:
  Authority authority_{0xdeadbeefcafef00dULL};
  std::vector<std::uint64_t> clients_{10, 11, 12};
  std::vector<std::uint64_t> files_{100, 101};
};

TEST_F(MaatFixture, ValidCapabilityPasses) {
  auto cap = authority_.issue(clients_, files_, Rights::read_write, 1000.0);
  for (auto c : clients_) {
    for (auto f : files_) {
      EXPECT_TRUE(authority_.verify(cap, c, clients_, f, files_,
                                    Rights::write, 500.0).ok());
    }
  }
}

TEST_F(MaatFixture, ForgeryRejected) {
  auto cap = authority_.issue(clients_, files_, Rights::read, 1000.0);
  // Tampering with rights invalidates the MAC.
  auto tampered = cap;
  tampered.rights = Rights::read_write;
  EXPECT_EQ(authority_.verify(tampered, 10, clients_, 100, files_,
                              Rights::write, 1.0).error(),
            Errc::invalid);
  // A capability minted under a different secret fails here.
  Authority other(0x1234);
  auto foreign = other.issue(clients_, files_, Rights::read, 1000.0);
  EXPECT_FALSE(authority_.verify(foreign, 10, clients_, 100, files_,
                                 Rights::read, 1.0).ok());
}

TEST_F(MaatFixture, OutsidersAndUncoveredFilesRejected) {
  auto cap = authority_.issue(clients_, files_, Rights::read_write, 1000.0);
  EXPECT_FALSE(authority_.verify(cap, 99, clients_, 100, files_,
                                 Rights::read, 1.0).ok());
  EXPECT_FALSE(authority_.verify(cap, 10, clients_, 999, files_,
                                 Rights::read, 1.0).ok());
  // Presenting a padded client set breaks the digest.
  auto padded = clients_;
  padded.push_back(99);
  EXPECT_FALSE(authority_.verify(cap, 99, padded, 100, files_,
                                 Rights::read, 1.0).ok());
}

TEST_F(MaatFixture, RightsEnforced) {
  auto cap = authority_.issue(clients_, files_, Rights::read, 1000.0);
  EXPECT_TRUE(authority_.verify(cap, 10, clients_, 100, files_,
                                Rights::read, 1.0).ok());
  EXPECT_EQ(authority_.verify(cap, 10, clients_, 100, files_,
                              Rights::write, 1.0).error(),
            Errc::invalid);
}

TEST_F(MaatFixture, ExpiryEnforced) {
  auto cap = authority_.issue(clients_, files_, Rights::read, 100.0);
  EXPECT_TRUE(authority_.verify(cap, 10, clients_, 100, files_,
                                Rights::read, 99.0).ok());
  EXPECT_EQ(authority_.verify(cap, 10, clients_, 100, files_,
                              Rights::read, 101.0).error(),
            Errc::stale);
}

TEST_F(MaatFixture, EpochRevocation) {
  auto cap = authority_.issue(clients_, files_, Rights::read_write, 1000.0);
  ASSERT_TRUE(authority_.verify(cap, 10, clients_, 100, files_,
                                Rights::read, 1.0).ok());
  authority_.bump_epoch();
  EXPECT_EQ(authority_.verify(cap, 10, clients_, 100, files_,
                              Rights::read, 1.0).error(),
            Errc::stale);
  // Freshly issued capabilities work under the new epoch.
  auto fresh = authority_.issue(clients_, files_, Rights::read, 1000.0);
  EXPECT_TRUE(authority_.verify(fresh, 10, clients_, 100, files_,
                                Rights::read, 1.0).ok());
}

TEST_F(MaatFixture, GroupCapabilityScalesToManyRanks) {
  // One token authorises a 512-rank job on one shared checkpoint file —
  // the Maat/group-open integration the report highlights.
  std::vector<std::uint64_t> ranks(512);
  for (std::uint64_t r = 0; r < 512; ++r) ranks[r] = 1000 + r;
  std::vector<std::uint64_t> one_file{42};
  auto cap = authority_.issue(ranks, one_file, Rights::read_write, 1000.0);
  for (std::uint64_t r : {std::uint64_t{1000}, std::uint64_t{1255},
                          std::uint64_t{1511}}) {
    EXPECT_TRUE(authority_.verify(cap, r, ranks, 42, one_file,
                                  Rights::write, 1.0).ok());
  }
  EXPECT_FALSE(authority_.verify(cap, 2000, ranks, 42, one_file,
                                 Rights::write, 1.0).ok());
}

}  // namespace
}  // namespace pdsi::security
