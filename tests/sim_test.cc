// Tests for the deterministic virtual-time scheduler and the event queue.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pdsi/sim/event_queue.h"
#include "pdsi/sim/virtual_time.h"

namespace pdsi::sim {
namespace {

TEST(VirtualScheduler, SingleActorAdvances) {
  VirtualScheduler s(1);
  s.advance(0, 1.5);
  s.advance(0, 2.5);
  EXPECT_DOUBLE_EQ(s.now(0), 4.0);
  s.finish(0);
  EXPECT_TRUE(s.all_finished());
}

// Actors performing interleaved reservations on one resource must observe
// a globally virtual-time-ordered admission sequence, independent of OS
// scheduling. Run the identical program twice and compare event orders.
std::vector<int> RunAdmissionOrder(unsigned jitter_seed) {
  VirtualScheduler sched(4);
  SimResource disk;
  std::vector<int> order;
  std::vector<std::thread> threads;
  for (int a = 0; a < 4; ++a) {
    threads.emplace_back([&, a] {
      // Stagger wall-clock starts to try to shake nondeterminism loose.
      std::this_thread::sleep_for(
          std::chrono::microseconds(((a + jitter_seed) % 4) * 200));
      for (int i = 0; i < 5; ++i) {
        sched.atomically(a, [&](double now) {
          order.push_back(a);
          // Different service times per actor => interleaved admissions.
          return disk.reserve(now, 0.001 * (a + 1));
        });
      }
      sched.finish(a);
    });
  }
  for (auto& t : threads) t.join();
  return order;
}

TEST(VirtualScheduler, AdmissionOrderIsDeterministic) {
  const auto first = RunAdmissionOrder(0);
  for (unsigned seed = 1; seed < 4; ++seed) {
    EXPECT_EQ(RunAdmissionOrder(seed), first);
  }
  // And is exactly the virtual-time order: actor 0 (fastest ops) should
  // lead; first admission must be actor 0 (all start at t=0, lowest id).
  EXPECT_EQ(first.front(), 0);
}

TEST(VirtualScheduler, TiesBreakByActorId) {
  VirtualScheduler sched(3);
  std::vector<int> order;
  std::vector<std::thread> threads;
  for (int a = 0; a < 3; ++a) {
    threads.emplace_back([&, a] {
      sched.atomically(a, [&](double now) {
        order.push_back(a);
        return now + 1.0;  // all land on the same time again
      });
      sched.atomically(a, [&](double now) {
        order.push_back(a);
        return now;
      });
      sched.finish(a);
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<int> expect{0, 1, 2, 0, 1, 2};
  EXPECT_EQ(order, expect);
}

TEST(SimResource, FifoQueueing) {
  SimResource r;
  // Arrivals in virtual-time order: 0.0 (svc 2), 1.0 (svc 1), 1.5 (svc 1).
  EXPECT_DOUBLE_EQ(r.reserve(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.reserve(1.0, 1.0), 3.0);  // queued behind first
  EXPECT_DOUBLE_EQ(r.reserve(1.5, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(r.busy_seconds(), 4.0);
  // Idle gap: arrival after free time starts immediately.
  EXPECT_DOUBLE_EQ(r.reserve(10.0, 0.5), 10.5);
}

TEST(VirtualBarrier, SynchronisesToMaxTime) {
  VirtualScheduler sched(3);
  VirtualBarrier barrier(sched, {0, 1, 2});
  std::vector<double> synced(3);
  std::vector<std::thread> threads;
  for (int a = 0; a < 3; ++a) {
    threads.emplace_back([&, a] {
      sched.advance(a, a * 2.0);  // times 0, 2, 4
      synced[a] = barrier.arrive(a);
      sched.finish(a);
    });
  }
  for (auto& t : threads) t.join();
  for (int a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(synced[a], 4.0);
  }
}

TEST(VirtualBarrier, NonParticipantsKeepMoving) {
  VirtualScheduler sched(3);
  VirtualBarrier barrier(sched, {0, 1});
  std::atomic<bool> outsider_done{false};
  // Actor 0 parks at the barrier immediately (t = 0); actor 1 first runs
  // to t = 1 and then arrives. Actor 2 is not a participant: it must be
  // able to advance to t = 0.1 even while actor 0 is parked — if parked
  // actors gated the minimum, this test would deadlock.
  std::thread t0([&] {
    barrier.arrive(0);
    sched.finish(0);
  });
  std::thread t1([&] {
    sched.advance(1, 1.0);
    barrier.arrive(1);
    sched.finish(1);
  });
  std::thread t2([&] {
    for (int i = 0; i < 100; ++i) sched.advance(2, 0.001);
    outsider_done = true;
    sched.finish(2);
  });
  t0.join();
  t1.join();
  t2.join();
  EXPECT_TRUE(outsider_done.load());
  EXPECT_TRUE(sched.all_finished());
}

TEST(VirtualBarrier, ReusableAcrossGenerations) {
  VirtualScheduler sched(2);
  VirtualBarrier barrier(sched, {0, 1});
  std::vector<std::thread> threads;
  std::vector<double> last(2);
  for (int a = 0; a < 2; ++a) {
    threads.emplace_back([&, a] {
      for (int round = 0; round < 10; ++round) {
        sched.advance(a, a == 0 ? 1.0 : 2.0);
        last[a] = barrier.arrive(a);
      }
      sched.finish(a);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(last[0], last[1]);
  EXPECT_DOUBLE_EQ(last[0], 20.0);  // max path is actor 1: 10 rounds x 2s
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.at(3.0, [&] { order.push_back(3); });
  q.at(1.0, [&] { order.push_back(1); });
  q.at(2.0, [&] { order.push_back(2); });
  q.run();
  const std::vector<int> expect{1, 2, 3};
  EXPECT_EQ(order, expect);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.at(1.0, [&, i] { order.push_back(i); });
  q.run();
  const std::vector<int> expect{0, 1, 2, 3, 4};
  EXPECT_EQ(order, expect);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto id = q.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel reports failure
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) q.after(1.0, tick);
  };
  q.after(1.0, tick);
  q.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.at(1.0, [&] { ++count; });
  q.at(5.0, [&] { ++count; });
  q.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.at(2.0, [] {});
  q.run();
  EXPECT_THROW(q.at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunawayGuard) {
  EventQueue q;
  std::function<void()> forever = [&] { q.after(1.0, forever); };
  q.after(1.0, forever);
  EXPECT_THROW(q.run(1000), std::runtime_error);
}

}  // namespace
}  // namespace pdsi::sim
