// Tests for pdsi::obs — registry instruments, tracer export formats
// (compact golden text + Chrome trace_event JSON, validated by parsing it
// back), end-to-end golden-trace determinism of an instrumented fig08
// scenario, and the observer-effect-zero guarantee (tracing on vs off
// changes nothing the simulation computes).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pdsi/bb/burst_buffer.h"
#include "pdsi/bb/drain_target.h"
#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/obs/obs.h"
#include "pdsi/plfs/plfs.h"
#include "pdsi/storage/device_catalog.h"
#include "pdsi/workload/driver.h"

namespace pdsi {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader used to validate the Chrome exporter round-trips.
struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool has(const std::string& key) const { return obj.count(key) != 0; }
  const Json& at(const std::string& key) const { return obj.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json* out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool lit(const char* word, std::size_t n) {
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(Json* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out->kind = Json::kStr; return string(&out->str);
      case 't': out->kind = Json::kBool; out->b = true; return lit("true", 4);
      case 'f': out->kind = Json::kBool; out->b = false; return lit("false", 5);
      case 'n': out->kind = Json::kNull; return lit("null", 4);
      default: return number(out);
    }
  }

  bool number(Json* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->num = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = Json::kNum;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // must be escaped
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (code > 0x7f) return false;  // exporter only escapes ASCII
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool array(Json* out) {
    out->kind = Json::kArr;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      Json v;
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool object(Json* out) {
    out->kind = Json::kObj;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      Json v;
      if (!value(&v)) return false;
      out->obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Registry instruments.

TEST(Registry, CountersGaugesAndLookupStability) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("a.ops");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("a.ops"), &c);  // stable address, same instance

  obs::Gauge& g = reg.gauge("a.depth");
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Registry, HistogramBucketEdgesAreInclusiveOnTheRight) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.add(1.0);    // lands in le1 (right-inclusive)
  h.add(1.0001); // le10
  h.add(10.0);   // le10
  h.add(10.5);   // overflow
  h.add(-3.0);   // below every bound -> first bucket
  EXPECT_EQ(h.total(), 5u);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Registry, WriteTextIsSortedAndStable) {
  obs::Registry reg;
  reg.counter("z.count").add(7);
  reg.counter("a.count").add(1);
  reg.gauge("m.gauge").set(1.5);
  reg.histogram("h.lat", {0.5}).add(0.25);
  std::ostringstream os;
  reg.write_text(os);
  EXPECT_EQ(os.str(),
            "counter a.count 1\n"
            "counter z.count 7\n"
            "gauge m.gauge 1.5\n"
            "hist h.lat le0.5=1 inf=0\n");
}

TEST(Registry, HistogramQuantileMatchesExactSortedSamples) {
  obs::Registry reg;
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  obs::Histogram& h = reg.histogram("lat", bounds);
  // One sample per bucket: the exact q-quantile of {1..100} and the
  // linear-within-bucket estimate agree to one bucket width.
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    h.add(static_cast<double>(i));
    samples.push_back(static_cast<double>(i));
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    EXPECT_NEAR(h.quantile(q), exact, 1.0 + 1e-9) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(reg.histogram("empty", {1.0}).quantile(0.5), 0.0);
  // Overflow ranks report the highest finite bound.
  obs::Histogram& o = reg.histogram("over", {1.0, 2.0});
  o.add(50.0);
  EXPECT_DOUBLE_EQ(o.quantile(0.99), 2.0);
}

TEST(Registry, WriteJsonParsesBackWithAllInstruments) {
  obs::Registry reg;
  reg.counter("z.count").add(7);
  reg.gauge("m.gauge").set(1.5);
  obs::Histogram& h = reg.histogram("h.lat", {0.5, 2.0});
  h.add(0.25);
  h.add(3.0);
  std::ostringstream os;
  reg.write_json(os);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).parse(&root)) << os.str();
  ASSERT_EQ(root.kind, Json::kObj);
  EXPECT_EQ(root.at("counters").at("z.count").num, 7.0);
  EXPECT_EQ(root.at("gauges").at("m.gauge").num, 1.5);
  const Json& hist = root.at("hists").at("h.lat");
  ASSERT_EQ(hist.at("le").arr.size(), 2u);
  EXPECT_EQ(hist.at("le").arr[0].num, 0.5);
  ASSERT_EQ(hist.at("counts").arr.size(), 3u);  // two buckets + overflow
  EXPECT_EQ(hist.at("counts").arr[0].num, 1.0);
  EXPECT_EQ(hist.at("counts").arr[1].num, 0.0);
  EXPECT_EQ(hist.at("counts").arr[2].num, 1.0);
  // Byte-stable across identical registries.
  std::ostringstream os2;
  reg.write_json(os2);
  EXPECT_EQ(os.str(), os2.str());
}

// The JSON dump is pinned to the byte: instruments render in sorted name
// order regardless of registration order, so dumps from different code
// paths of the same run diff cleanly (the CI artifact contract).
TEST(Registry, WriteJsonIsSortedByNameAndPinned) {
  obs::Registry reg;
  reg.counter("z.count").add(7);
  reg.counter("a.count").add(1);
  reg.gauge("m.gauge").set(1.5);
  reg.gauge("b.gauge").set(-2.0);
  reg.histogram("h.lat", {0.5}).add(0.25);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_EQ(os.str(),
            "{\"counters\": {\"a.count\": 1, \"z.count\": 7}, "
            "\"gauges\": {\"b.gauge\": -2, \"m.gauge\": 1.5}, "
            "\"hists\": {\"h.lat\": {\"le\": [0.5], \"counts\": [1, 0]}}}\n");
}

// ---------------------------------------------------------------------------
// Tracer export formats.

TEST(Tracer, CompactExportSortsByTimeTrackAndSequence) {
  obs::Tracer tr;
  tr.track(3, "late");
  tr.track(1, "early");
  // Appended out of time order on purpose; same-timestamp events on one
  // track must keep append order via the per-track sequence number.
  tr.complete(3, "b", "t", 2.0, 3.0);
  tr.instant(1, "i2", "t", 1.0);
  tr.instant(1, "i1", "t", 1.0);
  tr.complete(1, "a", "t", 0.5, 1.0, {obs::Arg::Int("k", 9)});
  ASSERT_EQ(tr.size(), 4u);

  std::ostringstream os;
  tr.write_compact(os);
  EXPECT_EQ(os.str(),
            "0.500000000 early X t:a dur=0.500000000 k=9\n"
            "1.000000000 early i t:i2\n"
            "1.000000000 early i t:i1\n"
            "2.000000000 late X t:b dur=1.000000000\n");
}

TEST(Tracer, ChromeExportParsesBackWithTracksAndArgs) {
  obs::Tracer tr;
  tr.track(7, "oss\"0\\back\ntier");  // exporter must escape all of these
  tr.complete(7, "write", "disk", 1.5e-3, 2.5e-3,
              {obs::Arg::Int("len", 4096), obs::Arg::Num("seek_s", 0.25)});
  tr.instant(7, "evict", "bb", 3e-3);

  std::ostringstream os;
  tr.write_chrome(os);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).parse(&root)) << os.str();
  ASSERT_EQ(root.kind, Json::kObj);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArr);

  std::size_t metadata = 0, spans = 0, instants = 0;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.kind, Json::kObj);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    const std::string& ph = e.at("ph").str;
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").str, "thread_name");
      EXPECT_EQ(e.at("args").at("name").str, "oss\"0\\back\ntier");
      EXPECT_EQ(e.at("tid").num, 7.0);
    } else if (ph == "X") {
      ++spans;
      EXPECT_EQ(e.at("name").str, "write");
      EXPECT_EQ(e.at("cat").str, "disk");
      EXPECT_NEAR(e.at("ts").num, 1500.0, 1e-9);   // microseconds
      EXPECT_NEAR(e.at("dur").num, 1000.0, 1e-9);
      EXPECT_EQ(e.at("args").at("len").num, 4096.0);
      EXPECT_NEAR(e.at("args").at("seek_s").num, 0.25, 1e-12);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("name").str, "evict");
      EXPECT_NEAR(e.at("ts").num, 3000.0, 1e-9);
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(metadata, 1u);
  EXPECT_EQ(spans, 1u);
  EXPECT_EQ(instants, 1u);
}

TEST(Tracer, MaxEventsCapKeepsOldestAndCountsDropsExactly) {
  obs::Registry reg;
  obs::Tracer tr;
  tr.set_max_events(3);
  tr.bind_drop_counter(&reg.counter("obs.dropped_events"));
  tr.track(1, "t");
  tr.complete(1, "a", "c", 0.0, 0.5);
  tr.complete(1, "b", "c", 1.0, 1.5);
  tr.instant(1, "i", "c", 2.0);
  tr.complete(1, "d", "c", 3.0, 3.5);  // over the cap: dropped
  tr.instant(1, "e", "c", 4.0);        // dropped
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped_events(), 2u);
  EXPECT_EQ(reg.counter("obs.dropped_events").value(), 2u);
  // Keep-oldest: the stored trace is the uncapped run's prefix.
  std::ostringstream os;
  tr.write_compact(os);
  EXPECT_EQ(os.str(),
            "0.000000000 t X c:a dur=0.500000000\n"
            "1.000000000 t X c:b dur=0.500000000\n"
            "2.000000000 t i c:i\n");
}

TEST(Tracer, MaxEventsCapIsDeterministicAcrossRuns) {
  auto dump = [] {
    obs::Tracer tr;
    tr.set_max_events(50);
    tr.track(1, "t");
    for (int i = 0; i < 200; ++i) {
      tr.complete(1, "w", "c", i, i + 0.25);
    }
    std::ostringstream os;
    tr.write_compact(os);
    return std::make_pair(os.str(), tr.dropped_events());
  };
  const auto a = dump();
  const auto b = dump();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, 150u);
  EXPECT_EQ(b.second, 150u);
}

// ---------------------------------------------------------------------------
// Golden-trace determinism: the instrumented fig08 N-1 strided scenario,
// run twice with identical inputs, must export byte-identical compact
// traces and metric dumps even though rank threads race to append.

std::string GoldenScenarioDump(std::string* chrome_out = nullptr) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  const pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  const workload::CheckpointSpec spec{workload::Pattern::n1_strided, 4, 47 * KiB, 8};
  workload::RunDirectCheckpoint(cfg, spec, nullptr, &ctx);
  workload::RunPlfsCheckpoint(cfg, spec, {}, nullptr, &ctx);
  std::ostringstream os;
  tr.write_compact(os);
  reg.write_text(os);
  if (chrome_out) {
    std::ostringstream cs;
    tr.write_chrome(cs);
    *chrome_out = cs.str();
  }
  return os.str();
}

TEST(GoldenTrace, Fig08ScenarioIsByteIdenticalAcrossRuns) {
  const std::string a = GoldenScenarioDump();
  const std::string b = GoldenScenarioDump();
  ASSERT_FALSE(a.empty());
  EXPECT_NE(a.find(" oss0 X "), std::string::npos);  // server spans present
  EXPECT_NE(a.find("counter mds.ops"), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(GoldenTrace, Fig08ChromeExportParsesBack) {
  std::string chrome;
  GoldenScenarioDump(&chrome);
  Json root;
  ASSERT_TRUE(JsonParser(chrome).parse(&root));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArr);
  EXPECT_GT(events.arr.size(), 100u);
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.kind, Json::kObj);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (e.at("ph").str != "M") {
      ASSERT_TRUE(e.has("ts"));
      ASSERT_TRUE(e.has("name"));
    }
    if (e.at("ph").str == "X") {
      ASSERT_TRUE(e.has("dur"));
    }
  }
}

// ---------------------------------------------------------------------------
// Observer effect must be zero: running with tracing installed computes
// exactly the same virtual-time results (and the same bytes) as running
// with the null context.

TEST(ObserverEffect, TracedPfsRunsMatchUntracedExactly) {
  const pfs::PfsConfig cfg = pfs::PfsConfig::LustreLike(2);
  const workload::CheckpointSpec spec{workload::Pattern::n1_strided, 2, 13 * KiB, 6};

  const auto direct_off = workload::RunDirectCheckpoint(cfg, spec);
  const auto round_off = workload::RunPlfsRoundTrip(cfg, spec);

  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  const auto direct_on = workload::RunDirectCheckpoint(cfg, spec, nullptr, &ctx);
  const auto round_on = workload::RunPlfsRoundTrip(cfg, spec, {}, &ctx);
  ASSERT_GT(tr.size(), 0u);  // tracing actually happened

  EXPECT_EQ(direct_on.seconds, direct_off.seconds);
  EXPECT_EQ(direct_on.bytes, direct_off.bytes);
  EXPECT_EQ(round_on.write.seconds, round_off.write.seconds);
  EXPECT_EQ(round_on.read.seconds, round_off.read.seconds);
}

TEST(ObserverEffect, TracedPlfsReadBackBytesMatchUntraced) {
  auto run = [](obs::Context* ctx) {
    plfs::Options opts;
    opts.obs = ctx;
    plfs::Plfs fs(plfs::MakeMemBackend(), opts);
    auto w0 = fs.open_write("/f", 0);
    auto w1 = fs.open_write("/f", 1);
    EXPECT_TRUE(w0 && w1);
    Bytes a(5000), b(3000);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint8_t>(i);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint8_t>(251 - i % 97);
    EXPECT_TRUE((*w0)->write(0, a).ok());
    EXPECT_TRUE((*w1)->write(2500, b).ok());
    EXPECT_TRUE((*w0)->write(4000, std::span<const std::uint8_t>(a).first(2000)).ok());
    EXPECT_TRUE((*w0)->close().ok());
    EXPECT_TRUE((*w1)->close().ok());
    auto r = fs.open_read("/f");
    EXPECT_TRUE(bool(r));
    Bytes got((*r)->size());
    EXPECT_TRUE((*r)->read(0, got).ok());
    return HashBytes(got);
  };
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  EXPECT_EQ(run(nullptr), run(&ctx));
  EXPECT_GT(reg.counter("plfs.records").value(), 0u);
}

// ---------------------------------------------------------------------------
// Burst-buffer instrumentation: spans appear without changing timing.

TEST(ObserverEffect, TracedBurstBufferMatchesUntraced) {
  auto run = [](obs::Context* ctx) {
    bb::BbParams p;
    p.ssd = storage::FlashDevice("fusionio-iodrive-duo");
    p.ssd.capacity_bytes = 64 * MiB;
    p.high_watermark = 0.50;
    p.low_watermark = 0.25;
    bb::FixedRateDrainTarget pfs(25e6);
    bb::BurstBuffer buf(p, pfs, ctx);
    double t = 0.0;
    for (std::uint64_t off = 0; off < 96 * MiB; off += MiB) {
      t = buf.write(1, off, MiB, t);
    }
    return buf.flush(t);
  };
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  EXPECT_EQ(run(nullptr), run(&ctx));
  EXPECT_GT(tr.size(), 0u);
  EXPECT_EQ(reg.counter("bb.bytes_absorbed").value(), 96 * MiB);
  EXPECT_GT(reg.counter("bb.ingest_stalls").value(), 0u);
}

}  // namespace
}  // namespace pdsi
