// pdsi::rpc — the client request engine: the unified retry/backoff
// schedule (one definition for the chunk path and the availability-wait
// path), sync-mode pass-through neutrality, and the pipelined mode's
// window/batch/drain semantics with run-twice byte-identical traces.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pdsi/common/bytes.h"
#include "pdsi/common/units.h"
#include "pdsi/fault/fault.h"
#include "pdsi/obs/obs.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/rpc/engine.h"

namespace pdsi {
namespace {

constexpr double kForever = 1e18;

// ---------------------------------------------------------------------------
// RetryPolicy: the single backoff schedule.

TEST(RetryPolicy, PenaltySchedulePinned) {
  rpc::RetryPolicy p;  // defaults mirror fault::FaultPlan
  EXPECT_EQ(p.penalty(0), p.rpc_timeout_s + p.retry_backoff_s * 1.0);
  EXPECT_EQ(p.penalty(1), p.rpc_timeout_s + p.retry_backoff_s * 2.0);
  EXPECT_EQ(p.penalty(5), p.rpc_timeout_s + p.retry_backoff_s * 32.0);
  // The shift saturates: attempt 20 and beyond charge the same penalty,
  // so pathological retry budgets cannot overflow the schedule.
  EXPECT_EQ(p.penalty(20), p.penalty(25));
  EXPECT_EQ(p.penalty(20), p.rpc_timeout_s + p.retry_backoff_s * 1048576.0);
}

/// Sum of the full backoff schedule a request charges before giving up.
double FullScheduleSeconds(const fault::FaultPlan& plan) {
  const rpc::RetryPolicy policy{plan.rpc_timeout_s, plan.retry_backoff_s,
                                plan.max_retries};
  double s = 0.0;
  for (std::uint32_t a = 0; a < plan.max_retries; ++a) s += policy.penalty(a);
  return s;
}

TEST(RetryPolicy, WriteAndAwaitChargeIdenticalSchedules) {
  // Before the engine, serve_chunk and await_server each computed the
  // timeout + exponential-backoff penalty independently; both now run
  // through RequestEngine::execute. A write against a dead server and an
  // fsync await of a dead server must charge the exact same schedule.
  const fault::FaultPlan plan;  // defaults

  // Failed write: every attempt sees the server down.
  double write_fail_s = 0.0;
  {
    sim::VirtualScheduler sched(1);
    pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(1), sched);
    fault::FaultInjector inj(plan, 1);
    inj.force_down(0, 0.0, kForever);
    cluster.set_fault(&inj);
    pfs::PfsClient client(cluster, 0);
    auto fh = *client.create("/f");
    const double before = client.now();
    EXPECT_FALSE(client.write(fh, 0, Bytes(4096)).ok());
    write_fail_s = client.now() - before;
    sched.finish(0);
  }

  // Failed fsync await: the server was touched while healthy, then died.
  double await_fail_s = 0.0;
  {
    sim::VirtualScheduler sched(1);
    pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(1), sched);
    pfs::PfsClient client(cluster, 0);
    auto fh = *client.create("/f");
    EXPECT_TRUE(client.write(fh, 0, Bytes(4096)).ok());
    fault::FaultInjector inj(plan, 1);
    inj.force_down(0, client.now(), kForever);
    cluster.set_fault(&inj);
    const double before = client.now();
    EXPECT_FALSE(client.fsync(fh).ok());
    await_fail_s = client.now() - before;
    sched.finish(0);
  }

  // DOUBLE_EQ: the two schedules accumulate from different absolute
  // start times, so the last few bits of the summed durations may differ
  // even though every penalty term is identical.
  EXPECT_DOUBLE_EQ(write_fail_s, await_fail_s)
      << "both paths must charge the engine's one retry schedule";
  EXPECT_DOUBLE_EQ(write_fail_s, FullScheduleSeconds(plan))
      << "and that schedule is exactly the RetryPolicy penalty sum";
}

// ---------------------------------------------------------------------------
// Sync mode (window == batch == 1): the engine is a pass-through.

TEST(RpcEngine, SyncModeAddsNoInstrumentsOrQueueing) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  sim::VirtualScheduler sched(1);
  pfs::PfsCluster cluster(pfs::PfsConfig::PanFsLike(4), sched, nullptr, &ctx);
  pfs::PfsClient client(cluster, 0);
  EXPECT_FALSE(client.pipelined());
  auto fh = *client.create("/f");
  EXPECT_TRUE(client.write(fh, 0, MakePattern(3, 0, 2 * MiB + 17)).ok());
  Bytes out(64 * KiB);
  EXPECT_TRUE(client.read(fh, 0, out).ok());
  EXPECT_TRUE(client.close(fh).ok());
  sched.finish(0);

  // The sync client never routes through submit()/drain(), so the
  // engine's accounting — and its rpc.* instruments — must not exist.
  const rpc::EngineStats& st = client.rpc_stats();
  EXPECT_EQ(st.submitted, 0u);
  EXPECT_EQ(st.messages, 0u);
  EXPECT_EQ(st.window_stalls, 0u);
  EXPECT_EQ(st.drains, 0u);
  std::ostringstream os;
  reg.write_text(os);
  EXPECT_EQ(os.str().find("rpc."), std::string::npos)
      << "sync runs must not create rpc.* instruments (metric dumps stay "
         "byte-identical to the pre-engine client)";
}

// ---------------------------------------------------------------------------
// Pipelined mode: window saturation, batch boundaries, drain semantics.

TEST(RpcEngine, WindowSaturationBoundsInflight) {
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.rpc_window = 2;
  cfg.rpc_batch = 1;
  pfs::PfsCluster cluster(cfg, sched);
  pfs::PfsClient client(cluster, 0);
  EXPECT_TRUE(client.pipelined());
  auto fh = *client.create("/f");
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(client.write(fh, static_cast<std::uint64_t>(i) * 4096, Bytes(4096)).ok());
  }
  EXPECT_TRUE(client.fsync(fh).ok());
  const rpc::EngineStats& st = client.rpc_stats();
  EXPECT_LE(st.max_inflight, 2u) << "the window is a hard bound";
  EXPECT_EQ(st.max_inflight, 2u) << "and 16 back-to-back writes saturate it";
  EXPECT_GT(st.window_stalls, 0u);
  EXPECT_GT(st.stall_s, 0.0);
  EXPECT_EQ(client.rpc_stats().failures, 0u);
  sched.finish(0);
}

TEST(RpcEngine, BatchFlushBoundariesAccountedExactly) {
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(1);  // one OSS: one data queue
  cfg.rpc_window = 64;  // never stall: isolate the batch accounting
  cfg.rpc_batch = 4;
  pfs::PfsCluster cluster(cfg, sched);
  pfs::PfsClient client(cluster, 0);
  auto fh = *client.create("/f");  // 1 MDS request, queued
  for (int i = 0; i < 10; ++i) {   // 10 chunk requests on queue 0
    EXPECT_TRUE(client.write(fh, static_cast<std::uint64_t>(i) * 4096, Bytes(4096)).ok());
  }
  EXPECT_TRUE(client.fsync(fh).ok());   // drain: 2 leftover chunks + the MDS op
  EXPECT_TRUE(client.close(fh).ok());   // second drain (empty)
  const rpc::EngineStats& st = client.rpc_stats();
  EXPECT_EQ(st.submitted, 11u);  // 1 create + 10 chunks
  // Queue 0 flushed twice on batch boundaries (4, 4) and once at drain
  // (2); the MDS queue flushed once at drain (1): 4 wire messages.
  EXPECT_EQ(st.messages, 4u);
  EXPECT_EQ(st.batched_tails, 11u - 4u) << "everything else rode a message";
  EXPECT_EQ(st.window_stalls, 0u) << "window 64 never saturates here";
  EXPECT_EQ(st.drains, 2u);  // fsync + close
  EXPECT_EQ(st.failures, 0u);
  EXPECT_EQ(client.rpc_stats().max_inflight, 11u);
  sched.finish(0);
}

TEST(RpcEngine, AsyncWriteErrorLatchesUntilFsync) {
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(1);
  cfg.rpc_window = 4;
  cfg.rpc_batch = 2;
  pfs::PfsCluster cluster(cfg, sched);
  fault::FaultInjector inj(fault::FaultPlan{}, 1);
  inj.force_down(0, 0.0, kForever);
  cluster.set_fault(&inj);
  pfs::PfsClient client(cluster, 0);
  auto fh = *client.create("/f");
  // Pipelined writes return before their chunk executes: submission
  // succeeds even though the server is dead (async-I/O semantics).
  EXPECT_TRUE(client.write(fh, 0, Bytes(4096)).ok());
  // fsync drains the queue, the chunk exhausts its retries against the
  // dead server, and the failure surfaces here.
  EXPECT_FALSE(client.fsync(fh).ok());
  EXPECT_EQ(client.rpc_stats().failures, 1u);
  // The failed chunk never landed, so no server registered as touched and
  // the latched error was consumed: the next sync point reports clean.
  const std::uint64_t fid = cluster.mds().lookup("/f")->file_id;
  EXPECT_TRUE(cluster.touched_servers(fid).empty());
  EXPECT_TRUE(client.fsync(fh).ok());
  sched.finish(0);
}

// ---------------------------------------------------------------------------
// Determinism: pipelined runs replay byte-identically.

struct PipelinedRun {
  std::string dump;     ///< compact trace + metric text
  double final_now;     ///< client clock after the last sync point
  std::uint64_t drops;  ///< injector draws consumed
};

PipelinedRun RunPipelinedGolden(std::uint32_t window, std::uint32_t batch) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.rpc_window = window;
  cfg.rpc_batch = batch;
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.rpc_drop_prob = 0.15;  // exercise the retry seam under pipelining
  fault::FaultInjector inj(plan, 4);
  cluster.set_fault(&inj);
  pfs::PfsClient client(cluster, 0);

  auto fh = *client.create("/shared");
  const auto rec = MakePattern(5, 0, 47 * KiB);
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(
        client.write(fh, static_cast<std::uint64_t>(i) * rec.size(), rec).ok());
  }
  Bytes out(rec.size());
  EXPECT_TRUE(client.read(fh, 3 * rec.size(), out).ok());  // read barrier
  EXPECT_EQ(HashBytes(out), HashBytes(rec));
  EXPECT_TRUE(client.fsync(fh).ok());
  EXPECT_TRUE(client.close(fh).ok());
  PipelinedRun run;
  run.final_now = client.now();
  run.drops = inj.dropped_rpcs();
  sched.finish(0);
  std::ostringstream os;
  tr.write_compact(os);
  reg.write_text(os);
  run.dump = os.str();
  return run;
}

TEST(RpcEngine, PipelinedRunsAreByteIdentical) {
  const PipelinedRun a = RunPipelinedGolden(8, 4);
  const PipelinedRun b = RunPipelinedGolden(8, 4);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.dump, b.dump)
      << "per-server FIFO queues + seeded drop streams: no replay drift";
  // And the knobs are load-bearing: a different window/batch really is a
  // different schedule.
  const PipelinedRun c = RunPipelinedGolden(2, 2);
  EXPECT_NE(a.final_now, c.final_now);
}

// The golden pipelined run's rpc.* and fault.* counters are pinned to
// exact values: the seeded drop stream, the window/batch schedule, and
// the retry accounting are all load-bearing, so any drift in engine
// bookkeeping (not just timing) fails loudly here.
TEST(RpcEngine, PipelinedGoldenCountersArePinned) {
  obs::Registry reg;
  obs::Tracer tr;
  obs::Context ctx{&tr, &reg};
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.rpc_window = 8;
  cfg.rpc_batch = 4;
  pfs::PfsCluster cluster(cfg, sched, nullptr, &ctx);
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.rpc_drop_prob = 0.15;
  fault::FaultInjector inj(plan, 4, &ctx);
  cluster.set_fault(&inj);
  pfs::PfsClient client(cluster, 0);

  auto fh = *client.create("/shared");
  const auto rec = MakePattern(5, 0, 47 * KiB);
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(
        client.write(fh, static_cast<std::uint64_t>(i) * rec.size(), rec).ok());
  }
  Bytes out(rec.size());
  EXPECT_TRUE(client.read(fh, 3 * rec.size(), out).ok());
  EXPECT_TRUE(client.fsync(fh).ok());
  EXPECT_TRUE(client.close(fh).ok());
  sched.finish(0);

  // 24 pipelined writes + the fsync flush fan-out ride the queues; the
  // read and its drain are synchronous. 26 queued requests coalesce into
  // 8 wire messages under batch=4; window=8 stalls 18 times; the read,
  // fsync and close each drain.
  EXPECT_EQ(reg.counter("rpc.submitted").value(), 26u);
  EXPECT_EQ(reg.counter("rpc.messages").value(), 8u);
  EXPECT_EQ(reg.counter("rpc.window_stalls").value(), 18u);
  EXPECT_EQ(reg.counter("rpc.drains").value(), 3u);
  // Seed 11 at 15% drop: exactly two requests drop and retry once each;
  // no replica failover, no drain-side retries.
  EXPECT_EQ(reg.counter("fault.retries").value(), 2u);
  EXPECT_EQ(reg.counter("fault.dropped_rpcs").value(), 2u);
  EXPECT_EQ(reg.counter("fault.failovers").value(), 0u);
  EXPECT_EQ(reg.counter("fault.drain_retries").value(), 0u);
  EXPECT_EQ(inj.dropped_rpcs(), 2u);
}

// ---------------------------------------------------------------------------
// The point of the engine: pipelining beats one-RPC-at-a-time.

double MetadataStormSeconds(std::uint32_t window, std::uint32_t batch) {
  sim::VirtualScheduler sched(1);
  pfs::PfsConfig cfg = pfs::PfsConfig::PanFsLike(4);
  cfg.rpc_window = window;
  cfg.rpc_batch = batch;
  pfs::PfsCluster cluster(cfg, sched);
  pfs::PfsClient client(cluster, 0);
  auto fh = *client.create("/f");
  EXPECT_TRUE(client.close(fh).ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(client.stat("/f").ok());
  }
  EXPECT_TRUE(client.unlink("/f").ok());  // sync point: drains the queue
  const double t = client.now();
  sched.finish(0);
  return t;
}

TEST(RpcEngine, PipelinedBeatsSyncOnMetadataStorm) {
  const double sync_s = MetadataStormSeconds(1, 1);
  const double pipe_s = MetadataStormSeconds(8, 4);
  EXPECT_LT(pipe_s, sync_s)
      << "a batched window must beat one synchronous RPC at a time";
}

}  // namespace
}  // namespace pdsi
