#include "pdsi/plfs/index_cache.h"

namespace pdsi::plfs {

std::shared_ptr<const IndexSnapshot> IndexCache::find(
    const std::string& container, std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_path_.find(container);
  if (it == by_path_.end() || it->second->second->fingerprint != fingerprint) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

std::shared_ptr<const IndexSnapshot> IndexCache::find_any(
    const std::string& container) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_path_.find(container);
  if (it == by_path_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void IndexCache::put(const std::string& container,
                     std::shared_ptr<const IndexSnapshot> snapshot) {
  if (!snapshot) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_path_.find(container);
  if (it != by_path_.end()) {
    it->second->second = std::move(snapshot);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(container, std::move(snapshot));
  by_path_[container] = lru_.begin();
  while (lru_.size() > max_entries_) {
    by_path_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void IndexCache::invalidate(const std::string& container) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_path_.find(container);
  if (it == by_path_.end()) return;
  lru_.erase(it->second);
  by_path_.erase(it);
}

std::size_t IndexCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

std::uint64_t IndexCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

std::uint64_t IndexCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

}  // namespace pdsi::plfs
