// PLFS read path: discovers every rank's index dropping, merges them into
// a GlobalIndex (newest write wins), and serves logical reads by stitching
// extents out of the per-rank data logs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/obs/obs.h"
#include "pdsi/plfs/backend.h"
#include "pdsi/plfs/index.h"
#include "pdsi/plfs/options.h"

namespace pdsi::plfs {

class Reader {
 public:
  /// Opens the container, reads every index dropping, builds the global
  /// index. With options.index_read_threads > 1 the droppings are read
  /// and decoded by a thread pool (backend must tolerate concurrent
  /// calls; keep this at 1 for the virtual-time PFS backend).
  static Result<std::unique_ptr<Reader>> Open(Backend& backend,
                                              const std::string& path,
                                              const Options& options = {});

  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads logical bytes; holes return zeros; short count at EOF.
  Result<std::size_t> read(std::uint64_t off, std::span<std::uint8_t> out);

  std::uint64_t size() const { return index_.size(); }
  const GlobalIndex& index() const { return index_; }

  /// Raw entries in merge order — consumed by Ninjat visualisation and
  /// the flatten tool.
  const std::vector<IndexEntry>& raw_entries() const { return raw_entries_; }

  // -- Introspection --
  std::size_t dropping_count() const { return droppings_.size(); }
  std::uint64_t index_bytes_read() const { return index_bytes_read_; }
  double index_build_seconds() const { return index_build_seconds_; }
  /// Droppings skipped at build plus segments zero-filled during reads
  /// (only ever nonzero with options.degraded_reads).
  std::uint64_t read_errors() const { return read_errors_; }

 private:
  Reader(Backend& backend, Options options);

  Status build(const std::string& path);
  Result<BackendHandle> data_handle(std::uint32_t dropping);

  Backend& backend_;
  Options options_;
  GlobalIndex index_;
  std::vector<IndexEntry> raw_entries_;
  std::vector<std::string> droppings_;          ///< data-dropping paths by id
  std::unordered_map<std::uint32_t, BackendHandle> handles_;
  std::uint64_t index_bytes_read_ = 0;
  double index_build_seconds_ = 0.0;            ///< wall time (real backends)
  std::uint64_t read_errors_ = 0;
  obs::Counter* c_reads_ = nullptr;
  obs::Counter* c_segments_ = nullptr;
  obs::Counter* c_degraded_ = nullptr;
};

}  // namespace pdsi::plfs
