// PLFS read path: discovers every rank's index dropping, merges them into
// a GlobalIndex (newest write wins), and serves logical reads by stitching
// extents out of the per-rank data logs.
//
// Restart-read fast paths (both validated by a fingerprint of the live
// index droppings, so they can never serve stale data):
//   * a flattened `index.flat` dropping (see flat_index.h) replaces the
//     N-way merge with one small read;
//   * an IndexCache (see index_cache.h) shares the merged snapshot across
//     repeated opens of the same container.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/obs/obs.h"
#include "pdsi/plfs/backend.h"
#include "pdsi/plfs/index.h"
#include "pdsi/plfs/index_cache.h"
#include "pdsi/plfs/options.h"

namespace pdsi::plfs {

class Reader {
 public:
  /// Opens the container, reads every index dropping, builds the global
  /// index. With options.index_read_threads > 1 the droppings are read,
  /// decoded, and pre-sorted by a thread pool (backend must tolerate
  /// concurrent calls; keep this at 1 for the virtual-time PFS backend).
  static Result<std::unique_ptr<Reader>> Open(Backend& backend,
                                              const std::string& path,
                                              const Options& options = {});

  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads logical bytes; holes return zeros; short count at EOF.
  Result<std::size_t> read(std::uint64_t off, std::span<std::uint8_t> out);

  std::uint64_t size() const { return snap_->index.size(); }
  const GlobalIndex& index() const { return snap_->index; }

  /// Raw entries in merge order — consumed by Ninjat visualisation and
  /// the flatten tool.
  const std::vector<IndexEntry>& raw_entries() const {
    return snap_->raw_entries;
  }

  // -- Introspection --
  std::size_t dropping_count() const { return snap_->droppings.size(); }
  /// Absolute data-dropping paths by id (flatten tool, diagnostics).
  const std::vector<std::string>& droppings() const { return snap_->droppings; }
  /// Index bytes this open actually fetched (0 on a cache hit).
  std::uint64_t index_bytes_read() const { return index_bytes_read_; }
  double index_build_seconds() const { return index_build_seconds_; }
  /// Fingerprint of the index droppings the snapshot was built from.
  std::uint64_t index_fingerprint() const { return snap_->fingerprint; }
  /// Droppings skipped at build plus segments zero-filled during reads
  /// (only ever nonzero with options.degraded_reads).
  std::uint64_t read_errors() const { return read_errors_; }

 private:
  Reader(Backend& backend, Options options);

  Status build(const std::string& path);
  /// Loads and validates the container's index.flat; nullptr on any
  /// failure (missing, corrupt, stale fingerprint) — callers fall back.
  std::shared_ptr<const IndexSnapshot> try_load_flat(
      const std::string& path, std::uint64_t fingerprint);
  Result<BackendHandle> data_handle(std::uint32_t dropping);

  Backend& backend_;
  Options options_;
  std::shared_ptr<const IndexSnapshot> snap_;
  std::unordered_map<std::uint32_t, BackendHandle> handles_;
  std::uint64_t index_bytes_read_ = 0;
  double index_build_seconds_ = 0.0;            ///< wall time (real backends)
  std::uint64_t read_errors_ = 0;
  obs::Counter* c_reads_ = nullptr;
  obs::Counter* c_segments_ = nullptr;
  obs::Counter* c_degraded_ = nullptr;
};

}  // namespace pdsi::plfs
