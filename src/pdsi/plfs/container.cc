#include "pdsi/plfs/container.h"

namespace pdsi::plfs {

std::string ContainerPaths::access_marker(const std::string& c) {
  return c + "/.plfsaccess";
}
std::string ContainerPaths::hostdir(const std::string& c, std::uint32_t h) {
  return c + "/hostdir." + std::to_string(h);
}
std::string ContainerPaths::data_dropping(const std::string& c, std::uint32_t h,
                                          std::uint32_t rank) {
  return hostdir(c, h) + "/data." + std::to_string(rank);
}
std::string ContainerPaths::index_dropping(const std::string& c, std::uint32_t h,
                                           std::uint32_t rank) {
  return hostdir(c, h) + "/index." + std::to_string(rank);
}
std::string ContainerPaths::meta_dir(const std::string& c) { return c + "/meta"; }
std::string ContainerPaths::meta_dropping(const std::string& c, std::uint64_t size,
                                          std::uint32_t rank) {
  return meta_dir(c) + "/" + std::to_string(size) + "." + std::to_string(rank);
}

namespace {

Status IgnoreExists(Status st) {
  if (!st.ok() && st.error() == Errc::exists) return Status::Ok();
  return st;
}

}  // namespace

Result<std::uint32_t> EnsureContainer(Backend& backend, const std::string& path,
                                      std::uint32_t rank, std::uint32_t fanout) {
  if (auto st = IgnoreExists(backend.mkdir(path)); !st.ok()) return st.error();
  // The marker is an empty file; racing creators tolerate exists.
  auto marker = backend.create(ContainerPaths::access_marker(path));
  if (!marker.ok() && marker.error() != Errc::exists) return marker.error();
  if (marker.ok()) backend.close(*marker);

  if (auto st = IgnoreExists(backend.mkdir(ContainerPaths::meta_dir(path))); !st.ok()) {
    return st.error();
  }
  const std::uint32_t h = ContainerPaths::hostdir_for(rank, fanout);
  if (auto st = IgnoreExists(backend.mkdir(ContainerPaths::hostdir(path, h)));
      !st.ok()) {
    return st.error();
  }
  return h;
}

Result<bool> IsContainer(Backend& backend, const std::string& path) {
  auto dir = backend.is_dir(path);
  if (!dir.ok()) return dir.error();
  if (!*dir) return false;
  auto marker = backend.exists(ContainerPaths::access_marker(path));
  if (!marker.ok()) return marker.error();
  return *marker;
}

Status RemoveContainer(Backend& backend, const std::string& path) {
  auto entries = backend.readdir(path);
  if (!entries.ok()) return entries.error();
  for (const auto& name : *entries) {
    const std::string child = path + "/" + name;
    auto dir = backend.is_dir(child);
    if (!dir.ok()) return dir.error();
    if (*dir) {
      if (auto st = RemoveContainer(backend, child); !st.ok()) return st;
    } else {
      if (auto st = backend.unlink(child); !st.ok()) return st;
    }
  }
  return backend.unlink(path);
}

}  // namespace pdsi::plfs
