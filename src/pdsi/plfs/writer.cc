#include "pdsi/plfs/writer.h"

#include "pdsi/plfs/container.h"
#include "pdsi/plfs/index_cache.h"

namespace pdsi::plfs {

Result<std::unique_ptr<Writer>> Writer::Open(Backend& backend,
                                             const std::string& path,
                                             std::uint32_t rank,
                                             const Options& options,
                                             WriteClock& clock) {
  auto hostdir = EnsureContainer(backend, path, rank, options.num_hostdirs);
  if (!hostdir.ok()) return hostdir.error();

  auto data = backend.create(ContainerPaths::data_dropping(path, *hostdir, rank));
  if (!data.ok()) return data.error();
  auto index = backend.create(ContainerPaths::index_dropping(path, *hostdir, rank));
  if (!index.ok()) {
    backend.close(*data);
    return index.error();
  }
  return std::unique_ptr<Writer>(
      new Writer(backend, path, rank, options, clock, *data, *index));
}

Writer::Writer(Backend& backend, std::string path, std::uint32_t rank,
               Options options, WriteClock& clock, BackendHandle data,
               BackendHandle index)
    : backend_(backend),
      path_(std::move(path)),
      rank_(rank),
      options_(options),
      clock_(clock),
      data_h_(data),
      index_h_(index),
      compressor_(options.index_compression) {
  if (options_.write_buffer_bytes > 0) {
    data_buffer_.reserve(options_.write_buffer_bytes);
  }
  if (options_.obs) {
    track_ = obs::kRankTrackBase + rank_;
    if (options_.obs->tracer) {
      options_.obs->tracer->track(track_, "rank" + std::to_string(rank_));
    }
    if (options_.obs->registry) {
      c_records_ = &options_.obs->registry->counter("plfs.records");
      c_bytes_logged_ = &options_.obs->registry->counter("plfs.bytes_logged");
      c_index_flushes_ = &options_.obs->registry->counter("plfs.index_flushes");
    }
  }
}

Writer::~Writer() {
  if (open_) close();
}

Status Writer::write(std::uint64_t off, std::span<const std::uint8_t> data) {
  if (!open_) return Errc::bad_handle;
  if (data.empty()) return Status::Ok();
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double t0 = tracer ? backend_.now() : 0.0;
  const std::uint64_t phys = physical_end_;

  IndexEntry e;
  e.logical = off;
  e.length = data.size();
  e.physical = physical_end_;
  e.rank = rank_;
  e.sequence = clock_.fetch_add(1, std::memory_order_relaxed);

  if (options_.write_buffer_bytes > 0) {
    const std::size_t staged = data_buffer_.size();
    data_buffer_.insert(data_buffer_.end(), data.begin(), data.end());
    physical_end_ += data.size();
    if (data_buffer_.size() >= options_.write_buffer_bytes) {
      if (auto st = flush_data_buffer(); !st.ok()) {
        // Unstage this write: a failed flush must leave the writer as if
        // the write never happened — otherwise physical_end_ points past
        // bytes that were never indexed, and a successful retry would log
        // the payload twice. Earlier buffered writes stay staged; their
        // index entries still match the buffer contents exactly.
        data_buffer_.resize(staged);
        physical_end_ -= data.size();
        return st;
      }
    }
  } else {
    if (auto st = backend_.write(data_h_, physical_end_, data); !st.ok()) return st;
    physical_end_ += data.size();
  }

  if (options_.index_buffering) {
    compressor_.add(e);
  } else {
    // Per-record index write: one small backend I/O per application write
    // (the ablation baseline the SC09 paper's buffered index improves on).
    unbuffered_.push_back(e);
    if (auto st = flush_index(); !st.ok()) return st;
  }
  ++records_;
  max_logical_end_ = std::max(max_logical_end_, off + data.size());
  if (c_records_) c_records_->add(1);
  if (c_bytes_logged_) c_bytes_logged_->add(data.size());
  if (tracer) {
    tracer->complete(track_, "append", "plfs", t0, backend_.now(),
                     {obs::Arg::Int("off", off), obs::Arg::Int("len", data.size()),
                      obs::Arg::Int("phys", phys)});
  }
  return Status::Ok();
}

Status Writer::flush_data_buffer() {
  if (data_buffer_.empty()) return Status::Ok();
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double t0 = tracer ? backend_.now() : 0.0;
  const std::uint64_t bytes = data_buffer_.size();
  auto st = backend_.write(data_h_, buffer_base_, data_buffer_);
  if (!st.ok()) return st;
  buffer_base_ += data_buffer_.size();
  data_buffer_.clear();
  if (tracer) {
    tracer->complete(track_, "data_flush", "plfs", t0, backend_.now(),
                     {obs::Arg::Int("bytes", bytes)});
  }
  return Status::Ok();
}

Status Writer::flush_index() {
  std::vector<IndexEntry> batch;
  if (options_.index_buffering) {
    compressor_.finish();
    batch = compressor_.take();
  } else {
    batch.swap(unbuffered_);
  }
  if (batch.empty()) return Status::Ok();
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double t0 = tracer ? backend_.now() : 0.0;
  const Bytes raw = SerializeEntries(batch);
  if (auto st = backend_.write(index_h_, index_off_, raw); !st.ok()) return st;
  index_off_ += raw.size();
  index_entries_flushed_ += batch.size();
  index_bytes_flushed_ += raw.size();
  if (c_index_flushes_) c_index_flushes_->add(1);
  if (tracer) {
    tracer->complete(track_, "index_flush", "plfs", t0, backend_.now(),
                     {obs::Arg::Int("entries", batch.size()),
                      obs::Arg::Int("bytes", raw.size())});
  }
  return Status::Ok();
}

Status Writer::sync() {
  if (!open_) return Errc::bad_handle;
  if (auto st = flush_data_buffer(); !st.ok()) return st;
  if (auto st = flush_index(); !st.ok()) return st;
  if (auto st = backend_.fsync(data_h_); !st.ok()) return st;
  return backend_.fsync(index_h_);
}

Status Writer::close() {
  if (!open_) return Errc::bad_handle;
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double t0 = tracer ? backend_.now() : 0.0;
  Status st = sync();
  open_ = false;
  backend_.close(data_h_);
  backend_.close(index_h_);
  // This writer changed the container's droppings, so any cached merged
  // index is stale — drop it now rather than waiting for a fingerprint
  // miss to notice. Unconditional: even a failed sync may have appended.
  if (options_.index_cache) options_.index_cache->invalidate(path_);
  if (st.ok() && options_.write_meta_hints) {
    auto meta = backend_.create(
        ContainerPaths::meta_dropping(path_, max_logical_end_, rank_));
    if (meta.ok()) {
      backend_.close(*meta);
    } else if (meta.error() != Errc::exists) {
      // The data is durable (sync succeeded); only the stat hint is
      // missing. Report the failure, but do not mask a sync error and do
      // not skip the close span below — every close must trace.
      st = meta.error();
    }
  }
  if (tracer) tracer->complete(track_, "close", "plfs", t0, backend_.now());
  return st;
}

}  // namespace pdsi::plfs
