// Real-filesystem backend: the deployment analogue of running PLFS over a
// mounted parallel file system. Uses raw POSIX descriptors with pread /
// pwrite so concurrent rank threads need no shared file-position state.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

#include "pdsi/plfs/backend.h"
#include "pdsi/pfs/mds.h"  // NormalizePath

namespace pdsi::plfs {
namespace {

Errc ErrnoToErrc(int e) {
  switch (e) {
    case ENOENT: return Errc::not_found;
    case EEXIST: return Errc::exists;
    case ENOTDIR: return Errc::not_dir;
    case EISDIR: return Errc::is_dir;
    case ENOTEMPTY: return Errc::not_empty;
    case EINVAL: return Errc::invalid;
    case EBADF: return Errc::bad_handle;
    case ENOSPC: return Errc::no_space;
    case EBUSY: return Errc::busy;
    default: return Errc::io_error;
  }
}

class PosixBackend final : public Backend {
 public:
  explicit PosixBackend(std::string root) : root_(std::move(root)) {}

  Status mkdir(const std::string& path) override {
    if (::mkdir(full(path).c_str(), 0755) != 0) return ErrnoToErrc(errno);
    return Status::Ok();
  }

  Result<BackendHandle> create(const std::string& path) override {
    const int fd = ::open(full(path).c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
    if (fd < 0) return ErrnoToErrc(errno);
    return fd;
  }

  Result<BackendHandle> open(const std::string& path) override {
    const int fd = ::open(full(path).c_str(), O_RDWR);
    if (fd < 0) return ErrnoToErrc(errno);
    return fd;
  }

  Status write(BackendHandle h, std::uint64_t off,
               std::span<const std::uint8_t> data) override {
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::pwrite(h, data.data() + done, data.size() - done,
                                 static_cast<off_t>(off + done));
      if (n < 0) return ErrnoToErrc(errno);
      done += static_cast<std::size_t>(n);
    }
    return Status::Ok();
  }

  Result<std::size_t> read(BackendHandle h, std::uint64_t off,
                           std::span<std::uint8_t> out) override {
    std::size_t done = 0;
    while (done < out.size()) {
      const ssize_t n = ::pread(h, out.data() + done, out.size() - done,
                                static_cast<off_t>(off + done));
      if (n < 0) return ErrnoToErrc(errno);
      if (n == 0) break;  // EOF
      done += static_cast<std::size_t>(n);
    }
    return done;
  }

  Result<std::uint64_t> size(BackendHandle h) override {
    struct stat st {};
    if (::fstat(h, &st) != 0) return ErrnoToErrc(errno);
    return static_cast<std::uint64_t>(st.st_size);
  }

  Status fsync(BackendHandle h) override {
    if (::fsync(h) != 0) return ErrnoToErrc(errno);
    return Status::Ok();
  }

  Status close(BackendHandle h) override {
    if (::close(h) != 0) return ErrnoToErrc(errno);
    return Status::Ok();
  }

  Result<std::vector<std::string>> readdir(const std::string& path) override {
    DIR* dir = ::opendir(full(path).c_str());
    if (!dir) return ErrnoToErrc(errno);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(dir)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    return names;
  }

  Status unlink(const std::string& path) override {
    const std::string f = full(path);
    struct stat st {};
    if (::stat(f.c_str(), &st) != 0) return ErrnoToErrc(errno);
    const int rc = S_ISDIR(st.st_mode) ? ::rmdir(f.c_str()) : ::unlink(f.c_str());
    if (rc != 0) return ErrnoToErrc(errno);
    return Status::Ok();
  }

  Status rename(const std::string& from, const std::string& to) override {
    // POSIX rename overwrites; match the stricter backend contract.
    struct stat st {};
    if (::stat(full(to).c_str(), &st) == 0) return Errc::exists;
    if (::rename(full(from).c_str(), full(to).c_str()) != 0) {
      return ErrnoToErrc(errno);
    }
    return Status::Ok();
  }

  Result<bool> is_dir(const std::string& path) override {
    struct stat st {};
    if (::stat(full(path).c_str(), &st) != 0) return ErrnoToErrc(errno);
    return S_ISDIR(st.st_mode);
  }

  Result<bool> exists(const std::string& path) override {
    struct stat st {};
    return ::stat(full(path).c_str(), &st) == 0;
  }

 private:
  std::string full(const std::string& path) const {
    return root_ + pfs::NormalizePath(path);
  }

  std::string root_;
};

}  // namespace

std::unique_ptr<Backend> MakePosixBackend(const std::string& root) {
  return std::make_unique<PosixBackend>(root);
}

}  // namespace pdsi::plfs
