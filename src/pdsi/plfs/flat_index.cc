#include "pdsi/plfs/flat_index.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace pdsi::plfs {
namespace {

constexpr std::uint64_t kFlatMagic = 0x54414c4653464c50ULL;  // "PLFSFLAT"
constexpr std::uint32_t kFlatVersion = 1;
constexpr std::size_t kFlatHeaderSize = 40;

void Put64(Bytes& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void Put32(Bytes& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool u64(std::uint64_t* v) { return copy(v, sizeof(*v)); }
  bool u32(std::uint32_t* v) { return copy(v, sizeof(*v)); }

  bool str(std::string* out, std::size_t len) {
    if (data_.size() - at_ < len) return false;
    out->assign(reinterpret_cast<const char*>(data_.data() + at_), len);
    at_ += len;
    return true;
  }

  std::span<const std::uint8_t> rest() const { return data_.subspan(at_); }

 private:
  bool copy(void* dst, std::size_t n) {
    if (data_.size() - at_ < n) return false;
    std::memcpy(dst, data_.data() + at_, n);
    at_ += n;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

}  // namespace

std::uint64_t FingerprintDroppings(
    std::vector<std::pair<std::string, std::uint64_t>> name_sizes) {
  std::sort(name_sizes.begin(), name_sizes.end());
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& [name, size] : name_sizes) {
    mix(name.data(), name.size());
    const std::uint8_t sep = 0;
    mix(&sep, 1);
    mix(&size, sizeof(size));
  }
  return h;
}

std::vector<IndexEntry> CompressSegments(
    const std::vector<GlobalIndex::Segment>& segments) {
  // Group by data dropping, preserving logical order within each group:
  // a strided checkpoint interleaves droppings segment-by-segment, so
  // compressing the logical-order stream directly would never find a run.
  std::map<std::uint32_t, std::vector<const GlobalIndex::Segment*>> by_dropping;
  for (const auto& seg : segments) {
    if (seg.dropping == GlobalIndex::kHole) continue;  // holes are absence
    by_dropping[seg.dropping].push_back(&seg);
  }
  std::vector<IndexEntry> out;
  for (const auto& [dropping, segs] : by_dropping) {
    PatternCompressor c(true);
    for (const GlobalIndex::Segment* seg : segs) {
      IndexEntry e;
      e.logical = seg->logical;
      e.length = seg->length;
      e.physical = seg->physical;
      e.rank = dropping;  // rank doubles as the dropping-table index
      c.add(e);
    }
    c.finish();
    for (IndexEntry e : c.take()) {
      e.sequence = out.size();
      out.push_back(e);
    }
  }
  return out;
}

Bytes SerializeFlatIndex(const FlatIndex& flat) {
  Bytes out;
  Put64(out, kFlatMagic);
  Put32(out, kFlatVersion);
  Put32(out, static_cast<std::uint32_t>(flat.droppings.size()));
  Put64(out, flat.fingerprint);
  Put64(out, flat.entries.size());
  Put64(out, flat.logical_size);
  for (const std::string& d : flat.droppings) {
    Put32(out, static_cast<std::uint32_t>(d.size()));
    out.insert(out.end(), d.begin(), d.end());
  }
  const std::size_t base = out.size();
  out.resize(base + flat.entries.size() * kRawEntrySize);
  for (std::size_t i = 0; i < flat.entries.size(); ++i) {
    SerializeEntry(flat.entries[i],
                   std::span(out).subspan(base + i * kRawEntrySize));
  }
  return out;
}

Result<FlatIndex> ParseFlatIndex(std::span<const std::uint8_t> data) {
  if (data.size() < kFlatHeaderSize) return Errc::invalid;
  Cursor c(data);
  std::uint64_t magic = 0, nentries = 0;
  std::uint32_t version = 0, ndroppings = 0;
  FlatIndex flat;
  if (!c.u64(&magic) || !c.u32(&version) || !c.u32(&ndroppings) ||
      !c.u64(&flat.fingerprint) || !c.u64(&nentries) ||
      !c.u64(&flat.logical_size)) {
    return Errc::invalid;
  }
  if (magic != kFlatMagic || version != kFlatVersion) return Errc::invalid;
  flat.droppings.reserve(ndroppings);
  for (std::uint32_t i = 0; i < ndroppings; ++i) {
    std::uint32_t len = 0;
    std::string name;
    if (!c.u32(&len) || !c.str(&name, len) || name.empty()) return Errc::invalid;
    flat.droppings.push_back(std::move(name));
  }
  const auto body = c.rest();
  if (body.size() != nentries * kRawEntrySize) return Errc::invalid;
  flat.entries.reserve(nentries);
  for (std::uint64_t i = 0; i < nentries; ++i) {
    IndexEntry e = DeserializeEntry(body.subspan(i * kRawEntrySize));
    if (e.rank >= ndroppings || e.count == 0) return Errc::invalid;
    flat.entries.push_back(e);
  }
  return flat;
}

}  // namespace pdsi::plfs
