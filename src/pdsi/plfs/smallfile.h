// PLFS small-file mode (§1.1 item 7: "pack small files into a smaller
// number of bigger containers").
//
// Creating millions of tiny files pounds the metadata server once per
// file. Small-file mode gives each writer ONE data dropping and ONE name
// log inside a shared container: creating a logical file appends its
// bytes to the data dropping and a name record to the log. The backend
// sees two files per *writer* instead of one per *logical file*; the
// reader merges the name logs (newest record wins per name) into a
// directory it can list and read from.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/plfs/backend.h"
#include "pdsi/plfs/writer.h"  // WriteClock

namespace pdsi::plfs {

/// One name-log record: the logical file `name` was written as `length`
/// bytes at `offset` of the writer's data dropping. length == kTombstone
/// marks a deletion.
struct NameRecord {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t sequence = 0;
  static constexpr std::uint64_t kTombstone = ~0ULL;
};

Bytes SerializeNameRecords(const std::vector<NameRecord>& records);
std::vector<NameRecord> DeserializeNameRecords(std::span<const std::uint8_t> data);

class SmallFileWriter {
 public:
  /// Joins (creating if needed) the small-file container at `path`.
  static Result<std::unique_ptr<SmallFileWriter>> Open(Backend& backend,
                                                       const std::string& path,
                                                       std::uint32_t writer_id,
                                                       WriteClock& clock);
  ~SmallFileWriter();
  SmallFileWriter(const SmallFileWriter&) = delete;
  SmallFileWriter& operator=(const SmallFileWriter&) = delete;

  /// Creates (or overwrites) a logical file with `data` as its contents.
  Status put(const std::string& name, std::span<const std::uint8_t> data);

  /// Records a deletion of `name`.
  Status remove(const std::string& name);

  Status sync();
  Status close();

  std::uint64_t files_written() const { return files_written_; }

 private:
  SmallFileWriter(Backend& backend, std::uint32_t writer_id, WriteClock& clock,
                  BackendHandle data, BackendHandle names);

  Backend& backend_;
  std::uint32_t writer_id_;
  WriteClock& clock_;
  BackendHandle data_h_;
  BackendHandle names_h_;
  bool open_ = true;
  std::uint64_t data_off_ = 0;
  std::uint64_t names_off_ = 0;
  std::vector<NameRecord> pending_;
  std::uint64_t files_written_ = 0;
};

class SmallFileReader {
 public:
  static Result<std::unique_ptr<SmallFileReader>> Open(Backend& backend,
                                                       const std::string& path);
  ~SmallFileReader();
  SmallFileReader(const SmallFileReader&) = delete;
  SmallFileReader& operator=(const SmallFileReader&) = delete;

  /// Logical names present (deletions applied), sorted.
  std::vector<std::string> list() const;

  Result<std::uint64_t> size(const std::string& name) const;

  /// Reads a whole logical file.
  Result<Bytes> get(const std::string& name);

 private:
  struct Location {
    std::uint32_t dropping;
    std::uint64_t offset;
    std::uint64_t length;
    std::uint64_t sequence;
  };

  SmallFileReader(Backend& backend) : backend_(backend) {}
  Status build(const std::string& path);

  Backend& backend_;
  std::map<std::string, Location> names_;
  std::vector<std::string> droppings_;
  std::vector<BackendHandle> handles_;
};

/// True if `path` holds a small-file container.
Result<bool> IsSmallFileContainer(Backend& backend, const std::string& path);

}  // namespace pdsi::plfs
