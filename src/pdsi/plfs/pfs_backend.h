// Factory for the simulated-PFS backend (see backend.h).
#pragma once

#include <memory>

#include "pdsi/pfs/client.h"
#include "pdsi/plfs/backend.h"

namespace pdsi::plfs {

/// One backend per rank: `actor` is the rank's VirtualScheduler actor id.
std::unique_ptr<Backend> MakePfsBackend(pfs::PfsCluster& cluster, std::size_t actor);

}  // namespace pdsi::plfs
