// PLFS write path: decouples a rank's writes to the shared logical file
// into an append-only per-rank data log plus index records. This is the
// whole trick of the paper — the backend sees only N sequential streams
// regardless of how concurrent, small, strided, or unaligned the
// application's logical write pattern is.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/obs/obs.h"
#include "pdsi/plfs/backend.h"
#include "pdsi/plfs/index.h"
#include "pdsi/plfs/options.h"

namespace pdsi::plfs {

/// Monotonic write-order stamp shared by all ranks of one job so that
/// overlapping writes resolve newest-wins on read.
using WriteClock = std::atomic<std::uint64_t>;

class Writer {
 public:
  /// Creates (or joins) the container at `path` and opens rank-private
  /// droppings. `clock` must outlive the writer and be shared by all
  /// ranks writing this file.
  static Result<std::unique_ptr<Writer>> Open(Backend& backend,
                                              const std::string& path,
                                              std::uint32_t rank,
                                              const Options& options,
                                              WriteClock& clock);

  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Logs `data` as the content of logical range [off, off+size).
  Status write(std::uint64_t off, std::span<const std::uint8_t> data);

  /// Flushes buffered data and index records and fsyncs the droppings.
  Status sync();

  /// sync() + drop the meta size hint + close droppings. Called by the
  /// destructor if omitted (errors then ignored).
  Status close();

  // -- Introspection (ablation reporting) --
  std::uint64_t bytes_logged() const { return physical_end_; }
  std::uint64_t records_written() const { return records_; }
  std::uint64_t index_entries_flushed() const { return index_entries_flushed_; }
  std::uint64_t index_bytes_flushed() const { return index_bytes_flushed_; }
  std::uint64_t max_logical_end() const { return max_logical_end_; }

 private:
  Writer(Backend& backend, std::string path, std::uint32_t rank, Options options,
         WriteClock& clock, BackendHandle data, BackendHandle index);

  Status flush_data_buffer();
  Status flush_index();

  Backend& backend_;
  std::string path_;
  std::uint32_t rank_;
  Options options_;
  WriteClock& clock_;
  BackendHandle data_h_;
  BackendHandle index_h_;
  bool open_ = true;

  std::uint64_t physical_end_ = 0;       ///< data log length
  std::uint64_t buffer_base_ = 0;        ///< log offset of buffer start
  Bytes data_buffer_;
  PatternCompressor compressor_;
  std::vector<IndexEntry> unbuffered_;   ///< staging when !index_buffering
  std::uint64_t index_off_ = 0;
  std::uint64_t max_logical_end_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t index_entries_flushed_ = 0;
  std::uint64_t index_bytes_flushed_ = 0;

  std::uint32_t track_ = 0;  ///< tracer track (the rank's track)
  obs::Counter* c_records_ = nullptr;
  obs::Counter* c_bytes_logged_ = nullptr;
  obs::Counter* c_index_flushes_ = nullptr;
};

}  // namespace pdsi::plfs
