// PLFS public facade: the operations a FUSE mount or MPI-IO ADIO driver
// would expose, phrased as a library. See writer.h / reader.h for the
// write and read paths; this header adds whole-file utilities and a
// convenience wrapper for single-backend (non-simulated) use.
#pragma once

#include <memory>
#include <string>

#include "pdsi/common/result.h"
#include "pdsi/plfs/backend.h"
#include "pdsi/plfs/container.h"
#include "pdsi/plfs/options.h"
#include "pdsi/plfs/reader.h"
#include "pdsi/plfs/writer.h"

namespace pdsi::plfs {

/// File size without reading data: prefers the meta/<size>.<rank> hints
/// dropped at close; falls back to a full index merge for containers whose
/// writers never closed cleanly.
Result<std::uint64_t> StatSize(Backend& backend, const std::string& path);

/// Materialises the logical file into a flat (non-container) backend file
/// at `dest`, e.g. for hand-off to tools that cannot read containers.
/// Copies in index order with a bounded staging buffer.
Status Flatten(Backend& backend, const std::string& path, const std::string& dest,
               const Options& options = {});

/// Compacts the container's N raw index droppings into a single sorted,
/// pattern-compressed `index.flat` dropping that later opens load instead
/// of re-merging (see flat_index.h). Runs the raw merge itself, so a
/// pre-existing flat dropping is rebuilt, never fed forward. Refuses
/// (Errc::io_error) if any dropping was unreadable — a degraded view must
/// not be frozen as the container's truth.
Status FlattenIndex(Backend& backend, const std::string& path,
                    const Options& options = {});

/// Removes a container (or reports Errc::invalid for non-containers).
Status Unlink(Backend& backend, const std::string& path);

/// Convenience wrapper owning a backend, options, and the shared write
/// clock — the shape examples and tests want when every rank shares one
/// address space.
class Plfs {
 public:
  explicit Plfs(std::unique_ptr<Backend> backend, Options options = {})
      : backend_(std::move(backend)), options_(options) {}

  Backend& backend() { return *backend_; }
  const Options& options() const { return options_; }

  Result<std::unique_ptr<Writer>> open_write(const std::string& path,
                                             std::uint32_t rank) {
    return Writer::Open(*backend_, path, rank, options_, clock_);
  }
  Result<std::unique_ptr<Reader>> open_read(const std::string& path) {
    return Reader::Open(*backend_, path, options_);
  }
  Result<std::uint64_t> stat_size(const std::string& path) {
    return StatSize(*backend_, path);
  }
  Status flatten(const std::string& path, const std::string& dest) {
    return Flatten(*backend_, path, dest, options_);
  }
  Status flatten_index(const std::string& path) {
    return FlattenIndex(*backend_, path, options_);
  }
  Status unlink(const std::string& path) { return Unlink(*backend_, path); }
  Result<bool> is_container(const std::string& path) {
    return IsContainer(*backend_, path);
  }

 private:
  std::unique_ptr<Backend> backend_;
  Options options_;
  WriteClock clock_{1};
};

}  // namespace pdsi::plfs
