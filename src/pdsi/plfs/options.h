// Tunables for a PLFS "mount". Each flag is an ablation axis exercised by
// bench/abl01_plfs_ablation; defaults match the hardened PLFS defaults.
#pragma once

#include <cstdint>

namespace pdsi::obs {
struct Context;
}

namespace pdsi::plfs {

class IndexCache;

struct Options {
  /// Hostdir fan-out: how many subdirectories droppings spread over.
  std::uint32_t num_hostdirs = 32;

  /// Collapse strided index runs into pattern records (§1.1 item 5).
  bool index_compression = true;

  /// Buffer index records in memory and write them at sync/close rather
  /// than one backend write per record.
  bool index_buffering = true;

  /// Write-behind data batching (§1.1 items 4/6: delayed-write batching /
  /// burst buffering): coalesce log appends into buffers of this size
  /// before hitting the backend. 0 = write through.
  std::uint64_t write_buffer_bytes = 0;

  /// Reader: expand and merge index droppings with this many helper
  /// threads (§1.1 item 5, parallel index redistribution). Only applies
  /// to backends that tolerate concurrent access from anonymous threads
  /// (Mem/Posix); the simulated backend reads sequentially regardless.
  std::uint32_t index_read_threads = 1;

  /// Drop a meta/<size>.<rank> hint at close so stat() can avoid a full
  /// index merge.
  bool write_meta_hints = true;

  /// Reader: when a dropping cannot be read (its server is down), report
  /// the region as a zero-filled hole and count the error instead of
  /// failing the whole read — the restart can consume what survives.
  /// Errors are surfaced via Reader::read_errors().
  bool degraded_reads = false;

  /// Reader: prefer the container's flattened `index.flat` dropping
  /// (written by FlattenIndex) over the N-way raw merge when its
  /// fingerprint still matches the live droppings; any newer raw dropping
  /// falls back to the merge. Off forces the cold merge (benchmarks).
  bool use_flat_index = true;

  /// Shared cache of merged container indexes, keyed by container path +
  /// dropping fingerprint; repeated opens — the N-reader restart storm —
  /// pay the merge once. Must outlive every Reader/Writer using it;
  /// nullptr (the default) disables caching.
  IndexCache* index_cache = nullptr;

  /// Close-to-open caching (session consistency, pdsi::consist): serve
  /// the cached container index without revalidating the dropping
  /// fingerprint, skipping even the per-dropping stat pass. Sound only
  /// when writers publish by closing — which invalidates the cache —
  /// i.e. under `consist::ConsistencyModel::session` (or stricter
  /// external coordination). Requires index_cache; ignored without one.
  bool close_to_open_cache = false;

  /// Client CPU charged per index record during the restart merge
  /// (decode + sort + interval-map insert). This is why index
  /// compression pays off at restart: pattern records shrink the merge.
  double index_merge_cost_per_entry_s = 3e-6;

  /// Optional tracing/metrics sink (must outlive the Writer/Reader).
  /// Timestamps come from Backend::now(), so spans are only meaningful
  /// over simulated backends; null disables instrumentation entirely.
  obs::Context* obs = nullptr;

  /// Tracer track for Reader spans (Writer uses the rank's track).
  std::uint32_t obs_track = 700;  // obs::kReaderTrackBase
};

}  // namespace pdsi::plfs
