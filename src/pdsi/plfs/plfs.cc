#include "pdsi/plfs/plfs.h"

#include <algorithm>
#include <charconv>

#include "pdsi/common/units.h"

namespace pdsi::plfs {

Result<std::uint64_t> StatSize(Backend& backend, const std::string& path) {
  auto is_c = IsContainer(backend, path);
  if (!is_c.ok()) return is_c.error();
  if (!*is_c) return Errc::invalid;

  // Fast path: max over meta/<size>.<rank> hints.
  auto hints = backend.readdir(ContainerPaths::meta_dir(path));
  if (hints.ok() && !hints->empty()) {
    std::uint64_t best = 0;
    bool any = false;
    for (const auto& name : *hints) {
      std::uint64_t size = 0;
      const auto dot = name.find('.');
      const char* end = name.data() + (dot == std::string::npos ? name.size() : dot);
      if (std::from_chars(name.data(), end, size).ec == std::errc{}) {
        best = std::max(best, size);
        any = true;
      }
    }
    if (any) return best;
  }

  // Slow path: merge the index.
  auto reader = Reader::Open(backend, path);
  if (!reader.ok()) return reader.error();
  return (*reader)->size();
}

Status Flatten(Backend& backend, const std::string& path, const std::string& dest,
               const Options& options) {
  auto reader = Reader::Open(backend, path, options);
  if (!reader.ok()) return reader.error();

  auto out = backend.create(dest);
  if (!out.ok()) return out.error();

  constexpr std::uint64_t kChunk = 4 * MiB;
  Bytes buf;
  Status st = Status::Ok();
  const std::uint64_t size = (*reader)->size();
  for (std::uint64_t off = 0; off < size && st.ok(); off += kChunk) {
    const std::uint64_t n = std::min(kChunk, size - off);
    buf.resize(n);
    auto r = (*reader)->read(off, buf);
    if (!r.ok()) {
      st = r.error();
      break;
    }
    buf.resize(*r);
    st = backend.write(*out, off, buf);
  }
  if (st.ok()) st = backend.fsync(*out);
  backend.close(*out);
  return st;
}

Status Unlink(Backend& backend, const std::string& path) {
  auto is_c = IsContainer(backend, path);
  if (!is_c.ok()) return is_c.error();
  if (!*is_c) return Errc::invalid;
  return RemoveContainer(backend, path);
}

}  // namespace pdsi::plfs
