#include "pdsi/plfs/plfs.h"

#include <algorithm>
#include <charconv>

#include "pdsi/common/units.h"
#include "pdsi/plfs/flat_index.h"

namespace pdsi::plfs {

Result<std::uint64_t> StatSize(Backend& backend, const std::string& path) {
  auto is_c = IsContainer(backend, path);
  if (!is_c.ok()) return is_c.error();
  if (!*is_c) return Errc::invalid;

  // Fast path: max over meta/<size>.<rank> hints.
  auto hints = backend.readdir(ContainerPaths::meta_dir(path));
  if (hints.ok() && !hints->empty()) {
    std::uint64_t best = 0;
    bool any = false;
    for (const auto& name : *hints) {
      std::uint64_t size = 0;
      const auto dot = name.find('.');
      const char* end = name.data() + (dot == std::string::npos ? name.size() : dot);
      if (std::from_chars(name.data(), end, size).ec == std::errc{}) {
        best = std::max(best, size);
        any = true;
      }
    }
    if (any) return best;
  }

  // Slow path: merge the index.
  auto reader = Reader::Open(backend, path);
  if (!reader.ok()) return reader.error();
  return (*reader)->size();
}

Status Flatten(Backend& backend, const std::string& path, const std::string& dest,
               const Options& options) {
  auto reader = Reader::Open(backend, path, options);
  if (!reader.ok()) return reader.error();

  auto out = backend.create(dest);
  if (!out.ok()) return out.error();

  constexpr std::uint64_t kChunk = 4 * MiB;
  Bytes buf;
  Status st = Status::Ok();
  const std::uint64_t size = (*reader)->size();
  for (std::uint64_t off = 0; off < size && st.ok(); off += kChunk) {
    const std::uint64_t n = std::min(kChunk, size - off);
    buf.resize(n);
    auto r = (*reader)->read(off, buf);
    if (!r.ok()) {
      st = r.error();
      break;
    }
    buf.resize(*r);
    st = backend.write(*out, off, buf);
  }
  if (st.ok()) st = backend.fsync(*out);
  backend.close(*out);
  return st;
}

Status FlattenIndex(Backend& backend, const std::string& path,
                    const Options& options) {
  obs::Tracer* tracer = options.obs ? options.obs->tracer : nullptr;
  if (tracer) tracer->track(obs::kFlattenTrack, "flatten");
  const double v0 = tracer ? backend.now() : 0.0;

  // Merge the raw droppings ourselves: a pre-existing (possibly stale)
  // flat dropping or cached snapshot must never become the new truth.
  Options raw = options;
  raw.use_flat_index = false;
  raw.index_cache = nullptr;
  auto reader = Reader::Open(backend, path, raw);
  if (!reader.ok()) return reader.error();
  if ((*reader)->read_errors() > 0) return Errc::io_error;

  FlatIndex flat;
  flat.fingerprint = (*reader)->index_fingerprint();
  flat.logical_size = (*reader)->size();
  flat.droppings.reserve((*reader)->droppings().size());
  for (const auto& abs : (*reader)->droppings()) {
    flat.droppings.push_back(abs.substr(path.size() + 1));
  }
  const auto segments = (*reader)->index().all();
  flat.entries = CompressSegments(segments);
  const Bytes raw_bytes = SerializeFlatIndex(flat);

  // Replace any previous flat dropping. Readers racing this window parse
  // a partial file, fail validation, and fall back to the raw merge.
  const std::string flat_path = path + "/" + kFlatIndexName;
  if (auto st = backend.unlink(flat_path);
      !st.ok() && st.error() != Errc::not_found) {
    return st;
  }
  auto out = backend.create(flat_path);
  if (!out.ok()) return out.error();
  Status st = backend.write(*out, 0, raw_bytes);
  if (st.ok()) st = backend.fsync(*out);
  backend.close(*out);
  if (!st.ok()) return st;

  if (tracer) {
    tracer->complete(obs::kFlattenTrack, "index_flatten", "plfs", v0,
                     backend.now(),
                     {obs::Arg::Int("droppings", flat.droppings.size()),
                      obs::Arg::Int("segments", segments.size()),
                      obs::Arg::Int("entries", flat.entries.size()),
                      obs::Arg::Int("bytes", raw_bytes.size())});
  }
  return Status::Ok();
}

Status Unlink(Backend& backend, const std::string& path) {
  auto is_c = IsContainer(backend, path);
  if (!is_c.ok()) return is_c.error();
  if (!*is_c) return Errc::invalid;
  return RemoveContainer(backend, path);
}

}  // namespace pdsi::plfs
