#include "pdsi/plfs/index.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pdsi::plfs {
namespace {

void Put64(std::span<std::uint8_t> out, std::size_t at, std::uint64_t v) {
  std::memcpy(out.data() + at, &v, sizeof(v));
}
void Put32(std::span<std::uint8_t> out, std::size_t at, std::uint32_t v) {
  std::memcpy(out.data() + at, &v, sizeof(v));
}
std::uint64_t Get64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v;
  std::memcpy(&v, in.data() + at, sizeof(v));
  return v;
}
std::uint32_t Get32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v;
  std::memcpy(&v, in.data() + at, sizeof(v));
  return v;
}

}  // namespace

void SerializeEntry(const IndexEntry& e, std::span<std::uint8_t> out) {
  if (out.size() < kRawEntrySize) throw std::invalid_argument("index buffer too small");
  Put64(out, 0, e.logical);
  // Length and sequence fit comfortably in 32 bits for any realistic
  // record; pack to keep the record at 48 bytes.
  Put64(out, 8, e.length);
  Put64(out, 16, e.physical);
  Put64(out, 24, e.stride);
  Put32(out, 32, e.count);
  Put32(out, 36, e.rank);
  Put64(out, 40, e.sequence);
}

IndexEntry DeserializeEntry(std::span<const std::uint8_t> in) {
  if (in.size() < kRawEntrySize) throw std::invalid_argument("short index record");
  IndexEntry e;
  e.logical = Get64(in, 0);
  e.length = Get64(in, 8);
  e.physical = Get64(in, 16);
  e.stride = Get64(in, 24);
  e.count = Get32(in, 32);
  e.rank = Get32(in, 36);
  e.sequence = Get64(in, 40);
  return e;
}

Bytes SerializeEntries(const std::vector<IndexEntry>& entries) {
  Bytes out(entries.size() * kRawEntrySize);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    SerializeEntry(entries[i], std::span(out).subspan(i * kRawEntrySize));
  }
  return out;
}

std::vector<IndexEntry> DeserializeEntries(std::span<const std::uint8_t> data) {
  if (data.size() % kRawEntrySize != 0) {
    throw std::invalid_argument("index dropping size not a record multiple");
  }
  std::vector<IndexEntry> out;
  out.reserve(data.size() / kRawEntrySize);
  for (std::size_t at = 0; at < data.size(); at += kRawEntrySize) {
    out.push_back(DeserializeEntry(data.subspan(at)));
  }
  return out;
}

void PatternCompressor::add(const IndexEntry& e) {
  if (e.count != 1) throw std::invalid_argument("feed plain entries only");
  if (!enabled_) {
    out_.push_back(e);
    return;
  }
  if (run_) {
    IndexEntry& r = *run_;
    const bool same_shape = e.length == r.length && e.rank == r.rank;
    const bool physically_contiguous =
        e.physical == r.physical + static_cast<std::uint64_t>(r.count) * r.length;
    if (same_shape && physically_contiguous) {
      if (r.count == 1) {
        // Second record fixes the stride (forward strides only).
        if (e.logical > r.logical) {
          r.stride = e.logical - r.logical;
          r.count = 2;
          return;
        }
      } else if (e.logical == r.logical + r.stride * r.count) {
        ++r.count;
        return;
      }
    }
    emit_run();
  }
  run_ = e;
  run_->stride = 0;
  run_->count = 1;
}

void PatternCompressor::finish() {
  if (run_) emit_run();
}

void PatternCompressor::emit_run() {
  out_.push_back(*run_);
  run_.reset();
}

std::vector<IndexEntry> PatternCompressor::take() {
  std::vector<IndexEntry> out;
  out.swap(out_);
  return out;
}

void GlobalIndex::add(const IndexEntry& e, std::uint32_t dropping_id) {
  for (std::uint32_t k = 0; k < e.count; ++k) {
    insert(e.logical + e.stride * k, e.length, dropping_id,
           e.physical + static_cast<std::uint64_t>(k) * e.length);
  }
}

void GlobalIndex::insert(std::uint64_t logical, std::uint64_t length,
                         std::uint32_t dropping, std::uint64_t physical) {
  if (length == 0) return;
  const std::uint64_t end = logical + length;
  size_ = std::max(size_, end);

  // Trim or split any existing segment overlapping [logical, end).
  auto it = segments_.upper_bound(logical);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t pstart = prev->first;
    const std::uint64_t pend = pstart + prev->second.length;
    if (pend > logical) {
      // prev overlaps from the left; keep its head, maybe its tail.
      Span tail = prev->second;
      prev->second.length = logical - pstart;
      if (prev->second.length == 0) segments_.erase(prev);
      if (pend > end) {
        const std::uint64_t skip = end - pstart;
        segments_.emplace(end, Span{pend - end, tail.dropping, tail.physical + skip});
      }
    }
  }
  it = segments_.lower_bound(logical);
  while (it != segments_.end() && it->first < end) {
    const std::uint64_t sstart = it->first;
    const std::uint64_t send = sstart + it->second.length;
    if (send <= end) {
      it = segments_.erase(it);
    } else {
      // Keep the tail beyond our new segment.
      Span tail = it->second;
      const std::uint64_t skip = end - sstart;
      segments_.erase(it);
      segments_.emplace(end, Span{send - end, tail.dropping, tail.physical + skip});
      break;
    }
  }
  segments_.emplace(logical, Span{length, dropping, physical});
}

std::vector<GlobalIndex::Segment> GlobalIndex::lookup(std::uint64_t off,
                                                      std::uint64_t len) const {
  std::vector<Segment> out;
  if (len == 0) return out;
  const std::uint64_t end = off + len;
  std::uint64_t pos = off;

  auto it = segments_.upper_bound(off);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > off) it = prev;
  }
  while (pos < end) {
    if (it == segments_.end() || it->first >= end) {
      out.push_back({pos, end - pos, kHole, 0});
      break;
    }
    if (it->first > pos) {
      out.push_back({pos, it->first - pos, kHole, 0});
      pos = it->first;
    }
    const std::uint64_t sstart = it->first;
    const std::uint64_t send = sstart + it->second.length;
    const std::uint64_t from = std::max(pos, sstart);
    const std::uint64_t to = std::min(end, send);
    out.push_back({from, to - from, it->second.dropping,
                   it->second.physical + (from - sstart)});
    pos = to;
    ++it;
  }
  return out;
}

std::vector<GlobalIndex::Segment> GlobalIndex::all() const {
  std::vector<Segment> out;
  out.reserve(segments_.size());
  for (const auto& [start, span] : segments_) {
    out.push_back({start, span.length, span.dropping, span.physical});
  }
  return out;
}

}  // namespace pdsi::plfs
