// Container-level cache of merged global indexes.
//
// The N-to-1 restart storm has every reader rank re-open the same
// container and pay the same N-way index merge. Within one address space
// (a FUSE daemon, an I/O forwarding node, the simulator) that work is
// identical across opens, so the merged snapshot is cached per container
// and validated with a fingerprint of the live index droppings — any
// write that adds or grows a dropping changes the fingerprint and misses.
// Writers additionally invalidate their container on close, so the common
// rewrite cycle frees the stale snapshot immediately instead of waiting
// for LRU pressure.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdsi/plfs/index.h"

namespace pdsi::plfs {

/// Immutable product of one container index build, shared between the
/// Reader that built it and any cached re-opens.
struct IndexSnapshot {
  GlobalIndex index;
  std::vector<IndexEntry> raw_entries;   ///< merge-input entries (dropping-major)
  std::vector<std::string> droppings;    ///< absolute data-dropping paths by id
  std::uint64_t fingerprint = 0;         ///< FingerprintDroppings() at build
  std::uint64_t index_bytes = 0;         ///< index bytes read to build it
};

/// Thread-safe LRU map: container path -> latest merged snapshot. Lookups
/// require the caller's freshly computed fingerprint to match, so a stale
/// entry can serve at most wasted memory, never stale data.
class IndexCache {
 public:
  explicit IndexCache(std::size_t max_cached_entries = 64)
      : max_entries_(max_cached_entries == 0 ? 1 : max_cached_entries) {}

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the cached snapshot iff one exists for `container` and its
  /// fingerprint matches; bumps it to most-recently-used.
  std::shared_ptr<const IndexSnapshot> find(const std::string& container,
                                            std::uint64_t fingerprint);

  /// Close-to-open lookup: the latest snapshot for `container` with NO
  /// fingerprint validation — the reader skips even the per-dropping
  /// stat pass. Only sound under session consistency, where a writer's
  /// close invalidates the container (invalidate()), so anything still
  /// cached was built after the last publishing close. Counts toward
  /// hits()/misses() like find().
  std::shared_ptr<const IndexSnapshot> find_any(const std::string& container);

  /// Installs (or replaces) the snapshot for `container`, evicting the
  /// least-recently-used container beyond the bound.
  void put(const std::string& container,
           std::shared_ptr<const IndexSnapshot> snapshot);

  /// Drops the entry for `container` (writer close, unlink).
  void invalidate(const std::string& container);

  std::size_t size() const;
  std::size_t max_cached_entries() const { return max_entries_; }

  /// Lifetime totals, independent of any obs registry (tests, reporting).
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const IndexSnapshot>>>;

  mutable std::mutex mu_;
  std::size_t max_entries_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_path_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pdsi::plfs
