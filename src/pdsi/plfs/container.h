// PLFS container layout.
//
// A logical file /ckpt is stored as a backend directory:
//
//   /ckpt/                          <- container
//   /ckpt/.plfsaccess               <- marker distinguishing containers
//   /ckpt/hostdir.K/                <- fan-out subdirs (K = rank % fanout)
//   /ckpt/hostdir.K/data.R          <- rank R's write payload log
//   /ckpt/hostdir.K/index.R         <- rank R's index records
//   /ckpt/meta/S.R                  <- dropped at close: rank R saw EOF S
//
// Hostdir fan-out spreads dropping creation over metadata resources; the
// meta/ droppings let stat() answer without a full index merge — both are
// mechanisms from the SC09 paper.
#pragma once

#include <cstdint>
#include <string>

#include "pdsi/common/result.h"
#include "pdsi/plfs/backend.h"

namespace pdsi::plfs {

struct ContainerPaths {
  static std::string access_marker(const std::string& container);
  static std::string hostdir(const std::string& container, std::uint32_t h);
  static std::string data_dropping(const std::string& container, std::uint32_t h,
                                   std::uint32_t rank);
  static std::string index_dropping(const std::string& container, std::uint32_t h,
                                    std::uint32_t rank);
  static std::string meta_dir(const std::string& container);
  static std::string meta_dropping(const std::string& container, std::uint64_t size,
                                   std::uint32_t rank);

  static std::uint32_t hostdir_for(std::uint32_t rank, std::uint32_t fanout) {
    return fanout == 0 ? 0 : rank % fanout;
  }
};

/// Creates the container skeleton if needed. Races between ranks are
/// expected: Errc::exists is success. Returns the rank's hostdir index.
Result<std::uint32_t> EnsureContainer(Backend& backend, const std::string& path,
                                      std::uint32_t rank, std::uint32_t fanout);

/// True if `path` is a PLFS container (a directory with the marker).
Result<bool> IsContainer(Backend& backend, const std::string& path);

/// Recursively removes a container.
Status RemoveContainer(Backend& backend, const std::string& path);

}  // namespace pdsi::plfs
