#include "pdsi/plfs/smallfile.h"

#include <algorithm>
#include <cstring>

namespace pdsi::plfs {
namespace {

constexpr const char* kMarker = "/.plfs_smallfile";

std::string DataPath(const std::string& c, std::uint32_t writer) {
  return c + "/sfdata." + std::to_string(writer);
}
std::string NamesPath(const std::string& c, std::uint32_t writer) {
  return c + "/sfnames." + std::to_string(writer);
}

void Append32(Bytes& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
void Append64(Bytes& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

}  // namespace

Bytes SerializeNameRecords(const std::vector<NameRecord>& records) {
  Bytes out;
  for (const auto& r : records) {
    Append32(out, static_cast<std::uint32_t>(r.name.size()));
    const std::size_t at = out.size();
    out.resize(at + r.name.size());
    std::memcpy(out.data() + at, r.name.data(), r.name.size());
    Append64(out, r.offset);
    Append64(out, r.length);
    Append64(out, r.sequence);
  }
  return out;
}

std::vector<NameRecord> DeserializeNameRecords(std::span<const std::uint8_t> data) {
  std::vector<NameRecord> out;
  std::size_t at = 0;
  while (at + 4 <= data.size()) {
    std::uint32_t name_len;
    std::memcpy(&name_len, data.data() + at, 4);
    at += 4;
    if (at + name_len + 24 > data.size()) {
      throw std::invalid_argument("truncated small-file name log");
    }
    NameRecord r;
    r.name.assign(reinterpret_cast<const char*>(data.data() + at), name_len);
    at += name_len;
    std::memcpy(&r.offset, data.data() + at, 8);
    std::memcpy(&r.length, data.data() + at + 8, 8);
    std::memcpy(&r.sequence, data.data() + at + 16, 8);
    at += 24;
    out.push_back(std::move(r));
  }
  if (at != data.size()) throw std::invalid_argument("trailing bytes in name log");
  return out;
}

Result<bool> IsSmallFileContainer(Backend& backend, const std::string& path) {
  auto dir = backend.is_dir(path);
  if (!dir.ok()) return dir.error();
  if (!*dir) return false;
  auto marker = backend.exists(path + kMarker);
  if (!marker.ok()) return marker.error();
  return *marker;
}

Result<std::unique_ptr<SmallFileWriter>> SmallFileWriter::Open(
    Backend& backend, const std::string& path, std::uint32_t writer_id,
    WriteClock& clock) {
  if (auto st = backend.mkdir(path); !st.ok() && st.error() != Errc::exists) {
    return st.error();
  }
  auto marker = backend.create(path + kMarker);
  if (!marker.ok() && marker.error() != Errc::exists) return marker.error();
  if (marker.ok()) backend.close(*marker);

  auto data = backend.create(DataPath(path, writer_id));
  if (!data.ok()) return data.error();
  auto names = backend.create(NamesPath(path, writer_id));
  if (!names.ok()) {
    backend.close(*data);
    return names.error();
  }
  return std::unique_ptr<SmallFileWriter>(
      new SmallFileWriter(backend, writer_id, clock, *data, *names));
}

SmallFileWriter::SmallFileWriter(Backend& backend, std::uint32_t writer_id,
                                 WriteClock& clock, BackendHandle data,
                                 BackendHandle names)
    : backend_(backend),
      writer_id_(writer_id),
      clock_(clock),
      data_h_(data),
      names_h_(names) {}

SmallFileWriter::~SmallFileWriter() {
  if (open_) close();
}

Status SmallFileWriter::put(const std::string& name,
                            std::span<const std::uint8_t> data) {
  if (!open_) return Errc::bad_handle;
  if (name.empty() || name.find('/') != std::string::npos) return Errc::invalid;
  if (auto st = backend_.write(data_h_, data_off_, data); !st.ok()) return st;
  NameRecord r;
  r.name = name;
  r.offset = data_off_;
  r.length = data.size();
  r.sequence = clock_.fetch_add(1, std::memory_order_relaxed);
  pending_.push_back(std::move(r));
  data_off_ += data.size();
  ++files_written_;
  return Status::Ok();
}

Status SmallFileWriter::remove(const std::string& name) {
  if (!open_) return Errc::bad_handle;
  NameRecord r;
  r.name = name;
  r.length = NameRecord::kTombstone;
  r.sequence = clock_.fetch_add(1, std::memory_order_relaxed);
  pending_.push_back(std::move(r));
  return Status::Ok();
}

Status SmallFileWriter::sync() {
  if (!open_) return Errc::bad_handle;
  if (!pending_.empty()) {
    const Bytes raw = SerializeNameRecords(pending_);
    if (auto st = backend_.write(names_h_, names_off_, raw); !st.ok()) return st;
    names_off_ += raw.size();
    pending_.clear();
  }
  if (auto st = backend_.fsync(data_h_); !st.ok()) return st;
  return backend_.fsync(names_h_);
}

Status SmallFileWriter::close() {
  if (!open_) return Errc::bad_handle;
  const Status st = sync();
  open_ = false;
  backend_.close(data_h_);
  backend_.close(names_h_);
  return st;
}

Result<std::unique_ptr<SmallFileReader>> SmallFileReader::Open(
    Backend& backend, const std::string& path) {
  auto is_sf = IsSmallFileContainer(backend, path);
  if (!is_sf.ok()) return is_sf.error();
  if (!*is_sf) return Errc::invalid;
  std::unique_ptr<SmallFileReader> reader(new SmallFileReader(backend));
  if (auto st = reader->build(path); !st.ok()) return st.error();
  return reader;
}

SmallFileReader::~SmallFileReader() {
  for (auto h : handles_) {
    if (h >= 0) backend_.close(h);
  }
}

Status SmallFileReader::build(const std::string& path) {
  auto entries = backend_.readdir(path);
  if (!entries.ok()) return entries.error();
  std::vector<std::string> name_logs;
  for (const auto& e : *entries) {
    if (e.rfind("sfnames.", 0) == 0) name_logs.push_back(e);
  }
  std::sort(name_logs.begin(), name_logs.end());

  std::vector<NameRecord> all;
  std::vector<std::uint32_t> owner;
  for (const auto& log : name_logs) {
    const std::string writer_part = log.substr(8);
    droppings_.push_back(path + "/sfdata." + writer_part);
    handles_.push_back(-1);

    auto h = backend_.open(path + "/" + log);
    if (!h.ok()) return h.error();
    auto sz = backend_.size(*h);
    if (!sz.ok()) {
      backend_.close(*h);
      return sz.error();
    }
    Bytes raw(*sz);
    auto n = backend_.read(*h, 0, raw);
    backend_.close(*h);
    if (!n.ok()) return n.error();
    raw.resize(*n);
    try {
      for (auto& r : DeserializeNameRecords(raw)) {
        all.push_back(std::move(r));
        owner.push_back(static_cast<std::uint32_t>(droppings_.size() - 1));
      }
    } catch (const std::exception&) {
      return Errc::io_error;
    }
  }

  // Newest record per name wins; tombstones delete.
  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return all[a].sequence < all[b].sequence;
  });
  for (std::size_t i : order) {
    const NameRecord& r = all[i];
    if (r.length == NameRecord::kTombstone) {
      names_.erase(r.name);
    } else {
      names_[r.name] = {owner[i], r.offset, r.length, r.sequence};
    }
  }
  return Status::Ok();
}

std::vector<std::string> SmallFileReader::list() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, loc] : names_) out.push_back(name);
  return out;
}

Result<std::uint64_t> SmallFileReader::size(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) return Errc::not_found;
  return it->second.length;
}

Result<Bytes> SmallFileReader::get(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) return Errc::not_found;
  const Location& loc = it->second;
  if (handles_[loc.dropping] < 0) {
    auto h = backend_.open(droppings_[loc.dropping]);
    if (!h.ok()) return h.error();
    handles_[loc.dropping] = *h;
  }
  Bytes out(loc.length);
  auto n = backend_.read(handles_[loc.dropping], loc.offset, out);
  if (!n.ok()) return n.error();
  if (*n != loc.length) return Errc::io_error;
  return out;
}

}  // namespace pdsi::plfs
