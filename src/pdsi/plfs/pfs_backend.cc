// Backend adapter over the simulated parallel file system. One instance
// per rank: the PfsClient inside carries the rank's virtual-time actor id,
// so every PLFS container operation is charged to the right clock.
#include "pdsi/plfs/pfs_backend.h"

namespace pdsi::plfs {
namespace {

class PfsBackend final : public Backend {
 public:
  PfsBackend(pfs::PfsCluster& cluster, std::size_t actor)
      : client_(cluster, actor) {}

  Status mkdir(const std::string& path) override { return client_.mkdir(path); }

  Result<BackendHandle> create(const std::string& path) override {
    auto r = client_.create(path);
    if (!r.ok()) return r.error();
    return static_cast<BackendHandle>(*r);
  }

  Result<BackendHandle> open(const std::string& path) override {
    auto r = client_.open(path);
    if (!r.ok()) return r.error();
    return static_cast<BackendHandle>(*r);
  }

  Status write(BackendHandle h, std::uint64_t off,
               std::span<const std::uint8_t> data) override {
    return client_.write(h, off, data);
  }

  Result<std::size_t> read(BackendHandle h, std::uint64_t off,
                           std::span<std::uint8_t> out) override {
    return client_.read(h, off, out);
  }

  Result<std::uint64_t> size(BackendHandle h) override {
    return client_.file_size(h);
  }

  Status fsync(BackendHandle h) override { return client_.fsync(h); }
  Status close(BackendHandle h) override { return client_.close(h); }

  Result<std::vector<std::string>> readdir(const std::string& path) override {
    return client_.readdir(path);
  }

  Status unlink(const std::string& path) override { return client_.unlink(path); }

  Status rename(const std::string& from, const std::string& to) override {
    return client_.rename(from, to);
  }

  Result<bool> is_dir(const std::string& path) override {
    auto st = client_.stat(path);
    if (!st.ok()) return st.error();
    return st->is_dir;
  }

  void compute(double seconds) override { client_.compute(seconds); }

  double now() const override { return client_.now(); }

  Result<bool> exists(const std::string& path) override {
    auto st = client_.stat(path);
    if (!st.ok() && st.error() == Errc::not_found) return false;
    if (!st.ok()) return st.error();
    return true;
  }

  // One MDS round-trip instead of the default open/size/close triple —
  // this is what makes the reader's fingerprint pass cheap at scale.
  Result<std::uint64_t> stat_size(const std::string& path) override {
    auto st = client_.stat(path);
    if (!st.ok()) return st.error();
    if (st->is_dir) return Errc::invalid;
    return st->size;
  }

 private:
  pfs::PfsClient client_;
};

}  // namespace

std::unique_ptr<Backend> MakePfsBackend(pfs::PfsCluster& cluster, std::size_t actor) {
  return std::make_unique<PfsBackend>(cluster, actor);
}

}  // namespace pdsi::plfs
