// PLFS index machinery.
//
// Every rank logs its writes as (logical offset, length) -> (position in
// that rank's data dropping). Reading the logical file later requires
// merging every rank's index into one global map from logical ranges to
// (dropping, physical offset) — later writes shadow earlier ones.
//
// Index records support run-length "pattern" compression: an N-to-1
// strided checkpoint produces, per rank, an arithmetic sequence of
// records (constant length, constant logical stride, contiguous physical
// placement), which collapses into a single PatternEntry. This is the
// index-compression extension the report lists (§1.1, item 5) and is an
// ablation axis in bench/abl01_plfs_ablation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "pdsi/common/bytes.h"

namespace pdsi::plfs {

/// One run of writes from a single rank. count == 1 describes a plain
/// write; count > 1 describes `count` records of `length` bytes whose
/// logical offsets step by `stride` and whose payloads are contiguous in
/// the data dropping starting at `physical`.
struct IndexEntry {
  std::uint64_t logical = 0;
  std::uint64_t length = 0;
  std::uint64_t physical = 0;
  std::uint64_t stride = 0;
  std::uint32_t count = 1;
  std::uint32_t rank = 0;
  std::uint64_t sequence = 0;  ///< global write-order stamp (later wins)

  std::uint64_t logical_end() const {
    return count == 0 ? logical
                      : logical + stride * (count - 1) + length;
  }
  std::uint64_t bytes() const { return static_cast<std::uint64_t>(count) * length; }
};

/// Fixed-size on-disk record; entries serialise to exactly kRawEntrySize
/// bytes so droppings can be scanned without framing.
inline constexpr std::size_t kRawEntrySize = 48;

void SerializeEntry(const IndexEntry& e, std::span<std::uint8_t> out);
IndexEntry DeserializeEntry(std::span<const std::uint8_t> in);

Bytes SerializeEntries(const std::vector<IndexEntry>& entries);
std::vector<IndexEntry> DeserializeEntries(std::span<const std::uint8_t> data);

/// Streaming pattern compressor: feed plain (count==1) entries in write
/// order; emits compressed entries. A run is extended while length is
/// constant, physical placement is contiguous, and the logical stride
/// matches the run's stride.
class PatternCompressor {
 public:
  /// When disabled, entries pass through unmodified (ablation baseline).
  explicit PatternCompressor(bool enabled) : enabled_(enabled) {}

  void add(const IndexEntry& e);

  /// Flushes the open run; call before serialising.
  void finish();

  /// Entries emitted so far (consumed by the caller; cleared on take()).
  std::vector<IndexEntry> take();

 private:
  void emit_run();

  bool enabled_;
  std::optional<IndexEntry> run_;
  std::vector<IndexEntry> out_;
};

/// The merged, queryable view of a container's index droppings.
///
/// Built by inserting entries in ascending sequence order; overlapping
/// logical ranges are resolved newest-wins by splitting older segments.
class GlobalIndex {
 public:
  /// A resolved logical extent. dropping == kHole marks unwritten bytes.
  struct Segment {
    std::uint64_t logical;
    std::uint64_t length;
    std::uint32_t dropping;  ///< caller-assigned data-dropping id
    std::uint64_t physical;  ///< offset within that dropping
  };
  static constexpr std::uint32_t kHole = ~0u;

  /// Inserts all records of an entry, attributing them to data dropping
  /// `dropping_id`. Entries must be added in ascending `sequence` order
  /// for correct shadowing.
  void add(const IndexEntry& e, std::uint32_t dropping_id);

  /// Logical EOF: one past the highest written byte.
  std::uint64_t size() const { return size_; }

  std::size_t segment_count() const { return segments_.size(); }

  /// Decomposes [off, off+len) into data segments and holes, in order.
  std::vector<Segment> lookup(std::uint64_t off, std::uint64_t len) const;

  /// All segments in logical order (flatten, visualisation).
  std::vector<Segment> all() const;

 private:
  struct Span {
    std::uint64_t length;
    std::uint32_t dropping;
    std::uint64_t physical;
  };

  void insert(std::uint64_t logical, std::uint64_t length, std::uint32_t dropping,
              std::uint64_t physical);

  std::map<std::uint64_t, Span> segments_;  ///< keyed by logical start
  std::uint64_t size_ = 0;
};

}  // namespace pdsi::plfs
