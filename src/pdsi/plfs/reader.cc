#include "pdsi/plfs/reader.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <queue>
#include <thread>
#include <utility>

#include "pdsi/plfs/container.h"
#include "pdsi/plfs/flat_index.h"

namespace pdsi::plfs {

Result<std::unique_ptr<Reader>> Reader::Open(Backend& backend,
                                             const std::string& path,
                                             const Options& options) {
  auto is_c = IsContainer(backend, path);
  if (!is_c.ok()) return is_c.error();
  if (!*is_c) return Errc::invalid;
  std::unique_ptr<Reader> reader(new Reader(backend, options));
  if (auto st = reader->build(path); !st.ok()) return st.error();
  return reader;
}

Reader::Reader(Backend& backend, Options options)
    : backend_(backend), options_(options) {
  if (options_.obs) {
    if (options_.obs->tracer) {
      const std::uint32_t n = options_.obs_track >= obs::kReaderTrackBase
                                  ? options_.obs_track - obs::kReaderTrackBase
                                  : options_.obs_track;
      options_.obs->tracer->track(options_.obs_track,
                                  "reader" + std::to_string(n));
    }
    if (options_.obs->registry) {
      c_reads_ = &options_.obs->registry->counter("plfs.reads");
      c_segments_ = &options_.obs->registry->counter("plfs.read_segments");
      c_degraded_ = &options_.obs->registry->counter("plfs.degraded_segments");
    }
  }
}

Reader::~Reader() {
  for (auto& [id, h] : handles_) backend_.close(h);
}

std::shared_ptr<const IndexSnapshot> Reader::try_load_flat(
    const std::string& path, std::uint64_t fingerprint) {
  auto h = backend_.open(path + "/" + kFlatIndexName);
  if (!h.ok()) return nullptr;
  auto sz = backend_.size(*h);
  if (!sz.ok()) {
    backend_.close(*h);
    return nullptr;
  }
  Bytes raw(*sz);
  auto n = backend_.read(*h, 0, raw);
  backend_.close(*h);
  if (!n.ok()) return nullptr;
  raw.resize(*n);
  auto flat = ParseFlatIndex(raw);
  if (!flat.ok() || flat->fingerprint != fingerprint) return nullptr;

  auto snap = std::make_shared<IndexSnapshot>();
  snap->droppings.reserve(flat->droppings.size());
  for (const auto& rel : flat->droppings) snap->droppings.push_back(path + "/" + rel);
  snap->raw_entries = std::move(flat->entries);
  // Flat entries are overlap-free with sequence == emission index, so
  // adding in stored order rebuilds the exact resolved segment map.
  for (const auto& e : snap->raw_entries) snap->index.add(e, e.rank);
  if (snap->index.size() != flat->logical_size) return nullptr;
  snap->fingerprint = fingerprint;
  snap->index_bytes = raw.size();
  return snap;
}

Status Reader::build(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double v0 = tracer ? backend_.now() : 0.0;
  auto finish_timer = [&] {
    index_build_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };

  // Close-to-open mode trusts the invalidate-on-close protocol instead
  // of a fingerprint: whatever is cached was built after the last
  // publishing close, so a hit serves with no validation I/O at all —
  // not even the container readdir below.
  if (options_.index_cache && options_.close_to_open_cache) {
    if (auto snap = options_.index_cache->find_any(path)) {
      snap_ = std::move(snap);
      if (options_.obs && options_.obs->registry) {
        options_.obs->registry->counter("plfs.c2o_hits").add(1);
      }
      if (tracer) {
        tracer->complete(options_.obs_track, "c2o_cache_hit", "plfs", v0,
                         backend_.now(),
                         {obs::Arg::Int("droppings", snap_->droppings.size()),
                          obs::Arg::Int("entries", snap_->raw_entries.size())});
      }
      finish_timer();
      return Status::Ok();
    }
    if (options_.obs && options_.obs->registry) {
      options_.obs->registry->counter("plfs.c2o_misses").add(1);
    }
  }

  // Discover index droppings across hostdirs. The same top-level listing
  // reveals whether a flattened index is present, so the plain merge path
  // pays no extra backend calls for the fast-path machinery.
  struct IndexFile {
    std::string index_path;  ///< absolute
    std::string rel_index;   ///< container-relative (fingerprint key)
    std::string data_path;
  };
  std::vector<IndexFile> files;
  bool flat_present = false;
  auto top = backend_.readdir(path);
  if (!top.ok()) return top.error();
  for (const auto& name : *top) {
    if (name == kFlatIndexName) {
      flat_present = true;
      continue;
    }
    if (name.rfind("hostdir.", 0) != 0) continue;
    const std::string hostdir = path + "/" + name;
    auto entries = backend_.readdir(hostdir);
    if (!entries.ok()) return entries.error();
    for (const auto& e : *entries) {
      if (e.rfind("index.", 0) != 0) continue;
      const std::string rank_part = e.substr(6);
      files.push_back(
          {hostdir + "/" + e, name + "/" + e, hostdir + "/data." + rank_part});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const IndexFile& a, const IndexFile& b) {
              return a.index_path < b.index_path;
            });

  // Both fast paths key on a fingerprint of the live droppings, which
  // costs one stat per dropping — cheap next to N full index reads, but
  // not free, so the pass only runs when a fast path could consume it.
  const bool want_fast =
      options_.index_cache != nullptr || (options_.use_flat_index && flat_present);
  bool have_fingerprint = false;
  std::uint64_t fingerprint = 0;
  if (want_fast) {
    std::vector<std::pair<std::string, std::uint64_t>> name_sizes;
    name_sizes.reserve(files.size());
    bool all_stat_ok = true;
    for (const auto& f : files) {
      auto sz = backend_.stat_size(f.index_path);
      if (!sz.ok()) {
        // Unreadable dropping: no trustworthy fingerprint. Fall through to
        // the raw merge, whose degraded-read policy decides what happens.
        all_stat_ok = false;
        break;
      }
      name_sizes.emplace_back(f.rel_index, *sz);
    }
    if (all_stat_ok) {
      fingerprint = FingerprintDroppings(std::move(name_sizes));
      have_fingerprint = true;
    }
  }

  if (options_.index_cache && have_fingerprint) {
    if (auto snap = options_.index_cache->find(path, fingerprint)) {
      snap_ = std::move(snap);
      if (options_.obs && options_.obs->registry) {
        options_.obs->registry->counter("plfs.index_cache_hits").add(1);
      }
      if (tracer) {
        tracer->complete(options_.obs_track, "index_cache_hit", "plfs", v0,
                         backend_.now(),
                         {obs::Arg::Int("droppings", snap_->droppings.size()),
                          obs::Arg::Int("entries", snap_->raw_entries.size())});
      }
      finish_timer();
      return Status::Ok();
    }
    if (options_.obs && options_.obs->registry) {
      options_.obs->registry->counter("plfs.index_cache_misses").add(1);
    }
  }

  if (options_.use_flat_index && flat_present && have_fingerprint) {
    if (auto snap = try_load_flat(path, fingerprint)) {
      index_bytes_read_ = snap->index_bytes;
      backend_.compute(static_cast<double>(snap->raw_entries.size()) *
                       options_.index_merge_cost_per_entry_s);
      if (tracer) {
        tracer->complete(options_.obs_track, "index_merge", "plfs", v0,
                         backend_.now(),
                         {obs::Arg::Int("droppings", snap->droppings.size()),
                          obs::Arg::Int("entries", snap->raw_entries.size()),
                          obs::Arg::Int("bytes", index_bytes_read_)});
      }
      snap_ = std::move(snap);
      if (options_.index_cache) options_.index_cache->put(path, snap_);
      finish_timer();
      return Status::Ok();
    }
    // Stale, corrupt, or unreadable flat dropping: fall back to the merge.
  }

  // Read and decode each dropping (optionally in parallel).
  std::vector<std::vector<IndexEntry>> decoded(files.size());
  std::vector<Status> statuses(files.size());
  std::vector<std::uint64_t> sizes(files.size(), 0);
  auto read_one = [&](std::size_t i) {
    auto h = backend_.open(files[i].index_path);
    if (!h.ok()) {
      statuses[i] = h.error();
      return;
    }
    auto sz = backend_.size(*h);
    if (!sz.ok()) {
      statuses[i] = sz.error();
      backend_.close(*h);
      return;
    }
    Bytes raw(*sz);
    auto n = backend_.read(*h, 0, raw);
    backend_.close(*h);
    if (!n.ok()) {
      statuses[i] = n.error();
      return;
    }
    raw.resize(*n);
    sizes[i] = *n;
    try {
      decoded[i] = DeserializeEntries(raw);
    } catch (const std::exception&) {
      statuses[i] = Errc::io_error;
    }
  };

  const std::uint32_t workers =
      std::max<std::uint32_t>(1, options_.index_read_threads);
  auto run_pool = [&](auto&& work) {
    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    for (std::uint32_t w = 0; w < std::min<std::size_t>(workers, files.size());
         ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1)) {
          work(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  };
  if (workers == 1 || files.size() <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) read_one(i);
  } else {
    run_pool(read_one);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (statuses[i].ok()) continue;
    if (!options_.degraded_reads) return statuses[i];
    // Degraded build: an unreadable index dropping (its server is down)
    // means that rank's writes are invisible. Drop it, count the error,
    // and merge what survives — regions it covered read back as holes.
    ++read_errors_;
    if (c_degraded_) c_degraded_->add(1);
    decoded[i].clear();
    sizes[i] = 0;
  }

  // Merge: stamp dropping ids, order globally, insert. The merge key is
  // (sequence, dropping id, in-dropping position): sequence alone is not a
  // total order — concurrent unsynchronised writers can share stamps — and
  // std::sort is unstable, so ties must break on something deterministic
  // or two opens of one container could disagree about which write wins.
  auto snap = std::make_shared<IndexSnapshot>();
  auto& raw_entries = snap->raw_entries;
  snap->droppings.reserve(files.size());
  std::size_t total = 0;
  for (const auto& d : decoded) total += d.size();
  raw_entries.reserve(total);
  std::vector<std::uint32_t> owner;
  owner.reserve(total);
  std::vector<std::size_t> bases(files.size(), 0);
  for (std::size_t i = 0; i < files.size(); ++i) {
    snap->droppings.push_back(files[i].data_path);
    index_bytes_read_ += sizes[i];
    bases[i] = raw_entries.size();
    for (const auto& e : decoded[i]) {
      raw_entries.push_back(e);
      owner.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // raw_entries is dropping-major with in-dropping order preserved, so
  // comparing global positions as the tiebreak IS (dropping id, position).
  std::vector<std::size_t> order;
  if (workers > 1 && files.size() > 1) {
    // Parallel merge: per-dropping position lists are argsorted by
    // (sequence, position) on the pool, then k-way merged with the heap
    // keyed by (sequence, dropping id) — byte-identical to the serial
    // sort because within a dropping positions already ascend.
    std::vector<std::vector<std::size_t>> perm(files.size());
    run_pool([&](std::size_t i) {
      perm[i].resize(decoded[i].size());
      for (std::size_t j = 0; j < perm[i].size(); ++j) perm[i][j] = bases[i] + j;
      std::sort(perm[i].begin(), perm[i].end(),
                [&](std::size_t a, std::size_t b) {
                  if (raw_entries[a].sequence != raw_entries[b].sequence) {
                    return raw_entries[a].sequence < raw_entries[b].sequence;
                  }
                  return a < b;
                });
    });
    struct Head {
      std::uint64_t sequence;
      std::uint32_t dropping;
      std::size_t pos;
    };
    auto later = [](const Head& a, const Head& b) {
      if (a.sequence != b.sequence) return a.sequence > b.sequence;
      return a.dropping > b.dropping;
    };
    std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      if (!perm[i].empty()) {
        heap.push({raw_entries[perm[i][0]].sequence,
                   static_cast<std::uint32_t>(i), 0});
      }
    }
    order.reserve(total);
    while (!heap.empty()) {
      Head head = heap.top();
      heap.pop();
      order.push_back(perm[head.dropping][head.pos]);
      if (++head.pos < perm[head.dropping].size()) {
        head.sequence = raw_entries[perm[head.dropping][head.pos]].sequence;
        heap.push(head);
      }
    }
  } else {
    order.resize(total);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (raw_entries[a].sequence != raw_entries[b].sequence) {
        return raw_entries[a].sequence < raw_entries[b].sequence;
      }
      return a < b;
    });
  }
  for (std::size_t i : order) snap->index.add(raw_entries[i], owner[i]);
  backend_.compute(static_cast<double>(raw_entries.size()) *
                   options_.index_merge_cost_per_entry_s);

  if (tracer) {
    tracer->complete(options_.obs_track, "index_merge", "plfs", v0, backend_.now(),
                     {obs::Arg::Int("droppings", snap->droppings.size()),
                      obs::Arg::Int("entries", raw_entries.size()),
                      obs::Arg::Int("bytes", index_bytes_read_)});
  }
  if (!have_fingerprint) {
    // The read pass already produced every size, so the fingerprint is
    // free here; it keys the cache insert and reader introspection.
    std::vector<std::pair<std::string, std::uint64_t>> name_sizes;
    name_sizes.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      name_sizes.emplace_back(files[i].rel_index, sizes[i]);
    }
    fingerprint = FingerprintDroppings(std::move(name_sizes));
  }
  snap->fingerprint = fingerprint;
  snap->index_bytes = index_bytes_read_;
  snap_ = std::move(snap);
  // Never cache a degraded build: the snapshot is missing ranks and would
  // poison healthy opens once the failed server comes back.
  if (options_.index_cache && have_fingerprint && read_errors_ == 0) {
    options_.index_cache->put(path, snap_);
  }
  finish_timer();
  return Status::Ok();
}

Result<BackendHandle> Reader::data_handle(std::uint32_t dropping) {
  auto it = handles_.find(dropping);
  if (it != handles_.end()) return it->second;
  auto h = backend_.open(snap_->droppings[dropping]);
  if (!h.ok()) return h.error();
  handles_.emplace(dropping, *h);
  return *h;
}

Result<std::size_t> Reader::read(std::uint64_t off, std::span<std::uint8_t> out) {
  const GlobalIndex& index = snap_->index;
  if (off >= index.size() || out.empty()) return static_cast<std::size_t>(0);
  const std::uint64_t len = std::min<std::uint64_t>(out.size(), index.size() - off);
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double v0 = tracer ? backend_.now() : 0.0;

  const std::uint64_t errors_before = read_errors_;
  const auto segs = index.lookup(off, len);
  for (const auto& seg : segs) {
    auto dst = out.subspan(seg.logical - off, seg.length);
    if (seg.dropping == GlobalIndex::kHole) {
      std::memset(dst.data(), 0, dst.size());
      continue;
    }
    auto degrade = [&]() {
      // Degraded read: the dropping's server is unreachable. Hand back a
      // zero-filled hole and count it rather than failing the request.
      ++read_errors_;
      if (c_degraded_) c_degraded_->add(1);
      std::memset(dst.data(), 0, dst.size());
    };
    auto h = data_handle(seg.dropping);
    if (!h.ok()) {
      if (!options_.degraded_reads) return h.error();
      degrade();
      continue;
    }
    auto n = backend_.read(*h, seg.physical, dst);
    if (!n.ok()) {
      if (!options_.degraded_reads) return n.error();
      degrade();
      continue;
    }
    if (*n < dst.size()) {
      // Data dropping shorter than its index claims: corrupt container.
      // The bytes that did arrive are good — only the unread tail is
      // unknown, so zero that and count one error; wiping the whole
      // segment would discard data the degraded restart could still use.
      if (!options_.degraded_reads) return Errc::io_error;
      ++read_errors_;
      if (c_degraded_) c_degraded_->add(1);
      auto tail = dst.subspan(*n);
      std::memset(tail.data(), 0, tail.size());
    }
  }
  if (c_reads_) c_reads_->add(1);
  if (c_segments_) c_segments_->add(segs.size());
  if (tracer) {
    const std::uint64_t errs = read_errors_ - errors_before;
    if (errs > 0) {
      tracer->complete(options_.obs_track, "read", "plfs", v0, backend_.now(),
                       {obs::Arg::Int("off", off), obs::Arg::Int("len", len),
                        obs::Arg::Int("segments", segs.size()),
                        obs::Arg::Int("errors", errs)});
    } else {
      tracer->complete(options_.obs_track, "read", "plfs", v0, backend_.now(),
                       {obs::Arg::Int("off", off), obs::Arg::Int("len", len),
                        obs::Arg::Int("segments", segs.size())});
    }
  }
  return static_cast<std::size_t>(len);
}

}  // namespace pdsi::plfs
