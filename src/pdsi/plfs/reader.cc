#include "pdsi/plfs/reader.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "pdsi/plfs/container.h"

namespace pdsi::plfs {

Result<std::unique_ptr<Reader>> Reader::Open(Backend& backend,
                                             const std::string& path,
                                             const Options& options) {
  auto is_c = IsContainer(backend, path);
  if (!is_c.ok()) return is_c.error();
  if (!*is_c) return Errc::invalid;
  std::unique_ptr<Reader> reader(new Reader(backend, options));
  if (auto st = reader->build(path); !st.ok()) return st.error();
  return reader;
}

Reader::Reader(Backend& backend, Options options)
    : backend_(backend), options_(options) {
  if (options_.obs) {
    if (options_.obs->tracer) {
      const std::uint32_t n = options_.obs_track >= obs::kReaderTrackBase
                                  ? options_.obs_track - obs::kReaderTrackBase
                                  : options_.obs_track;
      options_.obs->tracer->track(options_.obs_track,
                                  "reader" + std::to_string(n));
    }
    if (options_.obs->registry) {
      c_reads_ = &options_.obs->registry->counter("plfs.reads");
      c_segments_ = &options_.obs->registry->counter("plfs.read_segments");
      c_degraded_ = &options_.obs->registry->counter("plfs.degraded_segments");
    }
  }
}

Reader::~Reader() {
  for (auto& [id, h] : handles_) backend_.close(h);
}

Status Reader::build(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double v0 = tracer ? backend_.now() : 0.0;

  // Discover index droppings across hostdirs.
  struct IndexFile {
    std::string index_path;
    std::string data_path;
  };
  std::vector<IndexFile> files;
  auto top = backend_.readdir(path);
  if (!top.ok()) return top.error();
  for (const auto& name : *top) {
    if (name.rfind("hostdir.", 0) != 0) continue;
    const std::string hostdir = path + "/" + name;
    auto entries = backend_.readdir(hostdir);
    if (!entries.ok()) return entries.error();
    for (const auto& e : *entries) {
      if (e.rfind("index.", 0) != 0) continue;
      const std::string rank_part = e.substr(6);
      files.push_back({hostdir + "/" + e, hostdir + "/data." + rank_part});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const IndexFile& a, const IndexFile& b) {
              return a.index_path < b.index_path;
            });

  // Read and decode each dropping (optionally in parallel).
  std::vector<std::vector<IndexEntry>> decoded(files.size());
  std::vector<Status> statuses(files.size());
  std::vector<std::uint64_t> sizes(files.size(), 0);
  auto read_one = [&](std::size_t i) {
    auto h = backend_.open(files[i].index_path);
    if (!h.ok()) {
      statuses[i] = h.error();
      return;
    }
    auto sz = backend_.size(*h);
    if (!sz.ok()) {
      statuses[i] = sz.error();
      backend_.close(*h);
      return;
    }
    Bytes raw(*sz);
    auto n = backend_.read(*h, 0, raw);
    backend_.close(*h);
    if (!n.ok()) {
      statuses[i] = n.error();
      return;
    }
    raw.resize(*n);
    sizes[i] = *n;
    try {
      decoded[i] = DeserializeEntries(raw);
    } catch (const std::exception&) {
      statuses[i] = Errc::io_error;
    }
  };

  const std::uint32_t workers =
      std::max<std::uint32_t>(1, options_.index_read_threads);
  if (workers == 1 || files.size() <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) read_one(i);
  } else {
    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    for (std::uint32_t w = 0; w < std::min<std::size_t>(workers, files.size()); ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1)) {
          read_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (statuses[i].ok()) continue;
    if (!options_.degraded_reads) return statuses[i];
    // Degraded build: an unreadable index dropping (its server is down)
    // means that rank's writes are invisible. Drop it, count the error,
    // and merge what survives — regions it covered read back as holes.
    ++read_errors_;
    if (c_degraded_) c_degraded_->add(1);
    decoded[i].clear();
    sizes[i] = 0;
  }

  // Merge: stamp dropping ids, order globally by write sequence, insert.
  droppings_.reserve(files.size());
  std::size_t total = 0;
  for (const auto& d : decoded) total += d.size();
  raw_entries_.reserve(total);
  std::vector<std::uint32_t> owner;
  owner.reserve(total);
  for (std::size_t i = 0; i < files.size(); ++i) {
    droppings_.push_back(files[i].data_path);
    index_bytes_read_ += sizes[i];
    for (const auto& e : decoded[i]) {
      raw_entries_.push_back(e);
      owner.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<std::size_t> order(raw_entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return raw_entries_[a].sequence < raw_entries_[b].sequence;
  });
  for (std::size_t i : order) index_.add(raw_entries_[i], owner[i]);
  backend_.compute(static_cast<double>(raw_entries_.size()) *
                   options_.index_merge_cost_per_entry_s);

  if (tracer) {
    tracer->complete(options_.obs_track, "index_merge", "plfs", v0, backend_.now(),
                     {obs::Arg::Int("droppings", droppings_.size()),
                      obs::Arg::Int("entries", raw_entries_.size()),
                      obs::Arg::Int("bytes", index_bytes_read_)});
  }
  index_build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return Status::Ok();
}

Result<BackendHandle> Reader::data_handle(std::uint32_t dropping) {
  auto it = handles_.find(dropping);
  if (it != handles_.end()) return it->second;
  auto h = backend_.open(droppings_[dropping]);
  if (!h.ok()) return h.error();
  handles_.emplace(dropping, *h);
  return *h;
}

Result<std::size_t> Reader::read(std::uint64_t off, std::span<std::uint8_t> out) {
  if (off >= index_.size() || out.empty()) return static_cast<std::size_t>(0);
  const std::uint64_t len = std::min<std::uint64_t>(out.size(), index_.size() - off);
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer : nullptr;
  const double v0 = tracer ? backend_.now() : 0.0;

  const std::uint64_t errors_before = read_errors_;
  const auto segs = index_.lookup(off, len);
  for (const auto& seg : segs) {
    auto dst = out.subspan(seg.logical - off, seg.length);
    if (seg.dropping == GlobalIndex::kHole) {
      std::memset(dst.data(), 0, dst.size());
      continue;
    }
    auto degrade = [&]() {
      // Degraded read: the dropping's server is unreachable (or the
      // dropping is shorter than its index claims). Hand back a
      // zero-filled hole and count it rather than failing the request.
      ++read_errors_;
      if (c_degraded_) c_degraded_->add(1);
      std::memset(dst.data(), 0, dst.size());
    };
    auto h = data_handle(seg.dropping);
    if (!h.ok()) {
      if (!options_.degraded_reads) return h.error();
      degrade();
      continue;
    }
    auto n = backend_.read(*h, seg.physical, dst);
    if (!n.ok()) {
      if (!options_.degraded_reads) return n.error();
      degrade();
      continue;
    }
    if (*n < dst.size()) {
      // Data dropping shorter than its index claims: corrupt container.
      if (!options_.degraded_reads) return Errc::io_error;
      degrade();
    }
  }
  if (c_reads_) c_reads_->add(1);
  if (c_segments_) c_segments_->add(segs.size());
  if (tracer) {
    const std::uint64_t errs = read_errors_ - errors_before;
    if (errs > 0) {
      tracer->complete(options_.obs_track, "read", "plfs", v0, backend_.now(),
                       {obs::Arg::Int("off", off), obs::Arg::Int("len", len),
                        obs::Arg::Int("segments", segs.size()),
                        obs::Arg::Int("errors", errs)});
    } else {
      tracer->complete(options_.obs_track, "read", "plfs", v0, backend_.now(),
                       {obs::Arg::Int("off", off), obs::Arg::Int("len", len),
                        obs::Arg::Int("segments", segs.size())});
    }
  }
  return static_cast<std::size_t>(len);
}

}  // namespace pdsi::plfs
