// Flattened container index — the restart-read compaction format.
//
// A container's N raw index droppings must be fetched and merged on every
// open, which makes the N-to-1 restart read scale linearly with writer
// ranks. `FlattenIndex` (plfs.h) resolves the merge once and writes the
// result into a single `index.flat` dropping at the container root:
// overlap-resolved segments in logical order, re-compressed into pattern
// records per data dropping, framed with a fingerprint of the raw index
// droppings (relative names + sizes) it was built from. `Reader::build`
// prefers a flat dropping whose fingerprint still matches the live
// droppings and falls back to the raw N-way merge when any dropping was
// added, rewritten, or grew since the flatten — so the flat index is a
// pure accelerator, never a source of staleness.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pdsi/common/bytes.h"
#include "pdsi/common/result.h"
#include "pdsi/plfs/index.h"

namespace pdsi::plfs {

/// Name of the flat dropping inside the container (a sibling of the
/// hostdirs, so dropping discovery never mistakes it for a rank's index).
inline constexpr const char* kFlatIndexName = "index.flat";

/// In-memory form of an `index.flat` dropping.
struct FlatIndex {
  /// FingerprintDroppings() over the raw index droppings at flatten time.
  std::uint64_t fingerprint = 0;
  /// Logical EOF of the flattened file.
  std::uint64_t logical_size = 0;
  /// Container-relative data-dropping paths ("hostdir.K/data.R"); the
  /// entries' `rank` field indexes this table.
  std::vector<std::string> droppings;
  /// Overlap-free, pattern-compressed entries. `sequence` is the emission
  /// index — entries never overlap, so any ascending order reproduces the
  /// same GlobalIndex.
  std::vector<IndexEntry> entries;
};

/// Order-insensitive fingerprint over (container-relative index-dropping
/// path, size) pairs: the pairs are sorted by path and FNV-1a hashed, so
/// any added, removed, renamed, or resized dropping changes the value.
std::uint64_t FingerprintDroppings(
    std::vector<std::pair<std::string, std::uint64_t>> name_sizes);

/// Collapses resolved, logically-sorted, non-overlapping segments (the
/// GlobalIndex::all() output) into pattern-compressed entries, grouped by
/// data dropping so strided layouts collapse N·K segments into N runs.
std::vector<IndexEntry> CompressSegments(
    const std::vector<GlobalIndex::Segment>& segments);

Bytes SerializeFlatIndex(const FlatIndex& flat);

/// Strict parse; any framing violation (magic, version, truncation,
/// out-of-range dropping reference) returns Errc::invalid so the reader
/// can fall back to the raw merge instead of trusting a corrupt file.
Result<FlatIndex> ParseFlatIndex(std::span<const std::uint8_t> data);

}  // namespace pdsi::plfs
