// Storage backend abstraction under PLFS.
//
// PLFS is middleware: it rearranges the application's writes into
// per-rank logs but stores those logs through an ordinary file interface.
// Three backends implement that interface:
//   * MemBackend   — in-process store for fast, deterministic unit tests;
//   * PosixBackend — a real directory tree (the FUSE-deployment analogue);
//   * PfsBackend   — the simulated parallel file system, which both moves
//                    real bytes and charges virtual time (benchmarks).
//
// Thread-safety: backends are called concurrently by rank threads and must
// be internally synchronised (MemBackend/PosixBackend) or rely on the
// virtual-time scheduler's serialisation (PfsBackend, one instance per
// rank over a shared cluster).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pdsi/common/result.h"

namespace pdsi::plfs {

using BackendHandle = int;

class Backend {
 public:
  virtual ~Backend() = default;

  /// Creates a directory. Errc::exists if present (callers racing to make
  /// container hostdirs treat that as success).
  virtual Status mkdir(const std::string& path) = 0;

  virtual Result<BackendHandle> create(const std::string& path) = 0;
  virtual Result<BackendHandle> open(const std::string& path) = 0;

  virtual Status write(BackendHandle h, std::uint64_t off,
                       std::span<const std::uint8_t> data) = 0;
  /// Bytes read; short count at EOF.
  virtual Result<std::size_t> read(BackendHandle h, std::uint64_t off,
                                   std::span<std::uint8_t> out) = 0;
  virtual Result<std::uint64_t> size(BackendHandle h) = 0;
  virtual Status fsync(BackendHandle h) = 0;
  virtual Status close(BackendHandle h) = 0;

  /// Size of the file at `path` without keeping it open — the reader's
  /// dropping-fingerprint stat pass. The default round-trips through
  /// open/size/close; backends with a cheaper stat override it.
  virtual Result<std::uint64_t> stat_size(const std::string& path) {
    auto h = open(path);
    if (!h.ok()) return h.error();
    auto sz = size(*h);
    close(*h);
    if (!sz.ok()) return sz.error();
    return *sz;
  }

  virtual Result<std::vector<std::string>> readdir(const std::string& path) = 0;
  /// Removes a file or an empty directory.
  virtual Status unlink(const std::string& path) = 0;
  virtual Status rename(const std::string& from, const std::string& to) = 0;
  virtual Result<bool> is_dir(const std::string& path) = 0;
  virtual Result<bool> exists(const std::string& path) = 0;

  /// Charges client-side CPU time (index decode/merge) to whatever clock
  /// this backend lives on. Real backends ignore it (wall time is
  /// measured directly); the simulated backend advances virtual time.
  virtual void compute(double /*seconds*/) {}

  /// The clock this backend lives on, for middleware instrumentation.
  /// Simulated backends report virtual time; real backends have no
  /// meaningful shared clock and return 0 (spans collapse to instants).
  virtual double now() const { return 0.0; }
};

/// In-memory backend (tests). Internally synchronised.
std::unique_ptr<Backend> MakeMemBackend();

/// Real files rooted at `root` (must exist). Paths map 1:1 under the root.
std::unique_ptr<Backend> MakePosixBackend(const std::string& root);

}  // namespace pdsi::plfs
