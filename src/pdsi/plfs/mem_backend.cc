#include <map>
#include <mutex>

#include "pdsi/plfs/backend.h"
#include "pdsi/pfs/mds.h"  // NormalizePath / ParentPath helpers
#include "pdsi/pfs/sparse_buffer.h"

namespace pdsi::plfs {
namespace {

using pfs::NormalizePath;
using pfs::ParentPath;

/// In-memory file tree. An ordered map keyed by normalised path doubles as
/// the directory index (prefix scans), mirroring the MDS implementation.
class MemBackend final : public Backend {
 public:
  MemBackend() {
    Node root;
    root.is_dir = true;
    nodes_.emplace("/", std::move(root));
  }

  Status mkdir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    if (nodes_.count(p)) return Errc::exists;
    if (!parent_ok(p)) return Errc::not_found;
    Node dir;
    dir.is_dir = true;
    nodes_.emplace(p, std::move(dir));
    return Status::Ok();
  }

  Result<BackendHandle> create(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    if (nodes_.count(p)) return Errc::exists;
    if (!parent_ok(p)) return Errc::not_found;
    Node file;
    nodes_.emplace(p, std::move(file));
    return put(p);
  }

  Result<BackendHandle> open(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second.is_dir) return Errc::is_dir;
    return put(p);
  }

  Status write(BackendHandle h, std::uint64_t off,
               std::span<const std::uint8_t> data) override {
    std::lock_guard<std::mutex> lk(mu_);
    Node* n = node_for(h);
    if (!n) return Errc::bad_handle;
    n->data.write(off, data);
    return Status::Ok();
  }

  Result<std::size_t> read(BackendHandle h, std::uint64_t off,
                           std::span<std::uint8_t> out) override {
    std::lock_guard<std::mutex> lk(mu_);
    Node* n = node_for(h);
    if (!n) return Errc::bad_handle;
    if (off >= n->data.size()) return static_cast<std::size_t>(0);
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(out.size(), n->data.size() - off));
    n->data.read(off, out.subspan(0, len));
    return len;
  }

  Result<std::uint64_t> size(BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    Node* n = node_for(h);
    if (!n) return Errc::bad_handle;
    return n->data.size();
  }

  Status fsync(BackendHandle) override { return Status::Ok(); }

  Status close(BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (h < 0 || static_cast<std::size_t>(h) >= handles_.size() ||
        handles_[h].empty()) {
      return Errc::bad_handle;
    }
    handles_[h].clear();
    return Status::Ok();
  }

  Result<std::vector<std::string>> readdir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (!it->second.is_dir) return Errc::not_dir;
    std::vector<std::string> names;
    const std::string prefix = p == "/" ? "/" : p + "/";
    for (auto child = nodes_.upper_bound(prefix);
         child != nodes_.end() &&
         child->first.compare(0, prefix.size(), prefix) == 0;
         ++child) {
      const std::string rest = child->first.substr(prefix.size());
      if (rest.find('/') == std::string::npos) names.push_back(rest);
    }
    return names;
  }

  Status unlink(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second.is_dir) {
      auto next = std::next(it);
      if (next != nodes_.end() && next->first.size() > p.size() &&
          next->first.compare(0, p.size(), p) == 0 && next->first[p.size()] == '/') {
        return Errc::not_empty;
      }
    }
    nodes_.erase(it);
    return Status::Ok();
  }

  Status rename(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string f = NormalizePath(from);
    const std::string t = NormalizePath(to);
    auto it = nodes_.find(f);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second.is_dir) return Errc::not_supported;
    if (nodes_.count(t)) return Errc::exists;
    if (!parent_ok(t)) return Errc::not_found;
    Node moved = std::move(it->second);
    nodes_.erase(it);
    nodes_.emplace(t, std::move(moved));
    return Status::Ok();
  }

  Result<bool> is_dir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = nodes_.find(NormalizePath(path));
    if (it == nodes_.end()) return Errc::not_found;
    return it->second.is_dir;
  }

  Result<bool> exists(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    return nodes_.count(NormalizePath(path)) > 0;
  }

  Result<std::uint64_t> stat_size(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = nodes_.find(NormalizePath(path));
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second.is_dir) return Errc::invalid;
    return it->second.data.size();
  }

 private:
  struct Node {
    bool is_dir = false;
    pfs::SparseBuffer data;
  };

  bool parent_ok(const std::string& p) {
    auto it = nodes_.find(ParentPath(p));
    return it != nodes_.end() && it->second.is_dir;
  }

  BackendHandle put(std::string path) {
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      if (handles_[i].empty()) {
        handles_[i] = std::move(path);
        return static_cast<BackendHandle>(i);
      }
    }
    handles_.push_back(std::move(path));
    return static_cast<BackendHandle>(handles_.size() - 1);
  }

  Node* node_for(BackendHandle h) {
    if (h < 0 || static_cast<std::size_t>(h) >= handles_.size()) return nullptr;
    const std::string& p = handles_[h];
    if (p.empty()) return nullptr;
    auto it = nodes_.find(p);
    if (it == nodes_.end() || it->second.is_dir) return nullptr;
    return &it->second;
  }

  std::mutex mu_;
  std::map<std::string, Node> nodes_;
  std::vector<std::string> handles_;  ///< handle -> open path ("" = free)
};

}  // namespace

std::unique_ptr<Backend> MakeMemBackend() { return std::make_unique<MemBackend>(); }

}  // namespace pdsi::plfs
