// pdsi::tier object store — the archive tier behind the tiering engine.
//
// A flat bucket/object namespace over a shelf of independent disks, laid
// out DiskReduce-style (Fan, PDSW'09): each object is cut into fixed-size
// stripes, each stripe erasure-coded k+m with pdsi::reedsolomon and its
// shards spread over k+m distinct devices. Any m device losses are
// survivable; a get that finds a shard missing reconstructs the stripe
// from k survivors (charged decode CPU on top of the survivor reads), and
// rebuild() re-protects every lost shard onto the remaining devices.
//
// Timing follows the repo-wide convention: every data operation takes the
// caller's virtual time and returns its completion time. Each device is a
// storage::DiskModel behind a sim::SimResource FIFO clock, and shards are
// appended log-structured per device, so healthy whole-object gets stream
// near media rate while degraded gets pay extra survivor reads plus
// decode. Calls must arrive with nondecreasing `now` (single-timeline
// driver, the same contract as pfs::Oss).
//
// Fault integration: set_fault() maps device d to injector server
// `base_server + d`, so one FaultPlan can crash PFS servers and archive
// shelves from the same seeded schedule. Transient crash windows make
// shards unavailable (degraded gets) without losing bytes; fail_device()
// models a permanent loss — the shard payloads are actually destroyed,
// which is what makes "rebuild returns byte-identical data" a real
// property rather than a bookkeeping claim.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "pdsi/common/bytes.h"
#include "pdsi/common/result.h"
#include "pdsi/common/units.h"
#include "pdsi/obs/obs.h"
#include "pdsi/reedsolomon/reedsolomon.h"
#include "pdsi/sim/virtual_time.h"
#include "pdsi/storage/disk_model.h"

namespace pdsi::fault {
class FaultInjector;
}  // namespace pdsi::fault

namespace pdsi::tier {

struct ObjectStoreParams {
  int data_shards = 8;                      ///< k
  int parity_shards = 2;                    ///< m
  std::uint64_t shard_unit = 256 * KiB;     ///< bytes per shard per stripe
  std::uint32_t num_devices = 12;           ///< >= k+m
  storage::DiskParams device;               ///< per-device cost model
  double encode_bw_bytes = 1.2e9;           ///< client-side RS encode rate
  double decode_bw_bytes = 0.8e9;           ///< reconstruct rate
  double per_op_s = 0.5e-3;                 ///< per-object-op overhead

  std::uint64_t stripe_span() const {
    return shard_unit * static_cast<std::uint64_t>(data_shards);
  }
};

struct ObjectStoreStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t removes = 0;
  std::uint64_t bytes_in = 0;          ///< logical object bytes stored
  std::uint64_t bytes_out = 0;         ///< logical object bytes served
  std::uint64_t degraded_gets = 0;     ///< gets that reconstructed a stripe
  std::uint64_t degraded_stripes = 0;  ///< stripes rebuilt in-flight
  std::uint64_t read_errors = 0;       ///< gets with > m shards unavailable
  std::uint64_t rebuilt_shards = 0;
  std::uint64_t rebuilt_bytes = 0;
};

class ObjectStore {
 public:
  /// `ctx` (optional, must outlive the store) feeds the tier.store.*
  /// counters and puts rebuild spans on obs::kTierTrack.
  explicit ObjectStore(ObjectStoreParams params, obs::Context* ctx = nullptr);

  const ObjectStoreParams& params() const { return params_; }
  const ObjectStoreStats& stats() const { return stats_; }

  /// Raw bytes stored on live devices (data + parity shards).
  std::uint64_t used_bytes() const { return used_bytes_; }
  /// Aggregate capacity of the devices still alive.
  std::uint64_t capacity_bytes() const;
  /// Shards whose bytes are currently lost (rebuild() restores them).
  std::uint64_t lost_shards() const { return lost_shards_; }

  /// Installs (or clears) the fault injector. Device d maps to injector
  /// server `base_server + d`; devices past the injector's server count
  /// are treated as always healthy. Inactive plans stay query-only, so
  /// installing one never changes timing.
  void set_fault(const fault::FaultInjector* f, std::uint32_t base_server);

  /// Permanently fails a device: every shard on it is destroyed and the
  /// device takes no further I/O. Data stays readable (degraded) while
  /// each stripe retains >= k shards.
  void fail_device(std::uint32_t dev);

  /// Stores (or replaces) an object; returns the completion time of the
  /// last shard write. Errc::no_space when fewer than k+m devices are
  /// alive, Errc::invalid for empty names or data.
  Result<double> put(const std::string& bucket, const std::string& object,
                     std::span<const std::uint8_t> data, double now);

  /// Reads the whole object into `*out`; returns completion time.
  /// Unavailable shards (lost, failed device, or crash window at `now`)
  /// trigger per-stripe reconstruction from k survivors; more than m
  /// unavailable in any stripe is Errc::io_error.
  Result<double> get(const std::string& bucket, const std::string& object,
                     Bytes* out, double now);

  Status remove(const std::string& bucket, const std::string& object);
  bool exists(const std::string& bucket, const std::string& object) const;
  Result<std::uint64_t> object_size(const std::string& bucket,
                                    const std::string& object) const;
  /// Object names in `bucket`, sorted.
  std::vector<std::string> list(const std::string& bucket) const;

  /// Reconstructs every lost shard from surviving ones onto live devices,
  /// restoring full k+m redundancy; returns the completion time of the
  /// last re-protected shard (or `now` when nothing was lost).
  /// Errc::io_error if some stripe has fewer than k survivors (those
  /// stripes are left as-is).
  Result<double> rebuild(double now);

 private:
  struct Shard {
    std::uint32_t dev = 0;
    std::uint64_t phys_off = 0;  ///< device log offset
    Bytes bytes;
    bool lost = false;
  };
  struct Stripe {
    std::uint64_t shard_len = 0;
    std::vector<Shard> shards;  ///< k data shards then m parity
  };
  struct Stored {
    std::uint64_t size = 0;     ///< logical object bytes
    std::uint64_t start_dev = 0;
    std::vector<Stripe> stripes;
  };

  static std::string Key(const std::string& bucket, const std::string& object) {
    return bucket + "/" + object;
  }

  bool dev_alive(std::uint32_t dev) const { return !failed_[dev]; }
  /// Crash-window check via the injector's schedule (pure query).
  bool dev_down(std::uint32_t dev, double t) const;
  bool shard_available(const Shard& s, double t) const;
  /// k+m distinct live devices in rotation order from `first`; empty if
  /// not enough remain.
  std::vector<std::uint32_t> pick_devices(std::uint64_t first) const;
  /// Appends `len` bytes to device `dev`'s log at `issue`; returns
  /// completion and records the physical offset in `*phys`.
  double dev_append(std::uint32_t dev, std::uint64_t len, double issue,
                    std::uint64_t* phys);
  double dev_read(std::uint32_t dev, std::uint64_t phys, std::uint64_t len,
                  double issue);
  /// Crash-window parking for non-latency-sensitive ops (puts, rebuild).
  double park_if_down(std::uint32_t dev, double issue) const;
  void drop_accounting(Stored& st);

  ObjectStoreParams params_;
  reedsolomon::ReedSolomon rs_;
  std::vector<storage::DiskModel> disks_;
  std::vector<sim::SimResource> disk_res_;
  sim::SimResource cpu_res_;              ///< encode/decode pipeline
  std::vector<std::uint64_t> cursor_;     ///< per-device log append position
  std::vector<bool> failed_;
  std::map<std::string, Stored> objects_; ///< key -> payload (ordered)
  std::uint64_t used_bytes_ = 0;
  std::uint64_t lost_shards_ = 0;
  ObjectStoreStats stats_;

  const fault::FaultInjector* fault_ = nullptr;
  std::uint32_t fault_base_ = 0;

  obs::Context* ctx_ = nullptr;
  obs::Counter* c_puts_ = nullptr;
  obs::Counter* c_gets_ = nullptr;
  obs::Counter* c_bytes_in_ = nullptr;
  obs::Counter* c_bytes_out_ = nullptr;
  obs::Counter* c_degraded_ = nullptr;
  obs::Counter* c_read_errors_ = nullptr;
  obs::Counter* c_rebuilt_bytes_ = nullptr;
};

}  // namespace pdsi::tier
