#include "pdsi/tier/tier_engine.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "pdsi/bb/drain_target.h"
#include "pdsi/fault/fault.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::tier {

TierEngine::TierEngine(TierEngineParams params, pfs::PfsCluster& cluster,
                       obs::Context* ctx)
    : params_(params),
      cluster_(cluster),
      drain_target_(bb::MakePfsDrainTarget(cluster)),
      bb_(std::make_unique<bb::BurstBuffer>(params.bb, *drain_target_, ctx)),
      store_(params.cold, ctx),
      placement_(std::make_unique<DefaultPlacement>()),
      demotion_(std::make_unique<WatermarkDemotion>()),
      promotion_(std::make_unique<TemperaturePromotion>()),
      ctx_(ctx) {
  bb_->set_drain_sink([this](std::uint64_t id, std::uint64_t off, std::uint64_t len) {
    on_drained(id, off, len);
  });
  if (ctx_) {
    if (ctx_->tracer) ctx_->tracer->track(obs::kTierTrack, "tier");
    if (ctx_->registry) {
      c_reads_ = &ctx_->registry->counter("tier.reads");
      c_writes_ = &ctx_->registry->counter("tier.writes");
      c_hot_hits_ = &ctx_->registry->counter("tier.hot_hits");
      c_warm_hits_ = &ctx_->registry->counter("tier.warm_hits");
      c_cold_hits_ = &ctx_->registry->counter("tier.cold_hits");
      c_demotions_ = &ctx_->registry->counter("tier.demotions");
      c_promotions_ = &ctx_->registry->counter("tier.promotions");
      c_degraded_ = &ctx_->registry->counter("tier.degraded_reads");
      c_read_errors_ = &ctx_->registry->counter("tier.read_errors");
    }
  }
}

// -- Interval-set helpers (same semantics as the burst buffer's) ------------

std::uint64_t TierEngine::RangeAdd(RangeMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return 0;
  std::uint64_t added = e - s;
  auto it = m.upper_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= s) it = prev;
  }
  std::uint64_t ns = s, ne = e;
  while (it != m.end() && it->first <= ne) {
    const std::uint64_t os = std::max(it->first, s);
    const std::uint64_t oe = std::min(it->second, e);
    if (oe > os) added -= oe - os;
    ns = std::min(ns, it->first);
    ne = std::max(ne, it->second);
    it = m.erase(it);
  }
  m.emplace(ns, ne);
  return added;
}

std::uint64_t TierEngine::RangeRemove(RangeMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return 0;
  std::uint64_t removed = 0;
  auto it = m.lower_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second > s) it = prev;
  }
  while (it != m.end() && it->first < e) {
    const std::uint64_t rs = it->first, re = it->second;
    const std::uint64_t os = std::max(rs, s), oe = std::min(re, e);
    removed += oe - os;
    it = m.erase(it);
    if (rs < os) m.emplace(rs, os);
    if (oe < re) m.emplace(oe, re);
  }
  return removed;
}

bool TierEngine::RangeCovers(const RangeMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return true;
  auto it = m.upper_bound(s);
  if (it == m.begin()) return false;
  --it;
  return it->second >= e;
}

// -- Lookup -----------------------------------------------------------------

TierEngine::Object* TierEngine::find(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) return nullptr;
  return &objects_.at(it->second);
}

const TierEngine::Object* TierEngine::find(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) return nullptr;
  return &objects_.at(it->second);
}

// -- Warm-tier striping (drain-target pattern) ------------------------------

double TierEngine::warm_write(std::uint64_t id, std::uint64_t off,
                              std::uint64_t len, double now) {
  const pfs::PfsConfig& cfg = cluster_.config();
  double done = now;
  std::uint64_t pos = off;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t stripe = pos / cfg.stripe_unit;
    const std::uint64_t in_stripe = pos % cfg.stripe_unit;
    const std::uint64_t n =
        std::min<std::uint64_t>(cfg.stripe_unit - in_stripe, remaining);
    const std::uint32_t server =
        cluster_.placement().server_for(id, stripe, cluster_.num_oss());
    double issue = now;
    // Direct warm writes are not latency-sensitive: park on a crashed
    // server until it restarts, as the drain path does.
    if (fault::FaultInjector* inj = cluster_.fault();
        inj && inj->down(server, issue)) {
      const double resume = inj->next_up(server, issue) + inj->plan().rpc_timeout_s;
      inj->note_drain_retry(server, issue, resume);
      issue = resume;
    }
    done = std::max(done, cluster_.oss(server).serve_write(id, pos, n, issue));
    pos += n;
    remaining -= n;
  }
  return done;
}

Result<double> TierEngine::warm_read(std::uint64_t id, std::uint64_t off,
                                     std::uint64_t len, double now,
                                     bool* fell_over) {
  const pfs::PfsConfig& cfg = cluster_.config();
  double done = now;
  std::uint64_t pos = off;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t stripe = pos / cfg.stripe_unit;
    const std::uint64_t in_stripe = pos % cfg.stripe_unit;
    const std::uint64_t n =
        std::min<std::uint64_t>(cfg.stripe_unit - in_stripe, remaining);
    std::uint32_t server =
        cluster_.placement().server_for(id, stripe, cluster_.num_oss());
    fault::FaultInjector* inj = cluster_.fault();
    if (inj && inj->down(server, now)) {
      if (!inj->plan().read_failover) return Errc::io_error;
      // Replica model: the next surviving server holds a copy.
      std::uint32_t alt = server;
      for (std::uint32_t step = 1; step < cluster_.num_oss(); ++step) {
        const std::uint32_t cand = (server + step) % cluster_.num_oss();
        if (!inj->down(cand, now)) {
          alt = cand;
          break;
        }
      }
      if (alt == server) return Errc::io_error;  // whole cluster down
      inj->note_failover(server, alt, now);
      *fell_over = true;
      done = std::max(done,
                      cluster_.oss(alt).serve_failover_read(id, pos, n, now));
    } else {
      done = std::max(done, cluster_.oss(server).serve_read(id, pos, n, now));
    }
    pos += n;
    remaining -= n;
  }
  return done;
}

// -- Tier movement ----------------------------------------------------------

void TierEngine::invalidate_cold(Object& o) {
  if (!o.cold) return;
  store_.remove(kBucket, cold_key(o));
  o.cold = false;
}

void TierEngine::demote_to_cold(Object& o, double t) {
  double t_done = t;
  if (!o.cold) {
    auto r = store_.put(kBucket, cold_key(o), o.data, t);
    if (!r.ok()) return;  // cold tier full or too many devices lost
    t_done = *r;
    o.cold = true;
  }
  // The erasure-coded shards are the only copy from here on.
  warm_used_ -= o.meta.size;
  o.drained.clear();
  o.warm = false;
  bb_->drop_file(o.meta.id);
  o.data.clear();
  o.data.shrink_to_fit();
  ++stats_.demotions;
  stats_.demoted_bytes += o.meta.size;
  if (c_demotions_) c_demotions_->add();
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->complete(obs::kTierTrack, "demote", "tier", t, t_done,
                           {obs::Arg::Int("id", o.meta.id),
                            obs::Arg::Int("bytes", o.meta.size)});
  }
}

void TierEngine::maybe_demote_warm(double t) {
  if (!demotion_->over_pressure(kWarmTier, usage(kWarmTier))) return;
  std::vector<Object*> victims;
  for (auto& [id, o] : objects_) {
    if (!o.warm || o.meta.size == 0) continue;
    if (o.meta.pin == kHotTier || o.meta.pin == kWarmTier) continue;
    victims.push_back(&o);
  }
  std::sort(victims.begin(), victims.end(), [this](Object* a, Object* b) {
    return demotion_->demote_before(a->meta, b->meta);
  });
  for (Object* o : victims) {
    if (demotion_->relieved(kWarmTier, usage(kWarmTier))) break;
    demote_to_cold(*o, t);
  }
}

void TierEngine::promote(Object& o, int target, const Bytes& bytes, double t) {
  double t_done = t;
  if (target == kWarmTier) {
    // Cold -> warm: restore the in-memory copy and charge the striped
    // copy-up; the cold shards stay (clean redundancy).
    o.data = bytes;
    warm_used_ += RangeAdd(o.drained, 0, o.meta.size);
    o.warm = true;
    t_done = warm_write(o.meta.id, 0, o.meta.size, t);
  } else if (target == kHotTier) {
    // Warm -> hot: refill the staging flash. The buffer re-drains the
    // bytes, but the drained map already covers them, so the warm
    // accounting stays put.
    t_done = bb_->write(o.meta.id, 0, o.meta.size, t);
  } else {
    return;
  }
  ++stats_.promotions;
  stats_.promoted_bytes += o.meta.size;
  if (c_promotions_) c_promotions_->add();
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->complete(obs::kTierTrack, "promote", "tier", t, t_done,
                           {obs::Arg::Int("id", o.meta.id),
                            obs::Arg::Int("bytes", o.meta.size),
                            obs::Arg::Int("to", static_cast<std::uint64_t>(target))});
  }
  if (target == kWarmTier) maybe_demote_warm(t_done);
}

void TierEngine::on_drained(std::uint64_t id, std::uint64_t off, std::uint64_t len) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  Object& o = it->second;
  warm_used_ += RangeAdd(o.drained, off, off + len);
  o.warm = RangeCovers(o.drained, 0, o.meta.size);
  // Demoting means driving the object store from inside a burst-buffer
  // callback; defer to settle(), outside the buffer's event loop.
  if (demotion_->over_pressure(kWarmTier, usage(kWarmTier))) {
    pending_demote_ = true;
  }
}

void TierEngine::settle(double now) {
  while (pending_demote_) {
    pending_demote_ = false;
    maybe_demote_warm(std::max(now, bb_->now()));
  }
}

// -- Data path --------------------------------------------------------------

Result<double> TierEngine::write(const std::string& name, std::uint64_t off,
                                 std::span<const std::uint8_t> data,
                                 double now) {
  Object* o = find(name);
  if (!o) {
    const std::uint64_t id = next_id_++;
    Object fresh;
    fresh.meta.id = id;
    fresh.meta.created = now;
    fresh.meta.window_start = now;
    if (auto p = pins_.find(name); p != pins_.end()) fresh.meta.pin = p->second;
    fresh.name = name;
    TierUsage u[kNumTiers] = {usage(0), usage(1), usage(2)};
    fresh.placed = placement_->initial_tier(fresh.meta, u);
    names_.emplace(name, id);
    o = &objects_.emplace(id, std::move(fresh)).first->second;
  }

  double start = now;
  bool recalled = false;
  if (o->cold && o->data.empty() && o->meta.size > 0) {
    // Cold-only object written again: recall it first (the write may be
    // partial, and a dirtied object cannot stay archive-resident).
    Bytes buf;
    auto r = store_.get(kBucket, cold_key(*o), &buf, now);
    if (!r.ok()) {
      ++stats_.read_errors;
      if (c_read_errors_) c_read_errors_->add();
      return r.error();
    }
    o->data = std::move(buf);
    start = *r;
    recalled = true;
  }
  invalidate_cold(*o);

  if (off + data.size() > o->data.size()) {
    o->data.resize(off + data.size(), 0);
  }
  std::memcpy(o->data.data() + off, data.data(), data.size());
  o->meta.size = o->data.size();
  o->meta.last_access = now;

  // A recalled object just lost its only durable copy (the archive shards
  // were invalidated), so the whole object is re-ingested, not only the
  // written range.
  const std::uint64_t dirty_off = recalled ? 0 : off;
  const std::uint64_t dirty_len =
      recalled ? o->meta.size : static_cast<std::uint64_t>(data.size());

  double done;
  if (o->placed == kWarmTier) {
    // Pinned-warm objects bypass the staging flash.
    done = warm_write(o->meta.id, dirty_off, dirty_len, start);
    warm_used_ += RangeAdd(o->drained, dirty_off, dirty_off + dirty_len);
    o->warm = RangeCovers(o->drained, 0, o->meta.size);
  } else {
    // Hot path (also pin-to-cold: data flows through the buffer and is
    // demoted at the flush after it drains). Freshly written bytes make
    // any drained warm copy of the range stale.
    warm_used_ -= RangeRemove(o->drained, dirty_off, dirty_off + dirty_len);
    o->warm = RangeCovers(o->drained, 0, o->meta.size);
    done = bb_->write(o->meta.id, dirty_off, dirty_len, start);
  }
  ++stats_.writes;
  if (c_writes_) c_writes_->add();
  settle(done);
  if (o->placed == kWarmTier) maybe_demote_warm(done);
  return done;
}

Result<double> TierEngine::read(const std::string& name, std::uint64_t off,
                                std::span<std::uint8_t> out, double now,
                                std::size_t* n_read) {
  Object* o = find(name);
  if (!o) return Errc::not_found;
  const std::uint64_t n =
      off >= o->meta.size
          ? 0
          : std::min<std::uint64_t>(out.size(), o->meta.size - off);
  if (n_read) *n_read = static_cast<std::size_t>(n);
  ++stats_.reads;
  if (c_reads_) c_reads_->add();
  promotion_->on_read(o->meta, now);
  ++o->meta.reads;
  o->meta.last_access = now;
  if (n == 0) return now;

  double done = now;
  int cur;
  const Bytes* src = &o->data;
  Bytes cold_buf;
  if (!o->data.empty()) {
    bool hit = false;
    done = bb_->read(o->meta.id, off, n, now, &hit);
    if (hit) {
      ++stats_.hot_hits;
      if (c_hot_hits_) c_hot_hits_->add();
      cur = kHotTier;
    } else {
      // Anything not flash-resident is drained (dirty bytes are never
      // evicted), so the warm tier serves the miss. Charging the whole
      // range to the warm stripes is conservative for mixed ranges.
      bool fell_over = false;
      auto r = warm_read(o->meta.id, off, n, now, &fell_over);
      if (r.ok()) {
        done = *r;
        ++stats_.warm_hits;
        if (c_warm_hits_) c_warm_hits_->add();
        if (fell_over) {
          ++stats_.degraded_reads;
          if (c_degraded_) c_degraded_->add();
        }
        cur = kWarmTier;
      } else if (o->cold) {
        // Warm servers down with no failover: the archive copy survives.
        const std::uint64_t before = store_.stats().degraded_gets;
        auto g = store_.get(kBucket, cold_key(*o), &cold_buf, now);
        if (!g.ok()) {
          ++stats_.read_errors;
          if (c_read_errors_) c_read_errors_->add();
          return g.error();
        }
        done = *g;
        src = &cold_buf;
        ++stats_.cold_hits;
        if (c_cold_hits_) c_cold_hits_->add();
        ++stats_.degraded_reads;
        if (c_degraded_) c_degraded_->add();
        (void)before;
        cur = kColdTier;
      } else {
        ++stats_.read_errors;
        if (c_read_errors_) c_read_errors_->add();
        return r.error();
      }
    }
  } else {
    // Cold-only: reassemble (or reconstruct) the erasure-coded shards.
    const std::uint64_t degraded_before = store_.stats().degraded_gets;
    auto g = store_.get(kBucket, cold_key(*o), &cold_buf, now);
    if (!g.ok()) {
      ++stats_.read_errors;
      if (c_read_errors_) c_read_errors_->add();
      return g.error();
    }
    done = *g;
    src = &cold_buf;
    ++stats_.cold_hits;
    if (c_cold_hits_) c_cold_hits_->add();
    if (store_.stats().degraded_gets != degraded_before) {
      ++stats_.degraded_reads;
      if (c_degraded_) c_degraded_->add();
    }
    cur = kColdTier;
  }

  std::memcpy(out.data(), src->data() + off, static_cast<std::size_t>(n));

  const int target = promotion_->promote_to(o->meta, cur, now);
  if (target != kNoTier && target < cur) {
    if (cur == kColdTier) {
      promote(*o, kWarmTier, cold_buf.empty() ? *src : cold_buf, done);
    } else {
      promote(*o, target, o->data, done);
    }
  }
  return done;
}

double TierEngine::flush(double now) {
  const double t = bb_->flush(now);
  settle(t);
  // Pin enforcement: fully-drained pinned-cold objects move to the
  // archive at every flush, watermark or not.
  for (auto& [id, o] : objects_) {
    if (o.meta.pin == kColdTier && o.warm && !o.cold && o.meta.size > 0) {
      demote_to_cold(o, t);
    }
  }
  maybe_demote_warm(t);
  return t;
}

void TierEngine::run_until(double t) {
  bb_->run_until(t);
  settle(t);
}

// -- Namespace --------------------------------------------------------------

Status TierEngine::remove(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) return Errc::not_found;
  Object& o = objects_.at(it->second);
  bb_->drop_file(o.meta.id);
  if (o.cold) store_.remove(kBucket, cold_key(o));
  std::uint64_t drained = 0;
  for (const auto& [s, e] : o.drained) drained += e - s;
  warm_used_ -= drained;
  objects_.erase(it->second);
  names_.erase(it);
  return Status::Ok();
}

Status TierEngine::rename(const std::string& from, const std::string& to) {
  auto it = names_.find(from);
  if (it == names_.end()) return Errc::not_found;
  if (names_.count(to)) return Errc::exists;
  const std::uint64_t id = it->second;
  names_.erase(it);
  names_.emplace(to, id);
  objects_.at(id).name = to;
  // Cold objects are keyed by id, so renames never touch the archive.
  if (auto p = pins_.find(from); p != pins_.end()) {
    pins_.emplace(to, p->second);
    pins_.erase(p);
  }
  return Status::Ok();
}

Result<std::uint64_t> TierEngine::size(const std::string& name) const {
  const Object* o = find(name);
  if (!o) return Errc::not_found;
  return o->meta.size;
}

bool TierEngine::exists(const std::string& name) const {
  return names_.count(name) > 0;
}

std::vector<std::string> TierEngine::list() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, id] : names_) out.push_back(name);
  return out;
}

Status TierEngine::pin(const std::string& name, int tier) {
  if (tier < kNoTier || tier >= kNumTiers) return Errc::invalid;
  if (tier == kNoTier) {
    pins_.erase(name);
  } else {
    pins_[name] = tier;
  }
  if (Object* o = find(name)) o->meta.pin = tier;
  return Status::Ok();
}

// -- Policies / faults / introspection --------------------------------------

void TierEngine::set_placement(std::unique_ptr<PlacementPolicy> p) {
  if (p) placement_ = std::move(p);
}
void TierEngine::set_demotion(std::unique_ptr<DemotionPolicy> p) {
  if (p) demotion_ = std::move(p);
}
void TierEngine::set_promotion(std::unique_ptr<PromotionPolicy> p) {
  if (p) promotion_ = std::move(p);
}

void TierEngine::set_fault(fault::FaultInjector* f) {
  cluster_.set_fault(f);
  store_.set_fault(f, cluster_.num_oss());
}

TierUsage TierEngine::usage(int tier) const {
  TierUsage u;
  switch (tier) {
    case kHotTier:
      u.capacity = bb_->capacity_bytes();
      u.used = bb_->resident_bytes();
      break;
    case kWarmTier:
      u.capacity = params_.warm_capacity_bytes;
      u.used = warm_used_;
      break;
    case kColdTier:
      u.capacity = store_.capacity_bytes();
      u.used = store_.used_bytes();
      break;
    default:
      break;
  }
  return u;
}

int TierEngine::resident_tier(const std::string& name) const {
  const Object* o = find(name);
  if (!o) return kNoTier;
  if (o->cold && o->data.empty()) return kColdTier;
  if (o->warm) return kWarmTier;
  return kHotTier;
}

}  // namespace pdsi::tier
