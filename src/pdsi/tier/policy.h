// Placement, demotion and promotion policies for the tiering engine.
//
// The engine mechanism (tiers, copies, charging) is fixed; *where* an
// object lives and *when* it moves is a policy decision, pluggable so
// experiments can compare strategies without touching the data path.
// Three concrete defaults ship here:
//   * DefaultPlacement    — pinned objects go to their pin, everything
//                           else enters at the hot (burst-buffer) tier;
//   * WatermarkDemotion   — per-tier high/low occupancy hysteresis, the
//                           same shape as the burst buffer's drain
//                           backpressure; victims are coldest-first
//                           (oldest last access, ids break ties so the
//                           order is total and runs stay byte-stable);
//   * TemperaturePromotion — an object read >= min_reads times within
//                           window_s is "hot" and moves one tier up.
// Policies are consulted synchronously from engine operations and must be
// deterministic: no wall clocks, no unseeded randomness.
#pragma once

#include <cstdint>
#include <string>

namespace pdsi::tier {

/// Tier indices, hottest first (lower = hotter).
inline constexpr int kHotTier = 0;   ///< burst-buffer flash
inline constexpr int kWarmTier = 1;  ///< parallel file system
inline constexpr int kColdTier = 2;  ///< erasure-coded object store
inline constexpr int kNumTiers = 3;
inline constexpr int kNoTier = -1;

/// Per-object bookkeeping the policies decide on.
struct ObjectMeta {
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  double created = 0.0;
  double last_access = 0.0;     ///< last read or write
  std::uint64_t reads = 0;      ///< lifetime read count
  std::uint64_t window_reads = 0;  ///< reads within the promotion window
  double window_start = 0.0;
  int pin = kNoTier;            ///< pin-to-tier; kNoTier = unpinned
};

/// Occupancy snapshot for one tier.
struct TierUsage {
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;
  double frac() const {
    return capacity == 0 ? 0.0
                         : static_cast<double>(used) / static_cast<double>(capacity);
  }
};

// -- Placement ---------------------------------------------------------------

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;
  /// Tier a newly created object enters.
  virtual int initial_tier(const ObjectMeta& meta,
                           const TierUsage usage[kNumTiers]) const = 0;
};

class DefaultPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "default"; }
  int initial_tier(const ObjectMeta& meta,
                   const TierUsage[kNumTiers]) const override {
    return meta.pin == kNoTier ? kHotTier : meta.pin;
  }
};

// -- Demotion ----------------------------------------------------------------

class DemotionPolicy {
 public:
  virtual ~DemotionPolicy() = default;
  virtual std::string name() const = 0;
  /// True when `tier` is over pressure and should shed objects.
  virtual bool over_pressure(int tier, const TierUsage& u) const = 0;
  /// True once shedding may stop (hysteresis: strictly below
  /// over_pressure's trigger, or demotion thrashes).
  virtual bool relieved(int tier, const TierUsage& u) const = 0;
  /// Strict weak order: does `a` get demoted before `b`?
  virtual bool demote_before(const ObjectMeta& a, const ObjectMeta& b) const = 0;
};

class WatermarkDemotion final : public DemotionPolicy {
 public:
  explicit WatermarkDemotion(double high = 0.85, double low = 0.60)
      : high_(high), low_(low) {}
  std::string name() const override { return "watermark"; }
  bool over_pressure(int, const TierUsage& u) const override {
    return u.frac() >= high_;
  }
  bool relieved(int, const TierUsage& u) const override {
    return u.frac() <= low_;
  }
  bool demote_before(const ObjectMeta& a, const ObjectMeta& b) const override {
    if (a.last_access != b.last_access) return a.last_access < b.last_access;
    return a.id < b.id;  // total order => deterministic victim sequence
  }

 private:
  double high_;
  double low_;
};

// -- Promotion ---------------------------------------------------------------

class PromotionPolicy {
 public:
  virtual ~PromotionPolicy() = default;
  virtual std::string name() const = 0;
  /// Called on every read, before promote_to; mutates the meta's
  /// temperature-tracking fields.
  virtual void on_read(ObjectMeta& meta, double now) const = 0;
  /// Target tier for an object currently served from `current_tier`, or
  /// kNoTier to stay put. Must only return hotter (smaller) tiers.
  virtual int promote_to(const ObjectMeta& meta, int current_tier,
                         double now) const = 0;
};

class NoPromotion final : public PromotionPolicy {
 public:
  std::string name() const override { return "none"; }
  void on_read(ObjectMeta&, double) const override {}
  int promote_to(const ObjectMeta&, int, double) const override {
    return kNoTier;
  }
};

/// Age/temperature promotion: reads are counted in a sliding window of
/// `window_s`; an object that accumulates `min_reads` in one window is
/// hot enough to move one tier up. Pinned objects never move above their
/// pin.
class TemperaturePromotion final : public PromotionPolicy {
 public:
  explicit TemperaturePromotion(std::uint64_t min_reads = 3,
                                double window_s = 60.0)
      : min_reads_(min_reads), window_s_(window_s) {}
  std::string name() const override { return "temperature"; }
  void on_read(ObjectMeta& meta, double now) const override {
    if (now - meta.window_start > window_s_) {
      meta.window_start = now;
      meta.window_reads = 0;
    }
    ++meta.window_reads;
  }
  int promote_to(const ObjectMeta& meta, int current_tier,
                 double now) const override {
    if (current_tier <= kHotTier) return kNoTier;
    if (now - meta.window_start > window_s_) return kNoTier;
    if (meta.window_reads < min_reads_) return kNoTier;
    const int target = current_tier - 1;
    if (meta.pin != kNoTier && target < meta.pin) return kNoTier;
    return target;
  }

 private:
  std::uint64_t min_reads_;
  double window_s_;
};

}  // namespace pdsi::tier
