// TierEngine — one policy-driven engine over the repo's three storage
// personalities: the burst-buffer flash tier (pdsi::bb) absorbs writes,
// the parallel file system (pdsi::pfs) holds the drained working set, and
// the erasure-coded object store (tier::ObjectStore) archives what falls
// out of the warm watermarks. The PDSI stack the paper describes is
// exactly this pipeline; the repo previously modelled each stage as a
// disconnected demo.
//
// Mechanism vs policy: the engine owns the copies and the charging —
// hot->warm demotion IS the burst buffer's watermark drain (the engine's
// drain target stripes over the PFS cluster), warm->cold demotion is an
// ObjectStore put, promotion is a copy up — while *which* object moves
// and *when* comes from the pluggable policies in policy.h.
//
// Copies and authority: the engine keeps an object's canonical bytes in
// memory while any hot/warm copy exists (the simulated PFS charges time
// but does not store engine payloads); once an object is demoted to
// cold-only, the erasure-coded shards in the ObjectStore are the ONLY
// copy — a later read really does reassemble (or reconstruct) them, so
// tier failure and rebuild-from-parity are tested against real bytes.
//
// Timing: every operation takes the caller's virtual time and returns a
// completion time; calls must arrive with nondecreasing `now` (single
// timeline, the same contract as pfs::Oss and bb::BurstBuffer).
//
// Faults: set_fault() installs one seeded injector across the warm
// servers (cluster set) and the cold device shelf (injector servers
// [num_oss, num_oss + devices)). A warm server down at read time fails
// over to a surviving server when the plan allows it, else the read falls
// back to the cold copy if one exists (degraded read) and is an
// Errc::io_error otherwise, counted in read_errors(). Inactive plans are
// pure queries: installing one changes no timing and consumes no
// randomness.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "pdsi/bb/burst_buffer.h"
#include "pdsi/common/result.h"
#include "pdsi/obs/obs.h"
#include "pdsi/tier/object_store.h"
#include "pdsi/tier/policy.h"

namespace pdsi::pfs {
class PfsCluster;
}  // namespace pdsi::pfs
namespace pdsi::fault {
class FaultInjector;
}  // namespace pdsi::fault

namespace pdsi::tier {

struct TierEngineParams {
  bb::BbParams bb;                              ///< hot tier (staging flash)
  std::uint64_t warm_capacity_bytes = 8 * GiB;  ///< warm budget the demotion
                                                ///< policy polices
  ObjectStoreParams cold;                       ///< cold tier geometry
};

struct TierStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t hot_hits = 0;    ///< reads served from staging flash
  std::uint64_t warm_hits = 0;   ///< reads striped over the PFS
  std::uint64_t cold_hits = 0;   ///< reads served by the object store
  std::uint64_t demotions = 0;   ///< warm -> cold movements
  std::uint64_t promotions = 0;  ///< cold -> warm / warm -> hot movements
  std::uint64_t demoted_bytes = 0;
  std::uint64_t promoted_bytes = 0;
  std::uint64_t degraded_reads = 0;  ///< failover or surviving-tier reads
  std::uint64_t read_errors = 0;     ///< reads with no surviving copy
};

class TierEngine {
 public:
  /// The engine stripes warm data over `cluster` (which must outlive it)
  /// and drives its burst buffer's drain through the same servers. `ctx`
  /// (optional) feeds tier.* instruments and puts promotion/demotion/
  /// rebuild spans on obs::kTierTrack.
  TierEngine(TierEngineParams params, pfs::PfsCluster& cluster,
             obs::Context* ctx = nullptr);

  TierEngine(const TierEngine&) = delete;
  TierEngine& operator=(const TierEngine&) = delete;

  // -- Data path (virtual-time; nondecreasing `now`) --

  /// Writes `data` at `off`, creating the object if needed; returns the
  /// ingest completion time (durability comes from flush()).
  Result<double> write(const std::string& name, std::uint64_t off,
                       std::span<const std::uint8_t> data, double now);

  /// Reads into `out` (clamped at the object's size; bytes past EOF are
  /// untouched). Sets `*n_read` when non-null. Serves from the hottest
  /// tier holding the range and may trigger policy promotion.
  Result<double> read(const std::string& name, std::uint64_t off,
                      std::span<std::uint8_t> out, double now,
                      std::size_t* n_read = nullptr);

  /// Durability barrier: drains the burst buffer, persists pinned-cold
  /// objects, then applies demotion policy. Returns the drain completion.
  double flush(double now);

  /// Advances background drains (compute time passing).
  void run_until(double t);

  /// Re-protects the cold tier after device loss (ObjectStore::rebuild).
  Result<double> rebuild(double now) { return store_.rebuild(now); }

  // -- Namespace --

  Status remove(const std::string& name);
  Status rename(const std::string& from, const std::string& to);
  Result<std::uint64_t> size(const std::string& name) const;
  bool exists(const std::string& name) const;
  /// Sorted object names.
  std::vector<std::string> list() const;

  /// Pins `name` (existing or future) to `tier`; kNoTier unpins. Pinned
  /// objects are placed on their tier and never demoted below (or
  /// promoted above) it.
  Status pin(const std::string& name, int tier);

  // -- Policies (non-null; engine installs defaults) --

  void set_placement(std::unique_ptr<PlacementPolicy> p);
  void set_demotion(std::unique_ptr<DemotionPolicy> p);
  void set_promotion(std::unique_ptr<PromotionPolicy> p);

  /// Installs one seeded injector across warm servers and cold devices
  /// (cluster servers [0, num_oss), store devices at [num_oss, ...)).
  /// nullptr clears. Inactive plans leave every timing untouched.
  void set_fault(fault::FaultInjector* f);

  // -- Introspection --

  const TierStats& stats() const { return stats_; }
  std::uint64_t read_errors() const { return stats_.read_errors; }
  std::uint64_t degraded_reads() const { return stats_.degraded_reads; }
  TierUsage usage(int tier) const;
  /// Hottest tier holding the authoritative copy of `name` (kHotTier
  /// until fully drained, kWarmTier while PFS-resident, kColdTier once
  /// archive-only), or kNoTier if absent.
  int resident_tier(const std::string& name) const;

  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  bb::BurstBuffer& buffer() { return *bb_; }
  pfs::PfsCluster& cluster() { return cluster_; }

  /// Bucket holding demoted objects in the cold store.
  static constexpr const char* kBucket = "tier";

 private:
  using RangeMap = std::map<std::uint64_t, std::uint64_t>;

  struct Object {
    ObjectMeta meta;
    std::string name;
    Bytes data;          ///< canonical bytes while hot/warm resident
    RangeMap drained;    ///< byte ranges durable on the warm tier
    bool warm = false;   ///< fully drained (warm copy complete)
    bool cold = false;   ///< present in the object store
    int placed = kHotTier;  ///< tier the placement policy chose at create
  };

  static std::uint64_t RangeAdd(RangeMap& m, std::uint64_t s, std::uint64_t e);
  static std::uint64_t RangeRemove(RangeMap& m, std::uint64_t s, std::uint64_t e);
  static bool RangeCovers(const RangeMap& m, std::uint64_t s, std::uint64_t e);

  Object* find(const std::string& name);
  const Object* find(const std::string& name) const;
  std::string cold_key(const Object& o) const { return std::to_string(o.meta.id); }

  /// Burst-buffer drain sink: [off, off+len) of object `id` became
  /// durable on the warm tier.
  void on_drained(std::uint64_t id, std::uint64_t off, std::uint64_t len);
  /// Runs any demotions deferred from inside burst-buffer callbacks.
  void settle(double now);

  /// Stripes a warm-tier write over the cluster (drain-target pattern).
  double warm_write(std::uint64_t id, std::uint64_t off, std::uint64_t len,
                    double now);
  /// Stripes a warm-tier read; on a down server either fails over or
  /// reports Errc::io_error via the result (caller may fall back to
  /// cold). `fell_over` counts failovers for degraded-read accounting.
  Result<double> warm_read(std::uint64_t id, std::uint64_t off,
                           std::uint64_t len, double now, bool* fell_over);

  /// Drops any cold copy invalidated by a fresh write.
  void invalidate_cold(Object& o);
  /// Moves a fully-drained warm object to the cold tier at time `t`.
  void demote_to_cold(Object& o, double t);
  void maybe_demote_warm(double t);
  /// Copies an object one tier up after the promotion policy fires.
  void promote(Object& o, int target, const Bytes& bytes, double t);

  TierEngineParams params_;
  pfs::PfsCluster& cluster_;
  std::unique_ptr<bb::DrainTarget> drain_target_;
  std::unique_ptr<bb::BurstBuffer> bb_;
  ObjectStore store_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::unique_ptr<DemotionPolicy> demotion_;
  std::unique_ptr<PromotionPolicy> promotion_;

  std::map<std::string, std::uint64_t> names_;  ///< name -> id
  std::map<std::uint64_t, Object> objects_;     ///< id -> record (ordered)
  std::map<std::string, int> pins_;             ///< pins set before create
  std::uint64_t next_id_ = 1;
  std::uint64_t warm_used_ = 0;  ///< drained bytes accounted to the warm tier
  bool pending_demote_ = false;  ///< pressure seen inside a drain callback
  TierStats stats_;

  obs::Context* ctx_ = nullptr;
  obs::Counter* c_reads_ = nullptr;
  obs::Counter* c_writes_ = nullptr;
  obs::Counter* c_hot_hits_ = nullptr;
  obs::Counter* c_warm_hits_ = nullptr;
  obs::Counter* c_cold_hits_ = nullptr;
  obs::Counter* c_demotions_ = nullptr;
  obs::Counter* c_promotions_ = nullptr;
  obs::Counter* c_degraded_ = nullptr;
  obs::Counter* c_read_errors_ = nullptr;
};

}  // namespace pdsi::tier
