#include "pdsi/tier/object_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "pdsi/fault/fault.h"

namespace pdsi::tier {

ObjectStore::ObjectStore(ObjectStoreParams params, obs::Context* ctx)
    : params_(params),
      rs_(params.data_shards, params.parity_shards),
      ctx_(ctx) {
  const std::uint32_t total =
      static_cast<std::uint32_t>(params_.data_shards + params_.parity_shards);
  if (params_.shard_unit == 0) {
    throw std::invalid_argument("ObjectStore: shard_unit must be positive");
  }
  if (params_.num_devices < total) {
    throw std::invalid_argument("ObjectStore: need at least k+m devices");
  }
  disks_.reserve(params_.num_devices);
  for (std::uint32_t d = 0; d < params_.num_devices; ++d) {
    disks_.emplace_back(params_.device);
  }
  disk_res_.resize(params_.num_devices);
  cursor_.assign(params_.num_devices, 0);
  failed_.assign(params_.num_devices, false);
  if (ctx_) {
    if (ctx_->tracer) ctx_->tracer->track(obs::kTierTrack, "tier");
    if (ctx_->registry) {
      c_puts_ = &ctx_->registry->counter("tier.store.puts");
      c_gets_ = &ctx_->registry->counter("tier.store.gets");
      c_bytes_in_ = &ctx_->registry->counter("tier.store.bytes_in");
      c_bytes_out_ = &ctx_->registry->counter("tier.store.bytes_out");
      c_degraded_ = &ctx_->registry->counter("tier.store.degraded_gets");
      c_read_errors_ = &ctx_->registry->counter("tier.store.read_errors");
      c_rebuilt_bytes_ = &ctx_->registry->counter("tier.store.rebuilt_bytes");
    }
  }
}

std::uint64_t ObjectStore::capacity_bytes() const {
  std::uint64_t cap = 0;
  for (std::uint32_t d = 0; d < params_.num_devices; ++d) {
    if (!failed_[d]) cap += params_.device.capacity_bytes;
  }
  return cap;
}

void ObjectStore::set_fault(const fault::FaultInjector* f,
                            std::uint32_t base_server) {
  fault_ = f;
  fault_base_ = base_server;
}

bool ObjectStore::dev_down(std::uint32_t dev, double t) const {
  if (!fault_) return false;
  const std::uint32_t server = fault_base_ + dev;
  if (server >= fault_->num_servers()) return false;
  return fault_->down(server, t);
}

bool ObjectStore::shard_available(const Shard& s, double t) const {
  return !s.lost && dev_alive(s.dev) && !dev_down(s.dev, t);
}

double ObjectStore::park_if_down(std::uint32_t dev, double issue) const {
  if (!dev_down(dev, issue)) return issue;
  const std::uint32_t server = fault_base_ + dev;
  return fault_->next_up(server, issue) + fault_->plan().rpc_timeout_s;
}

std::vector<std::uint32_t> ObjectStore::pick_devices(std::uint64_t first) const {
  const std::uint32_t total =
      static_cast<std::uint32_t>(params_.data_shards + params_.parity_shards);
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < params_.num_devices && out.size() < total; ++i) {
    const auto dev =
        static_cast<std::uint32_t>((first + i) % params_.num_devices);
    if (dev_alive(dev)) out.push_back(dev);
  }
  if (out.size() < total) out.clear();
  return out;
}

double ObjectStore::dev_append(std::uint32_t dev, std::uint64_t len,
                               double issue, std::uint64_t* phys) {
  *phys = cursor_[dev];
  const double service = disks_[dev].access(0, cursor_[dev], len);
  cursor_[dev] += len;
  return disk_res_[dev].reserve(issue, service);
}

double ObjectStore::dev_read(std::uint32_t dev, std::uint64_t phys,
                             std::uint64_t len, double issue) {
  const double service = disks_[dev].access(0, phys, len);
  return disk_res_[dev].reserve(issue, service);
}

void ObjectStore::drop_accounting(Stored& st) {
  for (auto& stripe : st.stripes) {
    for (auto& s : stripe.shards) {
      if (s.lost) {
        --lost_shards_;
      } else {
        used_bytes_ -= s.bytes.size();
      }
    }
  }
}

Result<double> ObjectStore::put(const std::string& bucket,
                                const std::string& object,
                                std::span<const std::uint8_t> data,
                                double now) {
  if (bucket.empty() || object.empty() ||
      bucket.find('/') != std::string::npos || data.empty()) {
    return Errc::invalid;
  }
  const int k = params_.data_shards;
  const int m = params_.parity_shards;
  const std::uint64_t span = params_.stripe_span();
  const std::uint64_t nstripes = (data.size() + span - 1) / span;
  // Raw footprint: every stripe stores k+m equal shards.
  std::uint64_t raw = 0;
  for (std::uint64_t i = 0; i < nstripes; ++i) {
    const std::uint64_t rem = std::min<std::uint64_t>(span, data.size() - i * span);
    raw += ((rem + k - 1) / k) * static_cast<std::uint64_t>(k + m);
  }
  if (used_bytes_ + raw > capacity_bytes()) return Errc::no_space;
  // Liveness up front, before any device time is charged: per-stripe
  // placement below cannot fail once k+m devices are alive.
  if (pick_devices(0).empty()) return Errc::no_space;

  const std::string key = Key(bucket, object);
  if (auto it = objects_.find(key); it != objects_.end()) {
    drop_accounting(it->second);
    objects_.erase(it);
  }

  Stored st;
  st.size = data.size();
  st.start_dev = HashBytes(std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(key.data()),
                     key.size())) %
                 params_.num_devices;

  // The client pipeline encodes the whole object before shipping shards.
  const double enc =
      static_cast<double>(data.size()) / params_.encode_bw_bytes;
  const double start = cpu_res_.reserve(now + params_.per_op_s, enc);

  double done = start;
  for (std::uint64_t si = 0; si < nstripes; ++si) {
    const std::uint64_t off = si * span;
    const std::uint64_t rem = std::min<std::uint64_t>(span, data.size() - off);
    Stripe stripe;
    stripe.shard_len = (rem + k - 1) / k;
    const auto devs = pick_devices(st.start_dev + si);
    if (devs.empty()) return Errc::no_space;
    std::vector<Bytes> shards(static_cast<std::size_t>(k),
                              Bytes(stripe.shard_len, 0));
    for (int i = 0; i < k; ++i) {
      const std::uint64_t s = off + static_cast<std::uint64_t>(i) * stripe.shard_len;
      if (s < off + rem) {
        const std::uint64_t n = std::min<std::uint64_t>(stripe.shard_len, off + rem - s);
        std::memcpy(shards[static_cast<std::size_t>(i)].data(), data.data() + s,
                    static_cast<std::size_t>(n));
      }
    }
    auto parity = rs_.encode(shards);
    shards.insert(shards.end(), parity.begin(), parity.end());
    stripe.shards.resize(static_cast<std::size_t>(k + m));
    for (int i = 0; i < k + m; ++i) {
      Shard& sh = stripe.shards[static_cast<std::size_t>(i)];
      sh.dev = devs[static_cast<std::size_t>(i)];
      sh.bytes = std::move(shards[static_cast<std::size_t>(i)]);
      const double issue = park_if_down(sh.dev, start);
      done = std::max(done, dev_append(sh.dev, stripe.shard_len, issue, &sh.phys_off));
      used_bytes_ += stripe.shard_len;
    }
    st.stripes.push_back(std::move(stripe));
  }
  objects_.emplace(key, std::move(st));
  ++stats_.puts;
  stats_.bytes_in += data.size();
  if (c_puts_) c_puts_->add();
  if (c_bytes_in_) c_bytes_in_->add(data.size());
  return done;
}

Result<double> ObjectStore::get(const std::string& bucket,
                                const std::string& object, Bytes* out,
                                double now) {
  const auto it = objects_.find(Key(bucket, object));
  if (it == objects_.end()) return Errc::not_found;
  const Stored& st = it->second;
  const int k = params_.data_shards;
  const int m = params_.parity_shards;
  out->assign(st.size, 0);

  const double start = now + params_.per_op_s;
  double done = start;
  bool degraded = false;
  for (std::size_t si = 0; si < st.stripes.size(); ++si) {
    const Stripe& stripe = st.stripes[si];
    const std::uint64_t off = si * params_.stripe_span();
    bool healthy = true;
    for (int i = 0; i < k; ++i) {
      if (!shard_available(stripe.shards[static_cast<std::size_t>(i)], now)) {
        healthy = false;
        break;
      }
    }
    std::vector<Bytes> shards(static_cast<std::size_t>(k + m));
    if (healthy) {
      // Systematic code: the data shards hold the bytes verbatim.
      for (int i = 0; i < k; ++i) {
        const Shard& sh = stripe.shards[static_cast<std::size_t>(i)];
        done = std::max(done, dev_read(sh.dev, sh.phys_off, stripe.shard_len, start));
        shards[static_cast<std::size_t>(i)] = sh.bytes;
      }
    } else {
      int have = 0;
      double rmax = start;
      for (int i = 0; i < k + m && have < k; ++i) {
        const Shard& sh = stripe.shards[static_cast<std::size_t>(i)];
        if (!shard_available(sh, now)) continue;
        rmax = std::max(rmax, dev_read(sh.dev, sh.phys_off, stripe.shard_len, start));
        shards[static_cast<std::size_t>(i)] = sh.bytes;
        ++have;
      }
      if (have < k) {
        ++stats_.read_errors;
        if (c_read_errors_) c_read_errors_->add();
        return Errc::io_error;
      }
      const double dec = static_cast<double>(k) *
                         static_cast<double>(stripe.shard_len) /
                         params_.decode_bw_bytes;
      done = std::max(done, cpu_res_.reserve(rmax, dec));
      rs_.reconstruct(shards);
      degraded = true;
      ++stats_.degraded_stripes;
    }
    const std::uint64_t rem = std::min<std::uint64_t>(
        params_.stripe_span(), st.size - off);
    for (int i = 0; i < k; ++i) {
      const std::uint64_t s = static_cast<std::uint64_t>(i) * stripe.shard_len;
      if (s >= rem) break;
      const std::uint64_t n = std::min<std::uint64_t>(stripe.shard_len, rem - s);
      std::memcpy(out->data() + off + s,
                  shards[static_cast<std::size_t>(i)].data(),
                  static_cast<std::size_t>(n));
    }
  }
  ++stats_.gets;
  stats_.bytes_out += st.size;
  if (c_gets_) c_gets_->add();
  if (c_bytes_out_) c_bytes_out_->add(st.size);
  if (degraded) {
    ++stats_.degraded_gets;
    if (c_degraded_) c_degraded_->add();
  }
  return done;
}

Status ObjectStore::remove(const std::string& bucket,
                           const std::string& object) {
  const auto it = objects_.find(Key(bucket, object));
  if (it == objects_.end()) return Errc::not_found;
  drop_accounting(it->second);
  objects_.erase(it);
  ++stats_.removes;
  return Status::Ok();
}

bool ObjectStore::exists(const std::string& bucket,
                         const std::string& object) const {
  return objects_.count(Key(bucket, object)) > 0;
}

Result<std::uint64_t> ObjectStore::object_size(const std::string& bucket,
                                               const std::string& object) const {
  const auto it = objects_.find(Key(bucket, object));
  if (it == objects_.end()) return Errc::not_found;
  return it->second.size;
}

std::vector<std::string> ObjectStore::list(const std::string& bucket) const {
  std::vector<std::string> out;
  const std::string prefix = bucket + "/";
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first.substr(prefix.size()));
  }
  return out;
}

void ObjectStore::fail_device(std::uint32_t dev) {
  if (dev >= params_.num_devices || failed_[dev]) return;
  failed_[dev] = true;
  for (auto& [key, st] : objects_) {
    for (auto& stripe : st.stripes) {
      for (auto& s : stripe.shards) {
        if (s.dev == dev && !s.lost) {
          used_bytes_ -= s.bytes.size();
          s.bytes.clear();
          s.bytes.shrink_to_fit();
          s.lost = true;
          ++lost_shards_;
        }
      }
    }
  }
}

Result<double> ObjectStore::rebuild(double now) {
  const int k = params_.data_shards;
  const int m = params_.parity_shards;
  double done = now;
  bool unrecoverable = false;
  std::uint64_t rebuilt_shards = 0;
  std::uint64_t rebuilt_bytes = 0;
  for (auto& [key, st] : objects_) {
    for (std::size_t si = 0; si < st.stripes.size(); ++si) {
      Stripe& stripe = st.stripes[si];
      bool any_lost = false;
      for (const auto& s : stripe.shards) any_lost |= s.lost;
      if (!any_lost) continue;

      std::vector<Bytes> shards(static_cast<std::size_t>(k + m));
      int have = 0;
      double rmax = now;
      for (int i = 0; i < k + m && have < k; ++i) {
        const Shard& sh = stripe.shards[static_cast<std::size_t>(i)];
        if (sh.lost || !dev_alive(sh.dev)) continue;
        const double issue = park_if_down(sh.dev, now);
        rmax = std::max(rmax, dev_read(sh.dev, sh.phys_off, stripe.shard_len, issue));
        shards[static_cast<std::size_t>(i)] = sh.bytes;
        ++have;
      }
      if (have < k) {
        unrecoverable = true;
        continue;
      }
      const double dec = static_cast<double>(k) *
                         static_cast<double>(stripe.shard_len) /
                         params_.decode_bw_bytes;
      const double decoded = cpu_res_.reserve(rmax, dec);
      rs_.reconstruct(shards);

      for (int i = 0; i < k + m; ++i) {
        Shard& sh = stripe.shards[static_cast<std::size_t>(i)];
        if (!sh.lost) continue;
        // Re-protect onto a live device not already holding a shard of
        // this stripe (rotating from the stripe's placement origin).
        std::uint32_t target = params_.num_devices;
        for (std::uint32_t step = 0; step < params_.num_devices; ++step) {
          const auto cand = static_cast<std::uint32_t>(
              (st.start_dev + si + step) % params_.num_devices);
          if (!dev_alive(cand)) continue;
          bool taken = false;
          for (const auto& other : stripe.shards) {
            if (!other.lost && other.dev == cand) taken = true;
          }
          if (!taken) {
            target = cand;
            break;
          }
        }
        if (target == params_.num_devices) {
          unrecoverable = true;
          continue;
        }
        sh.dev = target;
        sh.bytes = shards[static_cast<std::size_t>(i)];
        const double issue = park_if_down(target, decoded);
        done = std::max(done, dev_append(target, stripe.shard_len, issue, &sh.phys_off));
        sh.lost = false;
        --lost_shards_;
        used_bytes_ += stripe.shard_len;
        ++rebuilt_shards;
        rebuilt_bytes += stripe.shard_len;
      }
    }
  }
  stats_.rebuilt_shards += rebuilt_shards;
  stats_.rebuilt_bytes += rebuilt_bytes;
  if (c_rebuilt_bytes_) c_rebuilt_bytes_->add(rebuilt_bytes);
  if (ctx_ && ctx_->tracer && rebuilt_shards > 0) {
    ctx_->tracer->complete(obs::kTierTrack, "rebuild", "tier", now, done,
                           {obs::Arg::Int("shards", rebuilt_shards),
                            obs::Arg::Int("bytes", rebuilt_bytes)});
  }
  if (unrecoverable) return Errc::io_error;
  return done;
}

}  // namespace pdsi::tier
