#include "pdsi/tier/tier_backend.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "pdsi/pfs/mds.h"  // NormalizePath / ParentPath helpers
#include "pdsi/tier/tier_engine.h"

namespace pdsi::tier {
namespace {

using pfs::NormalizePath;
using pfs::ParentPath;

/// Namespace shape follows MemBackend (ordered path map = directory
/// index); file payloads live in the engine under the normalised path.
/// Engine objects are created lazily on first write, so a created-but-
/// never-written file is namespace-only with size 0.
class TierBackend final : public plfs::Backend {
 public:
  explicit TierBackend(TierEngine& engine) : engine_(engine) {
    nodes_.emplace("/", true);
  }

  Status mkdir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    if (nodes_.count(p)) return Errc::exists;
    if (!parent_ok(p)) return Errc::not_found;
    nodes_.emplace(p, true);
    return Status::Ok();
  }

  Result<plfs::BackendHandle> create(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    if (nodes_.count(p)) return Errc::exists;
    if (!parent_ok(p)) return Errc::not_found;
    nodes_.emplace(p, false);
    return put(p);
  }

  Result<plfs::BackendHandle> open(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second) return Errc::is_dir;
    return put(p);
  }

  Status write(plfs::BackendHandle h, std::uint64_t off,
               std::span<const std::uint8_t> data) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string* p = path_for(h);
    if (!p) return Errc::bad_handle;
    if (data.empty()) return Status::Ok();
    auto t = engine_.write(*p, off, data, clock_);
    if (!t.ok()) return t.error();
    clock_ = std::max(clock_, *t);
    return Status::Ok();
  }

  Result<std::size_t> read(plfs::BackendHandle h, std::uint64_t off,
                           std::span<std::uint8_t> out) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string* p = path_for(h);
    if (!p) return Errc::bad_handle;
    if (!engine_.exists(*p)) return static_cast<std::size_t>(0);
    std::size_t n = 0;
    auto t = engine_.read(*p, off, out, clock_, &n);
    if (!t.ok()) return t.error();
    clock_ = std::max(clock_, *t);
    return n;
  }

  Result<std::uint64_t> size(plfs::BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string* p = path_for(h);
    if (!p) return Errc::bad_handle;
    auto sz = engine_.size(*p);
    if (!sz.ok()) return static_cast<std::uint64_t>(0);  // never written
    return *sz;
  }

  Status fsync(plfs::BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (!path_for(h)) return Errc::bad_handle;
    clock_ = std::max(clock_, engine_.flush(clock_));
    return Status::Ok();
  }

  Status close(plfs::BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (h < 0 || static_cast<std::size_t>(h) >= handles_.size() ||
        handles_[h].empty()) {
      return Errc::bad_handle;
    }
    handles_[h].clear();
    return Status::Ok();
  }

  Result<std::uint64_t> stat_size(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second) return Errc::invalid;
    auto sz = engine_.size(p);
    if (!sz.ok()) return static_cast<std::uint64_t>(0);
    return *sz;
  }

  Result<std::vector<std::string>> readdir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (!it->second) return Errc::not_dir;
    std::vector<std::string> names;
    const std::string prefix = p == "/" ? "/" : p + "/";
    for (auto child = nodes_.upper_bound(prefix);
         child != nodes_.end() &&
         child->first.compare(0, prefix.size(), prefix) == 0;
         ++child) {
      const std::string rest = child->first.substr(prefix.size());
      if (rest.find('/') == std::string::npos) names.push_back(rest);
    }
    return names;
  }

  Status unlink(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second) {
      auto next = std::next(it);
      if (next != nodes_.end() && next->first.size() > p.size() &&
          next->first.compare(0, p.size(), p) == 0 &&
          next->first[p.size()] == '/') {
        return Errc::not_empty;
      }
    } else if (engine_.exists(p)) {
      engine_.remove(p);
    }
    nodes_.erase(it);
    return Status::Ok();
  }

  Status rename(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string f = NormalizePath(from);
    const std::string t = NormalizePath(to);
    auto it = nodes_.find(f);
    if (it == nodes_.end()) return Errc::not_found;
    if (it->second) return Errc::not_supported;
    if (nodes_.count(t)) return Errc::exists;
    if (!parent_ok(t)) return Errc::not_found;
    if (engine_.exists(f)) {
      Status s = engine_.rename(f, t);
      if (!s.ok()) return s;
    }
    nodes_.erase(it);
    nodes_.emplace(t, false);
    return Status::Ok();
  }

  Result<bool> is_dir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = nodes_.find(NormalizePath(path));
    if (it == nodes_.end()) return Errc::not_found;
    return it->second;
  }

  Result<bool> exists(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    return nodes_.count(NormalizePath(path)) > 0;
  }

  void compute(double seconds) override {
    std::lock_guard<std::mutex> lk(mu_);
    clock_ += seconds;
    engine_.run_until(clock_);
  }

  double now() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return clock_;
  }

 private:
  bool parent_ok(const std::string& p) {
    auto it = nodes_.find(ParentPath(p));
    return it != nodes_.end() && it->second;
  }

  plfs::BackendHandle put(std::string path) {
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      if (handles_[i].empty()) {
        handles_[i] = std::move(path);
        return static_cast<plfs::BackendHandle>(i);
      }
    }
    handles_.push_back(std::move(path));
    return static_cast<plfs::BackendHandle>(handles_.size() - 1);
  }

  const std::string* path_for(plfs::BackendHandle h) const {
    if (h < 0 || static_cast<std::size_t>(h) >= handles_.size()) return nullptr;
    const std::string& p = handles_[h];
    if (p.empty()) return nullptr;
    auto it = nodes_.find(p);
    if (it == nodes_.end() || it->second) return nullptr;
    return &it->first;
  }

  TierEngine& engine_;
  mutable std::mutex mu_;
  std::map<std::string, bool> nodes_;  ///< path -> is_dir
  std::vector<std::string> handles_;   ///< handle -> open path ("" = free)
  double clock_ = 0.0;
};

}  // namespace

std::unique_ptr<plfs::Backend> MakeTierBackend(TierEngine& engine) {
  return std::make_unique<TierBackend>(engine);
}

}  // namespace pdsi::tier
