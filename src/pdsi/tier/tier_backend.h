// plfs::Backend adapter over the tiering engine: PLFS containers (the
// per-rank logs, index files and metadata the writer/reader produce) live
// as engine objects, so checkpoint data written through PLFS is absorbed
// by the burst buffer, drained to the PFS, and demoted to the
// erasure-coded archive entirely under the engine's policies.
//
// The adapter owns the namespace (directories, empty files) — the engine
// is a flat object map — and owns the virtual clock: every engine
// completion advances it, compute() models client CPU time, fsync() is a
// flush (durability barrier) on the engine. Internally synchronised;
// concurrent rank threads serialise onto the engine's single timeline.
#pragma once

#include <memory>

#include "pdsi/plfs/backend.h"

namespace pdsi::tier {

class TierEngine;

/// `engine` must outlive the backend.
std::unique_ptr<plfs::Backend> MakeTierBackend(TierEngine& engine);

}  // namespace pdsi::tier
