#include "pdsi/giga/giga.h"

#include <algorithm>
#include <cassert>

namespace pdsi::giga {

void Bitmap::set(std::uint32_t p) {
  const std::size_t word = p / 64;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= 1ULL << (p % 64);
}

bool Bitmap::test(std::uint32_t p) const {
  const std::size_t word = p / 64;
  if (word >= words_.size()) return false;
  return (words_[word] >> (p % 64)) & 1;
}

std::uint32_t Bitmap::highest() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return static_cast<std::uint32_t>(w * 64 + 63 -
                                        __builtin_clzll(words_[w]));
    }
  }
  return 0;
}

std::uint32_t Bitmap::partition_for(std::uint64_t hash) const {
  // Start from a radix deep enough to cover the highest partition and
  // walk shallower until the candidate exists. Partition 0 always does.
  // Derived via PartitionDepth rather than a growing `1u << d` probe: a
  // highest partition at or above 2^31 would push that shift to 32 bits
  // (undefined for uint32_t). Depth tops out at 32, so the masks below
  // must be 64-bit shifts.
  for (std::uint32_t d = PartitionDepth(highest()); d > 0; --d) {
    const std::uint32_t candidate =
        static_cast<std::uint32_t>(hash & ((1ULL << d) - 1));
    if (test(candidate)) return candidate;
  }
  return 0;
}

void Bitmap::merge(const Bitmap& other) {
  if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
}

bool Bitmap::operator==(const Bitmap& other) const {
  const std::size_t n = std::max(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t a = w < words_.size() ? words_[w] : 0;
    const std::uint64_t b = w < other.words_.size() ? other.words_[w] : 0;
    if (a != b) return false;
  }
  return true;
}

std::uint64_t HashName(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  // Final avalanche so short names spread over low bits.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

std::uint32_t PartitionDepth(std::uint32_t p) {
  if (p == 0) return 0;
  return 32 - __builtin_clz(p);
}

std::uint32_t SplitChild(std::uint32_t p, std::uint32_t depth) {
  // depth == 31 is the last splittable level: the child p + 2^31 still
  // fits uint32_t because p < 2^31, but a 32-bit `1u << depth` at the
  // next level would be undefined.
  assert(depth < 32 && "partition radix depth exceeds 32-bit id space");
  return p + static_cast<std::uint32_t>(1ULL << depth);
}

GigaDirectory::GigaDirectory(const GigaParams& params)
    : params_(params), servers_(params.num_servers) {
  depth_[0] = 0;
  partitions_[0] = {};
}

GigaDirectory::CreateOutcome GigaDirectory::create(std::uint32_t addressed,
                                                   std::uint64_t hash,
                                                   const std::string& name,
                                                   double now) {
  CreateOutcome out;
  sim::SimResource& server = servers_[server_of(addressed)];
  const double arrived = now + params_.rpc_latency_s;
  // The addressed server always does the work of looking at the request.
  double t = server.reserve(arrived, params_.server_op_s);

  const std::uint32_t correct = bitmap_.partition_for(hash);
  if (correct != addressed) {
    out.status = Errc::stale;
    out.complete = t + params_.rpc_latency_s;
    return out;
  }
  auto& part = partitions_[addressed];
  if (!part.emplace(name, hash).second) {
    out.status = Errc::exists;
    out.complete = t + params_.rpc_latency_s;
    return out;
  }
  ++total_entries_;
  const double split_done = maybe_split(addressed, t);
  out.status = Status::Ok();
  out.complete = std::max(t, split_done) + params_.rpc_latency_s;
  return out;
}

GigaDirectory::LookupOutcome GigaDirectory::lookup(std::uint32_t addressed,
                                                   std::uint64_t hash,
                                                   const std::string& name,
                                                   double now) {
  LookupOutcome out;
  sim::SimResource& server = servers_[server_of(addressed)];
  const double t =
      server.reserve(now + params_.rpc_latency_s, params_.server_op_s);
  const std::uint32_t correct = bitmap_.partition_for(hash);
  if (correct != addressed) {
    out.status = Errc::stale;
  } else {
    auto it = partitions_.find(addressed);
    out.status = (it != partitions_.end() && it->second.count(name))
                     ? Status::Ok()
                     : Status(Errc::not_found);
  }
  out.complete = t + params_.rpc_latency_s;
  return out;
}

double GigaDirectory::maybe_split(std::uint32_t p, double now) {
  auto& part = partitions_[p];
  if (part.size() < params_.split_threshold) return now;

  const std::uint32_t dp = depth_[p];
  const std::uint32_t child = SplitChild(p, dp);
  const std::uint64_t child_mask = (1ULL << (dp + 1)) - 1;

  auto& dest = partitions_[child];
  std::size_t moved = 0;
  for (auto it = part.begin(); it != part.end();) {
    if ((it->second & child_mask) == child) {
      dest.emplace(it->first, it->second);
      it = part.erase(it);
      ++moved;
    } else {
      ++it;
    }
  }
  depth_[p] = dp + 1;
  depth_[child] = dp + 1;
  bitmap_.set(child);
  ++splits_;

  // Migration occupies both the source and destination servers; the
  // triggering create completes only once its partition is split.
  const double cost = static_cast<double>(moved) * params_.migrate_entry_s;
  const double a = servers_[server_of(p)].reserve(now, cost);
  const double b = servers_[server_of(child)].reserve(now, cost);
  return std::max(a, b);
}

bool GigaDirectory::check_placement_invariant() const {
  for (const auto& [p, entries] : partitions_) {
    for (const auto& [name, hash] : entries) {
      if (bitmap_.partition_for(hash) != p) return false;
    }
  }
  return true;
}

Status GigaClient::create(const std::string& name) {
  const std::uint64_t hash = HashName(name);
  for (;;) {
    Status result = Errc::busy;
    sched_.atomically(actor_, [&](double now) {
      const std::uint32_t p = cached_.partition_for(hash);
      auto out = dir_.create(p, hash, name, now);
      if (!out.status.ok() && out.status.error() == Errc::stale) {
        cached_.merge(dir_.bitmap());
        ++stale_retries_;
        result = Errc::stale;
      } else {
        result = out.status;
      }
      return out.complete;
    });
    if (!(result.ok() == false && result.error() == Errc::stale)) return result;
  }
}

Status GigaClient::lookup(const std::string& name) {
  const std::uint64_t hash = HashName(name);
  for (;;) {
    Status result = Errc::busy;
    sched_.atomically(actor_, [&](double now) {
      const std::uint32_t p = cached_.partition_for(hash);
      auto out = dir_.lookup(p, hash, name, now);
      if (!out.status.ok() && out.status.error() == Errc::stale) {
        cached_.merge(dir_.bitmap());
        ++stale_retries_;
        result = Errc::stale;
      } else {
        result = out.status;
      }
      return out.complete;
    });
    if (!(result.ok() == false && result.error() == Errc::stale)) return result;
  }
}

}  // namespace pdsi::giga
