// GIGA+ scalable directories (§4.2.2, Fig. 7; Patil & Gibson).
//
// A directory is hash-partitioned over metadata servers. Partitions split
// incrementally as they fill: partition p at radix depth d covers the
// hash-suffix equivalence class (h mod 2^d == p); splitting moves the
// upper half of its class to partition p + 2^d. The directory's split
// history forms a bitmap; crucially, clients cache the bitmap WITHOUT
// cache-consistency traffic — a stale client may address the wrong
// server, which replies with its (fresher) bitmap rows and the client
// retries. Unsynchronised growth is what lets creates scale near-linearly
// with servers, unlike a single-MDS namespace.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/sim/virtual_time.h"

namespace pdsi::giga {

/// Split-history bitmap: bit p set means partition p exists.
class Bitmap {
 public:
  Bitmap() { set(0); }  // partition 0 always exists

  void set(std::uint32_t p);
  bool test(std::uint32_t p) const;
  std::uint32_t highest() const;

  /// Partition index for a filename hash under this bitmap: walk down
  /// from the deepest radix until the partition exists.
  std::uint32_t partition_for(std::uint64_t hash) const;

  /// Merge knowledge from another bitmap (bitwise or).
  void merge(const Bitmap& other);

  bool operator==(const Bitmap& other) const;

 private:
  std::vector<std::uint64_t> words_ = std::vector<std::uint64_t>(1, 0);
};

std::uint64_t HashName(std::string_view name);

/// The radix depth of partition p: number of bitmap doublings it took to
/// create it (depth(0)=0, depth(1)=1, depth(2..3)=2, depth(4..7)=3, ...).
std::uint32_t PartitionDepth(std::uint32_t p);

/// Sibling created when partition p at depth d splits: p + 2^d.
std::uint32_t SplitChild(std::uint32_t p, std::uint32_t depth);

struct GigaParams {
  std::uint32_t num_servers = 8;
  std::uint32_t split_threshold = 2000;  ///< entries per partition before split
  double server_op_s = 150e-6;           ///< per-create service time
  double rpc_latency_s = 80e-6;
  /// Cost to migrate one entry during a split.
  double migrate_entry_s = 4e-6;
};

/// Server-side state: one metadata server holds many partitions (of many
/// directories; this model tracks a single huge directory, the Fig. 7
/// workload). Methods take/return virtual time and must run inside
/// scheduler atomically sections.
class GigaDirectory {
 public:
  GigaDirectory(const GigaParams& params);

  const GigaParams& params() const { return params_; }
  const Bitmap& bitmap() const { return bitmap_; }
  std::uint64_t total_entries() const { return total_entries_; }
  std::uint64_t splits() const { return splits_; }
  std::uint32_t partitions() const { return bitmap_.highest() + 1; }

  /// Which server hosts partition p (round-robin).
  std::uint32_t server_of(std::uint32_t p) const {
    return p % params_.num_servers;
  }

  /// Server-side create handling. `addressed` is the partition the client
  /// sent the request to (from its possibly-stale bitmap). Returns
  /// Errc::stale if this partition no longer covers the hash — the client
  /// must refresh (the returned fresh rows are modelled by the client
  /// merging our bitmap) and retry. On success may trigger a split.
  struct CreateOutcome {
    Status status;        ///< ok, stale, or exists
    double complete = 0;  ///< virtual completion time
  };
  CreateOutcome create(std::uint32_t addressed, std::uint64_t hash,
                       const std::string& name, double now);

  /// Lookup mirrors create's addressing rules.
  struct LookupOutcome {
    Status status;  ///< ok, stale, not_found
    double complete = 0;
  };
  LookupOutcome lookup(std::uint32_t addressed, std::uint64_t hash,
                       const std::string& name, double now);

  /// Invariant check (tests): every entry lives in the partition its hash
  /// addresses under the *current* bitmap.
  bool check_placement_invariant() const;

 private:
  /// Returns when the split's migration completes (now if no split).
  double maybe_split(std::uint32_t p, double now);

  GigaParams params_;
  Bitmap bitmap_;
  std::vector<sim::SimResource> servers_;
  /// Current radix depth of each live partition (grows as it re-splits).
  std::unordered_map<std::uint32_t, std::uint32_t> depth_;
  /// Partition -> set of (hash, name) entries. Names kept for exactness.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::string, std::uint64_t>>
      partitions_;
  std::uint64_t total_entries_ = 0;
  std::uint64_t splits_ = 0;
};

/// Client with a lazily-corrected cached bitmap.
class GigaClient {
 public:
  GigaClient(GigaDirectory& dir, sim::VirtualScheduler& sched, std::size_t actor)
      : dir_(dir), sched_(sched), actor_(actor) {}

  /// Creates a file, retrying on stale addressing. Returns final status
  /// (ok or exists) and counts retries.
  Status create(const std::string& name);
  Status lookup(const std::string& name);

  std::uint64_t stale_retries() const { return stale_retries_; }

 private:
  GigaDirectory& dir_;
  sim::VirtualScheduler& sched_;
  std::size_t actor_;
  Bitmap cached_;
  std::uint64_t stale_retries_ = 0;
};

}  // namespace pdsi::giga
