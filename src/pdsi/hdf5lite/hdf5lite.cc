#include "pdsi/hdf5lite/hdf5lite.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::hdf5lite {
namespace {

/// File layout: [0, kHeaderBytes) holds the superblock + object headers;
/// dataset payload begins after it (optionally stripe-aligned).
constexpr std::uint64_t kHeaderBytes = 16 * 1024;
constexpr std::uint64_t kMetadataRecord = 256;

std::uint64_t DataStart(const pfs::PfsConfig& cfg, const H5Options& opt) {
  if (!opt.align_to_stripe) return kHeaderBytes;
  return (kHeaderBytes + cfg.stripe_unit - 1) / cfg.stripe_unit * cfg.stripe_unit;
}

/// Record size for record k of a rank: irregular dumps perturb sizes so
/// region offsets never align (AMR boxes differ), keeping total constant.
std::uint64_t RecordBytes(const DumpSpec& spec, std::uint32_t k) {
  if (!spec.irregular) return spec.record_bytes;
  // +/- up to 25% in a deterministic pattern, zero-sum over 4 records.
  const std::int64_t quarter = static_cast<std::int64_t>(spec.record_bytes / 4);
  static constexpr std::int64_t kWave[4] = {1, -1, 1, -1};
  return spec.record_bytes + kWave[k % 4] * (quarter / 2) + (k % 7) * 64;
}

}  // namespace

DumpResult RunDump(const pfs::PfsConfig& cfg, const DumpSpec& spec,
                   const H5Options& options) {
  pfs::PfsConfig config = cfg;
  config.store_data = false;
  sim::VirtualScheduler sched(spec.ranks);
  std::vector<std::size_t> all(spec.ranks);
  for (std::uint32_t i = 0; i < spec.ranks; ++i) all[i] = i;
  sim::VirtualBarrier barrier(sched, all);
  pfs::PfsCluster cluster(config, sched);

  const std::uint64_t data_start = DataStart(config, options);
  double t_begin = 0.0, t_end = 0.0;
  std::uint64_t payload = 0;
  std::mutex mu;

  std::vector<std::thread> threads;
  threads.reserve(spec.ranks);
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      const double t0 = barrier.arrive(r);
      if (r == 0) t_begin = t0;

      pfs::FileHandle fh;
      if (r == 0) {
        fh = *client.create("/dump.h5");
        // Superblock write.
        Bytes header(1024);
        client.write(fh, 0, header);
        barrier.arrive(r);
      } else {
        barrier.arrive(r);
        fh = *client.open("/dump.h5");
      }

      // Region of this rank within the dataset. Without alignment the
      // region start inherits the odd header offset and the irregular
      // record sizes; with collective buffering the rank writes its
      // region in large contiguous buffers instead of per-record.
      std::uint64_t region_bytes = 0;
      for (std::uint32_t k = 0; k < spec.records_per_rank; ++k) {
        region_bytes += RecordBytes(spec, k);
      }
      // Alignment pads each rank's region to a stripe multiple so
      // neighbouring ranks never share a lock/RAID unit.
      std::uint64_t region_stride = region_bytes;
      if (options.align_to_stripe) {
        region_stride = (region_bytes + config.stripe_unit - 1) /
                        config.stripe_unit * config.stripe_unit;
      }
      const std::uint64_t region_start =
          data_start + static_cast<std::uint64_t>(r) * region_stride;

      std::uint64_t meta_done = 0;
      auto maybe_metadata = [&](std::uint32_t k) {
        if (options.metadata_coalescing) return;  // deferred to close
        // Eager header/attribute update every few records: a tiny write
        // into the shared header region (one lock unit for everyone).
        const std::uint64_t per = std::max<std::uint32_t>(
            1, spec.records_per_rank / std::max(1u, spec.metadata_updates_per_rank));
        if (k % per == 0 && meta_done < spec.metadata_updates_per_rank) {
          Bytes attr(kMetadataRecord);
          client.write(fh, (r * 8 + meta_done) % 32 * kMetadataRecord, attr);
          ++meta_done;
        }
      };

      std::uint64_t local = 0;
      if (options.collective_buffering) {
        // Two-phase I/O: records exchange into cb-sized contiguous
        // buffers; the file sees large sequential writes per rank.
        std::uint64_t pos = region_start;
        std::uint64_t pending = 0;
        for (std::uint32_t k = 0; k < spec.records_per_rank; ++k) {
          pending += RecordBytes(spec, k);
          maybe_metadata(k);
          if (pending >= options.cb_buffer_bytes ||
              k + 1 == spec.records_per_rank) {
            Bytes buf(pending);
            client.write(fh, pos, buf);
            pos += pending;
            local += pending;
            pending = 0;
          }
        }
      } else {
        // Independent I/O: one write per application record.
        std::uint64_t pos = region_start;
        for (std::uint32_t k = 0; k < spec.records_per_rank; ++k) {
          const std::uint64_t n = RecordBytes(spec, k);
          Bytes rec(n);
          maybe_metadata(k);
          client.write(fh, pos, rec);
          pos += n;
          local += n;
        }
      }

      if (options.metadata_coalescing) {
        // One coalesced header flush by rank 0 at close.
        if (r == 0) {
          Bytes header(kMetadataRecord * spec.metadata_updates_per_rank);
          client.write(fh, 0, header);
        }
      }
      client.close(fh);

      const double t1 = barrier.arrive(r);
      if (r == 0) t_end = t1;
      {
        std::lock_guard<std::mutex> lk(mu);
        payload += local;
      }
      sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();

  DumpResult out;
  out.seconds = t_end - t_begin;
  out.bytes = payload;
  return out;
}

DumpSpec ChomboSpec(std::uint32_t ranks) {
  DumpSpec s;
  s.name = "Chombo (AMR)";
  s.ranks = ranks;
  s.record_bytes = 40 * 1024;  // small irregular AMR box rows
  s.records_per_rank = 96;
  s.metadata_updates_per_rank = 12;
  s.irregular = true;
  return s;
}

DumpSpec GcrmSpec(std::uint32_t ranks) {
  DumpSpec s;
  s.name = "GCRM (global cloud model)";
  s.ranks = ranks;
  s.record_bytes = 128 * 1024;  // regular geodesic-grid slabs
  s.records_per_rank = 48;
  s.metadata_updates_per_rank = 6;
  s.irregular = false;
  return s;
}

}  // namespace pdsi::hdf5lite
