// hdf5lite — a miniature parallel hierarchical-format library over the
// simulated PFS, built to reproduce the NERSC/HDF-Group tuning study
// (§5.2.1, Fig. 13).
//
// A parallel "HDF5-style" dump has three performance sins on Lustre-like
// systems, each of which the study removed with one optimisation:
//  * every rank writes many small unaligned records (fix: collective
//    buffering — two-phase aggregation into large contiguous buffers),
//  * dataset regions straddle stripe/lock boundaries (fix: alignment),
//  * object headers and attributes are updated eagerly at the file front
//    by every rank, ping-ponging one lock unit (fix: metadata
//    coalescing — defer and flush once at close).
// The optimisations are independent toggles so the Fig. 13 cumulative
// bars can be regenerated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/pfs/config.h"

namespace pdsi::hdf5lite {

struct H5Options {
  bool collective_buffering = false;
  std::uint64_t cb_buffer_bytes = 4 * MiB;
  bool align_to_stripe = false;
  bool metadata_coalescing = false;
};

/// What one dump writes. `record_bytes` is the application's natural
/// write granularity (a variable's slab, an AMR box row, ...).
struct DumpSpec {
  std::string name = "dataset";
  std::uint32_t ranks = 64;
  std::uint64_t record_bytes = 48 * 1024;
  std::uint32_t records_per_rank = 64;
  /// Metadata updates issued per rank during the dump (attributes, object
  /// headers); each is a ~256 B write near the file front.
  std::uint32_t metadata_updates_per_rank = 16;
  /// Irregular layouts (Chombo AMR) perturb record sizes so nothing
  /// aligns even when the region start does.
  bool irregular = false;

  std::uint64_t bytes_per_rank() const {
    return record_bytes * records_per_rank;
  }
  std::uint64_t total_bytes() const {
    return bytes_per_rank() * ranks;
  }
};

struct DumpResult {
  double seconds = 0.0;
  std::uint64_t bytes = 0;
  double bandwidth() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
};

/// Runs one parallel dump through the simulated PFS with the given
/// optimisation set.
DumpResult RunDump(const pfs::PfsConfig& cfg, const DumpSpec& spec,
                   const H5Options& options);

/// The Fig. 13 application models (record shapes scaled to `ranks`).
DumpSpec ChomboSpec(std::uint32_t ranks);
DumpSpec GcrmSpec(std::uint32_t ranks);

}  // namespace pdsi::hdf5lite
