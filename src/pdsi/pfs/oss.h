// Object storage server: one disk + NIC + CPU behind an RPC interface.
//
// Timing methods take the caller's current virtual time and return the
// operation's completion time; they must be invoked only inside
// VirtualScheduler::atomically sections, which serialises access and
// guarantees requests arrive in nondecreasing virtual time (making the
// SimResource clocks exact FIFO queues).
//
// The server runs a write-back cache that aggregates contiguous per-object
// runs and flushes them to disk in large chunks — the mechanism that lets
// N sequential streams (PLFS logs) approach media rate while interleaved
// strided writes to one object degrade into small seek-bound I/Os.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "pdsi/common/stats.h"
#include "pdsi/obs/obs.h"
#include "pdsi/sim/virtual_time.h"
#include "pdsi/storage/disk_model.h"
#include "pdsi/pfs/config.h"

namespace pdsi::fault {
class FaultInjector;
}  // namespace pdsi::fault

namespace pdsi::pfs {

/// Fault-injection knobs (diagnosis experiments): service-time multipliers
/// applied to this server only.
struct OssPerturbation {
  double cpu_factor = 1.0;
  double disk_factor = 1.0;
  double net_factor = 1.0;
};

/// Windowed per-server metrics, as an external monitor would sample them.
struct OssMetrics {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  OnlineStats latency;  ///< per-request service latency (s)
};

class Oss {
 public:
  /// `ctx` (optional) makes every request emit a span on track
  /// obs::kOssTrackBase + index and feed the oss.* instruments.
  Oss(const PfsConfig& cfg, std::uint32_t index, obs::Context* ctx = nullptr);

  std::uint32_t index() const { return index_; }

  /// Accepts `len` bytes for `object_id` at object offset `off` arriving
  /// at time `now`; returns when the client's RPC completes (including
  /// any synchronous flush it triggered). `charge_rpc` is false for the
  /// tail requests of a batched wire message (pdsi::rpc): the batch head
  /// already paid the one-way latency, so tails enter the server
  /// pipeline directly. `req` (0 = unattributed) is the client's causal
  /// request id; it lands on the service span only when a live monitor
  /// is subscribed, so unmonitored traces stay byte-identical.
  double serve_write(std::uint64_t object_id, std::uint64_t off, std::uint64_t len,
                     double now, bool charge_rpc = true, std::uint64_t req = 0);

  /// Serves a read; sequential readers hit the readahead window.
  double serve_read(std::uint64_t object_id, std::uint64_t off, std::uint64_t len,
                    double now, bool charge_rpc = true, std::uint64_t req = 0);

  /// Serves a failover read for data whose primary server is down:
  /// charged like a cold read (rpc + cpu + disk + nic) without touching
  /// this server's cache state (the replica copy's cache is not modelled).
  double serve_failover_read(std::uint64_t object_id, std::uint64_t off,
                             std::uint64_t len, double now,
                             std::uint64_t req = 0);

  /// Metadata-ish small op on this server (e.g. object create).
  double serve_small_op(double now, std::uint64_t req = 0);

  /// Forces pending dirty data for the object to disk.
  double flush(std::uint64_t object_id, double now);

  /// Drops cached state for an object (unlink).
  void forget(std::uint64_t object_id);

  void set_perturbation(const OssPerturbation& p) { perturb_ = p; }
  const OssPerturbation& perturbation() const { return perturb_; }

  /// Installs the cluster's fault injector: its per-server disk factor
  /// multiplies every disk charge, and volatile cache state (write-back
  /// runs, readahead windows) is dropped once a crash window has passed.
  void set_fault(const fault::FaultInjector* f) { fault_ = f; }

  /// Snapshot-and-reset windowed metrics (monitor sampling).
  OssMetrics drain_metrics();

  const storage::DiskModel& disk() const { return disk_; }
  double disk_busy_seconds() const { return disk_res_.busy_seconds(); }

 private:
  struct ObjectState {
    std::uint64_t pending_start = 0;  ///< dirty run awaiting flush
    std::uint64_t pending_len = 0;
    std::uint64_t ra_start = 0;       ///< readahead window
    std::uint64_t ra_len = 0;
    std::uint64_t size = 0;           ///< highest byte stored here
  };

  double rmw_charge(std::uint64_t object_id, std::uint64_t off, double t);
  double flush_pending(ObjectState& st, std::uint64_t object_id, double t);
  /// Crash recovery: if an injected crash window began since the last
  /// request, the restarted server has lost its volatile cache (dirty
  /// write-back runs and readahead windows; object sizes are on disk).
  void maybe_crash_reset(double now);
  void record(double start, double end, std::uint64_t len);
  /// Charges a disk access and splits the service into seek vs transfer
  /// time for the obs gauges; emits a "disk" span when tracing.
  double disk_charge(std::uint64_t object_id, std::uint64_t off,
                     std::uint64_t len, double t, const char* what);

  const PfsConfig& cfg_;
  std::uint32_t index_;
  storage::DiskModel disk_;
  sim::SimResource disk_res_;
  sim::SimResource nic_res_;
  sim::SimResource cpu_res_;
  OssPerturbation perturb_;
  const fault::FaultInjector* fault_ = nullptr;
  double fault_checked_ = 0.0;  ///< crash windows scanned up to here
  OssMetrics metrics_;
  std::unordered_map<std::uint64_t, ObjectState> objects_;

  // Observability (all null when no context is installed).
  obs::Context* ctx_ = nullptr;
  obs::Counter* c_bytes_written_ = nullptr;
  obs::Counter* c_bytes_read_ = nullptr;
  obs::Counter* c_ops_ = nullptr;
  obs::Gauge* g_seek_s_ = nullptr;
  obs::Gauge* g_transfer_s_ = nullptr;
  obs::Histogram* h_write_lat_ = nullptr;
  obs::Histogram* h_read_lat_ = nullptr;
};

}  // namespace pdsi::pfs
