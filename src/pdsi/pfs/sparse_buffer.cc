#include "pdsi/pfs/sparse_buffer.h"

#include <algorithm>
#include <cstring>

namespace pdsi::pfs {

void SparseBuffer::write(std::uint64_t off, std::span<const std::uint8_t> data) {
  std::uint64_t pos = off;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t chunk = pos / chunk_bytes_;
    const std::size_t in_chunk = static_cast<std::size_t>(pos % chunk_bytes_);
    const std::size_t n = std::min(chunk_bytes_ - in_chunk, data.size() - i);
    auto& store = chunks_[chunk];
    if (store.empty()) store.assign(chunk_bytes_, 0);
    std::memcpy(store.data() + in_chunk, data.data() + i, n);
    pos += n;
    i += n;
  }
  size_ = std::max(size_, off + data.size());
}

void SparseBuffer::read(std::uint64_t off, std::span<std::uint8_t> out) const {
  std::uint64_t pos = off;
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t chunk = pos / chunk_bytes_;
    const std::size_t in_chunk = static_cast<std::size_t>(pos % chunk_bytes_);
    const std::size_t n = std::min(chunk_bytes_ - in_chunk, out.size() - i);
    auto it = chunks_.find(chunk);
    if (it == chunks_.end()) {
      std::memset(out.data() + i, 0, n);
    } else {
      std::memcpy(out.data() + i, it->second.data() + in_chunk, n);
    }
    pos += n;
    i += n;
  }
}

void SparseBuffer::truncate(std::uint64_t new_size) {
  size_ = new_size;
  const std::uint64_t first_dead =
      (new_size + chunk_bytes_ - 1) / chunk_bytes_;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->first >= first_dead) {
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  // Zero the tail of the boundary chunk so re-extension reads zeros.
  if (new_size % chunk_bytes_ != 0) {
    auto it = chunks_.find(new_size / chunk_bytes_);
    if (it != chunks_.end()) {
      std::fill(it->second.begin() + static_cast<long>(new_size % chunk_bytes_),
                it->second.end(), 0);
    }
  }
}

}  // namespace pdsi::pfs
