#include "pdsi/pfs/config.h"

namespace pdsi::pfs {

std::string_view LockProtocolName(LockProtocol p) {
  switch (p) {
    case LockProtocol::none: return "none";
    case LockProtocol::extent: return "extent";
    case LockProtocol::whole_file: return "whole_file";
  }
  return "?";
}

PfsConfig PfsConfig::PanFsLike(std::uint32_t num_oss) {
  PfsConfig c;
  c.name = "panfs-like";
  c.num_oss = num_oss;
  c.locking = LockProtocol::extent;
  c.lock_unit = 64 * KiB;
  c.lock_revoke_s = 0.8e-3;
  // Object RAID: unaligned shared-file writes pay parity read-modify-write.
  c.rmw_on_unaligned = true;
  c.rmw_unit = 64 * KiB;
  return c;
}

PfsConfig PfsConfig::LustreLike(std::uint32_t num_oss) {
  PfsConfig c;
  c.name = "lustre-like";
  c.num_oss = num_oss;
  c.locking = LockProtocol::extent;
  // LDLM extent locks: coarser grain, pricier ping-pong.
  c.lock_unit = 1 * MiB;
  c.lock_revoke_s = 1.5e-3;
  c.rmw_on_unaligned = false;  // no client-visible parity RMW
  return c;
}

PfsConfig PfsConfig::GpfsLike(std::uint32_t num_oss) {
  PfsConfig c;
  c.name = "gpfs-like";
  c.num_oss = num_oss;
  c.locking = LockProtocol::extent;
  // Block-granular byte-range tokens.
  c.lock_unit = 256 * KiB;
  c.lock_revoke_s = 1.0e-3;
  c.rmw_on_unaligned = true;
  c.rmw_unit = 256 * KiB;
  return c;
}

PfsConfig PfsConfig::PvfsLike(std::uint32_t num_oss) {
  PfsConfig c;
  c.name = "pvfs-like";
  c.num_oss = num_oss;
  c.locking = LockProtocol::none;
  c.rmw_on_unaligned = false;
  return c;
}

}  // namespace pdsi::pfs
