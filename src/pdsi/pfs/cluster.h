// PfsCluster: the assembled parallel file system substrate — one MDS,
// N object storage servers, a placement strategy, byte-range lock state,
// and (optionally) the actual file bytes for read-back verification.
//
// All state mutation happens inside VirtualScheduler::atomically sections
// entered by PfsClient, so the cluster needs no internal locking.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pdsi/obs/obs.h"
#include "pdsi/pfs/config.h"
#include "pdsi/pfs/mds.h"
#include "pdsi/pfs/oss.h"
#include "pdsi/pfs/sharded_mds.h"
#include "pdsi/pfs/placement.h"
#include "pdsi/pfs/sparse_buffer.h"
#include "pdsi/sim/virtual_time.h"

namespace pdsi::fault {
class FaultInjector;
}  // namespace pdsi::fault

namespace pdsi::pfs {

class PfsCluster {
 public:
  /// `obs` (optional, must outlive the cluster) turns the whole substrate
  /// observable: the MDS, every OSS, and the clients constructed on this
  /// cluster all trace into it.
  PfsCluster(PfsConfig cfg, sim::VirtualScheduler& sched,
             std::unique_ptr<PlacementStrategy> placement = nullptr,
             obs::Context* obs = nullptr);

  PfsCluster(const PfsCluster&) = delete;
  PfsCluster& operator=(const PfsCluster&) = delete;

  const PfsConfig& config() const { return cfg_; }
  sim::VirtualScheduler& scheduler() { return sched_; }
  /// The sharded metadata service (one shard under the default config).
  ShardedMds& smds() { return smds_; }
  /// Shard 0 — the whole MDS under the default single-shard config; kept
  /// for tests and tools that poke the namespace directly.
  Mds& mds() { return smds_.shard(0); }
  Oss& oss(std::uint32_t i) { return *servers_[i]; }
  std::uint32_t num_oss() const { return static_cast<std::uint32_t>(servers_.size()); }
  const PlacementStrategy& placement() const { return *placement_; }
  obs::Context* obs_ctx() const { return obs_; }

  /// Aggregate disk busy-time across servers (utilisation reporting).
  double total_disk_busy() const;

  /// Installs (or clears, with nullptr) the fault injector consulted by
  /// clients, servers and drain targets. Install before traffic starts;
  /// the injector must outlive its use. nullptr (the default) keeps every
  /// data path byte-identical to a fault-free build.
  void set_fault(fault::FaultInjector* f);
  fault::FaultInjector* fault() const { return fault_; }

  // -- File payload (present when cfg.store_data) --
  SparseBuffer* data_for(std::uint64_t file_id, bool create_if_missing);
  void drop_data(std::uint64_t file_id);

  // -- Byte-range lock state --
  struct LockUnit {
    std::uint32_t holder = kNoHolder;
    double free = 0.0;  ///< earliest instant the token can move again
  };
  static constexpr std::uint32_t kNoHolder = ~0u;

  LockUnit& lock_unit(std::uint64_t file_id, std::uint64_t unit);
  void drop_locks(std::uint64_t file_id);

  /// Servers a file has touched (for fsync/unlink fan-out).
  std::unordered_set<std::uint32_t>& touched_servers(std::uint64_t file_id);
  void drop_touched(std::uint64_t file_id);

 private:
  PfsConfig cfg_;
  sim::VirtualScheduler& sched_;
  std::unique_ptr<PlacementStrategy> placement_;
  obs::Context* obs_;
  fault::FaultInjector* fault_ = nullptr;
  ShardedMds smds_;
  std::vector<std::unique_ptr<Oss>> servers_;
  std::unordered_map<std::uint64_t, SparseBuffer> file_data_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, LockUnit>> locks_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>> touched_;
};

}  // namespace pdsi::pfs
