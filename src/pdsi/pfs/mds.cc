#include "pdsi/pfs/mds.h"

#include <stdexcept>

namespace pdsi::pfs {

std::string NormalizePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("path must be absolute: " + std::string(path));
  }
  std::string out;
  out.reserve(path.size());
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) {
      out.push_back('/');
      out.append(path.substr(i, j - i));
    }
    i = j;
  }
  if (out.empty()) out = "/";
  return out;
}

std::string ParentPath(const std::string& normalized) {
  const auto pos = normalized.find_last_of('/');
  if (pos == 0 || pos == std::string::npos) return "/";
  return normalized.substr(0, pos);
}

Mds::Mds(const PfsConfig& cfg, obs::Context* ctx, std::uint32_t shard,
         std::uint32_t num_shards)
    : cfg_(cfg),
      track_(obs::kMdsTrack + shard),
      next_file_id_(1 + shard),
      id_stride_(num_shards == 0 ? 1 : num_shards),
      ctx_(ctx) {
  Inode root;
  root.is_dir = true;
  namespace_.emplace("/", root);
  // Single-shard instruments keep the historical names (and so the
  // historical metric dumps); shards of a sharded namespace get
  // per-shard names and tracks.
  if (num_shards > 1) iprefix_ = "mds.s" + std::to_string(shard) + ".";
  if (ctx_ && ctx_->registry) {
    c_ops_ = &ctx_->registry->counter(iprefix_ + "ops");
    h_lat_ = &ctx_->registry->histogram(iprefix_ + "op_latency_s",
                                        obs::LatencyBuckets());
  }
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->track(track_, num_shards > 1
                                    ? "mds" + std::to_string(shard)
                                    : "mds");
  }
}

namespace {
/// True when the span should carry the client's causal request id: a
/// non-zero id and a live subscriber (unmonitored traces stay identical).
bool TagReq(const obs::Context* ctx, std::uint64_t req) {
  return req != 0 && ctx->tracer->has_subscribers();
}
}  // namespace

double Mds::charge(double now, std::uint64_t req) {
  const double done = service_.reserve(now, cfg_.mds_op_s);
  if (ctx_) {
    if (c_ops_) c_ops_->add(1);
    if (h_lat_) h_lat_->add(done - now);
    if (ctx_->tracer) {
      if (TagReq(ctx_, req)) {
        ctx_->tracer->complete(track_, "op", "mds", done - cfg_.mds_op_s,
                               done, {obs::Arg::Int("req", req)});
      } else {
        ctx_->tracer->complete(track_, "op", "mds", done - cfg_.mds_op_s,
                               done);
      }
    }
  }
  return done;
}

double Mds::charge_fraction(double now, double fraction, std::uint64_t req) {
  const double done = service_.reserve(now, cfg_.mds_op_s * fraction);
  if (ctx_) {
    if (c_ops_) c_ops_->add(1);
    if (h_lat_) h_lat_->add(done - now);
    if (ctx_->tracer) {
      if (TagReq(ctx_, req)) {
        ctx_->tracer->complete(track_, "group_op", "mds",
                               done - cfg_.mds_op_s * fraction, done,
                               {obs::Arg::Num("fraction", fraction),
                                obs::Arg::Int("req", req)});
      } else {
        ctx_->tracer->complete(track_, "group_op", "mds",
                               done - cfg_.mds_op_s * fraction, done,
                               {obs::Arg::Num("fraction", fraction)});
      }
    }
  }
  return done;
}

double Mds::publish(double now, double fraction, std::uint64_t req) {
  const double cost = cfg_.mds_op_s * fraction;
  const double done = service_.reserve(now, cost);
  if (ctx_) {
    if (ctx_->registry && c_publishes_ == nullptr) {
      c_publishes_ = &ctx_->registry->counter(iprefix_ + "publishes");
    }
    if (c_publishes_) c_publishes_->add(1);
    if (ctx_->tracer) {
      if (TagReq(ctx_, req)) {
        ctx_->tracer->complete(track_, "publish", "mds", done - cost,
                               done,
                               {obs::Arg::Num("fraction", fraction),
                                obs::Arg::Int("req", req)});
      } else {
        ctx_->tracer->complete(track_, "publish", "mds", done - cost,
                               done, {obs::Arg::Num("fraction", fraction)});
      }
    }
  }
  return done;
}

double Mds::charge_dir(const std::string& parent, double now,
                       std::uint64_t req) {
  const double done = dir_locks_[parent].reserve(now, cfg_.mds_dir_lock_s);
  if (ctx_ && ctx_->tracer) {
    // The span covers the lock hold; queueing shows as the gap from `now`.
    if (TagReq(ctx_, req)) {
      ctx_->tracer->complete(track_, "dir_lock", "mds",
                             done - cfg_.mds_dir_lock_s, done,
                             {obs::Arg::Int("req", req)});
    } else {
      ctx_->tracer->complete(track_, "dir_lock", "mds",
                             done - cfg_.mds_dir_lock_s, done);
    }
  }
  return done;
}

Result<Inode> Mds::create(const std::string& path, double mtime) {
  const std::string p = NormalizePath(path);
  if (namespace_.count(p)) return Errc::exists;
  auto parent = namespace_.find(ParentPath(p));
  if (parent == namespace_.end()) return Errc::not_found;
  if (!parent->second.is_dir) return Errc::not_dir;
  Inode node;
  node.file_id = next_file_id_;
  next_file_id_ += id_stride_;
  node.mtime = mtime;
  namespace_.emplace(p, node);
  return node;
}

Result<Inode> Mds::lookup(const std::string& path) const {
  auto it = namespace_.find(NormalizePath(path));
  if (it == namespace_.end()) return Errc::not_found;
  return it->second;
}

Status Mds::mkdir(const std::string& path) {
  const std::string p = NormalizePath(path);
  if (namespace_.count(p)) return Errc::exists;
  auto parent = namespace_.find(ParentPath(p));
  if (parent == namespace_.end()) return Errc::not_found;
  if (!parent->second.is_dir) return Errc::not_dir;
  Inode node;
  node.file_id = next_file_id_;
  next_file_id_ += id_stride_;
  node.is_dir = true;
  namespace_.emplace(p, node);
  return Status::Ok();
}

bool Mds::has_children(const std::string& normalized) const {
  // Scan from the first key sorting after "<dir>/": the immediate map
  // successor of "/a" can be a sibling like "/a.x" ('.' < '/'), so the
  // probe must seek past every such sibling before testing the prefix.
  const std::string prefix =
      normalized == "/" ? "/" : normalized + "/";
  auto child = namespace_.lower_bound(prefix);
  if (child != namespace_.end() && child->first == normalized) ++child;
  return child != namespace_.end() &&
         child->first.compare(0, prefix.size(), prefix) == 0;
}

Status Mds::unlink(const std::string& path) {
  const std::string p = NormalizePath(path);
  if (p == "/") return Errc::not_supported;  // the root is not unlinkable
  auto it = namespace_.find(p);
  if (it == namespace_.end()) return Errc::not_found;
  if (it->second.is_dir && has_children(p)) return Errc::not_empty;
  namespace_.erase(it);
  return Status::Ok();
}

Status Mds::rename(const std::string& from, const std::string& to,
                   double mtime) {
  const std::string f = NormalizePath(from);
  const std::string t = NormalizePath(to);
  auto it = namespace_.find(f);
  if (it == namespace_.end()) return Errc::not_found;
  if (it->second.is_dir) return Errc::not_supported;  // file rename only
  if (f == t) return Status::Ok();  // POSIX: same-path rename is a no-op
  if (namespace_.count(t)) return Errc::exists;
  auto parent = namespace_.find(ParentPath(t));
  if (parent == namespace_.end()) return Errc::not_found;
  if (!parent->second.is_dir) return Errc::not_dir;
  Inode node = it->second;
  node.mtime = mtime;
  namespace_.erase(it);
  namespace_.emplace(t, node);
  return Status::Ok();
}

Result<std::vector<std::string>> Mds::readdir(const std::string& path) const {
  const std::string p = NormalizePath(path);
  auto it = namespace_.find(p);
  if (it == namespace_.end()) return Errc::not_found;
  if (!it->second.is_dir) return Errc::not_dir;
  std::vector<std::string> names;
  const std::string prefix = p == "/" ? "/" : p + "/";
  for (auto child = namespace_.upper_bound(prefix);
       child != namespace_.end() && child->first.compare(0, prefix.size(), prefix) == 0;
       ++child) {
    const std::string rest = child->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

void Mds::extend(const std::string& path, std::uint64_t new_size, double mtime) {
  auto it = namespace_.find(NormalizePath(path));
  if (it == namespace_.end() || it->second.is_dir) return;
  if (new_size > it->second.size) it->second.size = new_size;
  it->second.mtime = mtime;
}

void Mds::install(const std::string& normalized, const Inode& inode) {
  namespace_[normalized] = inode;
}

bool Mds::take(const std::string& normalized, Inode* out) {
  auto it = namespace_.find(normalized);
  if (it == namespace_.end()) return false;
  if (out) *out = it->second;
  namespace_.erase(it);
  return true;
}

double Mds::migrate(double now, double cost, std::uint64_t partition,
                    std::uint64_t moved, std::uint64_t req) {
  const double done = service_.reserve(now, cost);
  if (ctx_ && ctx_->tracer) {
    if (TagReq(ctx_, req)) {
      ctx_->tracer->complete(track_, "split_migrate", "mds", done - cost,
                             done,
                             {obs::Arg::Int("partition", partition),
                              obs::Arg::Int("moved", moved),
                              obs::Arg::Int("req", req)});
    } else {
      ctx_->tracer->complete(track_, "split_migrate", "mds", done - cost,
                             done,
                             {obs::Arg::Int("partition", partition),
                              obs::Arg::Int("moved", moved)});
    }
  }
  return done;
}

}  // namespace pdsi::pfs
