#include "pdsi/pfs/mds.h"

#include <stdexcept>

namespace pdsi::pfs {

std::string NormalizePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    throw std::invalid_argument("path must be absolute: " + std::string(path));
  }
  std::string out;
  out.reserve(path.size());
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) {
      out.push_back('/');
      out.append(path.substr(i, j - i));
    }
    i = j;
  }
  if (out.empty()) out = "/";
  return out;
}

std::string ParentPath(const std::string& normalized) {
  const auto pos = normalized.find_last_of('/');
  if (pos == 0 || pos == std::string::npos) return "/";
  return normalized.substr(0, pos);
}

Mds::Mds(const PfsConfig& cfg) : cfg_(cfg) {
  Inode root;
  root.is_dir = true;
  namespace_.emplace("/", root);
}

double Mds::charge(double now) { return service_.reserve(now, cfg_.mds_op_s); }

double Mds::charge_fraction(double now, double fraction) {
  return service_.reserve(now, cfg_.mds_op_s * fraction);
}

double Mds::charge_dir(const std::string& parent, double now) {
  return dir_locks_[parent].reserve(now, cfg_.mds_dir_lock_s);
}

Result<Inode> Mds::create(const std::string& path, double mtime) {
  const std::string p = NormalizePath(path);
  if (namespace_.count(p)) return Errc::exists;
  auto parent = namespace_.find(ParentPath(p));
  if (parent == namespace_.end()) return Errc::not_found;
  if (!parent->second.is_dir) return Errc::not_dir;
  Inode node;
  node.file_id = next_file_id_++;
  node.mtime = mtime;
  namespace_.emplace(p, node);
  return node;
}

Result<Inode> Mds::lookup(const std::string& path) const {
  auto it = namespace_.find(NormalizePath(path));
  if (it == namespace_.end()) return Errc::not_found;
  return it->second;
}

Status Mds::mkdir(const std::string& path) {
  const std::string p = NormalizePath(path);
  if (namespace_.count(p)) return Errc::exists;
  auto parent = namespace_.find(ParentPath(p));
  if (parent == namespace_.end()) return Errc::not_found;
  if (!parent->second.is_dir) return Errc::not_dir;
  Inode node;
  node.file_id = next_file_id_++;
  node.is_dir = true;
  namespace_.emplace(p, node);
  return Status::Ok();
}

Status Mds::unlink(const std::string& path) {
  const std::string p = NormalizePath(path);
  auto it = namespace_.find(p);
  if (it == namespace_.end()) return Errc::not_found;
  if (it->second.is_dir) {
    // Directory must be empty.
    auto next = std::next(it);
    if (next != namespace_.end() && next->first.size() > p.size() &&
        next->first.compare(0, p.size(), p) == 0 && next->first[p.size()] == '/') {
      return Errc::not_empty;
    }
  }
  namespace_.erase(it);
  return Status::Ok();
}

Status Mds::rename(const std::string& from, const std::string& to) {
  const std::string f = NormalizePath(from);
  const std::string t = NormalizePath(to);
  auto it = namespace_.find(f);
  if (it == namespace_.end()) return Errc::not_found;
  if (it->second.is_dir) return Errc::not_supported;  // file rename only
  if (namespace_.count(t)) return Errc::exists;
  auto parent = namespace_.find(ParentPath(t));
  if (parent == namespace_.end()) return Errc::not_found;
  if (!parent->second.is_dir) return Errc::not_dir;
  Inode node = it->second;
  namespace_.erase(it);
  namespace_.emplace(t, node);
  return Status::Ok();
}

Result<std::vector<std::string>> Mds::readdir(const std::string& path) const {
  const std::string p = NormalizePath(path);
  auto it = namespace_.find(p);
  if (it == namespace_.end()) return Errc::not_found;
  if (!it->second.is_dir) return Errc::not_dir;
  std::vector<std::string> names;
  const std::string prefix = p == "/" ? "/" : p + "/";
  for (auto child = namespace_.upper_bound(prefix);
       child != namespace_.end() && child->first.compare(0, prefix.size(), prefix) == 0;
       ++child) {
    const std::string rest = child->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

void Mds::extend(const std::string& path, std::uint64_t new_size, double mtime) {
  auto it = namespace_.find(NormalizePath(path));
  if (it == namespace_.end() || it->second.is_dir) return;
  if (new_size > it->second.size) it->second.size = new_size;
  it->second.mtime = mtime;
}

}  // namespace pdsi::pfs
