// Metadata server: a single ordered namespace behind one service queue.
//
// Production parallel file systems of the era funnelled namespace
// operations through one metadata server; the create-storm serialisation
// this causes is the motivation for GIGA+ (src/pdsi/giga), which the
// Fig. 7 bench contrasts against this MDS.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <string>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/obs/obs.h"
#include "pdsi/sim/virtual_time.h"
#include "pdsi/pfs/config.h"

namespace pdsi::pfs {

struct Inode {
  std::uint64_t file_id = 0;
  bool is_dir = false;
  std::uint64_t size = 0;      ///< logical EOF (files)
  double mtime = 0.0;
};

/// Normalises a path: leading '/', no trailing '/' (except root), no empty
/// components. Throws std::invalid_argument on malformed input.
std::string NormalizePath(std::string_view path);

/// Parent directory of a normalised path ("/" for top-level entries).
std::string ParentPath(const std::string& normalized);

class Mds {
 public:
  /// `ctx` (optional) traces every charged op on track obs::kMdsTrack and
  /// feeds the mds.* instruments.
  explicit Mds(const PfsConfig& cfg, obs::Context* ctx = nullptr);

  // -- Timed RPC wrappers: charge one metadata service slot and return
  //    the completion time. Call only inside scheduler atomically blocks.
  //    `req` (0 = unattributed) is the client's causal request id; it is
  //    stamped on the service span only when a live monitor subscribes,
  //    so unmonitored traces stay byte-identical.
  double charge(double now, std::uint64_t req = 0);

  /// Charges a fraction of one op (group operations amortise the MDS
  /// work over the participants).
  double charge_fraction(double now, double fraction, std::uint64_t req = 0);

  /// Visibility publication for the relaxed consistency models: one
  /// metadata op (scaled by `fraction`) that makes a client's pending
  /// writes promised to others — charged at close under session, at
  /// fsync under commit, amortised across the collective under mpiio.
  /// Instruments lazily ("mds.publishes"), so runs that never publish
  /// keep their metric dumps byte-identical.
  double publish(double now, double fraction = 1.0, std::uint64_t req = 0);

  /// Namespace mutations additionally serialise on the parent directory's
  /// lock (concurrent creates into one directory contend; this is what
  /// PLFS hostdir fan-out spreads out).
  double charge_dir(const std::string& parent, double now,
                    std::uint64_t req = 0);

  // -- Namespace operations (zero-cost state transitions; pair them with
  //    charge() from the client layer).
  Result<Inode> create(const std::string& path, double mtime);
  Result<Inode> lookup(const std::string& path) const;
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<std::vector<std::string>> readdir(const std::string& path) const;

  /// Updates the authoritative size if the write extended the file.
  void extend(const std::string& path, std::uint64_t new_size, double mtime);

  std::size_t entry_count() const { return namespace_.size(); }

 private:
  const PfsConfig& cfg_;
  sim::SimResource service_;
  std::unordered_map<std::string, sim::SimResource> dir_locks_;
  std::uint64_t next_file_id_ = 1;
  std::map<std::string, Inode> namespace_;  ///< ordered for readdir scans

  obs::Context* ctx_ = nullptr;
  obs::Counter* c_ops_ = nullptr;
  obs::Histogram* h_lat_ = nullptr;
  obs::Counter* c_publishes_ = nullptr;  ///< created on first publish()
};

}  // namespace pdsi::pfs
