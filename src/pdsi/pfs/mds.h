// Metadata server: a single ordered namespace behind one service queue.
//
// Production parallel file systems of the era funnelled namespace
// operations through one metadata server; the create-storm serialisation
// this causes is the motivation for GIGA+ (src/pdsi/giga), which the
// Fig. 7 bench contrasts against this MDS.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <string>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/obs/obs.h"
#include "pdsi/sim/virtual_time.h"
#include "pdsi/pfs/config.h"

namespace pdsi::pfs {

struct Inode {
  std::uint64_t file_id = 0;
  bool is_dir = false;
  std::uint64_t size = 0;      ///< logical EOF (files)
  double mtime = 0.0;
};

/// Normalises a path: leading '/', no trailing '/' (except root), no empty
/// components. Throws std::invalid_argument on malformed input.
std::string NormalizePath(std::string_view path);

/// Parent directory of a normalised path ("/" for top-level entries).
std::string ParentPath(const std::string& normalized);

class Mds {
 public:
  /// `ctx` (optional) traces every charged op on track obs::kMdsTrack and
  /// feeds the mds.* instruments. `shard`/`num_shards` place this MDS in
  /// a sharded namespace (pdsi::pfs::ShardedMds): file ids are allocated
  /// from the interleaved stream shard+1, shard+1+N, ... so ids stay
  /// globally unique, and with num_shards > 1 the instruments and trace
  /// track are suffixed per shard ("mds.s<k>.*", track kMdsTrack + k).
  /// The single-shard default is byte-identical to the historical MDS.
  explicit Mds(const PfsConfig& cfg, obs::Context* ctx = nullptr,
               std::uint32_t shard = 0, std::uint32_t num_shards = 1);

  // -- Timed RPC wrappers: charge one metadata service slot and return
  //    the completion time. Call only inside scheduler atomically blocks.
  //    `req` (0 = unattributed) is the client's causal request id; it is
  //    stamped on the service span only when a live monitor subscribes,
  //    so unmonitored traces stay byte-identical.
  double charge(double now, std::uint64_t req = 0);

  /// Charges a fraction of one op (group operations amortise the MDS
  /// work over the participants).
  double charge_fraction(double now, double fraction, std::uint64_t req = 0);

  /// Visibility publication for the relaxed consistency models: one
  /// metadata op (scaled by `fraction`) that makes a client's pending
  /// writes promised to others — charged at close under session, at
  /// fsync under commit, amortised across the collective under mpiio.
  /// Instruments lazily ("mds.publishes"), so runs that never publish
  /// keep their metric dumps byte-identical.
  double publish(double now, double fraction = 1.0, std::uint64_t req = 0);

  /// Namespace mutations additionally serialise on the parent directory's
  /// lock (concurrent creates into one directory contend; this is what
  /// PLFS hostdir fan-out spreads out).
  double charge_dir(const std::string& parent, double now,
                    std::uint64_t req = 0);

  // -- Namespace operations (zero-cost state transitions; pair them with
  //    charge() from the client layer).
  Result<Inode> create(const std::string& path, double mtime);
  Result<Inode> lookup(const std::string& path) const;
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  /// POSIX file rename: `from == to` succeeds as a no-op; otherwise the
  /// destination inode's mtime is stamped with `mtime`.
  Status rename(const std::string& from, const std::string& to, double mtime);
  Result<std::vector<std::string>> readdir(const std::string& path) const;

  /// Updates the authoritative size if the write extended the file.
  void extend(const std::string& path, std::uint64_t new_size, double mtime);

  /// True when any entry lives strictly below directory `normalized`
  /// (the unlink emptiness probe — a prefix scan, so siblings that sort
  /// between the directory and its children, like "/a.x" between "/a"
  /// and "/a/b", cannot fool it).
  bool has_children(const std::string& normalized) const;

  // -- Sharded-namespace support (pdsi::pfs::ShardedMds) --
  /// Installs an inode verbatim (directory replication, split
  /// migration); overwrites any existing entry, allocates no id.
  void install(const std::string& normalized, const Inode& inode);
  /// Removes an entry verbatim and returns it (split migration). False
  /// when absent.
  bool take(const std::string& normalized, Inode* out);
  /// Reserves `cost` seconds of this shard's service queue for split
  /// migration work, tracing one span covering the transfer of `moved`
  /// entries of partition `partition`.
  double migrate(double now, double cost, std::uint64_t partition,
                 std::uint64_t moved, std::uint64_t req = 0);

  std::size_t entry_count() const { return namespace_.size(); }

 private:
  const PfsConfig& cfg_;
  sim::SimResource service_;
  std::unordered_map<std::string, sim::SimResource> dir_locks_;
  std::uint32_t track_ = 0;
  std::string iprefix_ = "mds.";  ///< instrument prefix ("mds.s<k>." sharded)
  std::uint64_t next_file_id_ = 1;
  std::uint64_t id_stride_ = 1;
  std::map<std::string, Inode> namespace_;  ///< ordered for readdir scans

  obs::Context* ctx_ = nullptr;
  obs::Counter* c_ops_ = nullptr;
  obs::Histogram* h_lat_ = nullptr;
  obs::Counter* c_publishes_ = nullptr;  ///< created on first publish()
};

}  // namespace pdsi::pfs
