#include "pdsi/pfs/cluster.h"

namespace pdsi::pfs {

PfsCluster::PfsCluster(PfsConfig cfg, sim::VirtualScheduler& sched,
                       std::unique_ptr<PlacementStrategy> placement,
                       obs::Context* obs)
    : cfg_(std::move(cfg)),
      sched_(sched),
      placement_(placement ? std::move(placement) : MakeRoundRobinPlacement()),
      obs_(obs),
      smds_(cfg_, obs_) {
  servers_.reserve(cfg_.num_oss);
  for (std::uint32_t i = 0; i < cfg_.num_oss; ++i) {
    servers_.push_back(std::make_unique<Oss>(cfg_, i, obs_));
  }
}

void PfsCluster::set_fault(fault::FaultInjector* f) {
  fault_ = f;
  for (auto& s : servers_) s->set_fault(f);
}

double PfsCluster::total_disk_busy() const {
  double t = 0.0;
  for (const auto& s : servers_) t += s->disk_busy_seconds();
  return t;
}

SparseBuffer* PfsCluster::data_for(std::uint64_t file_id, bool create_if_missing) {
  if (!cfg_.store_data) return nullptr;
  auto it = file_data_.find(file_id);
  if (it == file_data_.end()) {
    if (!create_if_missing) return nullptr;
    it = file_data_.emplace(file_id, SparseBuffer{}).first;
  }
  return &it->second;
}

void PfsCluster::drop_data(std::uint64_t file_id) { file_data_.erase(file_id); }

PfsCluster::LockUnit& PfsCluster::lock_unit(std::uint64_t file_id, std::uint64_t unit) {
  return locks_[file_id][unit];
}

void PfsCluster::drop_locks(std::uint64_t file_id) { locks_.erase(file_id); }

std::unordered_set<std::uint32_t>& PfsCluster::touched_servers(std::uint64_t file_id) {
  return touched_[file_id];
}

void PfsCluster::drop_touched(std::uint64_t file_id) { touched_.erase(file_id); }

}  // namespace pdsi::pfs
