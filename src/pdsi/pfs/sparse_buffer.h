// Chunked sparse byte store backing simulated file contents. Files written
// N-to-1 strided are sparse until all ranks land, and benchmark files can
// be multi-GiB, so storage is allocated in fixed chunks on first touch and
// holes read back as zeros (POSIX semantics).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace pdsi::pfs {

class SparseBuffer {
 public:
  explicit SparseBuffer(std::size_t chunk_bytes = 256 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  void write(std::uint64_t off, std::span<const std::uint8_t> data);

  /// Reads into `out`, zero-filling holes and bytes past EOF.
  void read(std::uint64_t off, std::span<std::uint8_t> out) const;

  /// Highest written offset + 1 (POSIX st_size).
  std::uint64_t size() const { return size_; }

  /// Logical truncate; frees chunks wholly past the new size.
  void truncate(std::uint64_t new_size);

  /// Bytes of physical memory actually allocated.
  std::uint64_t allocated_bytes() const { return chunks_.size() * chunk_bytes_; }

 private:
  std::size_t chunk_bytes_;
  std::uint64_t size_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> chunks_;
};

}  // namespace pdsi::pfs
