#include "pdsi/pfs/placement.h"

namespace pdsi::pfs {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

class RoundRobin final : public PlacementStrategy {
 public:
  std::uint32_t server_for(std::uint64_t file_id, std::uint64_t stripe_index,
                           std::uint32_t num_servers) const override {
    return static_cast<std::uint32_t>((file_id + stripe_index) % num_servers);
  }
  std::string name() const override { return "round-robin"; }
};

class Hashed final : public PlacementStrategy {
 public:
  std::uint32_t server_for(std::uint64_t file_id, std::uint64_t stripe_index,
                           std::uint32_t num_servers) const override {
    return static_cast<std::uint32_t>(Mix(file_id * 0x9e3779b97f4a7c15ULL + stripe_index) %
                                      num_servers);
  }
  std::string name() const override { return "hashed"; }
};

class RaidGroup final : public PlacementStrategy {
 public:
  explicit RaidGroup(std::uint32_t group_size) : group_size_(group_size) {}

  std::uint32_t server_for(std::uint64_t file_id, std::uint64_t stripe_index,
                           std::uint32_t num_servers) const override {
    const std::uint32_t g = group_size_ < num_servers ? group_size_ : num_servers;
    const std::uint32_t base =
        static_cast<std::uint32_t>(Mix(file_id) % num_servers);
    return static_cast<std::uint32_t>((base + stripe_index % g) % num_servers);
  }
  std::string name() const override {
    return "raid-group(" + std::to_string(group_size_) + ")";
  }

 private:
  std::uint32_t group_size_;
};

}  // namespace

std::unique_ptr<PlacementStrategy> MakeRoundRobinPlacement() {
  return std::make_unique<RoundRobin>();
}
std::unique_ptr<PlacementStrategy> MakeHashedPlacement() {
  return std::make_unique<Hashed>();
}
std::unique_ptr<PlacementStrategy> MakeRaidGroupPlacement(std::uint32_t group_size) {
  return std::make_unique<RaidGroup>(group_size);
}

}  // namespace pdsi::pfs
