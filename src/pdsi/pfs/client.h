// PfsClient: the POSIX-like per-rank interface to the simulated parallel
// file system. Each rank (virtual-time actor) owns one client; every call
// both performs the real state transition (namespace edit, byte movement)
// and advances the rank's virtual clock by the modelled service time.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/giga/giga.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/rpc/engine.h"

namespace pdsi::pfs {

using FileHandle = int;

struct StatResult {
  std::uint64_t size = 0;
  bool is_dir = false;
  double mtime = 0.0;
};

/// Parallel layout of a file, as returned by the POSIX HEC extension the
/// report says was accepted for standardisation ("allows applications to
/// query parallel layout information ... to optimize I/O patterns").
struct LayoutInfo {
  std::uint64_t stripe_unit = 0;
  std::uint64_t lock_unit = 0;
  std::uint32_t num_servers = 0;
  /// Server for each of the first `num_servers` stripes (the pattern for
  /// round-robin layouts; hashed layouts vary per stripe).
  std::vector<std::uint32_t> first_stripes;
};

/// RAII ownership of a granted whole-file lock unit. The lock manager
/// hands the grant out with the completion time still unknown; the
/// holder stamps it via complete(done) once the covered op finishes. If
/// the op bails out early (error path, exception), the destructor
/// releases the unit at the grant instant instead — an abandoned grant
/// can never leave `unit.free` stale and block later acquirers behind a
/// hold that no longer exists.
class WholeFileGrant {
 public:
  WholeFileGrant() = default;
  WholeFileGrant(const WholeFileGrant&) = delete;
  WholeFileGrant& operator=(const WholeFileGrant&) = delete;
  ~WholeFileGrant() { release(); }

  /// Takes ownership of `unit`, granted at time `granted`.
  void arm(PfsCluster::LockUnit* unit, double granted) {
    unit_ = unit;
    granted_ = granted;
  }
  bool held() const { return unit_ != nullptr; }
  /// Normal release: the covered op completed at `done`.
  void complete(double done) {
    if (unit_ != nullptr) {
      unit_->free = done;
      unit_ = nullptr;
    }
  }
  /// Fallback release at the grant instant (no time was modelled as
  /// spent under the lock).
  void release() { complete(granted_); }

 private:
  PfsCluster::LockUnit* unit_ = nullptr;
  double granted_ = 0.0;
};

class PfsClient {
 public:
  /// `actor` is the rank's VirtualScheduler actor id; it doubles as the
  /// client identity for byte-range lock ownership.
  PfsClient(PfsCluster& cluster, std::size_t actor);

  std::size_t actor() const { return actor_; }
  double now() const;

  /// True when PfsConfig::rpc_window/rpc_batch put this client in
  /// pipelined mode: requests ride the pdsi::rpc engine's per-server
  /// queues instead of completing synchronously. Write failures then
  /// surface at fsync/close (async-I/O semantics).
  bool pipelined() const { return engine_.pipelined(); }
  /// The request engine's accounting (messages, window stalls, ...).
  const rpc::EngineStats& rpc_stats() const { return engine_.stats(); }

  // -- Namespace --
  Status mkdir(const std::string& path);
  Result<FileHandle> create(const std::string& path);
  Result<FileHandle> open(const std::string& path);
  Result<StatResult> stat(const std::string& path);
  /// POSIX HEC extension: query the file's parallel layout (one MDS op).
  Result<LayoutInfo> layout(const std::string& path);
  /// POSIX HEC extension: open on behalf of `group_size` ranks with one
  /// metadata operation instead of one per rank (the "group open"
  /// proposal). Returns this caller's handle.
  Result<FileHandle> open_group(const std::string& path, std::uint32_t group_size);
  Result<std::vector<std::string>> readdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);

  // -- Data --
  Status write(FileHandle fh, std::uint64_t off, std::span<const std::uint8_t> data);
  /// Returns bytes read (short at EOF); holes read as zeros.
  Result<std::size_t> read(FileHandle fh, std::uint64_t off, std::span<std::uint8_t> out);
  Status fsync(FileHandle fh);
  Status close(FileHandle fh);

  /// Size as known to the MDS (clients see each other's extends).
  Result<std::uint64_t> file_size(FileHandle fh);

  /// Advances this rank's virtual clock by `seconds` of client-side
  /// compute (no cluster resources touched).
  void compute(double seconds);

 private:
  struct OpenFile {
    bool in_use = false;
    std::uint64_t file_id = 0;
    std::string path;
  };

  OpenFile* get(FileHandle fh);
  FileHandle put(std::uint64_t file_id, std::string path);

  /// Charge extent/whole-file lock acquisition for [off, off+len); returns
  /// the time the write may proceed. Under the whole_file protocol,
  /// `grant` is armed with the held unit; the caller completes it with
  /// the op's final completion time (or lets RAII release it on an early
  /// exit).
  double acquire_locks(std::uint64_t file_id, std::uint64_t off, std::uint64_t len,
                       double t, WholeFileGrant* grant);

  /// True when this run annotates data ops for the consistency checker
  /// (PfsConfig::record_consist_ops, a tracer, and stored data — without
  /// payload bytes there is nothing to fingerprint).
  bool recording_consist() const;
  /// Emits a consist op span ("write"/"read") on this rank's track.
  void record_consist_op(const char* name, std::uint64_t file_id, double start,
                         double end, std::uint64_t off, std::uint64_t len,
                         std::uint64_t fp);
  /// Emits a consist visibility-edge instant ("open"/"close"/"sync"/"pub").
  void record_consist_edge(const char* name, std::uint64_t file_id, double ts);

  /// The request-engine queue id for MDS shard `shard` (the OSS queues
  /// are 0..num_oss-1, the shard queues follow).
  std::uint32_t mds_queue(std::uint32_t shard) const {
    return cluster_.num_oss() + shard;
  }

  /// Synchronous-mode MDS addressing: charges one op (scaled by
  /// `fraction`) on the shard the cached bitmap addresses, looping while
  /// the addressing is stale — each bounced attempt pays a full round
  /// trip to the wrong shard, whose reply's fresh bitmap rows merge into
  /// the cache. Advances *t past the final (correctly-addressed) charge
  /// and returns that shard. One shard degenerates to a single
  /// charge(t + rpc_latency) on shard 0, byte-identical to the lone MDS.
  std::uint32_t route_mds(const std::string& normalized, double* t,
                          std::uint64_t req, double fraction = 1.0);

  /// Pipelined-mode addressing: resolves the shard against the cached
  /// bitmap without charging, submitting one deferred wire charge to
  /// each stale shard bounced off along the way. The caller submits the
  /// real op to the returned shard's queue.
  std::uint32_t route_mds_queued(const std::string& normalized, double* t,
                                 std::uint64_t req);

  /// Mints the causal request id for one public client op. Ids are
  /// per-client monotonic from 1; together with the rank the pair is
  /// globally unique. Minting is unconditional (pure counter, no
  /// observable effect); only monitored runs ever *emit* the id.
  std::uint64_t mint_req() { return ++next_req_id_; }

  /// Builds the engine request for one striped chunk: serve through the
  /// target OSS, reads carrying the replica-failover scan. All retry,
  /// timeout and backoff behaviour is the engine's (the fault injector's
  /// single seam). `req` is the causal id threaded to the OSS span.
  rpc::RequestEngine::Request chunk_request(std::uint32_t server,
                                            std::uint64_t file_id,
                                            std::uint64_t off, std::uint64_t len,
                                            bool is_read, std::uint64_t req);

  /// Pipelined-mode helper: enqueues the deferred timing charge of one
  /// metadata wire request on MDS shard `shard` — `charges` sequential
  /// MDS ops (scaled by `fraction`), then a parent-directory lock charge
  /// when `parent` is non-empty. State transitions happen at submit
  /// time; only the clock rides the queue. Returns the client's
  /// post-submission time.
  double submit_mds(double t, std::size_t charges, double fraction,
                    std::string parent, std::uint64_t req,
                    std::uint32_t shard = 0);

  /// Striped read core shared by both modes: chunks fan out in parallel
  /// from `t`. Returns the completion time and fills *result.
  double read_core(OpenFile* f, std::uint64_t off, std::span<std::uint8_t> out,
                   double t, Result<std::size_t>* result, std::uint64_t req);

  /// fsync's flush fan-out over the file's touched servers, from `t`;
  /// failures fold into *st (the other servers still flush).
  double flush_touched(std::uint64_t file_id, double t, Status* st,
                       std::uint64_t req);

  /// unlink's namespace + object-teardown core, from `t`.
  double unlink_core(const std::string& path, double t, Status* st,
                     std::uint64_t req);

  PfsCluster& cluster_;
  std::size_t actor_;
  rpc::RequestEngine engine_;
  std::uint64_t next_req_id_ = 0;
  /// Cached GIGA+ split-history bitmap for MDS shard addressing; merged
  /// lazily from bounce replies, never invalidated. Unused (partition 0
  /// only) under the single-shard default.
  giga::Bitmap mds_bitmap_;
  /// Latched when a read-side drain observed an asynchronous write
  /// failure; surfaced (then cleared) by the next fsync/close.
  bool pending_io_error_ = false;
  std::vector<OpenFile> open_files_;
  obs::Counter* c_lock_conflicts_ = nullptr;
  obs::Histogram* h_lock_wait_ = nullptr;
  // consist.* instruments exist only when the run opted into a relaxed
  // model or into op recording, so default metric dumps are unchanged.
  obs::Counter* c_lock_skips_ = nullptr;
  obs::Counter* c_consist_ops_ = nullptr;
  /// Stale-bitmap bounces; created only when num_mds_shards > 1 so
  /// default metric dumps are unchanged.
  obs::Counter* c_mds_stale_ = nullptr;
};

}  // namespace pdsi::pfs
