// ShardedMds: the namespace hash-partitioned over N metadata shards,
// GIGA+-style (§4.2.2; Patil & Gibson).
//
// The single pfs::Mds serialises every create behind one service queue —
// the create-storm bottleneck the paper motivates GIGA+ for. Here the
// namespace hash space is carved into partitions (partition p at radix
// depth d covers hashes with h mod 2^d == p); partition p lives on shard
// p mod N, and splits into p + 2^d once it fills past
// PfsConfig::mds_split_threshold, migrating the upper half of its hash
// class (possibly to another shard). The split history is a
// giga::Bitmap; clients cache it WITHOUT consistency traffic and are
// lazily corrected: a stale client addresses the wrong shard, which
// serves (and charges) the bounced request, replies with its fresh
// bitmap rows, and the client merges + retries.
//
// Layout rules:
//  - Files live only on their home shard (partition_for of the path
//    hash). The partition index kept here is what splits consult.
//  - Directories are replicated on every shard with one file id, so each
//    shard can run parent checks locally and list its local children;
//    readdir is a scatter-gather merge and directory-unlink emptiness is
//    an every-shard probe.
//  - File ids interleave across shards (shard k mints k+1, k+1+N, ...),
//    so ids stay globally unique for placement/locks/data buffers.
//
// num_mds_shards == 1 (the default) degenerates to the historical lone
// MDS byte-for-byte: every op forwards to shard 0 unrouted, no partition
// ever splits, and no per-shard instruments or tracks are created.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdsi/common/result.h"
#include "pdsi/giga/giga.h"
#include "pdsi/obs/obs.h"
#include "pdsi/pfs/config.h"
#include "pdsi/pfs/mds.h"

namespace pdsi::pfs {

class ShardedMds {
 public:
  ShardedMds(const PfsConfig& cfg, obs::Context* ctx = nullptr);

  ShardedMds(const ShardedMds&) = delete;
  ShardedMds& operator=(const ShardedMds&) = delete;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  Mds& shard(std::uint32_t i) { return *shards_[i]; }
  const Mds& shard(std::uint32_t i) const { return *shards_[i]; }

  /// Which shard hosts partition p (round-robin over shards).
  std::uint32_t shard_of(std::uint32_t partition) const {
    return partition % num_shards();
  }
  /// The authoritative split-history bitmap (what a bounced request's
  /// reply carries back to the client for merging).
  const giga::Bitmap& bitmap() const { return bitmap_; }
  /// True when `partition` still covers `hash` under the authoritative
  /// bitmap — the server-side staleness check for a client-addressed op.
  bool fresh(std::uint32_t partition, std::uint64_t hash) const {
    return bitmap_.partition_for(hash) == partition;
  }
  /// Home shard of a normalized path under the authoritative bitmap.
  std::uint32_t home_shard(const std::string& normalized) const {
    return shard_of(bitmap_.partition_for(giga::HashName(normalized)));
  }

  std::uint64_t splits() const { return splits_; }
  /// Total file entries across all partitions (directories excluded).
  std::uint64_t total_files() const;

  // -- Authoritative namespace operations. These route internally by the
  //    authoritative bitmap, so correctness never depends on any client's
  //    cached view; the client's cache governs only where charges land.
  //    All are zero-cost state transitions (pair with shard charges),
  //    called inside scheduler atomically sections.
  Result<Inode> create(const std::string& path, double mtime);
  Result<Inode> lookup(const std::string& path) const;
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to, double mtime);
  Result<std::vector<std::string>> readdir(const std::string& path) const;
  void extend(const std::string& path, std::uint64_t new_size, double mtime);

  /// Charges any splits the preceding create/rename triggered: each one
  /// reserves moved-entries * mds_migrate_entry_s on both the source and
  /// destination shard (tracing "split_migrate" spans) and the caller's
  /// clock waits for the migration — in GIGA+ the triggering create
  /// completes only once its partition has split. Returns `now` untouched
  /// when nothing is pending (always, at one shard).
  double settle_splits(double now, std::uint64_t req = 0);

  /// Invariant check (tests): every indexed file maps to its partition
  /// under the current bitmap and exists on exactly its home shard.
  bool check_placement_invariant() const;

 private:
  /// Splits partition `part` if it filled past the threshold: state moves
  /// immediately, the timing charge is queued for settle_splits.
  void maybe_split(std::uint32_t part);

  const PfsConfig& cfg_;
  std::vector<std::unique_ptr<Mds>> shards_;
  giga::Bitmap bitmap_;
  /// Current radix depth of each live partition.
  std::unordered_map<std::uint32_t, std::uint32_t> depth_;
  /// Partition -> file path -> name hash: the split migration index.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::string, std::uint64_t>>
      parts_;
  std::uint64_t splits_ = 0;

  struct PendingSplit {
    std::uint32_t partition = 0;
    std::uint32_t child = 0;
    std::uint64_t moved = 0;
  };
  std::vector<PendingSplit> pending_;
};

}  // namespace pdsi::pfs
