// Data placement strategies (§4.2.3 "Parallel Layout"): how stripe chunks
// of a file map onto object storage servers. The trace-driven comparison
// of Ceph/PanFS/PVFS placement hinges on these differing distributions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pdsi::pfs {

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Server index in [0, num_servers) for stripe `stripe_index` of file
  /// `file_id`.
  virtual std::uint32_t server_for(std::uint64_t file_id, std::uint64_t stripe_index,
                                   std::uint32_t num_servers) const = 0;

  virtual std::string name() const = 0;
};

/// PVFS-style: stripes round-robin starting at file_id mod servers.
std::unique_ptr<PlacementStrategy> MakeRoundRobinPlacement();

/// Ceph/CRUSH-style: each stripe hashed pseudo-randomly and independently.
std::unique_ptr<PlacementStrategy> MakeHashedPlacement();

/// PanFS-style: each file confined to a RAID group of `group_size`
/// servers chosen by file hash; stripes round-robin within the group.
std::unique_ptr<PlacementStrategy> MakeRaidGroupPlacement(std::uint32_t group_size);

}  // namespace pdsi::pfs
