#include "pdsi/pfs/sharded_mds.h"

#include <algorithm>

namespace pdsi::pfs {

ShardedMds::ShardedMds(const PfsConfig& cfg, obs::Context* ctx) : cfg_(cfg) {
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg.num_mds_shards);
  shards_.reserve(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    shards_.push_back(std::make_unique<Mds>(cfg, ctx, k, n));
  }
  depth_[0] = 0;
  parts_[0] = {};
}

std::uint64_t ShardedMds::total_files() const {
  std::uint64_t n = 0;
  for (const auto& [part, bucket] : parts_) n += bucket.size();
  return n;
}

Result<Inode> ShardedMds::create(const std::string& path, double mtime) {
  if (num_shards() == 1) return shards_[0]->create(path, mtime);
  const std::string p = NormalizePath(path);
  const std::uint64_t hash = giga::HashName(p);
  const std::uint32_t part = bitmap_.partition_for(hash);
  // The home shard runs the real checks: a name collision (file or
  // replicated directory) and the parent directory both live there.
  auto r = shards_[shard_of(part)]->create(p, mtime);
  if (!r.ok()) return r;
  parts_[part].emplace(p, hash);
  maybe_split(part);
  return r;
}

Result<Inode> ShardedMds::lookup(const std::string& path) const {
  if (num_shards() == 1) return shards_[0]->lookup(path);
  const std::string p = NormalizePath(path);
  return shards_[home_shard(p)]->lookup(p);
}

Status ShardedMds::mkdir(const std::string& path) {
  if (num_shards() == 1) return shards_[0]->mkdir(path);
  const std::string p = NormalizePath(path);
  // The home shard allocates the id and runs the exists/parent checks;
  // the directory then replicates everywhere with that one id so every
  // shard can check parents locally and list its local children.
  const std::uint32_t home = home_shard(p);
  const Status st = shards_[home]->mkdir(p);
  if (!st.ok()) return st;
  const auto made = shards_[home]->lookup(p);
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    if (s != home) shards_[s]->install(p, *made);
  }
  return Status::Ok();
}

Status ShardedMds::unlink(const std::string& path) {
  if (num_shards() == 1) return shards_[0]->unlink(path);
  const std::string p = NormalizePath(path);
  if (p == "/") return Errc::not_supported;  // the root is not unlinkable
  const std::uint32_t part = bitmap_.partition_for(giga::HashName(p));
  const std::uint32_t home = shard_of(part);
  const auto r = shards_[home]->lookup(p);
  if (!r.ok()) return Errc::not_found;
  if (r->is_dir) {
    // Emptiness is a cluster property: any shard may hold children.
    for (const auto& s : shards_) {
      if (s->has_children(p)) return Errc::not_empty;
    }
    for (const auto& s : shards_) s->take(p, nullptr);
    return Status::Ok();
  }
  const Status st = shards_[home]->unlink(p);
  if (st.ok()) parts_[part].erase(p);
  return st;
}

Status ShardedMds::rename(const std::string& from, const std::string& to,
                          double mtime) {
  if (num_shards() == 1) return shards_[0]->rename(from, to, mtime);
  const std::string f = NormalizePath(from);
  const std::string t = NormalizePath(to);
  const std::uint64_t to_hash = giga::HashName(t);
  const std::uint32_t from_part = bitmap_.partition_for(giga::HashName(f));
  const std::uint32_t to_part = bitmap_.partition_for(to_hash);
  Mds& src = *shards_[shard_of(from_part)];
  Mds& dst = *shards_[shard_of(to_part)];
  const auto r = src.lookup(f);
  if (!r.ok()) return Errc::not_found;
  if (r->is_dir) return Errc::not_supported;  // file rename only
  if (f == t) return Status::Ok();  // POSIX: same-path rename is a no-op
  if (dst.lookup(t).ok()) return Errc::exists;
  const auto parent = dst.lookup(ParentPath(t));
  if (!parent.ok()) return Errc::not_found;
  if (!parent->is_dir) return Errc::not_dir;
  Inode node = *r;
  node.mtime = mtime;
  src.take(f, nullptr);
  dst.install(t, node);
  parts_[from_part].erase(f);
  parts_[to_part].emplace(t, to_hash);
  maybe_split(to_part);
  return Status::Ok();
}

Result<std::vector<std::string>> ShardedMds::readdir(
    const std::string& path) const {
  if (num_shards() == 1) return shards_[0]->readdir(path);
  const std::string p = NormalizePath(path);
  const auto ino = lookup(p);
  if (!ino.ok()) return ino.error();
  if (!ino->is_dir) return Errc::not_dir;
  // Scatter-gather: every shard lists its local children; the merge
  // restores the global sort order and dedups replicated directories.
  std::vector<std::string> names;
  for (const auto& s : shards_) {
    const auto r = s->readdir(p);
    if (r.ok()) names.insert(names.end(), r->begin(), r->end());
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void ShardedMds::extend(const std::string& path, std::uint64_t new_size,
                        double mtime) {
  if (num_shards() == 1) return shards_[0]->extend(path, new_size, mtime);
  const std::string p = NormalizePath(path);
  shards_[home_shard(p)]->extend(p, new_size, mtime);
}

void ShardedMds::maybe_split(std::uint32_t part) {
  auto bucket_it = parts_.find(part);
  if (bucket_it == parts_.end() ||
      bucket_it->second.size() < cfg_.mds_split_threshold) {
    return;
  }
  const std::uint32_t d = depth_[part];
  const std::uint32_t child = giga::SplitChild(part, d);
  const std::uint64_t child_mask = (1ULL << (d + 1)) - 1;
  const std::uint32_t src_shard = shard_of(part);
  const std::uint32_t dst_shard = shard_of(child);

  parts_[child];  // materialise before taking references (rehash safety)
  auto& bucket = parts_[part];
  auto& dest = parts_[child];
  std::uint64_t moved = 0;
  for (auto it = bucket.begin(); it != bucket.end();) {
    if ((it->second & child_mask) == child) {
      if (dst_shard != src_shard) {
        Inode node;
        if (shards_[src_shard]->take(it->first, &node)) {
          shards_[dst_shard]->install(it->first, node);
        }
      }
      dest.emplace(it->first, it->second);
      it = bucket.erase(it);
      ++moved;
    } else {
      ++it;
    }
  }
  depth_[part] = d + 1;
  depth_[child] = d + 1;
  bitmap_.set(child);
  ++splits_;
  pending_.push_back({part, child, moved});
}

double ShardedMds::settle_splits(double now, std::uint64_t req) {
  if (pending_.empty()) return now;
  double done = now;
  for (const auto& s : pending_) {
    const double cost =
        static_cast<double>(s.moved) * cfg_.mds_migrate_entry_s;
    // Migration occupies both ends (read out of the source, install into
    // the destination), delaying whatever triggered the split.
    const double a = shards_[shard_of(s.partition)]->migrate(
        now, cost, s.child, s.moved, req);
    const double b =
        shards_[shard_of(s.child)]->migrate(now, cost, s.child, s.moved, req);
    done = std::max(done, std::max(a, b));
  }
  pending_.clear();
  return done;
}

bool ShardedMds::check_placement_invariant() const {
  for (const auto& [part, bucket] : parts_) {
    for (const auto& [p, hash] : bucket) {
      if (bitmap_.partition_for(hash) != part) return false;
      const std::uint32_t home = shard_of(part);
      for (std::uint32_t s = 0; s < num_shards(); ++s) {
        const bool present = shards_[s]->lookup(p).ok();
        if (present != (s == home)) return false;
      }
    }
  }
  return true;
}

}  // namespace pdsi::pfs
