// Configuration of the simulated parallel file system substrate.
//
// Three personality presets model the lock-protocol differences between
// the production systems the report names (PanFS, Lustre, GPFS): all
// stripe data over object storage servers, but they differ in how
// concurrent writers to one file are serialised and in their penalty for
// unaligned writes — exactly the properties that make N-to-1 checkpoint
// patterns pathological and that PLFS routes around.
#pragma once

#include <cstdint>
#include <string>

#include "pdsi/common/units.h"
#include "pdsi/consist/model.h"
#include "pdsi/storage/device_catalog.h"

namespace pdsi::pfs {

/// How concurrent writes to a single file are serialised.
enum class LockProtocol {
  none,        ///< PVFS-like: no locks, client-coordinated consistency
  extent,      ///< Lustre/GPFS-like: byte-range tokens with revocation
  whole_file,  ///< degenerate shared-file lock (worst case baseline)
};

std::string_view LockProtocolName(LockProtocol p);

struct PfsConfig {
  std::string name = "generic-pfs";
  std::uint32_t num_oss = 8;            ///< object storage servers
  std::uint64_t stripe_unit = 1 * MiB;  ///< bytes per stripe chunk
  storage::DiskParams disk = storage::EnterpriseFcDisk();

  // Network/CPU service model.
  double rpc_latency_s = 100e-6;        ///< one-way request latency
  double server_cpu_per_op_s = 50e-6;   ///< request processing cost
  double net_bw_bytes = 400.0 * 1e6;    ///< per-OSS NIC bandwidth
  double mds_op_s = 300e-6;             ///< metadata op service time
  double mds_dir_lock_s = 300e-6;       ///< parent-directory lock hold

  // Sharded metadata (pdsi::pfs::ShardedMds, GIGA+-style splitting of
  // the namespace hash space). The default single shard is byte-identical
  // to the historical lone MDS: no partition ever splits and clients
  // never see stale addressing. With more shards, partitions split
  // incrementally as they fill and clients carry lazily-corrected cached
  // bitmaps — a stale client addresses the wrong shard, pays the bounced
  // round trip, merges the fresh bitmap, and retries.
  std::uint32_t num_mds_shards = 1;
  /// File entries per namespace partition before it splits (shards > 1).
  std::uint32_t mds_split_threshold = 2000;
  /// Cost to migrate one entry between shards during a split.
  double mds_migrate_entry_s = 4e-6;
  /// Capability verification at the OSS per request (Maat security);
  /// 0 disables security.
  double security_verify_s = 0.0;

  // Client request engine (pdsi::rpc). The defaults are the synchronous
  // one-RPC-at-a-time client, byte-identical to the pre-engine timings;
  // raising either knob switches the client into pipelined mode: MDS ops
  // and striped data chunks are submitted into per-server queues, up to
  // `rpc_batch` requests coalesce into one wire message (the head pays
  // the RPC latency, tails ride free), and the client's clock only
  // blocks once `rpc_window` requests are in flight. Pipelined writes
  // surface failures at fsync/close (async-I/O semantics), and
  // record_consist_ops requires the synchronous mode.
  std::uint32_t rpc_window = 1; ///< max in-flight requests (1 = synchronous)
  std::uint32_t rpc_batch = 1;  ///< requests per wire message per server

  // Locking.
  LockProtocol locking = LockProtocol::extent;
  std::uint64_t lock_unit = 64 * KiB;   ///< token granularity
  double lock_revoke_s = 1.2e-3;        ///< revocation round trip

  // Consistency (pdsi::consist, after arXiv 2402.14105). POSIX keeps the
  // lock protocol above exactly as-is; the relaxed models skip data-path
  // lock charges and instead publish visibility at close (session), at
  // fsync (commit), or at the amortised collective sync (mpiio).
  consist::ConsistencyModel consistency = consist::ConsistencyModel::posix;
  /// Fraction of one MDS op an mpiio collective sync charges per client
  /// (the sync-barrier-sync metadata exchange batches across the
  /// collective; commit mode pays the full op).
  double mpiio_sync_fraction = 0.25;
  /// Annotate every data op with its byte interval + content fingerprint
  /// and emit the model's visibility edges on the rank tracks, for the
  /// consist::ConsistencyChecker. Off by default: recording adds events,
  /// and default traces must stay byte-identical.
  bool record_consist_ops = false;

  // Write-back cache / aggregation: dirty data flushes to disk in
  // contiguous per-object chunks of this size.
  std::uint64_t flush_chunk = 4 * MiB;

  // Unaligned writes pay a read-modify-write of the containing
  // raid/block unit (PanFS RAID stripelets, GPFS blocks).
  bool rmw_on_unaligned = true;
  std::uint64_t rmw_unit = 64 * KiB;

  // Keep real bytes? Timing-only runs save memory on big sweeps.
  bool store_data = true;

  /// Personality presets calibrated for the Fig. 8 comparison.
  static PfsConfig PanFsLike(std::uint32_t num_oss);
  static PfsConfig LustreLike(std::uint32_t num_oss);
  static PfsConfig GpfsLike(std::uint32_t num_oss);
  static PfsConfig PvfsLike(std::uint32_t num_oss);
};

}  // namespace pdsi::pfs
